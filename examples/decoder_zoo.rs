//! Decoder zoo: run six reconstruction algorithms on the same noisy
//! screening instance and compare accuracy, likelihood and wall-clock.
//!
//! ```text
//! cargo run --release --example decoder_zoo
//! ```

use noisy_pooled_data::amp::AmpDecoder;
use noisy_pooled_data::core::{
    exact_recovery, overlap, Decoder, GreedyDecoder, Instance, NoiseModel, Regime,
};
use noisy_pooled_data::decoders::{BpDecoder, FistaDecoder, LmmseDecoder, McmcDecoder, MlDecoder};
use rand::SeedableRng;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A screening scenario near the decision threshold: 1 000 samples, six
    // positives, Z-channel with a 30% false-negative rate, and a query
    // budget where exact recovery is possible but not guaranteed.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let instance = Instance::builder(1_000)
        .regime(Regime::sublinear(0.25))
        .noise(NoiseModel::z_channel(0.3))
        .queries(320)
        .build()?;
    let run = instance.sample(&mut rng);
    println!(
        "Instance: n = {}, k = {}, m = {}, noise = {}\n",
        instance.n(),
        instance.k(),
        instance.m(),
        instance.noise()
    );

    let field: Vec<Box<dyn Decoder>> = vec![
        Box::new(GreedyDecoder::new()),
        Box::new(AmpDecoder::default()),
        Box::new(BpDecoder::default()),
        Box::new(FistaDecoder::default()),
        Box::new(LmmseDecoder::default()),
        Box::new(McmcDecoder::default()),
    ];

    println!(
        "{:<20} {:>7} {:>9} {:>14} {:>10}",
        "decoder", "exact", "overlap", "log-likelihood", "time"
    );
    for decoder in &field {
        // xtask:allow(wall-clock): feeds only the human-facing time column
        let start = Instant::now();
        let estimate = decoder.decode(&run);
        let elapsed = start.elapsed();
        println!(
            "{:<20} {:>7} {:>9.2} {:>14.1} {:>10.2?}",
            decoder.name(),
            exact_recovery(&estimate, run.ground_truth()),
            overlap(&estimate, run.ground_truth()),
            MlDecoder::log_likelihood(&run, estimate.bits()),
            elapsed
        );
    }

    println!(
        "\nThe ground truth's own log-likelihood: {:.1}",
        MlDecoder::log_likelihood(&run, run.ground_truth().bits())
    );
    println!(
        "(A decoder can legitimately score above the truth — noise sometimes \
         makes another weight-k vector more likely.)"
    );
    Ok(())
}
