//! Epidemic rounds: tracking a drifting infection with pooled tests.
//!
//! `epidemic_screening` sizes a *one-shot* campaign; this example runs the
//! campaign the way a health agency actually would — in rounds. A
//! susceptible–infectious–recovered epidemic evolves over five epochs
//! while pooled tests stream in; after each epoch the accumulated score
//! landscape is re-decoded against the *current* infectious set. Early
//! epochs track almost perfectly; as the wave grows, evidence gathered
//! against yesterday's truth goes stale and the overlap decays — the
//! tracking cost the `npd-workloads` layer exists to measure. A second
//! pass re-runs each epoch with the full distributed protocol on fresh
//! pools for comparison.
//!
//! ```text
//! cargo run --release --example epidemic_rounds
//! ```

use noisy_pooled_data::core::distributed::SelectionStrategy;
use noisy_pooled_data::core::{DesignSpec, NoiseModel};
use noisy_pooled_data::workloads::{track_greedy, track_protocol, SirDynamics, TrackingConfig};

fn main() {
    let n = 1_024usize;
    // A brisk epidemic: 8 index cases, each infecting ~1.8 contacts per
    // epoch, recovering with probability 0.35.
    let model = SirDynamics::new(8, 1.8, 0.35);
    let cfg = TrackingConfig {
        gamma: n / 2,
        queries_per_epoch: 400,
        epochs: 5,
        noise: NoiseModel::z_channel(0.1),
        design: DesignSpec::Iid,
    };
    println!(
        "Tracking an SIR epidemic over {} epochs: n = {n}, {} pooled tests/epoch, \
         Γ = {}, Z-channel p = 0.1\n",
        cfg.epochs, cfg.queries_per_epoch, cfg.gamma
    );

    println!("Streaming greedy tracker (evidence accumulates, truth drifts):");
    println!(
        "{:<8} {:>10} {:>12} {:>8}",
        "epoch", "infectious", "overlap", "exact"
    );
    for r in track_greedy(&model, n, &cfg, 2_024) {
        println!(
            "{:<8} {:>10} {:>11.0}% {:>8}",
            r.epoch,
            r.k,
            r.overlap * 100.0,
            if r.exact { "yes" } else { "no" }
        );
    }

    println!("\nDistributed protocol re-run per epoch (fresh pools, gossip selection):");
    println!(
        "{:<8} {:>10} {:>12} {:>8} {:>10} {:>12}",
        "epoch", "infectious", "overlap", "exact", "rounds", "messages"
    );
    for r in track_protocol(&model, n, &cfg, SelectionStrategy::gossip(), 2_024) {
        println!(
            "{:<8} {:>10} {:>11.0}% {:>8} {:>10} {:>12}",
            r.epoch,
            r.k,
            r.overlap * 100.0,
            if r.exact { "yes" } else { "no" },
            r.rounds,
            r.messages
        );
    }

    println!(
        "\nThe streaming tracker pays for stale evidence as the wave moves; \
         re-pooling each epoch tracks better at the price of fresh tests \
         and a protocol round-trip per epoch."
    );
}
