//! Fully decentralized reconstruction: replace Algorithm 1's sorting
//! network with gossip primitives so no agent ever sees another agent's
//! score.
//!
//! ```text
//! cargo run --release --example decentralized_topk
//! ```

use noisy_pooled_data::core::distributed::SelectionStrategy;
use noisy_pooled_data::core::{distributed, exact_recovery, Instance, NoiseModel};
use noisy_pooled_data::netsim::gossip::push_sum_average;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let instance = Instance::builder(512)
        .k(4)
        .queries(400)
        .noise(NoiseModel::z_channel(0.1))
        .build()?;
    let run = instance.sample(&mut rng);

    // Variant A: the paper's protocol — measurements, then a Batcher
    // sorting network ranks the agents.
    let outcome = distributed::run_protocol(&run)?;
    println!(
        "sorting-network protocol: {} messages, {} rounds, exact = {}",
        outcome.metrics.messages_sent,
        outcome.rounds,
        exact_recovery(&outcome.estimate, run.ground_truth())
    );

    // Variant B: the same protocol with phase II swapped for the adaptive
    // gossip threshold bisection — agents learn only their own bit, no
    // sorting network is ever built, and the bisection stops as soon as
    // the k-th score is isolated (or only exact ties remain).
    let gossip = distributed::run_protocol_with(&run, SelectionStrategy::gossip())?;
    println!(
        "gossip-threshold protocol: {} messages, {} rounds ({} adaptive probes), \
         matches sorting network = {}",
        gossip.metrics.messages_sent,
        gossip.rounds,
        gossip.probes,
        gossip.estimate == outcome.estimate
    );

    // Bonus: estimate the prevalence k/n by push-sum over the decided bits —
    // the piece a deployment needs when k is not known in advance.
    let bits: Vec<f64> = gossip
        .estimate
        .bits()
        .iter()
        .map(|&b| f64::from(u8::from(b)))
        .collect();
    let estimates = push_sum_average(&bits, 80, 7);
    println!(
        "push-sum prevalence estimate at agent 0: {:.5} (true k/n = {:.5})",
        estimates[0],
        instance.k() as f64 / instance.n() as f64
    );
    Ok(())
}
