//! Fully decentralized reconstruction: replace Algorithm 1's sorting
//! network with gossip primitives so no agent ever sees another agent's
//! score.
//!
//! ```text
//! cargo run --release --example decentralized_topk
//! ```

use noisy_pooled_data::core::{
    distributed, exact_recovery, Decoder, GreedyDecoder, Instance, NoiseModel,
};
use noisy_pooled_data::netsim::gossip::{
    push_sum_average, select_top_k, TopKNode, DEFAULT_BISECTION_ITERS,
};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let instance = Instance::builder(512)
        .k(4)
        .queries(400)
        .noise(NoiseModel::z_channel(0.1))
        .build()?;
    let run = instance.sample(&mut rng);
    let decoder = GreedyDecoder::new();
    let scores = decoder.scores(&run);

    // Variant A: the paper's protocol — measurements, then a Batcher
    // sorting network ranks the agents.
    let outcome = distributed::run_protocol(&run)?;
    println!(
        "sorting-network protocol: {} messages, {} rounds, exact = {}",
        outcome.metrics.messages_sent,
        outcome.metrics.rounds,
        exact_recovery(&outcome.estimate, run.ground_truth())
    );

    // Variant B: same measurement phase, but step II is the gossip
    // selection — agents learn only their own bit and the threshold.
    let report = select_top_k(&scores, instance.k(), DEFAULT_BISECTION_ITERS);
    let exact = report
        .selected
        .iter()
        .zip(decoder.decode(&run).bits())
        .all(|(a, b)| a == b);
    println!(
        "gossip top-k selection:   {} messages, {} rounds, matches sequential = {exact}",
        report.messages, report.rounds
    );
    println!(
        "(timetable: {} rounds for n = {}, {} bisection iterations)",
        TopKNode::total_rounds(instance.n(), DEFAULT_BISECTION_ITERS),
        instance.n(),
        DEFAULT_BISECTION_ITERS
    );

    // Bonus: estimate the prevalence k/n by push-sum over the decided bits —
    // the piece a deployment needs when k is not known in advance.
    let bits: Vec<f64> = report
        .selected
        .iter()
        .map(|&b| f64::from(u8::from(b)))
        .collect();
    let estimates = push_sum_average(&bits, 80, 7);
    println!(
        "push-sum prevalence estimate at agent 0: {:.5} (true k/n = {:.5})",
        estimates[0],
        instance.k() as f64 / instance.n() as f64
    );
    Ok(())
}
