//! Quickstart: sample a noisy pooled-data instance and reconstruct it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use noisy_pooled_data::core::{
    exact_recovery, overlap, separation, Decoder, GreedyDecoder, Instance, NoiseModel,
    PoolingGraph, Regime,
};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example (Figure 1): seven agents, five queries.
    let (graph, truth) = PoolingGraph::figure1_example();
    println!(
        "Figure 1 example: n = {}, ones = {:?}",
        graph.n(),
        truth.ones()
    );
    for (j, q) in graph.queries().iter().enumerate() {
        println!(
            "  query a{j}: distinct members {:?}, Γ = {}",
            q.distinct_agents(),
            q.total_slots()
        );
    }

    // A realistic instance: 2 000 agents, k = 2000^0.25 ≈ 7 carry bit one,
    // measured through the Z-channel with a 10% false-negative rate.
    let mut rng = rand::rngs::StdRng::seed_from_u64(2022);
    let instance = Instance::builder(2_000)
        .regime(Regime::sublinear(0.25))
        .noise(NoiseModel::z_channel(0.1))
        .queries(450)
        .build()?;
    println!(
        "\nInstance: n = {}, k = {}, m = {}, Γ = {}, noise = {}",
        instance.n(),
        instance.k(),
        instance.m(),
        instance.gamma(),
        instance.noise()
    );

    let run = instance.sample(&mut rng);
    let decoder = GreedyDecoder::new();
    let estimate = decoder.decode(&run);

    println!("true ones:      {:?}", run.ground_truth().ones());
    println!("estimated ones: {:?}", estimate.ones());
    println!(
        "exact recovery: {}, overlap: {:.2}, score separation: {:.1}",
        exact_recovery(&estimate, run.ground_truth()),
        overlap(&estimate, run.ground_truth()),
        separation(estimate.scores(), run.ground_truth()),
    );

    // Theory check: Theorem 1's query bound for this configuration.
    let bound = noisy_pooled_data::theory::bounds::z_channel_sublinear_queries(
        instance.n() as f64,
        0.25,
        0.1,
        0.05,
    );
    println!(
        "Theorem 1 bound: m ≥ {bound:.0} (we used m = {})",
        instance.m()
    );
    Ok(())
}
