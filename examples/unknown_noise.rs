//! Reconstruction when the channel parameters are unknown.
//!
//! The paper assumes the flip probabilities `p, q` are known constants
//! (Section II-A). In a real deployment they rarely are. This example shows
//! the deployment pipeline built into `npd-core::estimation`:
//!
//! 1. the per-slot one-read rate — the only noise statistic the noise-aware
//!    score actually needs — is estimated from the first moment of the
//!    query results;
//! 2. the greedy decoder runs with the estimated rate;
//! 3. for diagnostics, the full `(p, q)` method-of-moments estimate is also
//!    printed, illustrating its asymmetric identifiability (`q` sharp, `p`
//!    loose).
//!
//! ```text
//! cargo run --release --example unknown_noise
//! ```

use noisy_pooled_data::core::{
    estimation, exact_recovery, overlap, Decoder, GreedyDecoder, Instance, NoiseModel,
};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The operator does NOT know these numbers:
    let (true_p, true_q) = (0.12, 0.04);

    let instance = Instance::builder(2_000)
        .k(10)
        .queries(6_000)
        .noise(NoiseModel::channel(true_p, true_q))
        .build()?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let run = instance.sample(&mut rng);

    // Step 1: estimate the slot rate from the data.
    let est_rate = estimation::estimate_slot_rate(&run)?;
    let model_rate =
        true_q + instance.k() as f64 * (1.0 - true_p - true_q) / (instance.n() as f64 - 1.0);
    println!("slot rate: estimated {est_rate:.5} vs model {model_rate:.5}");

    // Step 2: decode with the estimated rate (no prior noise knowledge).
    let blind = estimation::decode_with_estimated_noise(&run)?;
    // Reference: decoder with the true parameters.
    let informed = GreedyDecoder::new().decode(&run);
    println!(
        "blind decoding:    exact = {}, overlap = {:.2}",
        exact_recovery(&blind, run.ground_truth()),
        overlap(&blind, run.ground_truth())
    );
    println!(
        "informed decoding: exact = {}, overlap = {:.2}",
        exact_recovery(&informed, run.ground_truth()),
        overlap(&informed, run.ground_truth())
    );

    // Step 3: full (p, q) moments estimate, for the curious operator.
    let est = estimation::estimate_channel(&run)?;
    println!(
        "\nmethod-of-moments: p̂ = {:.3} (true {true_p}; weakly identified), \
         q̂ = {:.4} (true {true_q}; sharply identified)",
        est.p, est.q
    );
    println!(
        "\nReading: the decoder never needed p and q separately — the mean query \
         result pins\nexactly the statistic the noise-aware score subtracts."
    );
    Ok(())
}
