//! Traffic monitoring: a linear-regime scenario (heavy-hitter detection).
//!
//! The paper's introduction places traffic monitoring in the *linear*
//! regime `k = ζn`: a constant fraction of flows are heavy hitters.
//! Monitoring points sum indicator signals over pooled flow groups; the
//! readout is noisy. This example sizes the measurement campaign in the
//! linear regime and compares against Theorem 1's linear-regime bound —
//! note the `n·ln n` budget, much steeper than the sublinear case.
//!
//! ```text
//! cargo run --release --example traffic_monitoring
//! ```

use noisy_pooled_data::core::{IncrementalSim, NoiseModel, Regime, Sampling};
use noisy_pooled_data::theory::bounds;

fn main() {
    let n = 2_000usize;
    let zeta = 0.05; // 5% of flows are heavy hitters
    let k = Regime::linear(zeta).k_for(n);
    println!("Monitoring {n} flows, {k} heavy hitters (ζ = {zeta})\n");

    println!(
        "{:<24} {:>14} {:>18}",
        "configuration", "measurements", "Theorem 1 bound"
    );
    for (label, p) in [
        ("exact readout", 0.0),
        ("5% miss rate", 0.05),
        ("15% miss rate", 0.15),
    ] {
        let noise = if p == 0.0 {
            NoiseModel::Noiseless
        } else {
            NoiseModel::z_channel(p)
        };
        let mut results: Vec<usize> = (0..3)
            .map(|seed| {
                let mut sim = IncrementalSim::new(n, k, noise, 11_000 + seed);
                sim.required_queries(200_000)
                    .map(|r| r.queries)
                    .unwrap_or(usize::MAX)
            })
            .collect();
        results.sort_unstable();
        let bound = bounds::noisy_channel_linear_queries(n as f64, zeta, p, 0.0, 0.05);
        println!("{label:<24} {:>14} {bound:>18.0}", results[1]);
    }

    // Design ablation: Γ-subset pools vs the with-replacement default.
    let mut medians = Vec::new();
    for sampling in [Sampling::WithReplacement, Sampling::WithoutReplacement] {
        let mut results: Vec<usize> = (0..3)
            .map(|seed| {
                let mut sim = IncrementalSim::with_options(
                    n,
                    k,
                    n / 2,
                    NoiseModel::z_channel(0.05),
                    sampling,
                    12_000 + seed,
                );
                sim.required_queries(200_000)
                    .map(|r| r.queries)
                    .unwrap_or(usize::MAX)
            })
            .collect();
        results.sort_unstable();
        medians.push(results[1]);
    }
    println!(
        "\nPooling design at 5% miss rate: with replacement {} vs distinct Γ-subsets {} \
         measurements\n(the multigraph design wastes ≈ e^{{-1/2}} of its slots on repeats).",
        medians[0], medians[1]
    );
}
