//! Adaptive vs non-adaptive screening: how many queries — and how many
//! *rounds* of waiting for the pipetting robot — each strategy costs.
//!
//! ```text
//! cargo run --release --example adaptive_screening
//! ```

use noisy_pooled_data::adaptive::{
    optimal_pool_size, recommended_repetitions, Dorfman, IndividualTesting, Oracle,
    RecursiveSplitting, Strategy,
};
use noisy_pooled_data::core::{GroundTruth, IncrementalSim, NoiseModel};
use rand::SeedableRng;

fn main() {
    let (n, k) = (512, 5);
    println!("Screening {n} samples, {k} positive, one pipetting cycle per round.\n");

    for noise in [
        NoiseModel::Noiseless,
        NoiseModel::gaussian(1.0),
        NoiseModel::z_channel(0.1),
    ] {
        println!("--- noise: {noise} ---");

        // The paper's one-round design: measure the required queries.
        let mut sim = IncrementalSim::new(n, k, noise, 2022);
        match sim.required_queries(200_000) {
            Ok(r) => println!(
                "{:<24} {:>8} queries {:>4} round(s)",
                "non-adaptive + greedy", r.queries, 1
            ),
            Err(e) => println!("{:<24} failed: {e}", "non-adaptive + greedy"),
        }

        // Adaptive strategies with repetition coding sized for the noise.
        let delta = 0.01 / n as f64;
        let pool = optimal_pool_size(n, k);
        let strategies: Vec<Box<dyn Strategy>> = vec![
            Box::new(RecursiveSplitting::new(recommended_repetitions(
                &noise,
                n / 2,
                delta,
            ))),
            Box::new(Dorfman::new(
                pool,
                recommended_repetitions(&noise, pool, delta),
            )),
            Box::new(IndividualTesting::new(recommended_repetitions(
                &noise, 1, delta,
            ))),
        ];
        for strategy in &strategies {
            let mut rng = rand::rngs::StdRng::seed_from_u64(2022);
            let truth = GroundTruth::sample(n, k, &mut rng);
            let mut oracle = Oracle::new(&truth, noise, &mut rng);
            let t = strategy.reconstruct(k, &mut oracle);
            println!(
                "{:<24} {:>8} queries {:>4} round(s)  exact: {}",
                strategy.name(),
                t.queries,
                t.rounds,
                t.is_exact(&truth)
            );
        }
        println!();
    }

    println!(
        "Reading: with exact counts, adaptive splitting wins on queries by an order\n\
         of magnitude — but needs ~log₂(n) robot cycles. Once per-slot channel noise\n\
         forces repetition coding, the one-round pooled design wins on BOTH axes,\n\
         which is exactly the regime the paper targets."
    );
}
