//! The fully distributed reconstruction protocol, end to end.
//!
//! Runs Algorithm 1 on the message-passing network simulator: query nodes
//! broadcast measurements, agents accumulate scores and sort themselves
//! through a Batcher sorting network, and every agent learns its own bit.
//! Prints the communication accounting that backs the paper's "one
//! information exchange per node" claim, plus a fault-injection run.
//!
//! ```text
//! cargo run --release --example distributed_protocol
//! ```

use noisy_pooled_data::core::{distributed, Decoder, GreedyDecoder, Instance, NoiseModel};
use noisy_pooled_data::netsim::FaultConfig;
use noisy_pooled_data::sortnet::SortingNetwork;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 512usize;
    let instance = Instance::builder(n)
        .k(4)
        .queries(300)
        .noise(NoiseModel::z_channel(0.1))
        .build()?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let run = instance.sample(&mut rng);

    let outcome = distributed::run_protocol(&run)?;
    let sequential = GreedyDecoder::new().decode(&run);

    println!(
        "Distributed Algorithm 1 on a {n}-agent / {}-query network",
        instance.m()
    );
    println!("  rounds:            {}", outcome.rounds);
    println!(
        "  sort depth:        {} (Batcher odd-even mergesort)",
        outcome.sort_depth
    );
    println!("  messages sent:     {}", outcome.metrics.messages_sent);
    println!(
        "  payload bytes:     {}",
        outcome.metrics.payload_bytes_sent
    );
    println!("  peak in flight:    {}", outcome.metrics.peak_in_flight);
    println!(
        "  matches sequential decoder: {}",
        outcome.estimate == sequential
    );
    println!(
        "  exact recovery:    {}",
        outcome.estimate.ones() == run.ground_truth().ones()
    );

    // Round complexity context: Batcher vs the brick-wall baseline.
    let batcher = SortingNetwork::batcher_odd_even(n);
    let brick = SortingNetwork::odd_even_transposition(n);
    println!(
        "\nSorting-network round complexity at n = {n}: Batcher {} vs \
         odd-even transposition {}",
        batcher.depth(),
        brick.depth()
    );

    // Fault injection: 2% of messages dropped.
    let faults = FaultConfig::new(0.02, 0.0, 7)?;
    let faulty = distributed::run_protocol_with_faults(&run, faults)?;
    println!(
        "\nWith 2% message drops: dropped {} of {} messages, \
         {} agents missed their assignment, exact recovery: {}",
        faulty.metrics.messages_dropped,
        faulty.metrics.messages_sent,
        faulty.missing_assignments,
        faulty.estimate.ones() == run.ground_truth().ones()
    );
    Ok(())
}
