//! GPU-cluster inference: the technological scenario from the paper's
//! introduction.
//!
//! Query nodes are GPUs evaluating a neural network over batches of inputs
//! (“neural group testing”); the per-input binary signals are subject to
//! misclassification — bit flips — which is the *noisy channel model*. A
//! one reads as zero with probability `p` (missed detection) and a zero as
//! one with probability `q ≪ p` (false alarm), the asymmetric regime the
//! paper motivates with the Z-channel.
//!
//! ```text
//! cargo run --release --example gpu_cluster
//! ```

use noisy_pooled_data::core::{
    exact_recovery, overlap, Decoder, GreedyDecoder, Instance, NoiseModel, Regime, TwoStepDecoder,
};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 4096 inputs, 8 of them are the rare positives the classifier hunts.
    let n = 4_096usize;
    let instance_for = |m: usize| {
        Instance::builder(n)
            .regime(Regime::explicit(8))
            .queries(m)
            .noise(NoiseModel::channel(0.10, 0.002)) // misses ≫ false alarms
            .build()
    };

    println!("Neural group testing: n = {n} inputs, k = 8 positives");
    println!("channel: p = 0.10 (missed detection), q = 0.002 (false alarm)\n");
    println!(
        "{:>8} {:>20} {:>20} {:>12}",
        "batches", "greedy success", "two-step success", "overlap"
    );

    for m in [200usize, 400, 600, 800] {
        let instance = instance_for(m)?;
        let trials = 10;
        let mut greedy_ok = 0;
        let mut twostep_ok = 0;
        let mut overlap_sum = 0.0;
        for seed in 0..trials {
            let mut rng = rand::rngs::StdRng::seed_from_u64(31 * m as u64 + seed);
            let run = instance.sample(&mut rng);
            let greedy = GreedyDecoder::new().decode(&run);
            let twostep = TwoStepDecoder::new().decode(&run);
            if exact_recovery(&greedy, run.ground_truth()) {
                greedy_ok += 1;
            }
            if exact_recovery(&twostep, run.ground_truth()) {
                twostep_ok += 1;
            }
            overlap_sum += overlap(&greedy, run.ground_truth());
        }
        println!(
            "{:>8} {:>17}/{} {:>17}/{} {:>12.2}",
            m,
            greedy_ok,
            trials,
            twostep_ok,
            trials,
            overlap_sum / trials as f64
        );
    }

    println!(
        "\nReading: each batch runs one forward pass over Γ = n/2 inputs; ~600 \
         batched\npasses replace {n} individual evaluations even with 10% missed \
         detections.\nThe two-step refinement (the paper's open-question \
         extension) repairs borderline\nranking errors near the threshold."
    );
    Ok(())
}
