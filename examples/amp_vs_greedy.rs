//! Greedy vs AMP head to head (a miniature of Figure 6), plus the state-
//! evolution prediction and the communication-cost comparison from the
//! paper's conclusion.
//!
//! ```text
//! cargo run --release --example amp_vs_greedy
//! ```

use noisy_pooled_data::amp::cost::DistributedAmpCost;
use noisy_pooled_data::amp::state_evolution::{evolve, StateEvolutionConfig};
use noisy_pooled_data::amp::{AmpDecoder, BayesBernoulli};
use noisy_pooled_data::core::{
    exact_recovery, Decoder, GreedyDecoder, Instance, NoiseModel, Regime,
};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1000usize;
    let p = 0.1;
    let trials = 20;

    println!("Success rate vs m (n = {n}, Z-channel p = {p}, {trials} trials/point)\n");
    println!("{:>6} {:>12} {:>12}", "m", "greedy", "AMP");
    for m in [100usize, 200, 300, 400, 500] {
        let instance = Instance::builder(n)
            .regime(Regime::sublinear(0.25))
            .queries(m)
            .noise(NoiseModel::z_channel(p))
            .build()?;
        let mut greedy_ok = 0;
        let mut amp_ok = 0;
        for seed in 0..trials {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1_000 * m as u64 + seed);
            let run = instance.sample(&mut rng);
            if exact_recovery(&GreedyDecoder::new().decode(&run), run.ground_truth()) {
                greedy_ok += 1;
            }
            if exact_recovery(&AmpDecoder::default().decode(&run), run.ground_truth()) {
                amp_ok += 1;
            }
        }
        println!(
            "{:>6} {:>11.0}% {:>11.0}%",
            m,
            100.0 * greedy_ok as f64 / trials as f64,
            100.0 * amp_ok as f64 / trials as f64
        );
    }

    // State evolution: what the scalar recursion predicts for m = 300.
    let m = 300.0;
    let cfg = StateEvolutionConfig {
        prior: 6.0 / n as f64,
        n_over_m: n as f64 / m,
        sigma_w2: 0.0,
        ..StateEvolutionConfig::default()
    };
    let trajectory = evolve(&BayesBernoulli::new(cfg.prior), &cfg);
    println!(
        "\nState evolution at m = {m}: τ² falls {:.3} -> {:.3e} in {} steps \
         (collapse ⇒ AMP succeeds)",
        trajectory[0],
        trajectory.last().unwrap(),
        trajectory.len() - 1
    );

    // Communication: one measured AMP solve vs the greedy protocol's single
    // exchange per edge.
    let instance = Instance::builder(n)
        .regime(Regime::sublinear(0.25))
        .queries(300)
        .noise(NoiseModel::z_channel(p))
        .build()?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let run = instance.sample(&mut rng);
    let (_, trace) = AmpDecoder::default().decode_with_trace(&run);
    let edges: u64 = run
        .graph()
        .queries()
        .iter()
        .map(|q| q.distinct_len() as u64)
        .sum();
    let amp_cost = DistributedAmpCost::new(edges, trace.iterations as u64);
    println!(
        "\nCommunication for this instance: greedy uses each of the {edges} \
         measurement edges once;\ndistributed AMP ({} iterations) would send \
         {} messages — {:.0}x more traffic.",
        trace.iterations,
        amp_cost.messages(),
        amp_cost.messages() as f64 / edges as f64
    );
    Ok(())
}
