//! Epidemic screening: the life-sciences scenario from the paper's
//! introduction.
//!
//! The UK HIV statistics the paper cites (≈105 200 carriers, 6% unaware)
//! correspond to a sublinear regime with θ ≈ 0.1. Samples are pooled by
//! automated pipetting machines whose readout carries Gaussian noise — the
//! *noisy query model*. This example sizes the screening campaign: how many
//! pooled tests identify every unaware carrier, and how does pipetting
//! accuracy change that budget?
//!
//! ```text
//! cargo run --release --example epidemic_screening
//! ```

use noisy_pooled_data::core::{IncrementalSim, NoiseModel};
use noisy_pooled_data::theory::bounds;

fn main() {
    // A screening population: 20 000 samples, of which 20000^0.27 ≈ 14 are
    // positive — the sublinear regime of early-epidemic screening.
    let n = 20_000usize;
    let theta = 0.27;
    let k = (n as f64).powf(theta).round() as usize;
    println!("Screening {n} samples, {k} unknown positives (θ = {theta})");
    println!("Pool size Γ = n/2 = {}\n", n / 2);

    // Sweep pipetting noise: λ is the standard deviation of the readout in
    // units of one sample's contribution.
    println!(
        "{:<12} {:>16} {:>18} {:>14}",
        "noise λ", "tests needed", "Theorem 2 bound", "phase"
    );
    for lambda in [0.0, 0.5, 1.0, 2.0, 4.0] {
        let noise = if lambda == 0.0 {
            NoiseModel::Noiseless
        } else {
            NoiseModel::gaussian(lambda)
        };
        // Median over three independent campaigns.
        let mut results: Vec<usize> = (0..3)
            .map(|seed| {
                let mut sim = IncrementalSim::new(n, k, noise, 7_000 + seed);
                sim.required_queries(20_000)
                    .map(|r| r.queries)
                    .unwrap_or(usize::MAX)
            })
            .collect();
        results.sort_unstable();
        let median = results[1];
        let bound = bounds::noisy_query_sublinear_queries(n as f64, theta, 0.05);
        let regime = bounds::noise_regime(lambda.max(1e-9), median.min(20_000) as f64, n as f64);
        println!(
            "{:<12} {:>16} {:>18.0} {:>14}",
            lambda,
            if median == usize::MAX {
                "> 20000 (failed)".to_string()
            } else {
                median.to_string()
            },
            bound,
            format!("{regime:?}")
        );
    }

    println!(
        "\nReading: moderate pipetting noise (λ ≤ 2) barely moves the testing \
         budget,\nexactly as Theorem 2 predicts for λ² = o(m/ln n); the budget is \
         a ~{}x\ncompression over testing all {n} samples individually.",
        n / 1200
    );
}
