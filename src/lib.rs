//! Reproduction of *“Distributed Reconstruction of Noisy Pooled Data”*
//! (Hahn-Klimroth & Kaaser, ICDCS 2022, arXiv:2204.07491).
//!
//! This facade crate re-exports the workspace members under stable names so
//! examples and downstream users need a single dependency:
//!
//! * [`core`] — the paper's model and Algorithm 1 (greedy reconstruction),
//!   noise channels, the incremental required-queries simulation, and the
//!   fully distributed protocol.
//! * [`amp`] — the approximate message passing baseline of Section III.
//! * [`decoders`] — the wider baseline zoo: belief propagation, exact ML,
//!   FISTA, annealed MCMC and linear MMSE.
//! * [`adaptive`] — adaptive sum-query strategies (recursive splitting,
//!   Dorfman, individual testing) quantifying the cost of the paper's
//!   non-adaptive restriction.
//! * [`theory`] — the closed-form query bounds of Theorems 1 and 2 plus
//!   converse (lower) bounds and exact channel capacities.
//! * [`workloads`] — structured and temporal population models (uniform,
//!   community blocks, household clusters, heavy-tailed hubs, SIR
//!   dynamics) with per-agent priors feeding the posterior decoding
//!   paths, plus the epoch-tracking harness for drifting populations.
//! * [`netsim`] — the sharded synchronous message-passing network
//!   simulator (million-agent scale, bit-identical at any shard/thread
//!   count), with topologies, a per-link fault model, push-sum gossip and
//!   decentralized exact top-`k` selection.
//! * [`sortnet`] — Batcher sorting networks used by the distributed variant.
//! * [`numerics`] — samplers, linear algebra and statistics substrate.
//! * [`experiments`] — the harness that regenerates every figure.
//!
//! # Quick start
//!
//! ```
//! use noisy_pooled_data::core::{Decoder, GreedyDecoder, Instance, NoiseModel, Regime};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! // 500 agents, k = 500^0.25 ≈ 5 hold bit one, Z-channel with p = 0.1.
//! let instance = Instance::builder(500)
//!     .regime(Regime::sublinear(0.25))
//!     .noise(NoiseModel::z_channel(0.1))
//!     .queries(400)
//!     .build()
//!     .expect("valid configuration");
//! let run = instance.sample(&mut rng);
//! let estimate = GreedyDecoder::new().decode(&run);
//! assert_eq!(estimate.ones(), run.ground_truth().ones());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use npd_adaptive as adaptive;
pub use npd_amp as amp;
pub use npd_core as core;
pub use npd_decoders as decoders;
pub use npd_experiments as experiments;
pub use npd_netsim as netsim;
pub use npd_numerics as numerics;
pub use npd_sortnet as sortnet;
pub use npd_telemetry as telemetry;
pub use npd_theory as theory;
pub use npd_workloads as workloads;
