//! Statistical validation of the paper's structural lemmas on the sampled
//! pooling graphs (Lemmas 3, 4, 6 and 7).

use noisy_pooled_data::core::{GroundTruth, NoiseModel, PoolingGraph};
use noisy_pooled_data::theory::GAMMA;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn lemma3_multi_degree_is_binomial() {
    // Δᵢ ~ Bin(mΓ, 1/n): check mean and variance across agents/resamples.
    let mut rng = StdRng::seed_from_u64(1);
    let (n, m) = (300usize, 120usize);
    let gamma = n / 2;
    let mut samples = Vec::new();
    for _ in 0..30 {
        let g = PoolingGraph::sample(n, m, gamma, &mut rng);
        samples.extend(g.multi_degrees().into_iter().map(|d| d as f64));
    }
    let count = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / count;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1.0);
    let trials = (m * gamma) as f64;
    let want_mean = trials / n as f64;
    let want_var = trials * (1.0 / n as f64) * (1.0 - 1.0 / n as f64);
    assert!((mean - want_mean).abs() < 0.3, "mean {mean} vs {want_mean}");
    assert!(
        (var / want_var - 1.0).abs() < 0.1,
        "var {var} vs {want_var}"
    );
}

#[test]
fn lemma4_distinct_degree_proportionality() {
    // Δ*ᵢ ≈ 2γ·Δᵢ up to lower-order terms (Lemma 4 of [29]).
    let mut rng = StdRng::seed_from_u64(2);
    let (n, m) = (2_000usize, 400usize);
    let g = PoolingGraph::sample(n, m, n / 2, &mut rng);
    let multi = g.multi_degrees();
    let distinct = g.distinct_degrees();
    let ratio_mean = multi
        .iter()
        .zip(&distinct)
        .map(|(&d, &ds)| ds as f64 / d as f64)
        .sum::<f64>()
        / n as f64;
    let want = 2.0 * GAMMA; // Δ* = 2γΔ with Δ = m/2, Δ* = γm
    assert!(
        (ratio_mean - want).abs() < 0.02,
        "mean Δ*/Δ = {ratio_mean}, want ≈ {want}"
    );
}

#[test]
fn lemma6_second_neighborhood_ones_count() {
    // Ξⱼ ~ Bin(Δ*ⱼΓ − Δⱼ, (k − 1{σⱼ=1})/(n − 1)): check the mean for both
    // classes of a fixed agent across graph resamples.
    let (n, k, m) = (400usize, 20usize, 60usize);
    let gamma = n / 2;
    let mut rng = StdRng::seed_from_u64(3);

    // Fix a truth where agent 0 is one and agent 1 is zero.
    let mut bits = vec![false; n];
    for b in bits.iter_mut().take(k) {
        *b = true;
    }
    let truth = GroundTruth::from_bits(bits);

    for (agent, is_one) in [(0usize, true), (1 + k, false)] {
        let mut ratio_sum = 0.0;
        let mut resamples = 0;
        for _ in 0..40 {
            let g = PoolingGraph::sample(n, m, gamma, &mut rng);
            // Count ones among the second-neighborhood slots of `agent`.
            let mut slots = 0u64;
            let mut ones = 0u64;
            for q in g.queries() {
                let own = q.multiplicity(agent as u32) as u64;
                if own == 0 {
                    continue;
                }
                let c1 = q.one_slots(&truth);
                let own_ones = if truth.is_one(agent) { own } else { 0 };
                slots += q.total_slots() as u64 - own;
                ones += c1 - own_ones;
            }
            if slots > 0 {
                ratio_sum += ones as f64 / slots as f64;
                resamples += 1;
            }
        }
        let mean_rate = ratio_sum / resamples as f64;
        let want = (k as f64 - if is_one { 1.0 } else { 0.0 }) / (n as f64 - 1.0);
        assert!(
            (mean_rate - want).abs() < 0.004,
            "agent {agent} (one={is_one}): rate {mean_rate:.5} vs lemma {want:.5}"
        );
    }
}

#[test]
fn lemma7_noisy_channel_observed_ones() {
    // Under the channel, the probability a random second-neighborhood slot
    // *reads* one is q + (k − 1{σ})/(n−1)·(1−p−q) — the basis of the noise-
    // aware centering. Validate via repeated measurement of one graph.
    let (n, k, m) = (500usize, 25usize, 40usize);
    let (p, q) = (0.2, 0.1);
    let mut rng = StdRng::seed_from_u64(4);
    let mut bits = vec![false; n];
    for b in bits.iter_mut().take(k) {
        *b = true;
    }
    let truth = GroundTruth::from_bits(bits);
    let noise = NoiseModel::channel(p, q);

    let g = PoolingGraph::sample(n, m, n / 2, &mut rng);
    let total_slots: f64 = g.queries().iter().map(|qq| qq.total_slots() as f64).sum();
    let mut mean_reading = 0.0;
    let resamples = 300;
    for _ in 0..resamples {
        let results = g.measure(&truth, &noise, &mut rng);
        mean_reading += results.iter().sum::<f64>() / total_slots;
    }
    mean_reading /= resamples as f64;
    let want = q + k as f64 / n as f64 * (1.0 - p - q);
    assert!(
        (mean_reading - want).abs() < 0.003,
        "per-slot read rate {mean_reading:.5} vs {want:.5}"
    );
}
