//! Regression pins for the live violations found by the static
//! determinism tooling (`cargo run -p xtask -- lint` / `analyze`):
//!
//! * `decoders::mcmc` — the per-proposal query-delta accumulator was an
//!   unordered `HashMap` (PR 7, `hash-iteration`), making the float energy
//!   difference (and with it accept/reject decisions) depend on the
//!   per-process hash seed. It is now a sorted merge of the two swapped
//!   agents' adjacency lists; these fingerprints pin the resulting
//!   bit-exact output stream.
//! * `core::design::DoublyRegularDesign` — its switch-repair multiplicity
//!   maps are membership-probe-only (annotated as such); the sampled graph
//!   stream must therefore be *unchanged* by the audit. The fingerprint
//!   here pins that stream against accidental future iteration.
//! * `netsim::network::gate_copy` — the delay gate drew from the
//!   per-message RNG only on the not-dropped path (PR 9,
//!   `rng-provenance`): the number of variates consumed depended on the
//!   drop outcome. Harmless today only because that rng dies with the
//!   message, it becomes a replay bug the moment a draw is added after the
//!   gates. Both draws are now hoisted above the drop return, and the
//!   analyzer run here pins the whole crate free of provenance hazards.

use noisy_pooled_data::core::{
    DoublyRegularDesign, Instance, NoiseModel, PoolingDesign, PoolingGraph,
};
use noisy_pooled_data::decoders::{McmcConfig, McmcDecoder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// FNV-1a mixer used across the repo's stream-pinning tests.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn mix(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

fn graph_fingerprint(g: &PoolingGraph) -> u64 {
    let mut h = Fnv::new();
    h.mix(g.queries().len() as u64);
    for q in g.queries() {
        h.mix(u64::from(q.total_slots()));
        for (agent, count) in q.iter() {
            h.mix(u64::from(agent));
            h.mix(u64::from(count));
        }
    }
    h.0
}

/// Fingerprint of `DoublyRegularDesign.sample(n=96, m=48, Γ=24, seed=2204)`.
/// The PR 7 hash-iteration audit only *annotated* the membership-only maps
/// in the switch-repair pass, so this pin doubles as proof the audit left
/// the sampling stream untouched.
const DOUBLY_REGULAR_FINGERPRINT: u64 = 0xCBE6_D311_F5DE_C71D;

#[test]
fn doubly_regular_stream_is_unchanged_by_the_hash_audit() {
    let mut rng = StdRng::seed_from_u64(2_204);
    let g = DoublyRegularDesign.sample(96, 48, 24, &mut rng);
    assert_eq!(
        graph_fingerprint(&g),
        DOUBLY_REGULAR_FINGERPRINT,
        "DoublyRegularDesign's sampling stream moved; its HashMaps are \
         annotated membership-only and must not influence output order"
    );
}

fn mcmc_fingerprint(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let run = Instance::builder(160)
        .k(6)
        .queries(120)
        .noise(NoiseModel::z_channel(0.08))
        .build()
        .expect("valid instance")
        .sample(&mut rng);
    let out = McmcDecoder::with_config(McmcConfig {
        steps: 4_000,
        ..McmcConfig::default()
    })
    .solve(&run);
    let mut h = Fnv::new();
    h.mix(out.accepted as u64);
    h.mix(out.best_energy.to_bits());
    h.mix(out.initial_energy.to_bits());
    for &a in &out.best_ones {
        h.mix(u64::from(a));
    }
    for &occ in &out.occupancy {
        h.mix(occ.to_bits());
    }
    h.0
}

/// Fingerprints of the annealed MCMC output stream under the sorted-merge
/// delta accumulator (PR 7). Before that change the accumulation order of
/// the energy difference came from `HashMap` iteration, i.e. the
/// per-process hash seed: these values were not even stable across *runs*.
const MCMC_FINGERPRINTS: [(u64, u64); 2] =
    [(11, 0xD464_DC79_6008_1D21), (2_022, 0xA240_A9AD_E8B1_60B3)];

#[test]
fn mcmc_output_stream_is_pinned_after_sorted_delta_merge() {
    for (seed, expected) in MCMC_FINGERPRINTS {
        assert_eq!(
            mcmc_fingerprint(seed),
            expected,
            "MCMC output stream moved at seed {seed}; the delta merge must \
             visit queries in ascending id order"
        );
    }
}

/// PR 9 regression: `gate_copy` used to draw the delay variate only after
/// the data-dependent drop `return`, so the per-message stream length
/// depended on the drop outcome — exactly the hazard `rng-provenance`
/// exists to catch (this test failed before the draws were hoisted).
/// Running the analyzer over the whole crate rather than one fn also keeps
/// new netsim code from reintroducing the pattern elsewhere.
#[test]
fn netsim_has_no_rng_provenance_hazards() {
    let netsim_src = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/netsim/src");
    let outcome = xtask::engine::analyze_paths(&[netsim_src], false).expect("netsim sources read");
    let provenance: Vec<_> = outcome
        .reports
        .iter()
        .filter(|r| r.finding.rule == "rng-provenance")
        .collect();
    assert!(
        provenance.is_empty(),
        "netsim consumes RNG streams data-dependently:\n{provenance:#?}"
    );
}
