//! Cross-layer behaviour of the workload (population-model) layer: the
//! uniform model must be bit-identical to the legacy sampler, structured
//! priors must pay for themselves in the decoders, and the prior-aware
//! estimation paths must stay consistent with their prior-blind
//! counterparts on exchangeable populations.

use noisy_pooled_data::core::{
    estimation, Decoder, DesignSpec, Estimate, GreedyDecoder, GroundTruth, Instance, NoiseModel,
    PoolingDesign, Regime,
};
use noisy_pooled_data::workloads::{
    CommunityBlocks, PopulationModel, SirDynamics, UniformKSubset, WorkloadSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// FNV-1a over `(n, ones)`, used to pin sampler streams.
fn truth_fingerprint(t: &GroundTruth) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    mix(t.n() as u64);
    for &o in t.ones() {
        mix(u64::from(o));
    }
    h
}

/// Fingerprint of `GroundTruth::sample(1000, 25, seed=31415)` under the
/// vendored xoshiro256++ StdRng, recorded when the workload layer was
/// introduced.
const UNIFORM_FINGERPRINT: u64 = 0xADDC_9487_2CD6_5250;

#[test]
fn uniform_workload_is_bit_identical_to_legacy_ground_truth() {
    // The refactor moved the paper's population sampler behind
    // `PopulationModel`; the trait path (through `&mut dyn RngCore`), the
    // spec path, and the original `GroundTruth::sample` must consume the
    // identical RNG stream.
    for (n, k_regime, seed) in [
        (257usize, Regime::explicit(9), 0u64),
        (1_000, Regime::sublinear(0.5), 42),
        (64, Regime::linear(0.25), 0xDEAD),
    ] {
        let k = k_regime.k_for(n);
        let legacy = GroundTruth::sample(n, k, &mut StdRng::seed_from_u64(seed));
        let mut rng = StdRng::seed_from_u64(seed);
        let via_model = UniformKSubset::new(k_regime).sample(n, &mut rng);
        assert_eq!(legacy, via_model, "n={n} seed={seed}");
        let mut rng = StdRng::seed_from_u64(seed);
        let via_spec = WorkloadSpec::Uniform { theta: 0.5 }
            .model()
            .sample(n, &mut rng);
        if matches!(k_regime, Regime::Sublinear { theta } if theta == 0.5) {
            assert_eq!(legacy, via_spec, "spec path diverged at n={n}");
        }
    }
    // And the stream itself is pinned: any change to the sampler's RNG
    // call sequence (not just to the refactoring) fails here.
    let t = GroundTruth::sample(1_000, 25, &mut StdRng::seed_from_u64(31_415));
    assert_eq!(truth_fingerprint(&t), UNIFORM_FINGERPRINT);
    let mut rng = StdRng::seed_from_u64(31_415);
    let via_model = UniformKSubset::new(Regime::explicit(25)).sample(1_000, &mut rng);
    assert_eq!(truth_fingerprint(&via_model), UNIFORM_FINGERPRINT);
}

/// Samples a run over an externally supplied truth with the i.i.d. design.
fn assemble_run(
    truth: GroundTruth,
    m: usize,
    gamma: usize,
    noise: NoiseModel,
    rng: &mut StdRng,
) -> noisy_pooled_data::core::Run {
    let n = truth.n();
    let instance = Instance::builder(n)
        .k(truth.k())
        .queries(m)
        .query_size(gamma)
        .noise(noise)
        .build()
        .expect("valid configuration");
    let graph = DesignSpec::Iid.sample(n, m, gamma, rng);
    let results = graph.measure(&truth, &noise, rng);
    instance
        .assemble(truth, graph, results)
        .expect("assembled parts match the instance")
}

#[test]
fn prior_aware_greedy_beats_prior_blind_on_community_workload() {
    // The headline claim of the prior plumbing: at a fixed, scarce query
    // budget the posterior ranking recovers more of a structured
    // population than Algorithm 1's prior-blind ranking. Averaged over
    // seeds so a lucky blind draw cannot flip the comparison.
    let n = 400;
    let model = CommunityBlocks::new(8, 2, 0.9, Regime::explicit(20));
    let prior = model.prior(n);
    let noise = NoiseModel::z_channel(0.1);
    let (mut blind_total, mut aware_total) = (0.0, 0.0);
    let trials = 12;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(5_000 + seed);
        let truth = model.sample(n, &mut rng);
        let run = assemble_run(truth, 220, n / 2, noise, &mut rng);
        let blind = GreedyDecoder::new().decode(&run);
        let aware = Estimate::from_scores(
            GreedyDecoder::new().posterior_scores(&run, &prior),
            run.instance().k(),
        );
        blind_total += noisy_pooled_data::core::overlap(&blind, run.ground_truth());
        aware_total += noisy_pooled_data::core::overlap(&aware, run.ground_truth());
    }
    assert!(
        aware_total > blind_total,
        "prior-aware {aware_total:.2} did not beat prior-blind {blind_total:.2} \
         (sum over {trials} trials)"
    );
    // The margin is substantial, not a rounding artifact.
    assert!(
        aware_total - blind_total > 0.02 * trials as f64,
        "margin too thin: {aware_total:.3} vs {blind_total:.3}"
    );
}

#[test]
fn posterior_scores_with_uniform_prior_preserve_regular_ranking() {
    // On an agent-regular design (constant Δᵢ, Δ*ᵢ) the posterior score
    // with a uniform prior is a strictly monotone transform of the plain
    // score: the selection must be identical.
    let n = 300;
    let mut rng = StdRng::seed_from_u64(77);
    let run = Instance::builder(n)
        .k(6)
        .queries(120)
        .query_size(60)
        .noise(NoiseModel::z_channel(0.1))
        .design(DesignSpec::DoublyRegular)
        .build()
        .unwrap()
        .sample(&mut rng);
    let plain = GreedyDecoder::new().decode(&run);
    let uniform_prior = vec![6.0 / n as f64; n];
    let posterior = Estimate::from_scores(
        GreedyDecoder::new().posterior_scores(&run, &uniform_prior),
        6,
    );
    assert_eq!(plain.ones(), posterior.ones());
}

#[test]
fn estimate_k_with_prior_blends_toward_data_with_queries() {
    // With plenty of queries the posterior k̂ matches the moment estimate
    // (and the truth); with a deliberately wrong prior and almost no
    // queries, the prior mass dominates.
    let n = 1_000;
    let model = CommunityBlocks::new(8, 2, 0.9, Regime::explicit(24));
    let prior = model.prior(n);
    let mut rng = StdRng::seed_from_u64(9);
    let truth = model.sample(n, &mut rng);
    let run = assemble_run(
        truth.clone(),
        600,
        n / 2,
        NoiseModel::z_channel(0.1),
        &mut rng,
    );
    let k_hat = estimation::estimate_k_with_prior(&run, &prior).unwrap();
    assert_eq!(k_hat, truth.k());

    // Two queries, prior mass 3·k: the blend must land strictly between
    // the moment estimate and the prior mass — the prior pulls, the data
    // anchors.
    let wrong_prior = vec![3.0 * 24.0 / n as f64; n];
    let mut rng = StdRng::seed_from_u64(10);
    let truth2 = model.sample(n, &mut rng);
    let scarce = assemble_run(truth2, 2, n / 2, NoiseModel::z_channel(0.1), &mut rng);
    let k_mom = estimation::estimate_k(&scarce).unwrap();
    let k_scarce = estimation::estimate_k_with_prior(&scarce, &wrong_prior).unwrap();
    assert!(
        k_scarce > k_mom && k_scarce < 72,
        "k̂={k_scarce}: blend must sit between the moment estimate ({k_mom}) \
         and the prior mass (72)"
    );
}

#[test]
fn decode_with_prior_recovers_structured_population() {
    // The full deployment path — posterior k̂ plus posterior ranking — on
    // a generously queried structured run is exact.
    let n = 500;
    let model = CommunityBlocks::new(5, 1, 0.8, Regime::explicit(12));
    let prior = model.prior(n);
    let mut exact = 0;
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(400 + seed);
        let truth = model.sample(n, &mut rng);
        let run = assemble_run(truth, 1_200, n / 2, NoiseModel::z_channel(0.1), &mut rng);
        let est = estimation::decode_with_prior(&run, &prior).unwrap();
        if est.ones() == run.ground_truth().ones() {
            exact += 1;
        }
    }
    assert!(exact >= 3, "only {exact}/4 exact at a generous budget");
}

#[test]
fn sir_one_shot_sample_is_reachable_through_the_spec() {
    let spec = WorkloadSpec::Sir;
    let model = spec.sir().expect("Sir spec is temporal");
    let mut rng = StdRng::seed_from_u64(3);
    let snapshot = PopulationModel::sample(&model, 600, &mut rng);
    assert!(snapshot.k() > 0);
    assert_eq!(snapshot.n(), 600);
    // The spec path samples the same distribution (same model, own seed).
    let mut rng = StdRng::seed_from_u64(3);
    let via_spec = spec.model().sample(600, &mut rng);
    assert_eq!(snapshot, via_spec);
}

#[test]
fn incremental_sim_truth_swap_changes_separation_target() {
    // `set_truth` must re-aim the separation diagnostic at the new truth
    // while keeping the accumulated evidence.
    use noisy_pooled_data::core::IncrementalSim;
    let model = SirDynamics::new(5, 1.5, 0.3);
    let mut pop_rng = StdRng::seed_from_u64(21);
    let mut state = model.init(200, &mut pop_rng);
    let mut sim = IncrementalSim::with_truth(
        state.truth(),
        100,
        NoiseModel::Noiseless,
        DesignSpec::Iid,
        99,
    );
    for _ in 0..400 {
        sim.add_query();
    }
    assert!(sim.is_separated(), "noiseless 400-query run must separate");
    let old_psi: Vec<f64> = (0..200).map(|i| sim.psi(i)).collect();
    for _ in 0..6 {
        model.step(&mut state, &mut pop_rng);
    }
    let new_truth = state.truth();
    assert_ne!(
        new_truth.ones(),
        sim.truth().ones(),
        "epidemic did not move"
    );
    sim.set_truth(new_truth.clone());
    assert_eq!(sim.truth().ones(), new_truth.ones());
    // Evidence is kept: the accumulated neighborhood sums are untouched
    // (the *centering* re-aims at the new k, so scores may shift — that is
    // the point of the swap).
    let new_psi: Vec<f64> = (0..200).map(|i| sim.psi(i)).collect();
    assert_eq!(new_psi, old_psi);
}
