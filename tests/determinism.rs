//! Threading/determinism regression tests.
//!
//! The experiment harness promises bit-identical results at any thread
//! count (see the contract in `npd-experiments`' crate docs), and the
//! buffer-reuse decoder paths promise bit-identical output to their
//! one-shot counterparts. These tests pin both properties; if either
//! breaks, every figure in the paper reproduction silently becomes
//! scheduling-dependent.

use noisy_pooled_data::amp::{AmpDecoder, AmpWorkspace};
use noisy_pooled_data::core::{
    distributed, GreedyDecoder, GreedyWorkspace, Instance, NoiseModel, Regime,
};
use noisy_pooled_data::decoders::{BpDecoder, BpWorkspace};
use noisy_pooled_data::experiments::figures::{fig6, fig7};
use noisy_pooled_data::experiments::sweep::{required_queries_grid, SweepCell};
use noisy_pooled_data::experiments::{mix_seed, runner};
use noisy_pooled_data::netsim::gossip::PushSumNode;
use noisy_pooled_data::netsim::{FaultConfig, Metrics, Network, NodeId, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_run(
    n: usize,
    k: usize,
    m: usize,
    noise: NoiseModel,
    seed: u64,
) -> noisy_pooled_data::core::Run {
    Instance::builder(n)
        .k(k)
        .queries(m)
        .noise(noise)
        .build()
        .expect("valid test configuration")
        .sample(&mut StdRng::seed_from_u64(seed))
}

#[test]
fn sweep_grid_is_identical_across_thread_counts() {
    let cells: Vec<SweepCell> = [(100usize, 0.0f64), (178, 0.1), (316, 0.3)]
        .iter()
        .enumerate()
        .map(|(i, &(n, p))| {
            SweepCell::paper(
                n,
                Regime::sublinear(0.25),
                if p == 0.0 {
                    NoiseModel::Noiseless
                } else {
                    NoiseModel::z_channel(p)
                },
                10_000,
                mix_seed(0xDE7E_0001, i as u64),
            )
        })
        .collect();
    let reference = required_queries_grid(&cells, 6, 1);
    assert!(
        reference.iter().any(|s| !s.samples.is_empty()),
        "degenerate reference: no successful trials"
    );
    for threads in [2usize, 4, 8, 16] {
        let got = required_queries_grid(&cells, 6, threads);
        assert_eq!(got, reference, "threads={threads}");
    }
}

#[test]
fn figure_measurements_are_identical_across_thread_counts() {
    // Figure 6 (paired success rates) and Figure 7 (mean overlap) at one
    // representative grid point each.
    let f6_ref = fig6::measure_point(0.1, 250, 8, 0xF6, 1);
    let f7_ref = fig7::mean_overlap(0.1, 250, 8, 0xF7, 1);
    for threads in [2usize, 4, 8] {
        assert_eq!(fig6::measure_point(0.1, 250, 8, 0xF6, threads), f6_ref);
        let f7 = fig7::mean_overlap(0.1, 250, 8, 0xF7, threads);
        assert_eq!(
            f7.to_bits(),
            f7_ref.to_bits(),
            "threads={threads}: mean overlap differs"
        );
    }
}

#[test]
fn parallel_map_respects_rayon_num_threads_contract() {
    // Whatever the ambient RAYON_NUM_THREADS is, an explicit threads=1 run
    // and the default-pool run must agree bit-for-bit.
    let seeds: Vec<u64> = (0..32).map(|i| mix_seed(0xD00D, i)).collect();
    let decode = |&seed: &u64| {
        let run = sample_run(300, 4, 260, NoiseModel::z_channel(0.1), seed);
        GreedyDecoder::new().scores(&run)
    };
    let sequential = runner::parallel_map(&seeds, 1, decode);
    let default_pool = runner::parallel_map(&seeds, runner::default_threads(), decode);
    assert_eq!(sequential, default_pool);
}

#[test]
fn greedy_workspace_path_matches_one_shot() {
    let decoder = GreedyDecoder::new();
    let mut ws = GreedyWorkspace::new();
    for seed in 0..5u64 {
        let run = sample_run(400, 5, 300, NoiseModel::channel(0.1, 0.05), seed);
        let fresh = decoder.scores(&run);
        let reused = decoder.scores_using(&run, &mut ws);
        assert!(
            fresh
                .iter()
                .zip(&reused)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "seed={seed}: workspace scores differ"
        );
    }
}

#[test]
fn bp_workspace_path_matches_one_shot() {
    let decoder = BpDecoder::new();
    let mut ws = BpWorkspace::new();
    for seed in 0..3u64 {
        let run = sample_run(300, 4, 220, NoiseModel::z_channel(0.1), 100 + seed);
        assert_eq!(
            decoder.solve(&run),
            decoder.solve_with(&run, &mut ws),
            "seed={seed}"
        );
    }
}

#[test]
fn amp_workspace_path_matches_one_shot() {
    let decoder = AmpDecoder::default();
    let mut ws = AmpWorkspace::new();
    for seed in 0..3u64 {
        let run = sample_run(400, 4, 300, NoiseModel::z_channel(0.1), 200 + seed);
        let (est_fresh, out_fresh) = decoder.decode_with_trace(&run);
        let (est_reuse, out_reuse) = decoder.decode_with_trace_using(&run, &mut ws);
        assert_eq!(est_fresh, est_reuse, "seed={seed}");
        assert_eq!(out_fresh, out_reuse, "seed={seed}");
    }
}

/// The sharded network engine's core guarantee: a fault-injected
/// (drop + dup + delay) gossip run produces bit-identical estimates,
/// metrics and traffic for every shard count in {1, 2, 8} and every
/// thread count in {1, 4} — sequential and parallel stepping included.
#[test]
fn sharded_network_is_identical_across_shard_and_thread_counts() {
    let values: Vec<f64> = (0..96).map(|i| ((i as f64) * 0.73).sin() * 10.0).collect();
    let faults = FaultConfig::new(0.05, 0.1, 3).unwrap().with_max_delay(2);
    let run = |shards: usize, threads: usize, parallel: bool| -> (Vec<u64>, Metrics) {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let nodes: Vec<PushSumNode> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| PushSumNode::new(v, 40, 17, i))
                .collect();
            let mut net = Network::with_faults(nodes, faults).with_shards(shards);
            if parallel {
                net.run_until_quiescent_parallel(100).unwrap();
            } else {
                net.run_until_quiescent(100).unwrap();
            }
            let estimates = net.nodes().iter().map(|n| n.estimate().to_bits()).collect();
            (estimates, *net.metrics())
        })
    };
    let reference = run(1, 1, false);
    assert!(reference.1.messages_dropped > 0, "no drops drawn");
    assert!(reference.1.messages_duplicated > 0, "no dups drawn");
    assert!(reference.1.messages_delayed > 0, "no delays drawn");
    for shards in [1usize, 2, 8] {
        for threads in [1usize, 4] {
            for parallel in [false, true] {
                assert_eq!(
                    run(shards, threads, parallel),
                    reference,
                    "shards={shards} threads={threads} parallel={parallel}"
                );
            }
        }
    }
}

/// The sharded engine on a sparse topology with per-link overrides is
/// equally shard- and thread-count independent.
#[test]
fn sharded_topology_runs_are_identical() {
    let topology = |n: usize| {
        Topology::random_regular(n, 4, 11).with_link_faults(
            NodeId(0),
            NodeId(1),
            noisy_pooled_data::netsim::LinkFaults {
                drop_prob: 1.0,
                dup_prob: 0.0,
                max_delay: 0,
            },
        )
    };
    let run = |shards: usize, threads: usize| -> (Vec<u64>, Metrics) {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let n = 64;
            let nodes: Vec<PushSumNode> = (0..n)
                .map(|i| PushSumNode::new(i as f64, 30, 5, i))
                .collect();
            let mut net = Network::with_link_model(
                nodes,
                topology(n),
                FaultConfig::new(0.02, 0.05, 23).unwrap().with_max_delay(1),
            )
            .with_shards(shards);
            net.run_until_quiescent_parallel(80).unwrap();
            (
                net.nodes().iter().map(|n| n.estimate().to_bits()).collect(),
                *net.metrics(),
            )
        })
    };
    let reference = run(1, 1);
    for shards in [2usize, 8] {
        for threads in [1usize, 4] {
            assert_eq!(run(shards, threads), reference, "shards={shards}");
        }
    }
}

/// Agent-level chaos rides on the same pure per-identity hashes as the
/// message faults: a gossip run under fail-stop crashes (with restarts),
/// stragglers and payload corruption is bit-identical — estimates and
/// every fault counter — for every shard count in {1, 2, 8} and every
/// thread count in {1, 4}.
#[test]
fn chaos_network_is_identical_across_shard_and_thread_counts() {
    use noisy_pooled_data::netsim::gossip::PushSumMsg;
    use noisy_pooled_data::netsim::NodeFaultPlan;

    fn garble(msg: &mut PushSumMsg, entropy: u64) {
        msg.s += ((entropy % 1024) as f64 - 512.0) * 0.01;
    }

    let values: Vec<f64> = (0..80).map(|i| ((i as f64) * 1.31).cos() * 8.0).collect();
    let faults = FaultConfig::new(0.05, 0.05, 7).unwrap().with_max_delay(2);
    let plan = NodeFaultPlan::new(0xC4A0)
        .with_crashes(0.2, (2, 8))
        .unwrap()
        .with_restarts(3)
        .with_stragglers(0.1, 2)
        .unwrap()
        .with_corruption(0.15, 0.5)
        .unwrap();
    let run = |shards: usize, threads: usize| -> (Vec<u64>, Metrics) {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let nodes: Vec<PushSumNode> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| PushSumNode::new(v, 30, 19, i))
                .collect();
            let mut net = Network::with_faults(nodes, faults)
                .with_node_faults(plan)
                .with_corruptor(garble)
                .with_shards(shards);
            net.run_until_quiescent_parallel(120).unwrap();
            let estimates = net.nodes().iter().map(|n| n.estimate().to_bits()).collect();
            (estimates, *net.metrics())
        })
    };
    let reference = run(1, 1);
    assert!(reference.1.node_crashes > 0, "no crashes drawn");
    assert!(reference.1.node_restarts > 0, "no restarts drawn");
    assert!(reference.1.messages_corrupted > 0, "no corruption drawn");
    assert!(
        reference.1.messages_lost_to_crash > 0,
        "no messages lost to crashed nodes"
    );
    for shards in [1usize, 2, 8] {
        for threads in [1usize, 4] {
            assert_eq!(
                run(shards, threads),
                reference,
                "shards={shards} threads={threads}"
            );
        }
    }
}

/// The full chaos protocol entry point — crashes with restarts plus
/// payload corruption with winsorized folds — obeys the same contract:
/// the whole degraded outcome (quorum, liveness, counters, estimate) is
/// identical at any thread count.
#[test]
fn chaos_protocol_is_identical_across_thread_counts() {
    use noisy_pooled_data::core::distributed::{ProtocolOptions, SelectionStrategy};
    use noisy_pooled_data::netsim::NodeFaultPlan;

    let run = sample_run(128, 3, 100, NoiseModel::z_channel(0.1), 33);
    let plan = NodeFaultPlan::new(0x0DDB)
        .with_crashes(0.15, (1, 8))
        .unwrap()
        .with_restarts(4)
        .with_corruption(0.05, 1.0)
        .unwrap();
    let options = ProtocolOptions {
        strategy: SelectionStrategy::gossip(),
        node_faults: Some(plan),
        winsorize: true,
        ..ProtocolOptions::default()
    };
    let pool1 = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let reference = pool1.install(|| distributed::run_protocol_chaos(&run, options).unwrap());
    assert!(reference.metrics.node_crashes > 0, "no crashes drawn");
    assert!(
        reference.metrics.messages_corrupted > 0,
        "no corruption drawn"
    );
    assert_eq!(reference.agent_liveness.len(), 128);
    assert_eq!(
        reference.achieved_quorum,
        128 - reference.missing_assignments
    );
    for threads in [2usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        assert_eq!(
            pool.install(|| distributed::run_protocol_chaos(&run, options).unwrap()),
            reference,
            "threads={threads}"
        );
    }
}

/// The distributed protocol (which picks its shard count from the ambient
/// rayon pool) returns identical outcomes at any thread count, with and
/// without fault injection.
#[test]
fn distributed_protocol_is_identical_across_thread_counts() {
    let run = sample_run(128, 3, 100, NoiseModel::z_channel(0.1), 31);
    let faults = FaultConfig::new(0.02, 0.05, 9).unwrap().with_max_delay(1);
    let pool1 = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let clean_ref = pool1.install(|| distributed::run_protocol(&run).unwrap());
    let faulty_ref = pool1.install(|| distributed::run_protocol_with_faults(&run, faults).unwrap());
    for threads in [2usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        assert_eq!(
            pool.install(|| distributed::run_protocol(&run).unwrap()),
            clean_ref,
            "threads={threads}"
        );
        assert_eq!(
            pool.install(|| distributed::run_protocol_with_faults(&run, faults).unwrap()),
            faulty_ref,
            "threads={threads} (faulty)"
        );
    }
}

/// The gossip selection strategy (adaptive phases, embedded TopK cores)
/// obeys the same contract: identical outcomes — including the per-phase
/// accounting — at any thread count, clean and faulted.
#[test]
fn gossip_strategy_protocol_is_identical_across_thread_counts() {
    use noisy_pooled_data::core::distributed::SelectionStrategy;
    let run = sample_run(128, 3, 100, NoiseModel::z_channel(0.1), 32);
    let faults = FaultConfig::new(0.02, 0.05, 11).unwrap().with_max_delay(2);
    let gossip = |faults: Option<FaultConfig>| {
        distributed::run_protocol_configured(&run, SelectionStrategy::gossip(), faults).unwrap()
    };
    let pool1 = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let clean_ref = pool1.install(|| gossip(None));
    let faulty_ref = pool1.install(|| gossip(Some(faults)));
    assert!(clean_ref.probes > 0);
    for threads in [2usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        assert_eq!(
            pool.install(|| gossip(None)),
            clean_ref,
            "threads={threads}"
        );
        assert_eq!(
            pool.install(|| gossip(Some(faults))),
            faulty_ref,
            "threads={threads} (faulty)"
        );
    }
}

/// The categorical layer's d = 2 bit-compatibility contract, end to end:
/// a two-category instance consumes the *same* RNG stream as the binary
/// pipeline it generalizes, so truth, pooling graph and every measurement
/// are bit-identical — for every noise model.
#[test]
fn categorical_d2_pipeline_matches_binary_bit_for_bit() {
    use noisy_pooled_data::core::CategoricalInstance;
    for (seed, noise) in [
        (1u64, NoiseModel::Noiseless),
        (2, NoiseModel::z_channel(0.1)),
        (3, NoiseModel::channel(0.08, 0.03)),
        (4, NoiseModel::gaussian(1.5)),
    ] {
        let cat = CategoricalInstance::new(500, vec![60], 300)
            .expect("valid categorical instance")
            .with_noise(noise);
        let bin = cat.to_binary().expect("d = 2 maps onto a binary instance");
        let cat_run = cat.sample(&mut StdRng::seed_from_u64(seed));
        let bin_run = bin.sample(&mut StdRng::seed_from_u64(seed));
        assert_eq!(
            &cat_run.ground_truth().to_binary(),
            bin_run.ground_truth(),
            "noise={noise}: ground truth diverged"
        );
        assert_eq!(
            cat_run.graph(),
            bin_run.graph(),
            "noise={noise}: pooling graph diverged"
        );
        for (j, (row, &y)) in cat_run.results().iter().zip(bin_run.results()).enumerate() {
            assert_eq!(
                row[1].to_bits(),
                y.to_bits(),
                "noise={noise}: measurement {j} diverged"
            );
        }
    }
}

/// Matrix-AMP rides the same parallel matvec substrate as binary AMP, so
/// it must honor the same contract: bit-identical output at any ambient
/// thread count.
#[test]
fn matrix_amp_decode_is_identical_across_thread_counts() {
    use noisy_pooled_data::amp::matrix_amp::run_matrix_amp;
    use noisy_pooled_data::amp::{prepare_categorical, MatrixAmpConfig};
    use noisy_pooled_data::core::CategoricalInstance;

    let run = CategoricalInstance::new(2_000, vec![200, 150], 900)
        .expect("valid categorical instance")
        .with_noise(NoiseModel::gaussian(1.0))
        .sample(&mut StdRng::seed_from_u64(55));
    let config = MatrixAmpConfig::default();
    let decode = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| run_matrix_amp(&prepare_categorical(&run), &config))
    };
    let reference = decode(1);
    for threads in [2usize, 4, 8] {
        let got = decode(threads);
        assert_eq!(got.labels, reference.labels, "threads={threads}: labels");
        assert_eq!(
            got.iterations, reference.iterations,
            "threads={threads}: iteration count"
        );
        assert_eq!(
            (got.estimate.rows(), got.estimate.cols()),
            (reference.estimate.rows(), reference.estimate.cols())
        );
        for i in 0..reference.estimate.rows() {
            for c in 0..reference.estimate.cols() {
                assert_eq!(
                    got.estimate.get(i, c).to_bits(),
                    reference.estimate.get(i, c).to_bits(),
                    "threads={threads}: estimate ({i}, {c})"
                );
            }
        }
    }
}

#[test]
fn amp_decode_is_identical_across_thread_counts() {
    // AMP's matvecs parallelize across rows once the instance clears the
    // flop threshold; the decode must still be bit-identical.
    let run = sample_run(2_000, 7, 900, NoiseModel::z_channel(0.1), 77);
    let pool1 = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let reference = pool1.install(|| AmpDecoder::default().decode_with_trace(&run));
    for threads in [2usize, 4, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let got = pool.install(|| AmpDecoder::default().decode_with_trace(&run));
        assert_eq!(got.0, reference.0, "threads={threads}");
        assert_eq!(got.1, reference.1, "threads={threads}");
    }
}

/// Temporal workloads are a pure function of `(model, n, config, seed)`:
/// the streaming SIR tracker and the per-epoch distributed-protocol
/// tracker must be bit-identical at any ambient thread count (the protocol
/// additionally picks its shard count from the pool, which the engine
/// guarantees is invisible).
#[test]
fn temporal_workload_tracking_is_identical_across_thread_counts() {
    use noisy_pooled_data::core::distributed::SelectionStrategy;
    use noisy_pooled_data::core::DesignSpec;
    use noisy_pooled_data::workloads::{track_greedy, track_protocol, SirDynamics, TrackingConfig};

    let model = SirDynamics::catalog();
    let cfg = TrackingConfig {
        gamma: 64,
        queries_per_epoch: 150,
        epochs: 4,
        noise: NoiseModel::z_channel(0.1),
        design: DesignSpec::Iid,
    };
    let run_both = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            (
                track_greedy(&model, 128, &cfg, 13),
                track_protocol(&model, 128, &cfg, SelectionStrategy::gossip(), 13),
            )
        })
    };
    let reference = run_both(1);
    assert_eq!(reference.0.len(), 4);
    assert!(
        reference.1.iter().any(|r| r.messages > 0),
        "degenerate reference: protocol never ran"
    );
    for threads in [2usize, 4] {
        assert_eq!(run_both(threads), reference, "threads={threads}");
    }
}

/// Structured population sampling itself is thread-count independent when
/// fanned out through the Monte-Carlo runner (one seeded stream per
/// trial, order-preserving map).
#[test]
fn workload_sampling_grid_is_identical_across_thread_counts() {
    use noisy_pooled_data::workloads::WorkloadSpec;
    let specs = [
        WorkloadSpec::Community { theta: 0.5 },
        WorkloadSpec::Households { theta: 0.5 },
        WorkloadSpec::Hubs { theta: 0.5 },
        WorkloadSpec::Sir,
    ];
    let seeds: Vec<u64> = (0..16).map(|i| mix_seed(0x3070, i)).collect();
    let sample_all = |threads: usize| -> Vec<Vec<u32>> {
        runner::parallel_map(&seeds, threads, |&seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let spec = specs[(seed % specs.len() as u64) as usize];
            spec.model().sample(300, &mut rng).ones().to_vec()
        })
    };
    let reference = sample_all(1);
    for threads in [2usize, 4, 8] {
        assert_eq!(sample_all(threads), reference, "threads={threads}");
    }
}

/// Contract rule 11: the deterministic telemetry plane. The JSONL export
/// of a chaos protocol run — netsim round events, per-node inbox
/// histograms, phase summaries, the full counter dump — is
/// **byte-identical** across shard counts {1, 8} × thread counts {1, 4},
/// exactly like the outcome it observes.
#[test]
fn protocol_telemetry_stream_is_identical_across_shard_and_thread_counts() {
    use noisy_pooled_data::core::distributed::{ProtocolOptions, SelectionStrategy};
    use noisy_pooled_data::netsim::NodeFaultPlan;
    use noisy_pooled_data::telemetry::TelemetrySink;

    let run = sample_run(128, 3, 100, NoiseModel::z_channel(0.1), 34);
    let plan = NodeFaultPlan::new(0x7E1E)
        .with_crashes(0.10, (1, 6))
        .unwrap()
        .with_corruption(0.05, 1.0)
        .unwrap();
    let trace = |shards: usize, threads: usize| -> (String, distributed::ProtocolOutcome) {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let sink = TelemetrySink::recording();
            let options = ProtocolOptions {
                strategy: SelectionStrategy::gossip(),
                node_faults: Some(plan),
                winsorize: true,
                shards: Some(shards),
                ..ProtocolOptions::default()
            };
            let outcome = distributed::run_protocol_chaos_traced(&run, options, &sink).unwrap();
            (sink.export_jsonl().unwrap(), outcome)
        })
    };
    let (reference, ref_outcome) = trace(1, 1);
    assert!(
        reference.lines().count() > 20,
        "trace is degenerate:\n{reference}"
    );
    assert!(reference.contains("\"name\":\"phase\""), "{reference}");
    assert!(ref_outcome.metrics.node_crashes > 0, "no chaos drawn");
    for shards in [1usize, 8] {
        for threads in [1usize, 4] {
            let (stream, outcome) = trace(shards, threads);
            assert_eq!(outcome, ref_outcome, "shards={shards} threads={threads}");
            assert_eq!(stream, reference, "shards={shards} threads={threads}");
        }
    }
}

/// The AMP decoder's telemetry — one `amp.iter` event per iteration with
/// the SE statistic and update delta — is byte-identical across thread
/// counts (the events are emitted from the serial iteration boundary).
#[test]
fn amp_telemetry_stream_is_identical_across_thread_counts() {
    use noisy_pooled_data::telemetry::TelemetrySink;

    let run = sample_run(600, 5, 400, NoiseModel::gaussian(1.0), 35);
    let trace = |threads: usize| -> String {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let sink = TelemetrySink::recording();
            let mut ws = AmpWorkspace::new();
            ws.set_telemetry(sink.clone());
            let _ = AmpDecoder::default().decode_with_trace_using(&run, &mut ws);
            sink.export_jsonl().unwrap()
        })
    };
    let reference = trace(1);
    assert!(
        reference.contains("\"name\":\"amp.iter\""),
        "no iteration events:\n{reference}"
    );
    for threads in [2usize, 4] {
        assert_eq!(trace(threads), reference, "threads={threads}");
    }
}
