//! Simulation results must be consistent with Theorems 1 and 2.

use noisy_pooled_data::core::{IncrementalSim, NoiseModel};
use noisy_pooled_data::theory::{bounds, degrees, GAMMA};

fn median_required(n: usize, k: usize, noise: NoiseModel, trials: u64, budget: usize) -> f64 {
    let mut samples: Vec<f64> = (0..trials)
        .map(|seed| {
            let mut sim = IncrementalSim::new(n, k, noise, 5_000 + seed);
            sim.required_queries(budget)
                .map(|r| r.queries as f64)
                .unwrap_or(f64::INFINITY)
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

#[test]
fn empirical_threshold_is_below_theorem1_z_channel() {
    // Theorem 1 is an achievability bound: at its query budget the
    // algorithm succeeds w.h.p., so the empirical median threshold must sit
    // at or below it (p = 0.1 is the regime where the paper reports clean
    // agreement).
    let n = 1_000;
    let theta = 0.25;
    let k = (n as f64).powf(theta).round() as usize;
    let bound = bounds::z_channel_sublinear_queries(n as f64, theta, 0.1, 0.05);
    // 25 trials: the 5-trial median is too noisy an estimator (the per-trial
    // IQR spans the bound) and flips sign depending on the RNG stream.
    let median = median_required(n, k, NoiseModel::z_channel(0.1), 25, 5_000);
    assert!(
        median <= bound,
        "median {median} exceeds Theorem-1 bound {bound}"
    );
}

#[test]
fn empirical_threshold_is_below_theorem1_general_channel() {
    let n = 316;
    let k = 4; // ≈ 316^0.25
    let q = 0.05;
    let bound = bounds::noisy_channel_sublinear_queries(n as f64, 0.25, q, q, 0.05);
    let median = median_required(n, k, NoiseModel::channel(q, q), 5, 20_000);
    assert!(
        median <= bound * 1.1,
        "median {median} far above combined bound {bound}"
    );
}

#[test]
fn mild_gaussian_noise_costs_only_a_constant_factor() {
    // Theorem 2: for λ² = o(m/ln n) the *asymptotic* budget equals the
    // noiseless bound. At finite n the noisy curve sits slightly above the
    // noiseless one (exactly as in the paper's Figure 3); check that the
    // noiseless median is within the bound and the λ = 1 median within a
    // modest constant factor of it.
    let n = 1_000;
    let k = 6;
    let bound = bounds::noisy_query_sublinear_queries(n as f64, 0.25, 0.05);
    let clean = median_required(n, k, NoiseModel::Noiseless, 5, 5_000);
    let noisy = median_required(n, k, NoiseModel::gaussian(1.0), 5, 5_000);
    assert!(
        clean <= bound,
        "noiseless median {clean} exceeds bound {bound}"
    );
    assert!(noisy >= clean, "λ=1 should not beat noiseless");
    assert!(
        noisy <= 2.0 * bound,
        "λ=1 median {noisy} far above bound {bound}"
    );
}

#[test]
fn theorem2_failure_regime_fails() {
    // λ² = Ω(m): with λ = 40 and budget 800 (λ² = 1600 ≥ m), the algorithm
    // must fail with positive probability — empirically it fails always.
    let mut failures = 0;
    for seed in 0..4u64 {
        let mut sim = IncrementalSim::new(400, 4, NoiseModel::gaussian(40.0), 6_000 + seed);
        if sim.required_queries(800).is_err() {
            failures += 1;
        }
    }
    assert!(failures >= 3, "only {failures}/4 failed under λ=40");
}

#[test]
fn noise_ordering_matches_theory() {
    // Bounds are monotone in p; so must be the measured medians.
    let n = 562;
    let k = 5;
    let m_low = median_required(n, k, NoiseModel::z_channel(0.1), 5, 20_000);
    let m_high = median_required(n, k, NoiseModel::z_channel(0.4), 5, 20_000);
    assert!(m_low < m_high, "p=0.1 {m_low} !< p=0.4 {m_high}");
    let b_low = bounds::z_channel_sublinear_queries(n as f64, 0.25, 0.1, 0.05);
    let b_high = bounds::z_channel_sublinear_queries(n as f64, 0.25, 0.4, 0.05);
    assert!(b_low < b_high);
}

#[test]
fn degree_expectations_match_simulation() {
    use noisy_pooled_data::core::PoolingGraph;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let (n, m) = (500usize, 400usize);
    let graph = PoolingGraph::sample(n, m, n / 2, &mut rng);
    let multi_mean = graph.multi_degrees().iter().sum::<u64>() as f64 / n as f64;
    let distinct_mean = graph
        .distinct_degrees()
        .iter()
        .map(|&d| d as f64)
        .sum::<f64>()
        / n as f64;
    assert!((multi_mean - degrees::expected_multi_degree(m as f64)).abs() < 1e-9);
    let want_distinct = degrees::expected_distinct_degree(m as f64);
    assert!(
        (distinct_mean - want_distinct).abs() / want_distinct < 0.02,
        "distinct mean {distinct_mean} vs γm = {want_distinct}"
    );
    assert!((GAMMA - 0.39346934).abs() < 1e-7);
}
