//! The distributed protocol is bit-identical to the sequential decoder —
//! the equivalence claimed in Section III of the paper.

use noisy_pooled_data::core::{distributed, Decoder, GreedyDecoder, Instance, NoiseModel, Regime};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn check_equivalence(n: usize, k: usize, m: usize, noise: NoiseModel, seed: u64) {
    let run = Instance::builder(n)
        .k(k)
        .queries(m)
        .noise(noise)
        .build()
        .expect("valid instance")
        .sample(&mut StdRng::seed_from_u64(seed));
    let outcome = distributed::run_protocol(&run).expect("protocol quiesces");
    let sequential = GreedyDecoder::new().decode(&run);
    assert_eq!(
        outcome.estimate, sequential,
        "n={n} k={k} m={m} noise={noise} seed={seed}"
    );
    assert_eq!(outcome.missing_assignments, 0);
}

#[test]
fn equivalence_across_noise_models() {
    for (seed, noise) in [
        NoiseModel::Noiseless,
        NoiseModel::z_channel(0.3),
        NoiseModel::channel(0.2, 0.1),
        NoiseModel::gaussian(1.5),
    ]
    .into_iter()
    .enumerate()
    {
        check_equivalence(96, 3, 60, noise, seed as u64);
    }
}

#[test]
fn equivalence_across_population_sizes() {
    // Deliberately awkward sizes: primes, powers of two, one-off-powers.
    for n in [7usize, 16, 31, 64, 65, 127, 200] {
        check_equivalence(n, 2.min(n), 40, NoiseModel::z_channel(0.1), n as u64);
    }
}

#[test]
fn equivalence_in_linear_regime() {
    let run = Instance::builder(120)
        .regime(Regime::linear(0.1))
        .queries(150)
        .noise(NoiseModel::z_channel(0.2))
        .build()
        .unwrap()
        .sample(&mut StdRng::seed_from_u64(77));
    let outcome = distributed::run_protocol(&run).unwrap();
    assert_eq!(outcome.estimate, GreedyDecoder::new().decode(&run));
}

#[test]
fn round_complexity_is_logarithmic_squared() {
    // Batcher depth t(t+1)/2 for n = 2^t, plus 3 protocol rounds.
    let run = Instance::builder(256)
        .k(2)
        .queries(30)
        .build()
        .unwrap()
        .sample(&mut StdRng::seed_from_u64(5));
    let outcome = distributed::run_protocol(&run).unwrap();
    assert_eq!(outcome.sort_depth, 36); // t = 8: 8·9/2
    assert_eq!(outcome.rounds, 39);
}

#[test]
fn communication_grows_with_queries_not_rounds() {
    // Doubling m roughly doubles measurement messages but leaves the
    // sorting traffic unchanged.
    let mk = |m: usize| {
        let run = Instance::builder(128)
            .k(2)
            .queries(m)
            .build()
            .unwrap()
            .sample(&mut StdRng::seed_from_u64(9));
        distributed::run_protocol(&run).unwrap()
    };
    let small = mk(20);
    let large = mk(40);
    assert_eq!(small.rounds, large.rounds);
    let delta = large.metrics.messages_sent - small.metrics.messages_sent;
    // ~20 extra queries × ~γ·128 ≈ 50 distinct members each.
    assert!(delta > 600, "delta={delta}");
    assert!(delta < 1_600, "delta={delta}");
}
