//! The facade's public API surface: re-exports, trait bounds and common
//! trait implementations that downstream users rely on.

use noisy_pooled_data::adaptive::{Dorfman, IndividualTesting, RecursiveSplitting, Transcript};
use noisy_pooled_data::amp::DenoiserKind;
use noisy_pooled_data::core::{
    Centering, Confusion, Estimate, GreedyDecoder, Instance, InstanceError, NoiseModel, Regime,
    Sampling,
};
use noisy_pooled_data::decoders::{
    BpConfig, BpDecoder, FistaConfig, FistaDecoder, LmmseDecoder, McmcConfig, McmcDecoder,
    MlDecoder, MlError,
};
use noisy_pooled_data::netsim::NodeTraffic;
use noisy_pooled_data::numerics::stats::{BoxPlot, Summary, Welford};
use noisy_pooled_data::sortnet::SortingNetwork;

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn core_types_are_send_and_sync() {
    assert_send_sync::<Instance>();
    assert_send_sync::<NoiseModel>();
    assert_send_sync::<Estimate>();
    assert_send_sync::<GreedyDecoder>();
    assert_send_sync::<SortingNetwork>();
    assert_send_sync::<Welford>();
    assert_send_sync::<BpDecoder>();
    assert_send_sync::<McmcDecoder>();
    assert_send_sync::<FistaDecoder>();
    assert_send_sync::<LmmseDecoder>();
    assert_send_sync::<MlDecoder>();
    assert_send_sync::<RecursiveSplitting>();
    assert_send_sync::<Dorfman>();
    assert_send_sync::<IndividualTesting>();
    assert_send_sync::<Transcript>();
}

#[test]
fn errors_implement_std_error() {
    fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
    assert_error::<InstanceError>();
    assert_error::<noisy_pooled_data::netsim::MaxRoundsExceeded>();
    assert_error::<noisy_pooled_data::core::incremental::BudgetExhausted>();
    assert_error::<MlError>();
    assert_error::<noisy_pooled_data::core::estimation::EstimationError>();
}

#[test]
fn key_types_serialize() {
    // serde support is part of the public contract (C-SERDE); verify the
    // bounds hold without pulling in a serialization format.
    fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
    assert_serde::<NoiseModel>();
    assert_serde::<Regime>();
    assert_serde::<Instance>();
    assert_serde::<BoxPlot>();
    assert_serde::<Summary>();
    assert_serde::<SortingNetwork>();
    assert_serde::<Sampling>();
    assert_serde::<Confusion>();
    assert_serde::<DenoiserKind>();
    assert_serde::<NodeTraffic>();
    assert_serde::<noisy_pooled_data::core::estimation::ChannelEstimate>();
    assert_serde::<BpConfig>();
    assert_serde::<McmcConfig>();
    assert_serde::<FistaConfig>();
}

#[test]
fn decoder_trait_objects_cover_both_families() {
    // Heterogeneous collections through the facade: non-adaptive decoders
    // and adaptive strategies both box cleanly.
    use noisy_pooled_data::adaptive::Strategy;
    use noisy_pooled_data::core::Decoder;
    let decoders: Vec<Box<dyn Decoder>> = noisy_pooled_data::decoders::standard_zoo();
    assert_eq!(decoders.len(), 4);
    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(RecursiveSplitting::new(1)),
        Box::new(Dorfman::new(4, 1)),
        Box::new(IndividualTesting::new(1)),
    ];
    let names: Vec<&str> = strategies.iter().map(|s| s.name()).collect();
    assert_eq!(names.len(), 3);
}

#[test]
fn display_implementations_are_informative() {
    assert_eq!(NoiseModel::z_channel(0.25).to_string(), "z-channel(p=0.25)");
    assert_eq!(Regime::sublinear(0.5).to_string(), "sublinear(θ=0.5)");
    let err = Instance::builder(1).k(1).queries(1).build().unwrap_err();
    assert!(err.to_string().contains("at least 2"));
}

#[test]
fn debug_implementations_are_nonempty() {
    assert!(!format!("{:?}", GreedyDecoder::new()).is_empty());
    assert!(!format!("{:?}", Centering::NoiseAware).is_empty());
    assert!(!format!("{:?}", NoiseModel::Noiseless).is_empty());
}

#[test]
fn facade_reexports_are_usable_together() {
    use rand::SeedableRng;
    // One expression touching five member crates through the facade.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let run = Instance::builder(100)
        .k(2)
        .queries(120)
        .build()
        .unwrap()
        .sample(&mut rng);
    let scores = GreedyDecoder::new().scores(&run);
    let summary = Summary::from_slice(&scores);
    let bound =
        noisy_pooled_data::theory::bounds::z_channel_sublinear_queries(100.0, 0.25, 0.0, 0.05);
    assert!(summary.count == 100 && bound > 0.0);
}
