//! Cross-layer behaviour of the pluggable pooling-design layer: every
//! structured design must flow through instance sampling, the sequential
//! decoders, and the distributed protocol unchanged.

use noisy_pooled_data::amp::AmpDecoder;
use noisy_pooled_data::core::{
    distributed, exact_recovery, Decoder, DesignSpec, DoublyRegularDesign, GreedyDecoder, Instance,
    NoiseModel, PoolingDesign, PoolingGraph, SparseColumnDesign, TwoStepDecoder,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn instance(design: DesignSpec, n: usize, m: usize, gamma: usize) -> Instance {
    Instance::builder(n)
        .k(4)
        .queries(m)
        .query_size(gamma)
        .noise(NoiseModel::z_channel(0.1))
        .design(design)
        .build()
        .expect("valid configuration")
}

#[test]
fn instance_sampling_respects_the_design() {
    // The design threaded through `InstanceBuilder::design` is the design
    // the sampled run actually uses.
    let run =
        instance(DesignSpec::DoublyRegular, 120, 40, 30).sample(&mut StdRng::seed_from_u64(1));
    let degrees = run.graph().multi_degrees();
    assert!(
        degrees.iter().all(|&d| d == degrees[0]),
        "doubly regular run must be exactly agent-regular"
    );
    assert_eq!(run.instance().design(), DesignSpec::DoublyRegular);

    let run = instance(DesignSpec::SparseColumn, 120, 40, 15).sample(&mut StdRng::seed_from_u64(2));
    let degrees = run.graph().multi_degrees();
    assert!(degrees.iter().all(|&d| d == degrees[0]));
}

#[test]
fn doubly_regular_runs_decode_and_match_the_distributed_protocol() {
    // Ragged pool sizes (±1 balance) must decode exactly, and the
    // distributed protocol — which learns per-query slot counts from the
    // measurement messages — must agree with the sequential decoder
    // bit-for-bit.
    for seed in 0..3 {
        let run = instance(DesignSpec::DoublyRegular, 150, 180, 75)
            .sample(&mut StdRng::seed_from_u64(seed));
        let sequential = GreedyDecoder::new().decode(&run);
        assert!(
            exact_recovery(&sequential, run.ground_truth()),
            "seed={seed}: doubly regular design failed a generous budget"
        );
        let outcome = distributed::run_protocol(&run).expect("quiesces");
        assert_eq!(outcome.estimate, sequential, "seed={seed}");
    }
}

#[test]
fn sparse_column_design_recovers_in_the_sparse_regime() {
    // Γ = n/8 with exact column weight: the regime the constant-column
    // literature targets.
    for seed in 0..3 {
        let run = instance(DesignSpec::SparseColumn, 400, 600, 50)
            .sample(&mut StdRng::seed_from_u64(10 + seed));
        let est = GreedyDecoder::new().decode(&run);
        assert!(
            exact_recovery(&est, run.ground_truth()),
            "seed={}",
            10 + seed
        );
    }
}

#[test]
fn two_step_and_amp_accept_ragged_designs() {
    // The per-query slot-count paths (two-step unbiasing, AMP's CSR
    // conversion) must handle pools whose sizes differ.
    let run =
        instance(DesignSpec::DoublyRegular, 300, 400, 150).sample(&mut StdRng::seed_from_u64(21));
    let two_step = TwoStepDecoder::new().decode(&run);
    assert!(exact_recovery(&two_step, run.ground_truth()));
    let amp = AmpDecoder::default().decode(&run);
    assert!(exact_recovery(&amp, run.ground_truth()));
}

#[test]
fn estimation_uses_realized_query_sizes() {
    // On a ragged design the moment estimator divides by the realized mean
    // slot count; the Z-channel estimate must still land near truth.
    let run = Instance::builder(1_000)
        .k(6)
        .queries(500)
        .query_size(500)
        .noise(NoiseModel::z_channel(0.3))
        .design(DesignSpec::DoublyRegular)
        .build()
        .unwrap()
        .sample(&mut StdRng::seed_from_u64(5));
    let p_hat = noisy_pooled_data::core::estimation::estimate_z_channel(&run).unwrap();
    assert!((p_hat - 0.3).abs() < 0.05, "p_hat={p_hat}");
}

#[test]
fn batch_samplers_expose_trait_objects() {
    // The catalog is iterable as `dyn PoolingDesign`, and profiles agree
    // with realized structure (the contract the scenario registry uses).
    let designs: Vec<Box<dyn PoolingDesign>> =
        vec![Box::new(DoublyRegularDesign), Box::new(SparseColumnDesign)];
    for design in &designs {
        let mut rng = StdRng::seed_from_u64(7);
        let g = design.sample(64, 32, 16, &mut rng);
        let profile = design.profile(64, 32, 16);
        assert!(profile.agent_regular);
        let degrees = g.multi_degrees();
        assert!(degrees
            .iter()
            .all(|&d| d as f64 == profile.expected_agent_slots));
    }
}

#[test]
fn legacy_sampler_stream_is_unchanged_by_the_design_layer() {
    // `Instance::sample` with the default design must keep producing the
    // exact pre-refactor RNG stream (the regression the bit-identical
    // fingerprint in npd-core pins at the graph level; this pins the
    // instance level across the facade).
    let inst = Instance::builder(60).k(4).queries(15).build().unwrap();
    let run1 = inst.sample(&mut StdRng::seed_from_u64(9));
    let run2 = inst.sample(&mut StdRng::seed_from_u64(9));
    assert_eq!(run1, run2);
    // The instance draws ground truth first, then the graph, from one
    // stream; replay that prefix to align the generators.
    let mut rng = StdRng::seed_from_u64(9);
    let _truth = noisy_pooled_data::core::GroundTruth::sample(60, 4, &mut rng);
    let legacy = PoolingGraph::sample(60, 15, 30, &mut rng);
    assert_eq!(run1.graph(), &legacy);
}

#[test]
fn estimate_k_uses_realized_mean_slots_on_ragged_designs() {
    // Regression: the moment estimators must normalize by the *realized*
    // mean query size (`PoolingGraph::mean_query_slots`), not the nominal
    // Γ. Both ragged designs here round their agent/column degree to
    // `round(mΓ/n)`, so the realized mean pool size differs from Γ by
    // ~7%, enough to shift a Γ-normalized k̂ off the true k.
    use noisy_pooled_data::core::estimation;
    let cases = [
        // (design, n, m, Γ, k): mΓ/n lands on x.5–x.7 so rounding bites.
        (
            DesignSpec::SparseColumn,
            500usize,
            100usize,
            23usize,
            20usize,
        ),
        (DesignSpec::DoublyRegular, 300, 50, 28, 15),
    ];
    for (design, n, m, gamma, k) in cases {
        let inst = Instance::builder(n)
            .k(k)
            .queries(m)
            .query_size(gamma)
            .design(design)
            .build()
            .unwrap();
        for seed in 0..5u64 {
            let run = inst.sample(&mut StdRng::seed_from_u64(900 + seed));
            let realized = run.graph().mean_query_slots();
            assert!(
                (realized - gamma as f64).abs() > 0.04 * gamma as f64,
                "{design}: realized mean {realized} too close to nominal Γ={gamma} \
                 for the regression to bite"
            );
            // Noiseless: k̂ is a pure first-moment read-off, so the only
            // way to get it right is the realized normalizer.
            let k_hat = estimation::estimate_k(&run).expect("enough queries");
            assert_eq!(k_hat, k, "{design} seed={seed}: estimate_k drifted");
            // The Γ-nominal computation is measurably wrong on the same
            // data — this is what the realized normalizer fixes.
            let mean = run.results().iter().sum::<f64>() / m as f64;
            let nominal = (n as f64 * mean / gamma as f64).round() as usize;
            assert_ne!(
                nominal, k,
                "{design} seed={seed}: nominal-Γ estimate accidentally right; \
                 pick parameters where rounding bites harder"
            );
        }
    }
}

#[test]
fn decode_with_estimated_k_is_oracle_equivalent_on_ragged_designs() {
    // With k̂ = k (previous test), the blind decoder must reproduce the
    // oracle decoder's selection bit for bit on ragged designs.
    use noisy_pooled_data::core::estimation;
    for design in [DesignSpec::SparseColumn, DesignSpec::DoublyRegular] {
        let inst = Instance::builder(500)
            .k(20)
            .queries(100)
            .query_size(23)
            .design(design)
            .build()
            .unwrap();
        for seed in 0..3u64 {
            let run = inst.sample(&mut StdRng::seed_from_u64(950 + seed));
            let blind = estimation::decode_with_estimated_k(&run).expect("enough queries");
            let oracle = GreedyDecoder::new().decode(&run);
            assert_eq!(blind.ones(), oracle.ones(), "{design} seed={seed}");
        }
    }
}
