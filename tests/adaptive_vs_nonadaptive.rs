//! The adaptive/non-adaptive trade-off, end to end: adaptive splitting
//! crushes the pooled design on queries when measurements are exact, and
//! loses once per-slot channel noise forces repetition coding — the
//! quantified version of the paper's argument for the non-adaptive
//! setting.

use noisy_pooled_data::adaptive::{
    optimal_pool_size, recommended_repetitions, Dorfman, IndividualTesting, Oracle,
    RecursiveSplitting, Strategy,
};
use noisy_pooled_data::core::{GroundTruth, IncrementalSim, NoiseModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Median non-adaptive required queries over a few trials.
fn nonadaptive_median(n: usize, k: usize, noise: NoiseModel, trials: u64) -> f64 {
    let mut samples: Vec<f64> = (0..trials)
        .map(|seed| {
            let mut sim = IncrementalSim::new(n, k, noise, 4_000 + seed);
            sim.required_queries(100_000)
                .expect("separates within a generous budget")
                .queries as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

#[test]
fn splitting_wins_decisively_without_noise() {
    let (n, k) = (512, 5);
    let nonadaptive = nonadaptive_median(n, k, NoiseModel::Noiseless, 5);
    let mut adaptive_queries = Vec::new();
    for seed in 0..5 {
        let mut rng = StdRng::seed_from_u64(seed);
        let truth = GroundTruth::sample(n, k, &mut rng);
        let mut oracle = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng);
        let t = RecursiveSplitting::new(1).reconstruct(k, &mut oracle);
        assert!(t.is_exact(&truth));
        adaptive_queries.push(t.queries as f64);
    }
    let adaptive = adaptive_queries[2];
    assert!(
        adaptive * 2.0 < nonadaptive,
        "splitting ({adaptive}) should need far fewer queries than the \
         non-adaptive design ({nonadaptive})"
    );
}

#[test]
fn channel_noise_reverses_the_ranking() {
    // Per-slot flips scale the repetition factor with the query size, and
    // the adaptive advantage evaporates.
    let (n, k) = (256, 4);
    let noise = NoiseModel::z_channel(0.1);
    let nonadaptive = nonadaptive_median(n, k, noise, 5);

    let delta = 0.01 / n as f64;
    let reps = recommended_repetitions(&noise, n / 2, delta);
    let mut rng = StdRng::seed_from_u64(9);
    let truth = GroundTruth::sample(n, k, &mut rng);
    let mut oracle = Oracle::new(&truth, noise, &mut rng);
    let t = RecursiveSplitting::new(reps).reconstruct(k, &mut oracle);

    assert!(
        (t.queries as f64) > nonadaptive,
        "repetition-coded splitting ({}) should need more queries than the \
         non-adaptive design ({nonadaptive}) under channel noise",
        t.queries
    );
}

#[test]
fn all_strategies_recover_with_sized_repetitions() {
    let (n, k) = (128, 3);
    let noise = NoiseModel::gaussian(1.0);
    let delta = 0.005 / n as f64;
    let strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(RecursiveSplitting::new(recommended_repetitions(
            &noise,
            n / 2,
            delta,
        ))),
        Box::new(Dorfman::new(
            optimal_pool_size(n, k),
            recommended_repetitions(&noise, optimal_pool_size(n, k), delta),
        )),
        Box::new(IndividualTesting::new(recommended_repetitions(
            &noise, 1, delta,
        ))),
    ];
    for strategy in &strategies {
        let mut exact = 0;
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let truth = GroundTruth::sample(n, k, &mut rng);
            let mut oracle = Oracle::new(&truth, noise, &mut rng);
            if strategy.reconstruct(k, &mut oracle).is_exact(&truth) {
                exact += 1;
            }
        }
        assert!(
            exact >= 4,
            "{} recovered only {exact}/5 with sized repetitions",
            strategy.name()
        );
    }
}

#[test]
fn round_hierarchy_matches_design() {
    // individual (1 round) < dorfman (2) < splitting (≈ log₂ n) — the
    // other axis of the trade-off, which the paper's setting optimizes.
    let (n, k) = (256, 4);
    let mut rng = StdRng::seed_from_u64(17);
    let truth = GroundTruth::sample(n, k, &mut rng);

    let mut o1 = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng);
    let individual = IndividualTesting::new(1).reconstruct(k, &mut o1);
    let mut rng2 = StdRng::seed_from_u64(18);
    let mut o2 = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng2);
    let dorfman = Dorfman::new(optimal_pool_size(n, k), 1).reconstruct(k, &mut o2);
    let mut rng3 = StdRng::seed_from_u64(19);
    let mut o3 = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng3);
    let splitting = RecursiveSplitting::new(1).reconstruct(k, &mut o3);

    assert_eq!(individual.rounds, 1);
    assert!(dorfman.rounds <= 2);
    assert!(splitting.rounds > dorfman.rounds);
    assert!(splitting.rounds <= 8, "⌈log₂ 256⌉ = 8 levels at most");
    // And the query ordering is the reverse of the round ordering.
    assert!(splitting.queries < dorfman.queries);
    assert!(dorfman.queries < individual.queries);
}
