//! End-to-end reconstruction across all noise models, through the facade
//! crate's public API only.

use noisy_pooled_data::core::{
    exact_recovery, overlap, Decoder, GreedyDecoder, Instance, NoiseModel, Regime, TwoStepDecoder,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn recoverable(noise: NoiseModel, m: usize, seed: u64) -> bool {
    let instance = Instance::builder(600)
        .regime(Regime::sublinear(0.25))
        .queries(m)
        .noise(noise)
        .build()
        .expect("valid instance");
    let run = instance.sample(&mut StdRng::seed_from_u64(seed));
    exact_recovery(&GreedyDecoder::new().decode(&run), run.ground_truth())
}

#[test]
fn noiseless_recovers_with_generous_budget() {
    for seed in 0..5 {
        assert!(recoverable(NoiseModel::Noiseless, 400, seed), "seed={seed}");
    }
}

#[test]
fn z_channel_recovers_with_generous_budget() {
    for seed in 0..5 {
        assert!(
            recoverable(NoiseModel::z_channel(0.2), 700, 100 + seed),
            "seed={seed}"
        );
    }
}

#[test]
fn general_channel_recovers_with_generous_budget() {
    for seed in 0..5 {
        assert!(
            recoverable(NoiseModel::channel(0.1, 0.05), 2_500, 200 + seed),
            "seed={seed}"
        );
    }
}

#[test]
fn gaussian_noise_recovers_with_generous_budget() {
    for seed in 0..5 {
        assert!(
            recoverable(NoiseModel::gaussian(2.0), 900, 300 + seed),
            "seed={seed}"
        );
    }
}

#[test]
fn starved_budget_fails_but_overlap_is_partial() {
    // The Figure-7 phenomenon: below the exact-recovery threshold the
    // decoder still finds most one-agents.
    let instance = Instance::builder(1_000)
        .regime(Regime::sublinear(0.25))
        .queries(150)
        .noise(NoiseModel::z_channel(0.1))
        .build()
        .unwrap();
    let mut exact = 0;
    let mut overlap_sum = 0.0;
    let trials = 10;
    for seed in 0..trials {
        let run = instance.sample(&mut StdRng::seed_from_u64(400 + seed));
        let est = GreedyDecoder::new().decode(&run);
        if exact_recovery(&est, run.ground_truth()) {
            exact += 1;
        }
        overlap_sum += overlap(&est, run.ground_truth());
    }
    let mean_overlap = overlap_sum / trials as f64;
    assert!(
        mean_overlap > 0.55,
        "mean overlap {mean_overlap} unexpectedly low"
    );
    assert!(
        mean_overlap > exact as f64 / trials as f64,
        "overlap should exceed the exact-recovery rate below threshold"
    );
}

#[test]
fn runs_are_reproducible_across_decoders() {
    let instance = Instance::builder(300)
        .k(4)
        .queries(250)
        .noise(NoiseModel::z_channel(0.1))
        .build()
        .unwrap();
    let run1 = instance.sample(&mut StdRng::seed_from_u64(7));
    let run2 = instance.sample(&mut StdRng::seed_from_u64(7));
    assert_eq!(run1, run2);
    let decoders: Vec<Box<dyn Decoder>> = vec![
        Box::new(GreedyDecoder::new()),
        Box::new(TwoStepDecoder::new()),
    ];
    for d in &decoders {
        assert_eq!(
            d.decode(&run1),
            d.decode(&run2),
            "{} not deterministic",
            d.name()
        );
    }
}

#[test]
fn linear_regime_recovers() {
    // k = ζn with ζ = 0.05: 15 ones among 300 agents.
    let instance = Instance::builder(300)
        .regime(Regime::linear(0.05))
        .queries(700)
        .noise(NoiseModel::z_channel(0.1))
        .build()
        .unwrap();
    assert_eq!(instance.k(), 15);
    let run = instance.sample(&mut StdRng::seed_from_u64(11));
    let est = GreedyDecoder::new().decode(&run);
    assert!(exact_recovery(&est, run.ground_truth()));
}

#[test]
fn custom_query_size_still_works() {
    // Γ = n/4 instead of the default n/2.
    let instance = Instance::builder(400)
        .k(3)
        .queries(500)
        .query_size(100)
        .noise(NoiseModel::z_channel(0.1))
        .build()
        .unwrap();
    let run = instance.sample(&mut StdRng::seed_from_u64(13));
    let est = GreedyDecoder::new().decode(&run);
    assert!(exact_recovery(&est, run.ground_truth()));
}
