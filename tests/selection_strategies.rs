//! Cross-crate tie-rule agreement: the decentralized top-`k` selection —
//! standalone (`select_top_k`) and embedded in the distributed protocol
//! (`SelectionStrategy::GossipThreshold`) — must select the *identical*
//! bit vector as the sequential rank-`k` rule (`Estimate::from_scores`,
//! which `GreedyDecoder` ranks by), including on score vectors riddled
//! with exact ties and at the degenerate `k ∈ {0, n}`.

use noisy_pooled_data::core::distributed::{self, SelectionStrategy};
use noisy_pooled_data::core::{Decoder, Estimate, GreedyDecoder, Instance, NoiseModel};
use noisy_pooled_data::netsim::gossip::select_top_k;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The sequential reference: bits of `Estimate::from_scores`.
fn sequential_bits(scores: &[f64], k: usize) -> Vec<bool> {
    Estimate::from_scores(scores.to_vec(), k).bits().to_vec()
}

/// A small value pool with exact duplicates and near-ties one `f64` step
/// apart — the adversarial regime for a threshold bisection.
const TIE_POOL: [f64; 6] = [0.0, 1.0, 1.0, -3.5, 7.25, 1.0 + 1e-12];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Standalone selection on tie-riddled scores, any k.
    #[test]
    fn select_top_k_matches_from_scores_on_ties(
        idx in proptest::collection::vec(0u32..6, 1..48),
        k_frac in 0.0f64..=1.0,
    ) {
        let scores: Vec<f64> = idx.iter().map(|&i| TIE_POOL[i as usize]).collect();
        let n = scores.len();
        let k = (((n as f64) * k_frac).round() as usize).min(n);
        let report = select_top_k(&scores, k);
        prop_assert_eq!(report.selected, sequential_bits(&scores, k));
    }

    /// The degenerate ends k = 0 and k = n, on the same tie-riddled pool.
    #[test]
    fn select_top_k_matches_from_scores_at_degenerate_k(
        idx in proptest::collection::vec(0u32..6, 1..48),
    ) {
        let scores: Vec<f64> = idx.iter().map(|&i| TIE_POOL[i as usize]).collect();
        let n = scores.len();
        for k in [0, n] {
            let report = select_top_k(&scores, k);
            prop_assert_eq!(report.selected, sequential_bits(&scores, k));
        }
    }

    /// Continuous scores (generic distinctness), any k.
    #[test]
    fn select_top_k_matches_from_scores_on_continuous(
        scores in proptest::collection::vec(-1e6f64..1e6, 1..48),
        k_frac in 0.0f64..=1.0,
    ) {
        let n = scores.len();
        let k = (((n as f64) * k_frac).round() as usize).min(n);
        let report = select_top_k(&scores, k);
        prop_assert_eq!(report.selected, sequential_bits(&scores, k));
    }
}

proptest! {
    // Full protocol runs are heavier; fewer cases suffice — each one
    // exercises measurement, accumulation and the embedded selection.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end: the protocol with `GossipThreshold` equals the
    /// sequential decoder bit for bit. Noiseless measurements make the
    /// scores integer-valued and tie-heavy, which is exactly where the
    /// tie-break path must agree.
    #[test]
    fn gossip_protocol_matches_greedy_decoder(
        n in 4usize..64,
        m in 8usize..40,
        k_raw in 1usize..8,
        seed in 0u64..500,
    ) {
        let k = k_raw.min(n);
        let run = Instance::builder(n)
            .k(k)
            .queries(m)
            .noise(NoiseModel::Noiseless)
            .build()
            .unwrap()
            .sample(&mut StdRng::seed_from_u64(seed));
        let outcome = distributed::run_protocol_with(&run, SelectionStrategy::gossip())
            .expect("fault-free protocol quiesces");
        let sequential = GreedyDecoder::new().decode(&run);
        prop_assert_eq!(outcome.estimate, sequential);
        prop_assert_eq!(outcome.missing_assignments, 0);
        prop_assert_eq!(outcome.stale_messages, 0);
    }
}

/// Both strategies, the standalone API and the sequential rule agree on
/// one run — the four-way equivalence in a single place, including `k = n`
/// (every agent infected) which the builder permits.
#[test]
fn four_way_agreement_including_k_equals_n() {
    for (n, k, m, noise, seed) in [
        (40usize, 3usize, 60usize, NoiseModel::z_channel(0.2), 5u64),
        (33, 33, 40, NoiseModel::Noiseless, 6),
        (17, 1, 25, NoiseModel::gaussian(1.0), 7),
    ] {
        let run = Instance::builder(n)
            .k(k)
            .queries(m)
            .noise(noise)
            .build()
            .unwrap()
            .sample(&mut StdRng::seed_from_u64(seed));
        let decoder = GreedyDecoder::new();
        let sequential = decoder.decode(&run);
        let batcher = distributed::run_protocol(&run).unwrap();
        let gossip = distributed::run_protocol_with(&run, SelectionStrategy::gossip()).unwrap();
        let standalone = select_top_k(&decoder.scores(&run), k);
        assert_eq!(batcher.estimate, sequential, "batcher n={n} k={k}");
        assert_eq!(gossip.estimate, sequential, "gossip n={n} k={k}");
        assert_eq!(
            standalone.selected,
            sequential.bits(),
            "standalone n={n} k={k}"
        );
    }
}
