//! Decentralized selection as a drop-in replacement for Algorithm 1's
//! sorting network: greedy scores go in, the gossip top-`k` protocol picks
//! the one-agents, and the result is bit-identical to the sequential
//! decoder.

use noisy_pooled_data::core::{Decoder, GreedyDecoder, Instance, NoiseModel};
use noisy_pooled_data::netsim::gossip::{push_sum_average, select_top_k, TopKNode};

use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn gossip_selection_matches_sequential_decoder() {
    for (seed, noise) in [
        (1u64, NoiseModel::Noiseless),
        (2, NoiseModel::z_channel(0.1)),
        (3, NoiseModel::gaussian(1.0)),
    ] {
        let run = Instance::builder(300)
            .k(4)
            .queries(300)
            .noise(noise)
            .build()
            .unwrap()
            .sample(&mut StdRng::seed_from_u64(seed));
        let decoder = GreedyDecoder::new();
        let sequential = decoder.decode(&run);
        let report = select_top_k(&decoder.scores(&run), 4);
        let gossip_bits: Vec<bool> = report.selected;
        assert_eq!(
            gossip_bits,
            sequential.bits(),
            "gossip selection diverged from the sorting-network rule under {noise}"
        );
    }
}

#[test]
fn selection_cost_is_adaptive() {
    let run = Instance::builder(200)
        .k(3)
        .queries(150)
        .build()
        .unwrap()
        .sample(&mut StdRng::seed_from_u64(9));
    let scores = GreedyDecoder::new().scores(&run);
    let report = select_top_k(&scores, 3);
    assert!(report.rounds <= TopKNode::max_rounds(200));
    // The pre-adaptive fixed timetable ran (3 + 2·90) phases of
    // ⌈log₂ 200⌉ + 1 = 9 rounds each, i.e. 1 647 rounds, on every input.
    assert!(
        report.rounds < 1_647 / 2,
        "adaptive termination should undercut the old fixed timetable: {} rounds",
        report.rounds
    );
    // Every phase moves at most one message per node per round.
    assert!(report.messages <= report.rounds * 200);
    assert_eq!(
        report.stale_messages, 0,
        "fault-free runs have no stale arrivals"
    );
}

#[test]
fn push_sum_estimates_prevalence() {
    // Fully decentralized k-estimation: averaging the estimated bits gives
    // k/n at every agent — the missing piece when k is not known a priori.
    let run = Instance::builder(250)
        .k(5)
        .queries(250)
        .noise(NoiseModel::z_channel(0.1))
        .build()
        .unwrap()
        .sample(&mut StdRng::seed_from_u64(11));
    let est = GreedyDecoder::new().decode(&run);
    let indicator: Vec<f64> = est.bits().iter().map(|&b| f64::from(u8::from(b))).collect();
    let estimates = push_sum_average(&indicator, 80, 13);
    for (i, &e) in estimates.iter().enumerate() {
        assert!(
            (e - 5.0 / 250.0).abs() < 1e-6,
            "agent {i} estimated prevalence {e}"
        );
    }
}
