//! The headline verification harness of the categorical layer: state
//! evolution is the *executable spec* for matrix-AMP.
//!
//! Tan, Pascual Cobo, Scarlett & Venkataramanan (2023) prove that in the
//! large-system limit the per-iteration error of matrix-AMP concentrates
//! on a deterministic recursion over `d × d` covariances. These tests
//! sample finite instances, run the actual decoder, and assert the
//! empirical per-iteration MSE tracks the Monte-Carlo SE prediction within
//! Monte-Carlo/finite-size error — for `d = 2` and `d = 4`, across
//! multiple seeds, over ≥ 5 iterations. A decoder bug (wrong Onsager term,
//! mis-scaled denoiser, bad preprocessing) shows up as a systematic
//! departure of the empirical trajectory from the SE curve, so this
//! harness tests the implementation against closed-form theory rather
//! than against itself.

use noisy_pooled_data::amp::matrix_amp::{run_matrix_amp_tracking, MatrixAmpConfig};
use noisy_pooled_data::amp::preprocess::prepare_categorical;
use noisy_pooled_data::amp::state_evolution::{matrix_evolve, MatrixSeConfig};
use noisy_pooled_data::core::{CategoricalInstance, NoiseModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 2_000;
const M: usize = 1_000;
const ITERATIONS: usize = 6;
const RIDGE: f64 = 1e-6;
const SEEDS: [u64; 4] = [101, 202, 303, 404];

struct Agreement {
    /// Per-iteration empirical MSE, averaged over seeds.
    empirical_mean: Vec<f64>,
    /// Per-iteration standard error of that mean across seeds.
    empirical_stderr: Vec<f64>,
    /// Per-iteration SE prediction.
    predicted: Vec<f64>,
}

fn measure_agreement(strain_counts: &[usize], noise: NoiseModel) -> Agreement {
    let instance = CategoricalInstance::new(N, strain_counts.to_vec(), M)
        .expect("valid instance")
        .with_noise(noise);
    let config = MatrixAmpConfig {
        max_iterations: ITERATIONS,
        tolerance: 0.0, // run all iterations so trajectories align
        ridge: RIDGE,
        onsager: true,
    };

    let mut per_seed: Vec<Vec<f64>> = Vec::new();
    let mut noise_cov = None;
    for seed in SEEDS {
        let run = instance.sample(&mut StdRng::seed_from_u64(seed));
        let prep = prepare_categorical(&run);
        let out = run_matrix_amp_tracking(&prep, &config, Some(run.ground_truth().labels()));
        assert_eq!(out.mse_trajectory.len(), ITERATIONS);
        per_seed.push(out.mse_trajectory);
        // The scaled noise covariance is seed-independent (it depends only
        // on the model parameters); keep one copy for the SE input.
        noise_cov.get_or_insert(prep.noise_cov);
    }

    let d = strain_counts.len() + 1;
    let counts = instance.category_counts();
    let se = matrix_evolve(&MatrixSeConfig {
        prior: counts.iter().map(|&k| k as f64 / N as f64).collect(),
        n_over_m: N as f64 / M as f64,
        noise_cov: noise_cov.expect("at least one seed ran"),
        ridge: RIDGE,
        samples: 40_000,
        iterations: ITERATIONS,
        seed: 9,
    });
    assert_eq!(se.mse.len(), ITERATIONS);
    assert_eq!(se.t_trajectory[0].rows(), d);

    let s = SEEDS.len() as f64;
    let empirical_mean: Vec<f64> = (0..ITERATIONS)
        .map(|t| per_seed.iter().map(|traj| traj[t]).sum::<f64>() / s)
        .collect();
    let empirical_stderr: Vec<f64> = (0..ITERATIONS)
        .map(|t| {
            let mean = empirical_mean[t];
            let var = per_seed
                .iter()
                .map(|traj| (traj[t] - mean).powi(2))
                .sum::<f64>()
                / (s - 1.0);
            (var / s).sqrt()
        })
        .collect();

    Agreement {
        empirical_mean,
        empirical_stderr,
        predicted: se.mse,
    }
}

fn assert_agreement(label: &str, agreement: &Agreement) {
    for t in 0..ITERATIONS {
        let emp = agreement.empirical_mean[t];
        let pred = agreement.predicted[t];
        // Monte-Carlo error across seeds plus a finite-size allowance: the
        // SE limit is exact only as n → ∞, and at n = 2000 the trajectory
        // sits within a few percent of it. 10% relative + 5 stderr + a
        // small absolute floor is far tighter than any plausible decoder
        // bug (a wrong Onsager term moves the late iterations by 2–10×).
        let tol = 5.0 * agreement.empirical_stderr[t] + 0.10 * pred + 2e-3;
        assert!(
            (emp - pred).abs() <= tol,
            "{label}: iteration {t}: empirical MSE {emp:.6} vs SE prediction {pred:.6} \
             (tolerance {tol:.6}; stderr {:.6})\nempirical: {:?}\npredicted: {:?}",
            agreement.empirical_stderr[t],
            agreement.empirical_mean,
            agreement.predicted,
        );
    }
}

#[test]
fn matrix_amp_tracks_state_evolution_d2_gaussian() {
    // π = [0.7, 0.3], Gaussian query noise.
    let agreement = measure_agreement(&[600], NoiseModel::gaussian(10.0));
    assert_agreement("d=2 gaussian", &agreement);
    // The trajectory must actually move — a frozen decoder trivially
    // "tracks" a frozen prediction.
    assert!(
        agreement.empirical_mean.last().unwrap() < &(agreement.empirical_mean[0] * 0.8),
        "decoder made no progress: {:?}",
        agreement.empirical_mean
    );
}

#[test]
fn matrix_amp_tracks_state_evolution_d4_gaussian() {
    // π = [0.55, 0.15, 0.15, 0.15].
    let agreement = measure_agreement(&[300, 300, 300], NoiseModel::gaussian(10.0));
    assert_agreement("d=4 gaussian", &agreement);
    assert!(
        agreement.empirical_mean.last().unwrap() < &(agreement.empirical_mean[0] * 0.8),
        "decoder made no progress: {:?}",
        agreement.empirical_mean
    );
}

#[test]
fn matrix_amp_tracks_state_evolution_d2_channel() {
    // Per-slot channel noise exercises the (Mᵀ)⁻¹ unbiasing and the
    // multinomial noise-covariance estimate.
    let agreement = measure_agreement(&[600], NoiseModel::channel(0.1, 0.05));
    assert_agreement("d=2 channel", &agreement);
}

#[test]
fn matrix_amp_tracks_state_evolution_d4_noiseless() {
    // Noiseless: T_t is rank-deficient along the all-ones direction, so
    // this leg exercises the shared ridge regularization on both sides.
    let agreement = measure_agreement(&[300, 300, 300], NoiseModel::Noiseless);
    assert_agreement("d=4 noiseless", &agreement);
}
