//! Integration checks of the AMP baseline against the greedy algorithm —
//! the Figure-6 relationship.

use noisy_pooled_data::amp::state_evolution::{fixed_point, StateEvolutionConfig};
use noisy_pooled_data::amp::{AmpDecoder, BayesBernoulli};
use noisy_pooled_data::core::{
    exact_recovery, Decoder, GreedyDecoder, Instance, NoiseModel, Regime,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn success_rates(m: usize, p: f64, trials: u64) -> (f64, f64) {
    let instance = Instance::builder(1_000)
        .regime(Regime::sublinear(0.25))
        .queries(m)
        .noise(NoiseModel::z_channel(p))
        .build()
        .unwrap();
    let mut greedy_ok = 0;
    let mut amp_ok = 0;
    for seed in 0..trials {
        let run = instance.sample(&mut StdRng::seed_from_u64(9_000 + 131 * m as u64 + seed));
        if exact_recovery(&GreedyDecoder::new().decode(&run), run.ground_truth()) {
            greedy_ok += 1;
        }
        if exact_recovery(&AmpDecoder::default().decode(&run), run.ground_truth()) {
            amp_ok += 1;
        }
    }
    (
        greedy_ok as f64 / trials as f64,
        amp_ok as f64 / trials as f64,
    )
}

#[test]
fn both_algorithms_transition_from_failure_to_success() {
    let (greedy_low, amp_low) = success_rates(30, 0.1, 6);
    let (greedy_high, amp_high) = success_rates(500, 0.1, 6);
    assert!(greedy_low < 0.5, "greedy at m=30: {greedy_low}");
    assert!(amp_low < 0.9, "amp at m=30: {amp_low}");
    assert!(greedy_high > 0.8, "greedy at m=500: {greedy_high}");
    assert!(amp_high > 0.8, "amp at m=500: {amp_high}");
}

#[test]
fn amp_dominates_in_the_window_between_thresholds() {
    // Figure 6: AMP's transition sits earlier/sharper than greedy's.
    let (greedy, amp) = success_rates(150, 0.1, 8);
    assert!(
        amp >= greedy,
        "AMP rate {amp} below greedy {greedy} in the window"
    );
    assert!(amp > 0.5, "AMP should mostly succeed at m=150: {amp}");
}

#[test]
fn state_evolution_predicts_the_amp_transition_direction() {
    // Generous measurements (n/m small): fixed point collapses.
    let easy = StateEvolutionConfig {
        prior: 0.006,
        n_over_m: 1000.0 / 300.0,
        sigma_w2: 0.0,
        ..StateEvolutionConfig::default()
    };
    let fp_easy = fixed_point(&BayesBernoulli::new(easy.prior), &easy);
    // Starved measurements: fixed point stalls high.
    let hard = StateEvolutionConfig {
        prior: 0.006,
        n_over_m: 1000.0 / 10.0,
        sigma_w2: 0.0,
        ..StateEvolutionConfig::default()
    };
    let fp_hard = fixed_point(&BayesBernoulli::new(hard.prior), &hard);
    assert!(
        fp_easy < fp_hard / 10.0,
        "no separation between regimes: {fp_easy} vs {fp_hard}"
    );
}

/// FNV-1a over a stream of `u64` words — the same fingerprint scheme the
/// static-contract tests use to pin generator streams.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn mix(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Pinned fingerprint of the full binary AMP pipeline: ground-truth
/// support, every measurement bit pattern, and the decoded support on a
/// fixed z-channel instance. If this constant moves, the binary RNG
/// stream or the decoder output stream moved — which the categorical
/// layer promises never to do.
const BINARY_AMP_PIPELINE_FINGERPRINT: u64 = 0xD52D_8170_F75F_4C9A;

/// Pinned fingerprint of the shared truth + measurement stream, asserted
/// for the binary pipeline *and* its categorical d = 2 restatement.
const D2_STREAM_FINGERPRINT: u64 = 0x1A99_3B2A_1FAC_B5D6;

/// Pinned fingerprint of matrix-AMP's decoded label stream on a fixed
/// three-category channel instance — the decoder-output pin for the
/// categorical path itself.
const MATRIX_AMP_LABEL_FINGERPRINT: u64 = 0xF4BD_F924_8D09_8003;

fn pipeline_instance() -> Instance {
    Instance::builder(600)
        .k(8)
        .queries(400)
        .noise(NoiseModel::z_channel(0.1))
        .build()
        .unwrap()
}

#[test]
fn binary_amp_pipeline_fingerprint_is_pinned() {
    let run = pipeline_instance().sample(&mut StdRng::seed_from_u64(4242));
    let mut stream = Fnv::new();
    for &one in run.ground_truth().ones() {
        stream.mix(u64::from(one));
    }
    for &y in run.results() {
        stream.mix(y.to_bits());
    }
    let stream_fp = stream.0;
    let mut full = Fnv::new();
    full.mix(stream_fp);
    for &one in AmpDecoder::default().decode(&run).ones() {
        full.mix(u64::from(one));
    }
    assert_eq!(
        stream_fp, D2_STREAM_FINGERPRINT,
        "truth/measurement stream moved"
    );
    assert_eq!(
        full.0, BINARY_AMP_PIPELINE_FINGERPRINT,
        "AMP decoder output stream moved"
    );
}

#[test]
fn categorical_d2_reproduces_the_pinned_binary_stream() {
    use noisy_pooled_data::core::CategoricalInstance;
    let run = CategoricalInstance::new(600, vec![8], 400)
        .unwrap()
        .with_noise(NoiseModel::z_channel(0.1))
        .sample(&mut StdRng::seed_from_u64(4242));
    let mut stream = Fnv::new();
    let mut ones: Vec<u32> = (0..run.ground_truth().n() as u32)
        .filter(|&i| run.ground_truth().label(i as usize) == 1)
        .collect();
    ones.sort_unstable();
    for one in ones {
        stream.mix(u64::from(one));
    }
    for row in run.results() {
        stream.mix(row[1].to_bits());
    }
    assert_eq!(
        stream.0, D2_STREAM_FINGERPRINT,
        "categorical d = 2 diverged from the pinned binary stream"
    );
}

#[test]
fn matrix_amp_label_fingerprint_is_pinned() {
    use noisy_pooled_data::amp::matrix_amp::run_matrix_amp;
    use noisy_pooled_data::amp::{prepare_categorical, MatrixAmpConfig};
    use noisy_pooled_data::core::CategoricalInstance;
    let run = CategoricalInstance::new(800, vec![90, 70], 500)
        .unwrap()
        .with_noise(NoiseModel::channel(0.05, 0.02))
        .sample(&mut StdRng::seed_from_u64(777));
    let out = run_matrix_amp(&prepare_categorical(&run), &MatrixAmpConfig::default());
    let mut f = Fnv::new();
    for &label in &out.labels {
        f.mix(u64::from(label));
    }
    assert_eq!(
        f.0, MATRIX_AMP_LABEL_FINGERPRINT,
        "matrix-AMP label stream moved"
    );
}

#[test]
fn amp_handles_all_noise_models() {
    for (seed, noise) in [
        NoiseModel::Noiseless,
        NoiseModel::z_channel(0.1),
        NoiseModel::channel(0.05, 0.02),
        NoiseModel::gaussian(1.0),
    ]
    .into_iter()
    .enumerate()
    {
        let run = Instance::builder(500)
            .k(5)
            .queries(400)
            .noise(noise)
            .build()
            .unwrap()
            .sample(&mut StdRng::seed_from_u64(50 + seed as u64));
        let est = AmpDecoder::default().decode(&run);
        assert!(
            exact_recovery(&est, run.ground_truth()),
            "noise={noise} failed"
        );
    }
}
