//! Integration checks of the AMP baseline against the greedy algorithm —
//! the Figure-6 relationship.

use noisy_pooled_data::amp::state_evolution::{fixed_point, StateEvolutionConfig};
use noisy_pooled_data::amp::{AmpDecoder, BayesBernoulli};
use noisy_pooled_data::core::{
    exact_recovery, Decoder, GreedyDecoder, Instance, NoiseModel, Regime,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn success_rates(m: usize, p: f64, trials: u64) -> (f64, f64) {
    let instance = Instance::builder(1_000)
        .regime(Regime::sublinear(0.25))
        .queries(m)
        .noise(NoiseModel::z_channel(p))
        .build()
        .unwrap();
    let mut greedy_ok = 0;
    let mut amp_ok = 0;
    for seed in 0..trials {
        let run = instance.sample(&mut StdRng::seed_from_u64(9_000 + 131 * m as u64 + seed));
        if exact_recovery(&GreedyDecoder::new().decode(&run), run.ground_truth()) {
            greedy_ok += 1;
        }
        if exact_recovery(&AmpDecoder::default().decode(&run), run.ground_truth()) {
            amp_ok += 1;
        }
    }
    (
        greedy_ok as f64 / trials as f64,
        amp_ok as f64 / trials as f64,
    )
}

#[test]
fn both_algorithms_transition_from_failure_to_success() {
    let (greedy_low, amp_low) = success_rates(30, 0.1, 6);
    let (greedy_high, amp_high) = success_rates(500, 0.1, 6);
    assert!(greedy_low < 0.5, "greedy at m=30: {greedy_low}");
    assert!(amp_low < 0.9, "amp at m=30: {amp_low}");
    assert!(greedy_high > 0.8, "greedy at m=500: {greedy_high}");
    assert!(amp_high > 0.8, "amp at m=500: {amp_high}");
}

#[test]
fn amp_dominates_in_the_window_between_thresholds() {
    // Figure 6: AMP's transition sits earlier/sharper than greedy's.
    let (greedy, amp) = success_rates(150, 0.1, 8);
    assert!(
        amp >= greedy,
        "AMP rate {amp} below greedy {greedy} in the window"
    );
    assert!(amp > 0.5, "AMP should mostly succeed at m=150: {amp}");
}

#[test]
fn state_evolution_predicts_the_amp_transition_direction() {
    // Generous measurements (n/m small): fixed point collapses.
    let easy = StateEvolutionConfig {
        prior: 0.006,
        n_over_m: 1000.0 / 300.0,
        sigma_w2: 0.0,
        ..StateEvolutionConfig::default()
    };
    let fp_easy = fixed_point(&BayesBernoulli::new(easy.prior), &easy);
    // Starved measurements: fixed point stalls high.
    let hard = StateEvolutionConfig {
        prior: 0.006,
        n_over_m: 1000.0 / 10.0,
        sigma_w2: 0.0,
        ..StateEvolutionConfig::default()
    };
    let fp_hard = fixed_point(&BayesBernoulli::new(hard.prior), &hard);
    assert!(
        fp_easy < fp_hard / 10.0,
        "no separation between regimes: {fp_easy} vs {fp_hard}"
    );
}

#[test]
fn amp_handles_all_noise_models() {
    for (seed, noise) in [
        NoiseModel::Noiseless,
        NoiseModel::z_channel(0.1),
        NoiseModel::channel(0.05, 0.02),
        NoiseModel::gaussian(1.0),
    ]
    .into_iter()
    .enumerate()
    {
        let run = Instance::builder(500)
            .k(5)
            .queries(400)
            .noise(noise)
            .build()
            .unwrap()
            .sample(&mut StdRng::seed_from_u64(50 + seed as u64));
        let est = AmpDecoder::default().decode(&run);
        assert!(
            exact_recovery(&est, run.ground_truth()),
            "noise={noise} failed"
        );
    }
}
