//! Failure injection: the distributed protocol under message loss and
//! duplication (extension beyond the paper, exercising the netsim fault
//! machinery end to end).

use noisy_pooled_data::core::{distributed, Instance, NoiseModel};
use noisy_pooled_data::netsim::FaultConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_run(m: usize, seed: u64) -> noisy_pooled_data::core::Run {
    Instance::builder(128)
        .k(3)
        .queries(m)
        .noise(NoiseModel::Noiseless)
        .build()
        .unwrap()
        .sample(&mut StdRng::seed_from_u64(seed))
}

#[test]
fn protocol_always_terminates_under_faults() {
    for (drop, dup) in [(0.1, 0.0), (0.0, 0.2), (0.3, 0.3), (0.9, 0.0)] {
        let run = sample_run(60, 1);
        let faults = FaultConfig::new(drop, dup, 17).unwrap();
        let outcome = distributed::run_protocol_with_faults(&run, faults).expect("must terminate");
        assert_eq!(outcome.estimate.bits().len(), 128, "drop={drop} dup={dup}");
        assert!(outcome.rounds <= outcome.sort_depth as u64 + 5);
    }
}

#[test]
fn light_loss_with_redundant_queries_still_recovers() {
    // Double the necessary queries + 0.5% loss: the measurement phase has
    // enough redundancy that reconstruction survives (fixed seeds).
    let run = sample_run(200, 2);
    let faults = FaultConfig::new(0.005, 0.0, 3).unwrap();
    let outcome = distributed::run_protocol_with_faults(&run, faults).unwrap();
    assert_eq!(outcome.estimate.ones(), run.ground_truth().ones());
}

#[test]
fn drop_rate_degrades_reconstruction_monotonically_in_aggregate() {
    // Aggregate over seeds: heavy loss produces at least as many failures
    // as light loss.
    let failures = |drop: f64| -> usize {
        (0..6u64)
            .filter(|&seed| {
                let run = sample_run(100, 10 + seed);
                let faults = FaultConfig::new(drop, 0.0, 100 + seed).unwrap();
                let outcome = distributed::run_protocol_with_faults(&run, faults).unwrap();
                outcome.estimate.ones() != run.ground_truth().ones()
            })
            .count()
    };
    let light = failures(0.001);
    let heavy = failures(0.6);
    assert!(
        heavy >= light,
        "heavy loss failures {heavy} < light loss failures {light}"
    );
    assert!(heavy >= 4, "60% loss should break most runs: {heavy}/6");
}

#[test]
fn dropped_assignments_are_reported() {
    // With very heavy loss some agents never learn their bit; the outcome
    // must say so rather than silently defaulting.
    let run = sample_run(40, 4);
    let faults = FaultConfig::new(0.8, 0.0, 5).unwrap();
    let outcome = distributed::run_protocol_with_faults(&run, faults).unwrap();
    assert!(
        outcome.missing_assignments > 0,
        "80% loss should lose some assignments"
    );
    assert!(outcome.metrics.messages_dropped > 0);
}

#[test]
fn duplication_only_faults_keep_termination_and_shape() {
    let run = sample_run(80, 6);
    let faults = FaultConfig::new(0.0, 0.5, 7).unwrap();
    let outcome = distributed::run_protocol_with_faults(&run, faults).unwrap();
    assert!(outcome.metrics.messages_duplicated > 0);
    assert_eq!(outcome.estimate.bits().len(), 128);
}
