//! Failure injection: the distributed protocol under message loss and
//! duplication (extension beyond the paper, exercising the netsim fault
//! machinery end to end).

use noisy_pooled_data::core::{distributed, Instance, NoiseModel};
use noisy_pooled_data::netsim::gossip::{PushSumMsg, PushSumNode};
use noisy_pooled_data::netsim::{FaultConfig, Network, NodeFaultPlan, StepReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_run(m: usize, seed: u64) -> noisy_pooled_data::core::Run {
    Instance::builder(128)
        .k(3)
        .queries(m)
        .noise(NoiseModel::Noiseless)
        .build()
        .unwrap()
        .sample(&mut StdRng::seed_from_u64(seed))
}

#[test]
fn protocol_always_terminates_under_faults() {
    for (drop, dup) in [(0.1, 0.0), (0.0, 0.2), (0.3, 0.3), (0.9, 0.0)] {
        let run = sample_run(60, 1);
        let faults = FaultConfig::new(drop, dup, 17).unwrap();
        let outcome = distributed::run_protocol_with_faults(&run, faults).expect("must terminate");
        assert_eq!(outcome.estimate.bits().len(), 128, "drop={drop} dup={dup}");
        assert!(outcome.rounds <= outcome.sort_depth as u64 + 5);
    }
}

#[test]
fn light_loss_with_redundant_queries_still_recovers() {
    // Double the necessary queries + 0.5% loss: the measurement phase has
    // enough redundancy that reconstruction survives (fixed seeds).
    let run = sample_run(200, 2);
    let faults = FaultConfig::new(0.005, 0.0, 3).unwrap();
    let outcome = distributed::run_protocol_with_faults(&run, faults).unwrap();
    assert_eq!(outcome.estimate.ones(), run.ground_truth().ones());
}

#[test]
fn drop_rate_degrades_reconstruction_monotonically_in_aggregate() {
    // Aggregate over seeds: heavy loss produces at least as many failures
    // as light loss.
    let failures = |drop: f64| -> usize {
        (0..6u64)
            .filter(|&seed| {
                let run = sample_run(100, 10 + seed);
                let faults = FaultConfig::new(drop, 0.0, 100 + seed).unwrap();
                let outcome = distributed::run_protocol_with_faults(&run, faults).unwrap();
                outcome.estimate.ones() != run.ground_truth().ones()
            })
            .count()
    };
    let light = failures(0.001);
    let heavy = failures(0.6);
    assert!(
        heavy >= light,
        "heavy loss failures {heavy} < light loss failures {light}"
    );
    assert!(heavy >= 4, "60% loss should break most runs: {heavy}/6");
}

#[test]
fn dropped_assignments_are_reported() {
    // With very heavy loss some agents never learn their bit; the outcome
    // must say so rather than silently defaulting.
    let run = sample_run(40, 4);
    let faults = FaultConfig::new(0.8, 0.0, 5).unwrap();
    let outcome = distributed::run_protocol_with_faults(&run, faults).unwrap();
    assert!(
        outcome.missing_assignments > 0,
        "80% loss should lose some assignments"
    );
    assert!(outcome.metrics.messages_dropped > 0);
}

#[test]
fn duplication_only_faults_keep_termination_and_shape() {
    let run = sample_run(80, 6);
    let faults = FaultConfig::new(0.0, 0.5, 7).unwrap();
    let outcome = distributed::run_protocol_with_faults(&run, faults).unwrap();
    assert!(outcome.metrics.messages_duplicated > 0);
    assert_eq!(outcome.estimate.bits().len(), 128);
}

#[test]
fn protocol_completes_under_crashes_and_corruption() {
    // The chaos acceptance bar: with 10% of nodes fail-stop crashing in
    // the opening rounds and 5% garbling every payload they send, both
    // phase-II strategies complete cleanly — no panic, no hang to the
    // round budget — and the outcome reports the degraded quorum.
    use distributed::{ProtocolOptions, SelectionStrategy};
    let run = sample_run(200, 8);
    let plan = NodeFaultPlan::new(41)
        .with_crashes(0.10, (1, 8))
        .unwrap()
        .with_corruption(0.05, 1.0)
        .unwrap();
    for strategy in [SelectionStrategy::BatcherSort, SelectionStrategy::gossip()] {
        let outcome = distributed::run_protocol_chaos(
            &run,
            ProtocolOptions {
                strategy,
                node_faults: Some(plan),
                winsorize: true,
                ..ProtocolOptions::default()
            },
        )
        .expect("chaos run must terminate cleanly, not exhaust the round budget");
        assert!(
            outcome.metrics.node_crashes > 0,
            "{strategy:?}: no crashes drawn"
        );
        assert!(
            outcome.metrics.messages_corrupted > 0,
            "{strategy:?}: no corruption drawn"
        );
        assert_eq!(outcome.agent_liveness.len(), 128);
        assert_eq!(outcome.achieved_quorum, 128 - outcome.missing_assignments);
        assert!(
            outcome.achieved_quorum < 128,
            "{strategy:?}: crashes should cost some agents their decision"
        );
        assert!(
            outcome.achieved_quorum > 64,
            "{strategy:?}: 10% crashes should leave a clear quorum majority \
             (got {})",
            outcome.achieved_quorum
        );
        let dead = outcome.agent_liveness.iter().filter(|&&l| !l).count();
        assert!(
            dead > 0,
            "{strategy:?}: liveness map should record the dead"
        );
    }
}

/// One faulted gossip run: `rounds` steps of push-sum under the given
/// fault config, optional agent-level fault plan, and shard count, on the
/// given rayon thread count. Conservation (the extended identity, crash
/// losses included) is asserted at every round boundary. Returns every
/// step report and the final bit-exact estimates.
fn faulted_gossip_run(
    faults: FaultConfig,
    plan: Option<NodeFaultPlan>,
    shards: usize,
    threads: usize,
    rounds: usize,
) -> (Vec<StepReport>, Vec<u64>) {
    fn garble(msg: &mut PushSumMsg, entropy: u64) {
        msg.s += ((entropy % 1024) as f64 - 512.0) * 0.01;
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    pool.install(|| {
        let nodes: Vec<PushSumNode> = (0..48)
            .map(|i| PushSumNode::new((i as f64) - 11.5, rounds, 77, i))
            .collect();
        let mut net = Network::with_faults(nodes, faults).with_shards(shards);
        if let Some(plan) = plan {
            net = net.with_node_faults(plan).with_corruptor(garble);
        }
        let mut reports = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            reports.push(net.step_parallel());
            assert!(
                net.metrics().conserves(net.in_flight(), net.delayed()),
                "conservation violated mid-run: {:?} in_flight={} delayed={}",
                net.metrics(),
                net.in_flight(),
                net.delayed()
            );
        }
        let estimates = net.nodes().iter().map(|n| n.estimate().to_bits()).collect();
        (reports, estimates)
    })
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Fault-injected runs (drop + dup + delay together) conserve
        /// `sent + duplicated == delivered + dropped + in_flight + delayed`
        /// at every round boundary, and replay bit-identically across
        /// shard counts and rayon thread counts.
        #[test]
        fn faulted_runs_conserve_and_replay(
            drop_p in 0.0f64..0.6,
            dup_p in 0.0f64..0.6,
            max_delay in 0u64..4,
            seed in 0u64..1_000,
        ) {
            let faults = FaultConfig::new(drop_p, dup_p, seed)
                .unwrap()
                .with_max_delay(max_delay);
            let reference = faulted_gossip_run(faults, None, 1, 1, 12);
            for (shards, threads) in [(2usize, 1usize), (8, 4), (1, 4)] {
                let got = faulted_gossip_run(faults, None, shards, threads, 12);
                prop_assert_eq!(&got, &reference);
            }
        }

        /// Agent-level chaos on top of the message faults: fail-stop
        /// crashes (with and without restarts), stragglers and payload
        /// corruption still conserve the extended identity
        /// `sent + duplicated == delivered + dropped + in_flight +
        /// delayed + lost_to_crash` at every round boundary, and the whole
        /// run replays bit-identically across shard and thread counts.
        #[test]
        fn chaos_runs_conserve_and_replay(
            crash_frac in 0.0f64..0.5,
            // 0 = fail-stop forever; 1..=3 = restart after that many rounds.
            restart_after in 0u64..4,
            corrupt_frac in 0.0f64..0.5,
            seed in 0u64..1_000,
        ) {
            let mut plan = NodeFaultPlan::new(seed)
                .with_crashes(crash_frac, (1, 6))
                .unwrap()
                .with_stragglers(0.2, 1)
                .unwrap()
                .with_corruption(corrupt_frac, 0.5)
                .unwrap();
            if restart_after > 0 {
                plan = plan.with_restarts(restart_after);
            }
            let faults = FaultConfig::new(0.1, 0.1, seed ^ 0xF00D)
                .unwrap()
                .with_max_delay(2);
            let reference = faulted_gossip_run(faults, Some(plan), 1, 1, 12);
            for (shards, threads) in [(2usize, 1usize), (8, 4), (1, 4)] {
                let got = faulted_gossip_run(faults, Some(plan), shards, threads, 12);
                prop_assert_eq!(&got, &reference);
            }
        }
    }
}
