//! End-to-end behaviour of the two pooling designs (with / without
//! replacement) across the decoder implementations.

use noisy_pooled_data::amp::AmpDecoder;
use noisy_pooled_data::core::{
    distributed, exact_recovery, Decoder, GreedyDecoder, Instance, NoiseModel, Sampling,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn instance(sampling: Sampling, m: usize) -> Instance {
    Instance::builder(400)
        .k(4)
        .queries(m)
        .noise(NoiseModel::z_channel(0.1))
        .sampling(sampling)
        .build()
        .expect("valid configuration")
}

#[test]
fn both_designs_recover_with_generous_budgets() {
    for sampling in [Sampling::WithReplacement, Sampling::WithoutReplacement] {
        for seed in 0..3 {
            let run = instance(sampling, 400).sample(&mut StdRng::seed_from_u64(seed));
            let est = GreedyDecoder::new().decode(&run);
            assert!(
                exact_recovery(&est, run.ground_truth()),
                "{sampling:?} seed={seed}"
            );
        }
    }
}

#[test]
fn distributed_protocol_handles_subset_designs() {
    let run = instance(Sampling::WithoutReplacement, 120).sample(&mut StdRng::seed_from_u64(5));
    let outcome = distributed::run_protocol(&run).expect("quiesces");
    assert_eq!(outcome.estimate, GreedyDecoder::new().decode(&run));
    // Simple design: every measurement edge has multiplicity 1, so the
    // measurement traffic equals m·Γ exactly.
    let measurement_msgs: u64 = run
        .graph()
        .queries()
        .iter()
        .map(|q| q.distinct_len() as u64)
        .sum();
    assert_eq!(measurement_msgs, (120 * 200) as u64);
}

#[test]
fn amp_decodes_subset_designs() {
    // The centered-matrix preprocessing works for the simple design too
    // (entries 0/1 instead of counts).
    let run = instance(Sampling::WithoutReplacement, 300).sample(&mut StdRng::seed_from_u64(8));
    let est = AmpDecoder::default().decode(&run);
    assert!(exact_recovery(&est, run.ground_truth()));
}

#[test]
fn subset_design_is_never_worse_on_average() {
    // Aggregate success at a mid-threshold budget: the Γ-subset design
    // covers more agents per query and should win or tie.
    let trials = 8;
    let count_successes = |sampling: Sampling| -> usize {
        (0..trials)
            .filter(|&seed| {
                let run = instance(sampling, 150).sample(&mut StdRng::seed_from_u64(100 + seed));
                exact_recovery(&GreedyDecoder::new().decode(&run), run.ground_truth())
            })
            .count()
    };
    let with = count_successes(Sampling::WithReplacement);
    let without = count_successes(Sampling::WithoutReplacement);
    assert!(
        without >= with,
        "subset design {without}/{trials} vs multigraph {with}/{trials}"
    );
}
