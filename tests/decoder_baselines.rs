//! Cross-crate behaviour of the baseline decoder zoo against Algorithm 1
//! and AMP: every algorithm sees the same runs, rank-`k` output contracts
//! hold, and the exhaustive ML reference dominates in likelihood.

use noisy_pooled_data::amp::AmpDecoder;
use noisy_pooled_data::core::{
    exact_recovery, overlap, Decoder, GreedyDecoder, Instance, NoiseModel, Run,
};
use noisy_pooled_data::decoders::{standard_zoo, BpDecoder, FistaDecoder, McmcDecoder, MlDecoder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample(n: usize, k: usize, m: usize, noise: NoiseModel, seed: u64) -> Run {
    Instance::builder(n)
        .k(k)
        .queries(m)
        .noise(noise)
        .build()
        .expect("valid configuration")
        .sample(&mut StdRng::seed_from_u64(seed))
}

#[test]
fn whole_field_recovers_under_every_noise_model() {
    let cases = [
        NoiseModel::Noiseless,
        NoiseModel::z_channel(0.1),
        NoiseModel::channel(0.05, 0.02),
        NoiseModel::gaussian(1.0),
    ];
    for (ci, noise) in cases.into_iter().enumerate() {
        let run = sample(400, 4, 450, noise, 900 + ci as u64);
        let mut field: Vec<Box<dyn Decoder>> = standard_zoo();
        field.push(Box::new(GreedyDecoder::new()));
        field.push(Box::new(AmpDecoder::default()));
        for decoder in &field {
            let est = decoder.decode(&run);
            assert_eq!(est.k(), 4, "{} must output exactly k ones", decoder.name());
            assert!(
                exact_recovery(&est, run.ground_truth()),
                "{} failed on {noise} with a generous budget",
                decoder.name()
            );
        }
    }
}

#[test]
fn ml_likelihood_dominates_every_polynomial_decoder() {
    // On a tiny noisy instance the exhaustive ML decoder must achieve at
    // least the likelihood of every other decoder's output — that is what
    // "optimality reference" means.
    for seed in 0..5 {
        let run = sample(14, 2, 12, NoiseModel::channel(0.2, 0.1), 300 + seed);
        let ml = MlDecoder::new()
            .try_decode(&run)
            .expect("tiny search space");
        let ml_ll = MlDecoder::log_likelihood(&run, ml.bits());
        let mut field: Vec<Box<dyn Decoder>> = standard_zoo();
        field.push(Box::new(GreedyDecoder::new()));
        for decoder in &field {
            let est = decoder.decode(&run);
            let ll = MlDecoder::log_likelihood(&run, est.bits());
            assert!(
                ml_ll >= ll - 1e-9,
                "{} beat exhaustive ML in likelihood (seed {seed}): {ll} > {ml_ll}",
                decoder.name()
            );
        }
    }
}

#[test]
fn bp_overlap_degrades_gracefully_near_threshold() {
    // At a query budget where exact recovery is unreliable, BP should
    // still place most one-agents on top — the same overlap-vs-success gap
    // the paper reports for the greedy algorithm in Figure 7.
    let mut total = 0.0;
    let trials = 6;
    for seed in 0..trials {
        let run = sample(500, 5, 150, NoiseModel::z_channel(0.2), 500 + seed);
        let est = BpDecoder::default().decode(&run);
        total += overlap(&est, run.ground_truth());
    }
    let mean = total / trials as f64;
    assert!(
        mean > 0.6,
        "mean BP overlap near threshold was only {mean:.2}"
    );
}

#[test]
fn mcmc_refinement_never_hurts_greedy_energy() {
    // The MCMC decoder starts from the greedy estimate; its best-visited
    // state can only have equal or lower Gaussian energy, which in
    // likelihood terms means ≥ the greedy log-likelihood under the
    // moment-matched surrogate. Verify on mid-difficulty instances via the
    // exact likelihood as a proxy.
    for seed in 0..4 {
        let run = sample(300, 4, 220, NoiseModel::z_channel(0.3), 700 + seed);
        let greedy = GreedyDecoder::new().decode(&run);
        let refined = McmcDecoder::default().decode(&run);
        let ll_greedy = MlDecoder::log_likelihood(&run, greedy.bits());
        let ll_refined = MlDecoder::log_likelihood(&run, refined.bits());
        // The chain optimizes a surrogate, so allow a hair of slack.
        assert!(
            ll_refined >= ll_greedy - 1.0,
            "seed {seed}: refinement dropped likelihood {ll_greedy} → {ll_refined}"
        );
    }
}

#[test]
fn fista_score_landscape_separates_classes() {
    let run = sample(400, 4, 400, NoiseModel::gaussian(0.5), 41);
    let est = FistaDecoder::default().decode(&run);
    let truth = run.ground_truth();
    let min_one = est
        .scores()
        .iter()
        .enumerate()
        .filter(|(i, _)| truth.is_one(*i))
        .map(|(_, &s)| s)
        .fold(f64::INFINITY, f64::min);
    let max_zero = est
        .scores()
        .iter()
        .enumerate()
        .filter(|(i, _)| !truth.is_one(*i))
        .map(|(_, &s)| s)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        min_one > max_zero,
        "lasso scores should separate: min-one {min_one} vs max-zero {max_zero}"
    );
}

#[test]
fn decoders_are_deterministic_functions_of_the_run() {
    let run = sample(200, 3, 200, NoiseModel::z_channel(0.1), 77);
    for decoder in standard_zoo() {
        let a = decoder.decode(&run);
        let b = decoder.decode(&run);
        assert_eq!(
            a.ones(),
            b.ones(),
            "{} must be deterministic per run",
            decoder.name()
        );
    }
}
