//! Cross-layer accounting: the protocol's outcome counters, the network
//! engine's [`Metrics`] rows, and the telemetry counter registry must
//! all tell the same story — fault-free and under message chaos, for
//! both phase-II strategies.
//!
//! The reconciliation identities pinned here:
//!
//! * every [`Metrics::as_rows`] row is dumped verbatim into the sink's
//!   counter registry by `run_protocol_chaos_traced`;
//! * the protocol's phase split is exhaustive —
//!   `measurement + selection + assign == messages_sent`;
//! * the protocol-level outcome fields (`selection_messages`,
//!   `stale_messages`, `probes`, …) equal their dumped counters;
//! * the fault pipeline conserves messages at quiescence
//!   ([`Metrics::conserves`] with nothing in flight).

use noisy_pooled_data::core::distributed::{
    run_protocol_chaos_traced, ProtocolOptions, SelectionStrategy,
};
use noisy_pooled_data::core::{Instance, NoiseModel, Run};
use noisy_pooled_data::netsim::FaultConfig;
use noisy_pooled_data::telemetry::{MetricsSnapshot, TelemetrySink};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sample_run(n: usize, k: usize, m: usize, seed: u64) -> Run {
    Instance::builder(n)
        .k(k)
        .queries(m)
        .noise(NoiseModel::z_channel(0.1))
        .build()
        .unwrap()
        .sample(&mut StdRng::seed_from_u64(seed))
}

fn counter(snapshot: &MetricsSnapshot, name: &str) -> u64 {
    snapshot
        .counters
        .iter()
        .find(|&&(n, _)| n == name)
        .map(|&(_, v)| v)
        .unwrap_or_else(|| panic!("counter `{name}` missing from {:?}", snapshot.counters))
}

/// Runs one traced protocol and checks every reconciliation identity.
fn check_accounting(strategy: SelectionStrategy, faults: Option<FaultConfig>, label: &str) {
    let run = sample_run(96, 3, 80, 77);
    let sink = TelemetrySink::recording();
    let options = ProtocolOptions {
        strategy,
        faults,
        ..ProtocolOptions::default()
    };
    let outcome = run_protocol_chaos_traced(&run, options, &sink).unwrap();
    let snapshot = sink.snapshot().unwrap();

    // Every engine Metrics row is dumped verbatim into the registry.
    for (name, value) in outcome.metrics.as_rows() {
        assert_eq!(counter(&snapshot, name), value, "{label}: row `{name}`");
    }

    // The protocol's phase split is exhaustive: the three message
    // classes partition everything the network ever accepted from nodes.
    let measurement = counter(&snapshot, "measurement_messages");
    let selection = counter(&snapshot, "selection_messages");
    let assign = counter(&snapshot, "assign_messages");
    assert_eq!(
        measurement + selection + assign,
        outcome.metrics.messages_sent,
        "{label}: phase split does not partition messages_sent"
    );
    // Gossip has no assignment round; Batcher assigns once per agent.
    match strategy {
        SelectionStrategy::BatcherSort => {
            assert!(assign > 0, "{label}: Batcher sent no assignments")
        }
        SelectionStrategy::GossipThreshold { .. } => {
            assert_eq!(assign, 0, "{label}: gossip has no assignment phase")
        }
    }

    // Protocol-level outcome fields equal their dumped counters.
    assert_eq!(selection, outcome.selection_messages, "{label}");
    assert_eq!(
        counter(&snapshot, "stale_messages"),
        outcome.stale_messages,
        "{label}"
    );
    assert_eq!(
        counter(&snapshot, "probes"),
        u64::from(outcome.probes),
        "{label}"
    );
    assert_eq!(
        counter(&snapshot, "selection_rounds"),
        outcome.selection_rounds,
        "{label}"
    );
    assert_eq!(
        counter(&snapshot, "missing_assignments"),
        outcome.missing_assignments as u64,
        "{label}"
    );
    assert_eq!(
        counter(&snapshot, "achieved_quorum"),
        outcome.achieved_quorum as u64,
        "{label}"
    );
    assert_eq!(
        counter(&snapshot, "restarted_agents"),
        outcome.restarted_agents as u64,
        "{label}"
    );

    // At quiescence nothing is in flight or delayed, so the fault
    // pipeline's conservation identity closes exactly.
    assert!(
        outcome.metrics.conserves(0, 0),
        "{label}: metrics do not conserve at quiescence: {:?}",
        outcome.metrics
    );

    // Strategy- and fault-dependent sanity.
    if let SelectionStrategy::GossipThreshold { .. } = strategy {
        assert!(outcome.probes > 0, "{label}: gossip made no probes");
    }
    match faults {
        None => {
            assert_eq!(outcome.metrics.messages_dropped, 0, "{label}");
            assert_eq!(outcome.metrics.messages_duplicated, 0, "{label}");
            assert_eq!(outcome.metrics.messages_delayed, 0, "{label}");
        }
        Some(_) => {
            let injected = outcome.metrics.messages_dropped
                + outcome.metrics.messages_duplicated
                + outcome.metrics.messages_delayed;
            assert!(injected > 0, "{label}: fault injection drew nothing");
        }
    }
}

fn chaos_faults() -> FaultConfig {
    FaultConfig::new(0.01, 0.05, 0xACC7)
        .unwrap()
        .with_max_delay(2)
}

#[test]
fn batcher_accounting_reconciles_fault_free() {
    check_accounting(SelectionStrategy::BatcherSort, None, "batcher/clean");
}

#[test]
fn batcher_accounting_reconciles_under_loss_dup_delay() {
    check_accounting(
        SelectionStrategy::BatcherSort,
        Some(chaos_faults()),
        "batcher/faults",
    );
}

#[test]
fn gossip_accounting_reconciles_fault_free() {
    check_accounting(SelectionStrategy::gossip(), None, "gossip/clean");
}

#[test]
fn gossip_accounting_reconciles_under_loss_dup_delay() {
    check_accounting(
        SelectionStrategy::gossip(),
        Some(chaos_faults()),
        "gossip/faults",
    );
}

#[test]
fn duplication_and_delay_surface_as_stale_tokens_for_batcher() {
    // Batcher comparators consume exactly one token per layer; duplicated
    // or delayed copies land as stale arrivals, which the outcome counts
    // instead of merging (the module docs' degradation contract).
    let run = sample_run(96, 3, 80, 78);
    let clean = run_protocol_chaos_traced(
        &run,
        ProtocolOptions::default(),
        &TelemetrySink::recording(),
    )
    .unwrap();
    assert_eq!(clean.stale_messages, 0, "clean run saw stale tokens");

    let faulty = run_protocol_chaos_traced(
        &run,
        ProtocolOptions {
            faults: Some(chaos_faults()),
            ..ProtocolOptions::default()
        },
        &TelemetrySink::recording(),
    )
    .unwrap();
    assert!(
        faulty.stale_messages > 0,
        "duplication/delay produced no stale tokens: {:?}",
        faulty.metrics
    );
}

#[test]
fn untraced_and_traced_runs_agree() {
    // The sink is pure observation: attaching it must not perturb the
    // outcome. (`run_protocol_chaos` delegates with a disabled sink.)
    use noisy_pooled_data::core::distributed::run_protocol_chaos;
    let run = sample_run(96, 3, 80, 79);
    let options = ProtocolOptions {
        strategy: SelectionStrategy::gossip(),
        faults: Some(chaos_faults()),
        ..ProtocolOptions::default()
    };
    let untraced = run_protocol_chaos(&run, options).unwrap();
    let sink = TelemetrySink::recording();
    let traced = run_protocol_chaos_traced(&run, options, &sink).unwrap();
    assert_eq!(untraced, traced);
    assert!(sink.snapshot().unwrap().events > 0);
}
