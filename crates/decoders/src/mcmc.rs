//! Annealed Markov-chain Monte Carlo over weight-`k` assignments.
//!
//! The posterior of the pooled data problem is uniform over weight-`k`
//! vectors reweighted by the observation likelihood, so a Metropolis chain
//! that swaps one one-agent against one zero-agent per step explores
//! exactly the support of the posterior. With a slowly increasing inverse
//! temperature the chain anneals toward the maximum-likelihood assignment;
//! its time-average visit frequencies estimate the posterior marginals.
//!
//! Each proposal touches only the queries adjacent to the two swapped
//! agents, so a step costs `O(Δ*)` energy evaluations — the same locality
//! the paper's greedy algorithm exploits, which is what makes the sampler
//! usable at `n = 10³..10⁴` as a near-ML reference where exhaustive search
//! (`MlDecoder`) is long gone.

use crate::likelihood::{moment_matched_energy, query_log_likelihood};
use npd_core::{Decoder, Estimate, GreedyDecoder, NoiseModel, Run};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which per-query energy the chain minimizes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnergyKind {
    /// Moment-matched Gaussian surrogate (fast; exact for the noisy query
    /// model up to the variance floor). The default.
    #[default]
    Gaussian,
    /// Exact negative log-likelihood (binomial convolution under the
    /// channel). Falls back to the Gaussian surrogate for the noiseless
    /// model, whose exact likelihood is a hard indicator that leaves the
    /// chain no gradient to follow.
    Exact,
}

/// How the chain is initialized.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitKind {
    /// Start from the greedy estimate (Algorithm 1); the chain then acts as
    /// the local error-correcting second step the paper's conclusion asks
    /// about. The default.
    #[default]
    Greedy,
    /// Start from the first `k` agents (an arbitrary fixed state; useful to
    /// measure how much the greedy warm start is worth).
    Cold,
}

/// Tuning knobs of the annealed sampler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McmcConfig {
    /// Total number of swap proposals.
    pub steps: usize,
    /// Initial inverse temperature.
    pub beta_start: f64,
    /// Final inverse temperature (geometric schedule).
    pub beta_end: f64,
    /// RNG seed — the decoder is deterministic per (config, run).
    pub seed: u64,
    /// Energy function.
    pub energy: EnergyKind,
    /// Chain initialization.
    pub init: InitKind,
}

impl Default for McmcConfig {
    fn default() -> Self {
        Self {
            steps: 20_000,
            beta_start: 0.3,
            beta_end: 6.0,
            seed: 0x9e37_79b9,
            energy: EnergyKind::Gaussian,
            init: InitKind::Greedy,
        }
    }
}

/// Diagnostics of one sampler run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McmcOutput {
    /// Lowest energy visited.
    pub best_energy: f64,
    /// Energy of the initial state.
    pub initial_energy: f64,
    /// Accepted proposals.
    pub accepted: usize,
    /// Total proposals.
    pub steps: usize,
    /// Fraction of time each agent spent in the one-set (posterior marginal
    /// estimate).
    pub occupancy: Vec<f64>,
    /// The lowest-energy assignment (sorted agent ids).
    pub best_ones: Vec<u32>,
}

/// Annealed Metropolis decoder.
///
/// # Examples
///
/// ```
/// use npd_core::{Decoder, Instance, NoiseModel};
/// use npd_decoders::McmcDecoder;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let run = Instance::builder(200)
///     .k(3)
///     .queries(180)
///     .noise(NoiseModel::z_channel(0.1))
///     .build()
///     .unwrap()
///     .sample(&mut rng);
/// let estimate = McmcDecoder::default().decode(&run);
/// assert_eq!(estimate.k(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct McmcDecoder {
    config: McmcConfig,
}

impl McmcDecoder {
    /// Creates the decoder with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the decoder with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0` or the temperature schedule is not positive
    /// and non-decreasing.
    pub fn with_config(config: McmcConfig) -> Self {
        assert!(config.steps > 0, "McmcDecoder: steps must be positive");
        assert!(
            config.beta_start > 0.0 && config.beta_end >= config.beta_start,
            "McmcDecoder: need 0 < beta_start <= beta_end (got {} and {})",
            config.beta_start,
            config.beta_end
        );
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &McmcConfig {
        &self.config
    }

    /// Runs the chain and returns the full diagnostics.
    pub fn solve(&self, run: &Run) -> McmcOutput {
        let n = run.instance().n();
        let k = run.instance().k();
        let noise = *run.instance().noise();
        let energy_kind = effective_energy(self.config.energy, &noise);
        let results = run.results();
        let m = results.len();

        // Agent → (query, multiplicity) adjacency, plus each query's own
        // slot count (exact on ragged designs; equals Γ on regular ones).
        let mut adjacency: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        let mut slots = vec![0u64; m];
        for (j, q) in run.graph().queries().iter().enumerate() {
            slots[j] = u64::from(q.total_slots());
            for (a, c) in q.iter() {
                adjacency[a as usize].push((j as u32, c));
            }
        }

        // Initial state.
        let init_ones: Vec<u32> = match self.config.init {
            InitKind::Greedy => GreedyDecoder::new().decode(run).ones().to_vec(),
            InitKind::Cold => (0..k as u32).collect(),
        };
        let mut is_one = vec![false; n];
        for &a in &init_ones {
            is_one[a as usize] = true;
        }
        let mut ones: Vec<u32> = init_ones;
        let mut zeros: Vec<u32> = (0..n as u32).filter(|&a| !is_one[a as usize]).collect();
        // Position of each agent inside its current list.
        let mut position = vec![0usize; n];
        for (i, &a) in ones.iter().enumerate() {
            position[a as usize] = i;
        }
        for (i, &a) in zeros.iter().enumerate() {
            position[a as usize] = i;
        }

        // One-slot counts per query under the current state.
        let mut c1 = vec![0i64; m];
        for (j, q) in run.graph().queries().iter().enumerate() {
            c1[j] = q
                .iter()
                .filter(|&(a, _)| is_one[a as usize])
                .map(|(_, c)| c as i64)
                .sum();
        }

        let query_energy = |j: usize, count: i64| -> f64 {
            debug_assert!((0..=slots[j] as i64).contains(&count));
            match energy_kind {
                EnergyKind::Gaussian => {
                    moment_matched_energy(&noise, slots[j], count as u64, results[j])
                }
                EnergyKind::Exact => {
                    -query_log_likelihood(&noise, slots[j], count as u64, results[j])
                }
            }
        };

        let mut energy: f64 = (0..m).map(|j| query_energy(j, c1[j])).sum();
        let initial_energy = energy;
        let mut best_energy = energy;
        let mut best_ones = ones.clone();

        // Occupancy bookkeeping: accumulate the step index at which each
        // agent entered/left the one-set; O(1) per accepted swap.
        let mut entered = vec![0usize; n];
        let mut occupancy_steps = vec![0usize; n];

        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let beta_ratio = self.config.beta_end / self.config.beta_start;
        let mut accepted = 0;
        // Per-proposal count deltas, keyed by query id and kept in
        // ascending query order: the energy difference below is a float
        // sum, so its accumulation order must be deterministic (contract
        // rule 9 — an unordered `HashMap` here once made `diff` depend on
        // the per-process hash seed). Both adjacency lists are sorted by
        // construction, so a linear merge yields the sorted delta.
        let mut delta: Vec<(u32, i64)> = Vec::new();

        for step in 0..self.config.steps {
            if ones.is_empty() || zeros.is_empty() {
                break; // degenerate k ∈ {0, n}: nothing to swap
            }
            let frac = if self.config.steps > 1 {
                step as f64 / (self.config.steps - 1) as f64
            } else {
                1.0
            };
            let beta = self.config.beta_start * beta_ratio.powf(frac);

            let pos_out = rng.gen_range(0..ones.len());
            let pos_in = rng.gen_range(0..zeros.len());
            let agent_out = ones[pos_out];
            let agent_in = zeros[pos_in];

            merge_deltas(
                &adjacency[agent_out as usize],
                &adjacency[agent_in as usize],
                &mut delta,
            );
            let mut diff = 0.0;
            for &(j, d) in &delta {
                if d != 0 {
                    let j = j as usize;
                    diff += query_energy(j, c1[j] + d) - query_energy(j, c1[j]);
                }
            }

            let accept = diff <= 0.0 || rng.gen::<f64>() < (-beta * diff).exp();
            if accept {
                accepted += 1;
                energy += diff;
                for &(j, d) in &delta {
                    c1[j as usize] += d;
                }
                // Swap membership and occupancy accounting.
                occupancy_steps[agent_out as usize] += step - entered[agent_out as usize];
                entered[agent_in as usize] = step;
                is_one[agent_out as usize] = false;
                is_one[agent_in as usize] = true;
                ones[pos_out] = agent_in;
                zeros[pos_in] = agent_out;
                position[agent_in as usize] = pos_out;
                position[agent_out as usize] = pos_in;
                if energy < best_energy {
                    best_energy = energy;
                    best_ones = ones.clone();
                }
            }
        }

        // Close the occupancy intervals of agents still in the one-set.
        for &a in &ones {
            occupancy_steps[a as usize] += self.config.steps - entered[a as usize];
        }
        let occupancy: Vec<f64> = occupancy_steps
            .iter()
            .map(|&s| s as f64 / self.config.steps as f64)
            .collect();
        best_ones.sort_unstable();

        McmcOutput {
            best_energy,
            initial_energy,
            accepted,
            steps: self.config.steps,
            occupancy,
            best_ones,
        }
    }
}

/// Merges the two swapped agents' adjacency lists (each sorted by query
/// id) into per-query one-count deltas, `agent_out` contributing `-c` and
/// `agent_in` contributing `+c`. `delta` comes back sorted by query id, so
/// downstream float accumulation has a fixed order.
fn merge_deltas(out_adj: &[(u32, u32)], in_adj: &[(u32, u32)], delta: &mut Vec<(u32, i64)>) {
    delta.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < out_adj.len() && j < in_adj.len() {
        let (jo, co) = out_adj[i];
        let (ji, ci) = in_adj[j];
        if jo < ji {
            delta.push((jo, -(co as i64)));
            i += 1;
        } else if ji < jo {
            delta.push((ji, ci as i64));
            j += 1;
        } else {
            delta.push((jo, ci as i64 - co as i64));
            i += 1;
            j += 1;
        }
    }
    delta.extend(out_adj[i..].iter().map(|&(q, c)| (q, -(c as i64))));
    delta.extend(in_adj[j..].iter().map(|&(q, c)| (q, c as i64)));
}

/// The noiseless exact likelihood is an indicator — useless as an annealing
/// energy — so `Exact` silently degrades to the Gaussian surrogate there.
fn effective_energy(requested: EnergyKind, noise: &NoiseModel) -> EnergyKind {
    match (requested, noise) {
        (EnergyKind::Exact, NoiseModel::Noiseless) => EnergyKind::Gaussian,
        (kind, _) => kind,
    }
}

impl Decoder for McmcDecoder {
    fn decode(&self, run: &Run) -> Estimate {
        let out = self.solve(run);
        let mut bits = vec![false; run.instance().n()];
        for &a in &out.best_ones {
            bits[a as usize] = true;
        }
        Estimate::from_parts(bits, out.occupancy)
    }

    fn name(&self) -> &'static str {
        "annealed-mcmc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npd_core::{exact_recovery, Instance};
    use rand::rngs::StdRng;

    fn easy_run(noise: NoiseModel, seed: u64) -> Run {
        let mut rng = StdRng::seed_from_u64(seed);
        Instance::builder(200)
            .k(3)
            .queries(200)
            .noise(noise)
            .build()
            .unwrap()
            .sample(&mut rng)
    }

    #[test]
    fn recovers_easy_z_channel() {
        let run = easy_run(NoiseModel::z_channel(0.1), 21);
        let est = McmcDecoder::new().decode(&run);
        assert!(exact_recovery(&est, run.ground_truth()));
    }

    #[test]
    fn cold_start_recovers_noiseless() {
        let run = easy_run(NoiseModel::Noiseless, 22);
        let dec = McmcDecoder::with_config(McmcConfig {
            init: InitKind::Cold,
            steps: 60_000,
            ..McmcConfig::default()
        });
        let est = dec.decode(&run);
        assert!(exact_recovery(&est, run.ground_truth()));
    }

    #[test]
    fn best_energy_never_exceeds_initial() {
        let run = easy_run(NoiseModel::channel(0.2, 0.05), 23);
        let out = McmcDecoder::with_config(McmcConfig {
            init: InitKind::Cold,
            ..McmcConfig::default()
        })
        .solve(&run);
        assert!(out.best_energy <= out.initial_energy);
        assert!(out.accepted > 0);
    }

    #[test]
    fn deterministic_per_config() {
        let run = easy_run(NoiseModel::gaussian(1.0), 24);
        let dec = McmcDecoder::new();
        let a = dec.solve(&run);
        let b = dec.solve(&run);
        assert_eq!(a, b);
        // From a cold start the burn-in path depends on the seed, so the
        // time-averaged occupancies differ (a greedy warm start on an easy
        // instance would sit at the optimum and never accept a swap).
        let cold = |seed| {
            McmcDecoder::with_config(McmcConfig {
                seed,
                init: InitKind::Cold,
                ..McmcConfig::default()
            })
            .solve(&run)
        };
        assert_ne!(cold(1).occupancy, cold(7).occupancy);
    }

    #[test]
    fn occupancy_is_a_distribution_over_time() {
        let run = easy_run(NoiseModel::z_channel(0.3), 25);
        let out = McmcDecoder::new().solve(&run);
        assert!(out.occupancy.iter().all(|&o| (0.0..=1.0).contains(&o)));
        let total: f64 = out.occupancy.iter().sum();
        // k agents are "one" at every step, so occupancies sum to k.
        assert!((total - run.instance().k() as f64).abs() < 1e-9);
    }

    #[test]
    fn exact_energy_improves_on_truthlike_instances() {
        let run = easy_run(NoiseModel::z_channel(0.2), 26);
        let dec = McmcDecoder::with_config(McmcConfig {
            energy: EnergyKind::Exact,
            ..McmcConfig::default()
        });
        let est = dec.decode(&run);
        assert!(exact_recovery(&est, run.ground_truth()));
    }

    #[test]
    fn exact_falls_back_for_noiseless() {
        assert_eq!(
            effective_energy(EnergyKind::Exact, &NoiseModel::Noiseless),
            EnergyKind::Gaussian
        );
        assert_eq!(
            effective_energy(EnergyKind::Exact, &NoiseModel::z_channel(0.1)),
            EnergyKind::Exact
        );
    }

    #[test]
    #[should_panic(expected = "steps")]
    fn rejects_zero_steps() {
        McmcDecoder::with_config(McmcConfig {
            steps: 0,
            ..McmcConfig::default()
        });
    }

    #[test]
    fn handles_degenerate_all_ones() {
        // k = n leaves nothing to swap; the decoder must not panic.
        let mut rng = StdRng::seed_from_u64(27);
        let run = Instance::builder(10)
            .k(10)
            .queries(5)
            .build()
            .unwrap()
            .sample(&mut rng);
        let est = McmcDecoder::new().decode(&run);
        assert_eq!(est.k(), 10);
    }
}
