//! Belief propagation on the pooling factor graph.
//!
//! The bipartite pooling multigraph *is* a factor graph: agents are
//! variable nodes with a `Bernoulli(k/n)` prior, queries are factor nodes
//! observing a noisy sum of their members. Exact sum-factor messages would
//! cost a `Γ`-fold convolution per query, so — as is standard for dense
//! quantitative group testing — each factor approximates the *extrinsic*
//! contribution of the other members by a Gaussian matched to its first two
//! moments (a "relaxed BP" in the sense of the AMP literature; AMP itself
//! is the further large-system simplification of exactly this scheme).
//!
//! One BP round:
//!
//! 1. **Factor pass.** Query `a` aggregates the mean/variance of every
//!    member's contribution under its current incoming belief, then emits
//!    to each member `i` the log-likelihood ratio
//!    `ln N(σ̂ₐ; M₋ᵢ + μᵢ(1), V₋ᵢ + vᵢ(1)) − ln N(σ̂ₐ; M₋ᵢ + μᵢ(0), V₋ᵢ + vᵢ(0))`,
//!    where `(M₋ᵢ, V₋ᵢ)` are the totals with `i`'s contribution removed and
//!    `μᵢ(b), vᵢ(b)` are the moments of `i`'s own reading if its bit were
//!    `b` (multiplicities and the channel's per-slot flips included).
//! 2. **Variable pass.** Agent `i` combines the prior log-odds
//!    `ln(k/(n−k))` with all incoming ratios; the message back to factor
//!    `a` excludes `a`'s own contribution (the usual extrinsic rule), with
//!    optional damping.
//!
//! The final marginal log-odds rank the agents; the top `k` are declared
//! ones — the same rank-`k` output rule as every other decoder here.

use crate::likelihood::{query_noise_variance, slot_moments, VARIANCE_FLOOR};
use npd_core::{Decoder, Estimate, Run};
use npd_numerics::vector::resize_fill;
use npd_telemetry::{Event, TelemetrySink};
use serde::{Deserialize, Serialize};

/// Tuning knobs of the BP iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BpConfig {
    /// Maximum number of message-passing rounds.
    pub max_rounds: usize,
    /// Convergence threshold on the largest belief change.
    pub tolerance: f64,
    /// Damping `d ∈ [0, 1)` on variable→factor beliefs; `0` is undamped.
    ///
    /// The pooling graph is *dense* (`Γ = n/2` puts every agent in roughly
    /// 39% of all queries), and dense-graph BP is prone to period-2
    /// oscillation: with `d = 0.25` we measured a Z-channel instance
    /// (`n = 1000`, `p = 0.3`, `m = 320`) where the beliefs flip in unison
    /// every round and the final ranking inverts. `d = 0.5` (the default)
    /// was stable across the whole sweep at roughly twice the rounds of
    /// the undamped iteration.
    pub damping: f64,
}

impl Default for BpConfig {
    fn default() -> Self {
        Self {
            max_rounds: 80,
            tolerance: 1e-6,
            damping: 0.5,
        }
    }
}

/// Outcome diagnostics of a BP solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BpOutput {
    /// Final marginal log-odds per agent.
    pub log_odds: Vec<f64>,
    /// Rounds executed.
    pub rounds: usize,
    /// Whether the belief change dropped below the tolerance.
    pub converged: bool,
}

/// Gaussian-approximate belief propagation decoder.
///
/// # Examples
///
/// ```
/// use npd_core::{Decoder, Instance, NoiseModel};
/// use npd_decoders::BpDecoder;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let run = Instance::builder(300)
///     .k(4)
///     .queries(250)
///     .noise(NoiseModel::z_channel(0.1))
///     .build()
///     .unwrap()
///     .sample(&mut rng);
/// let estimate = BpDecoder::default().decode(&run);
/// assert_eq!(estimate.k(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BpDecoder {
    config: BpConfig,
}

impl BpDecoder {
    /// Creates the decoder with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the decoder with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `damping ∉ [0, 1)` or `max_rounds == 0`.
    pub fn with_config(config: BpConfig) -> Self {
        assert!(
            (0.0..1.0).contains(&config.damping),
            "BpDecoder: damping={} must be in [0,1)",
            config.damping
        );
        assert!(
            config.max_rounds > 0,
            "BpDecoder: max_rounds must be positive"
        );
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BpConfig {
        &self.config
    }

    /// Runs message passing and returns the full diagnostics (one-shot
    /// entry point; allocates a fresh [`BpWorkspace`]).
    pub fn solve(&self, run: &Run) -> BpOutput {
        let mut workspace = BpWorkspace::new();
        self.solve_with(run, &mut workspace)
    }

    /// Runs message passing reusing the caller's workspace buffers.
    ///
    /// The edge lists and message vectors are rebuilt from `run` on every
    /// call (their *contents* are per-run), but into buffers whose capacity
    /// persists — repeated solves on same-shaped pooling graphs perform no
    /// per-call heap allocation beyond the returned [`BpOutput`]. Output is
    /// identical to [`BpDecoder::solve`].
    pub fn solve_with(&self, run: &Run, ws: &mut BpWorkspace) -> BpOutput {
        let n = run.instance().n();
        let k = run.instance().k();
        let noise = run.instance().noise();
        let results = run.results();

        // Flattened edge lists, query-major.
        ws.edge_agent.clear();
        ws.edge_count.clear();
        ws.query_offsets.clear();
        ws.query_offsets.push(0);
        for q in run.graph().queries() {
            for (a, c) in q.iter() {
                ws.edge_agent.push(a);
                ws.edge_count.push(c as f64);
            }
            ws.query_offsets.push(ws.edge_agent.len());
        }
        let edges = ws.edge_agent.len();

        // Agent-major view: edge indices per agent.
        resize_fill(&mut ws.agent_offsets, n + 1, 0);
        for &a in &ws.edge_agent {
            ws.agent_offsets[a as usize + 1] += 1;
        }
        for i in 0..n {
            ws.agent_offsets[i + 1] += ws.agent_offsets[i];
        }
        resize_fill(&mut ws.agent_edges, edges, 0u32);
        ws.cursor.clear();
        ws.cursor.extend_from_slice(&ws.agent_offsets);
        for (e, &a) in ws.edge_agent.iter().enumerate() {
            ws.agent_edges[ws.cursor[a as usize]] = e as u32;
            ws.cursor[a as usize] += 1;
        }

        // Per-edge slot moments of the member's own contribution under each
        // hypothetical bit: mean/variance of (count c) slots reading one.
        let (m1, v1) = slot_moments(noise, true);
        let (m0, v0) = slot_moments(noise, false);
        let base_var = query_noise_variance(noise) + VARIANCE_FLOOR;

        let prior = k as f64 / n as f64;
        let prior_llr = (prior / (1.0 - prior)).ln();

        // Variable→factor beliefs (probability of bit one) and
        // factor→variable log-likelihood ratios, both per edge.
        resize_fill(&mut ws.mu, edges, prior);
        resize_fill(&mut ws.llr, edges, 0.0f64);
        resize_fill(&mut ws.edge_mean, edges, 0.0f64);
        resize_fill(&mut ws.edge_var, edges, 0.0f64);
        // Cloned out first: the field borrows below split the workspace,
        // and the handle is a cheap Arc clone (or a no-op when disabled).
        let sink = ws.sink.clone();
        let mu = &mut ws.mu;
        let llr = &mut ws.llr;
        let edge_mean = &mut ws.edge_mean;
        let edge_var = &mut ws.edge_var;
        let edge_count = &ws.edge_count;
        let query_offsets = &ws.query_offsets;
        let agent_offsets = &ws.agent_offsets;
        let agent_edges = &ws.agent_edges;

        let mut rounds = 0;
        let mut converged = false;
        resize_fill(&mut ws.marginals, n, prior_llr);
        let marginals = &mut ws.marginals;

        while rounds < self.config.max_rounds {
            rounds += 1;

            // --- Factor pass: fill llr from mu. ---
            for (j, &y) in results.iter().enumerate() {
                let span = query_offsets[j]..query_offsets[j + 1];
                let mut total_mean = 0.0;
                let mut total_var = base_var;
                for e in span.clone() {
                    let c = edge_count[e];
                    let p1 = mu[e];
                    let mean_one = c * m1;
                    let mean_zero = c * m0;
                    let mean = p1 * mean_one + (1.0 - p1) * mean_zero;
                    // Mixture variance: expected conditional variance plus
                    // variance of the conditional mean.
                    let var = p1 * (c * v1)
                        + (1.0 - p1) * (c * v0)
                        + p1 * (1.0 - p1) * (mean_one - mean_zero).powi(2);
                    // Cache the per-edge moments for the extrinsic loop
                    // below instead of recomputing the mixture formulas.
                    edge_mean[e] = mean;
                    edge_var[e] = var;
                    total_mean += mean;
                    total_var += var;
                }
                for e in span {
                    let c = edge_count[e];
                    let mean_one = c * m1;
                    let mean_zero = c * m0;
                    let ext_mean = total_mean - edge_mean[e];
                    let ext_var = (total_var - edge_var[e]).max(VARIANCE_FLOOR);
                    let var_one = (ext_var + c * v1).max(VARIANCE_FLOOR);
                    let var_zero = (ext_var + c * v0).max(VARIANCE_FLOOR);
                    let d1 = y - ext_mean - mean_one;
                    let d0 = y - ext_mean - mean_zero;
                    llr[e] = 0.5 * (var_zero.ln() - var_one.ln()) + d0 * d0 / (2.0 * var_zero)
                        - d1 * d1 / (2.0 * var_one);
                }
            }

            // --- Variable pass: fill mu from llr; track belief drift. ---
            let mut max_change = 0.0f64;
            for i in 0..n {
                let span = agent_offsets[i]..agent_offsets[i + 1];
                let total: f64 = agent_edges[span.clone()]
                    .iter()
                    .map(|&e| llr[e as usize])
                    .sum();
                marginals[i] = prior_llr + total;
                for &e in &agent_edges[span] {
                    let e = e as usize;
                    let extrinsic = prior_llr + total - llr[e];
                    let fresh = sigmoid(extrinsic);
                    let next = self.config.damping * mu[e] + (1.0 - self.config.damping) * fresh;
                    max_change = max_change.max((next - mu[e]).abs());
                    mu[e] = next.clamp(1e-12, 1.0 - 1e-12);
                }
            }

            sink.emit(|| {
                Event::instant("bp.round")
                    .phase("bp")
                    .round(rounds as u64 - 1)
                    .f64("max_change", max_change)
            });
            if max_change < self.config.tolerance {
                converged = true;
                break;
            }
        }

        BpOutput {
            log_odds: marginals.clone(),
            rounds,
            converged,
        }
    }
}

/// Reusable buffers for [`BpDecoder::solve_with`].
///
/// Holds the query-major edge lists, the agent-major index, and the
/// per-edge message vectors. One `n = 1000`, `m = 300` solve touches ~12
/// MB of freshly allocated edge state when built one-shot; reusing the
/// workspace across a Monte-Carlo sweep keeps all of it warm.
#[derive(Debug, Clone, Default)]
pub struct BpWorkspace {
    edge_agent: Vec<u32>,
    edge_count: Vec<f64>,
    query_offsets: Vec<usize>,
    agent_offsets: Vec<usize>,
    agent_edges: Vec<u32>,
    cursor: Vec<usize>,
    mu: Vec<f64>,
    llr: Vec<f64>,
    edge_mean: Vec<f64>,
    edge_var: Vec<f64>,
    marginals: Vec<f64>,
    /// Telemetry handle (disabled by default): one `bp.round` event per
    /// message pass with the maximum belief drift.
    sink: TelemetrySink,
}

impl BpWorkspace {
    /// Creates an empty workspace (buffers grow on first solve).
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a telemetry sink. Each subsequent solve records one
    /// `bp.round` event per message pass (round = pass index) carrying
    /// `max_change`, the maximum absolute belief drift of the variable
    /// pass — the quantity the convergence check watches. Recorded from
    /// the serial pass boundary, so the stream is bit-identical across
    /// thread counts.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.sink = sink;
    }
}

impl Decoder for BpDecoder {
    fn decode(&self, run: &Run) -> Estimate {
        let out = self.solve(run);
        Estimate::from_scores(out.log_odds, run.instance().k())
    }

    fn name(&self) -> &'static str {
        "belief-propagation"
    }
}

/// Numerically clamped logistic function.
fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npd_core::{exact_recovery, Instance, NoiseModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn recovery_rate(noise: NoiseModel, n: usize, k: usize, m: usize, trials: u64) -> f64 {
        let decoder = BpDecoder::new();
        let mut hits = 0;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let run = Instance::builder(n)
                .k(k)
                .queries(m)
                .noise(noise)
                .build()
                .unwrap()
                .sample(&mut rng);
            let est = decoder.decode(&run);
            if exact_recovery(&est, run.ground_truth()) {
                hits += 1;
            }
        }
        hits as f64 / trials as f64
    }

    #[test]
    fn recovers_noiseless() {
        assert!(recovery_rate(NoiseModel::Noiseless, 300, 4, 200, 5) >= 0.8);
    }

    #[test]
    fn recovers_z_channel() {
        assert!(recovery_rate(NoiseModel::z_channel(0.1), 300, 4, 300, 5) >= 0.8);
    }

    #[test]
    fn recovers_gaussian() {
        assert!(recovery_rate(NoiseModel::gaussian(1.0), 300, 4, 300, 5) >= 0.8);
    }

    #[test]
    fn beliefs_stay_finite() {
        let mut rng = StdRng::seed_from_u64(2);
        let run = Instance::builder(200)
            .k(3)
            .queries(50)
            .noise(NoiseModel::channel(0.2, 0.1))
            .build()
            .unwrap()
            .sample(&mut rng);
        let out = BpDecoder::new().solve(&run);
        assert!(out.log_odds.iter().all(|x| x.is_finite()));
        assert!(out.rounds >= 1);
    }

    #[test]
    fn one_agents_rank_higher_on_average() {
        let mut rng = StdRng::seed_from_u64(3);
        let run = Instance::builder(400)
            .k(5)
            .queries(300)
            .noise(NoiseModel::z_channel(0.2))
            .build()
            .unwrap()
            .sample(&mut rng);
        let out = BpDecoder::new().solve(&run);
        let truth = run.ground_truth();
        let mean = |pred: bool| -> f64 {
            let vals: Vec<f64> = (0..400)
                .filter(|&i| truth.is_one(i) == pred)
                .map(|i| out.log_odds[i])
                .collect();
            vals.iter().sum::<f64>() / vals.len() as f64
        };
        assert!(
            mean(true) > mean(false) + 1.0,
            "one-agents should carry clearly larger log-odds"
        );
    }

    #[test]
    fn config_validation() {
        let cfg = BpConfig {
            damping: 0.5,
            ..BpConfig::default()
        };
        let dec = BpDecoder::with_config(cfg);
        assert_eq!(dec.config().damping, 0.5);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn rejects_bad_damping() {
        BpDecoder::with_config(BpConfig {
            damping: 1.0,
            ..BpConfig::default()
        });
    }

    #[test]
    fn workspace_reuse_is_bit_identical_to_one_shot() {
        let decoder = BpDecoder::new();
        let mut ws = BpWorkspace::new();
        for seed in 0..4 {
            let mut rng = StdRng::seed_from_u64(60 + seed);
            let run = Instance::builder(250)
                .k(3)
                .queries(180)
                .noise(NoiseModel::z_channel(0.15))
                .build()
                .unwrap()
                .sample(&mut rng);
            let fresh = decoder.solve(&run);
            let reused = decoder.solve_with(&run, &mut ws);
            assert_eq!(fresh, reused, "seed={seed}");
        }
    }

    #[test]
    fn converges_on_easy_instance() {
        let mut rng = StdRng::seed_from_u64(4);
        let run = Instance::builder(150)
            .k(2)
            .queries(200)
            .build()
            .unwrap()
            .sample(&mut rng);
        let out = BpDecoder::new().solve(&run);
        assert!(out.converged, "BP should converge within the round budget");
    }
}
