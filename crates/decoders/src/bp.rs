//! Belief propagation on the pooling factor graph.
//!
//! The bipartite pooling multigraph *is* a factor graph: agents are
//! variable nodes with a `Bernoulli(k/n)` prior, queries are factor nodes
//! observing a noisy sum of their members. Exact sum-factor messages would
//! cost a `Γ`-fold convolution per query, so — as is standard for dense
//! quantitative group testing — each factor approximates the *extrinsic*
//! contribution of the other members by a Gaussian matched to its first two
//! moments (a "relaxed BP" in the sense of the AMP literature; AMP itself
//! is the further large-system simplification of exactly this scheme).
//!
//! One BP round:
//!
//! 1. **Factor pass.** Query `a` aggregates the mean/variance of every
//!    member's contribution under its current incoming belief, then emits
//!    to each member `i` the log-likelihood ratio
//!    `ln N(σ̂ₐ; M₋ᵢ + μᵢ(1), V₋ᵢ + vᵢ(1)) − ln N(σ̂ₐ; M₋ᵢ + μᵢ(0), V₋ᵢ + vᵢ(0))`,
//!    where `(M₋ᵢ, V₋ᵢ)` are the totals with `i`'s contribution removed and
//!    `μᵢ(b), vᵢ(b)` are the moments of `i`'s own reading if its bit were
//!    `b` (multiplicities and the channel's per-slot flips included).
//! 2. **Variable pass.** Agent `i` combines the prior log-odds
//!    `ln(k/(n−k))` with all incoming ratios; the message back to factor
//!    `a` excludes `a`'s own contribution (the usual extrinsic rule), with
//!    optional damping.
//!
//! The final marginal log-odds rank the agents; the top `k` are declared
//! ones — the same rank-`k` output rule as every other decoder here.

use crate::likelihood::{query_noise_variance, slot_moments, VARIANCE_FLOOR};
use npd_core::{Decoder, Estimate, Run};
use serde::{Deserialize, Serialize};

/// Tuning knobs of the BP iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BpConfig {
    /// Maximum number of message-passing rounds.
    pub max_rounds: usize,
    /// Convergence threshold on the largest belief change.
    pub tolerance: f64,
    /// Damping `d ∈ [0, 1)` on variable→factor beliefs; `0` is undamped.
    ///
    /// The pooling graph is *dense* (`Γ = n/2` puts every agent in roughly
    /// 39% of all queries), and dense-graph BP is prone to period-2
    /// oscillation: with `d = 0.25` we measured a Z-channel instance
    /// (`n = 1000`, `p = 0.3`, `m = 320`) where the beliefs flip in unison
    /// every round and the final ranking inverts. `d = 0.5` (the default)
    /// was stable across the whole sweep at roughly twice the rounds of
    /// the undamped iteration.
    pub damping: f64,
}

impl Default for BpConfig {
    fn default() -> Self {
        Self {
            max_rounds: 80,
            tolerance: 1e-6,
            damping: 0.5,
        }
    }
}

/// Outcome diagnostics of a BP solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BpOutput {
    /// Final marginal log-odds per agent.
    pub log_odds: Vec<f64>,
    /// Rounds executed.
    pub rounds: usize,
    /// Whether the belief change dropped below the tolerance.
    pub converged: bool,
}

/// Gaussian-approximate belief propagation decoder.
///
/// # Examples
///
/// ```
/// use npd_core::{Decoder, Instance, NoiseModel};
/// use npd_decoders::BpDecoder;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let run = Instance::builder(300)
///     .k(4)
///     .queries(250)
///     .noise(NoiseModel::z_channel(0.1))
///     .build()
///     .unwrap()
///     .sample(&mut rng);
/// let estimate = BpDecoder::default().decode(&run);
/// assert_eq!(estimate.k(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BpDecoder {
    config: BpConfig,
}

impl BpDecoder {
    /// Creates the decoder with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the decoder with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `damping ∉ [0, 1)` or `max_rounds == 0`.
    pub fn with_config(config: BpConfig) -> Self {
        assert!(
            (0.0..1.0).contains(&config.damping),
            "BpDecoder: damping={} must be in [0,1)",
            config.damping
        );
        assert!(config.max_rounds > 0, "BpDecoder: max_rounds must be positive");
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BpConfig {
        &self.config
    }

    /// Runs message passing and returns the full diagnostics.
    pub fn solve(&self, run: &Run) -> BpOutput {
        let n = run.instance().n();
        let k = run.instance().k();
        let noise = run.instance().noise();
        let results = run.results();

        // Flattened edge lists, query-major.
        let mut edge_agent: Vec<u32> = Vec::new();
        let mut edge_count: Vec<f64> = Vec::new();
        let mut query_offsets: Vec<usize> = Vec::with_capacity(results.len() + 1);
        query_offsets.push(0);
        for q in run.graph().queries() {
            for (a, c) in q.iter() {
                edge_agent.push(a);
                edge_count.push(c as f64);
            }
            query_offsets.push(edge_agent.len());
        }
        let edges = edge_agent.len();

        // Agent-major view: edge indices per agent.
        let mut agent_offsets = vec![0usize; n + 1];
        for &a in &edge_agent {
            agent_offsets[a as usize + 1] += 1;
        }
        for i in 0..n {
            agent_offsets[i + 1] += agent_offsets[i];
        }
        let mut agent_edges = vec![0u32; edges];
        let mut cursor = agent_offsets.clone();
        for (e, &a) in edge_agent.iter().enumerate() {
            agent_edges[cursor[a as usize]] = e as u32;
            cursor[a as usize] += 1;
        }

        // Per-edge slot moments of the member's own contribution under each
        // hypothetical bit: mean/variance of (count c) slots reading one.
        let (m1, v1) = slot_moments(noise, true);
        let (m0, v0) = slot_moments(noise, false);
        let base_var = query_noise_variance(noise) + VARIANCE_FLOOR;

        let prior = k as f64 / n as f64;
        let prior_llr = (prior / (1.0 - prior)).ln();

        // Variable→factor beliefs (probability of bit one) and
        // factor→variable log-likelihood ratios, both per edge.
        let mut mu = vec![prior; edges];
        let mut llr = vec![0.0f64; edges];

        let mut rounds = 0;
        let mut converged = false;
        let mut marginals = vec![prior_llr; n];

        while rounds < self.config.max_rounds {
            rounds += 1;

            // --- Factor pass: fill llr from mu. ---
            for (j, &y) in results.iter().enumerate() {
                let span = query_offsets[j]..query_offsets[j + 1];
                let mut total_mean = 0.0;
                let mut total_var = base_var;
                for e in span.clone() {
                    let c = edge_count[e];
                    let p1 = mu[e];
                    let mean_one = c * m1;
                    let mean_zero = c * m0;
                    let mean = p1 * mean_one + (1.0 - p1) * mean_zero;
                    // Mixture variance: expected conditional variance plus
                    // variance of the conditional mean.
                    let var = p1 * (c * v1)
                        + (1.0 - p1) * (c * v0)
                        + p1 * (1.0 - p1) * (mean_one - mean_zero).powi(2);
                    total_mean += mean;
                    total_var += var;
                }
                for e in span {
                    let c = edge_count[e];
                    let p1 = mu[e];
                    let mean_one = c * m1;
                    let mean_zero = c * m0;
                    let mean = p1 * mean_one + (1.0 - p1) * mean_zero;
                    let var = p1 * (c * v1)
                        + (1.0 - p1) * (c * v0)
                        + p1 * (1.0 - p1) * (mean_one - mean_zero).powi(2);
                    let ext_mean = total_mean - mean;
                    let ext_var = (total_var - var).max(VARIANCE_FLOOR);
                    let var_one = (ext_var + c * v1).max(VARIANCE_FLOOR);
                    let var_zero = (ext_var + c * v0).max(VARIANCE_FLOOR);
                    let d1 = y - ext_mean - mean_one;
                    let d0 = y - ext_mean - mean_zero;
                    llr[e] = 0.5 * (var_zero.ln() - var_one.ln())
                        + d0 * d0 / (2.0 * var_zero)
                        - d1 * d1 / (2.0 * var_one);
                }
            }

            // --- Variable pass: fill mu from llr; track belief drift. ---
            let mut max_change = 0.0f64;
            for i in 0..n {
                let span = agent_offsets[i]..agent_offsets[i + 1];
                let total: f64 = agent_edges[span.clone()]
                    .iter()
                    .map(|&e| llr[e as usize])
                    .sum();
                marginals[i] = prior_llr + total;
                for &e in &agent_edges[span] {
                    let e = e as usize;
                    let extrinsic = prior_llr + total - llr[e];
                    let fresh = sigmoid(extrinsic);
                    let next = self.config.damping * mu[e]
                        + (1.0 - self.config.damping) * fresh;
                    max_change = max_change.max((next - mu[e]).abs());
                    mu[e] = next.clamp(1e-12, 1.0 - 1e-12);
                }
            }

            if max_change < self.config.tolerance {
                converged = true;
                break;
            }
        }

        BpOutput {
            log_odds: marginals,
            rounds,
            converged,
        }
    }
}

impl Decoder for BpDecoder {
    fn decode(&self, run: &Run) -> Estimate {
        let out = self.solve(run);
        Estimate::from_scores(out.log_odds, run.instance().k())
    }

    fn name(&self) -> &'static str {
        "belief-propagation"
    }
}

/// Numerically clamped logistic function.
fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npd_core::{exact_recovery, Instance, NoiseModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn recovery_rate(noise: NoiseModel, n: usize, k: usize, m: usize, trials: u64) -> f64 {
        let decoder = BpDecoder::new();
        let mut hits = 0;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let run = Instance::builder(n)
                .k(k)
                .queries(m)
                .noise(noise)
                .build()
                .unwrap()
                .sample(&mut rng);
            let est = decoder.decode(&run);
            if exact_recovery(&est, run.ground_truth()) {
                hits += 1;
            }
        }
        hits as f64 / trials as f64
    }

    #[test]
    fn recovers_noiseless() {
        assert!(recovery_rate(NoiseModel::Noiseless, 300, 4, 200, 5) >= 0.8);
    }

    #[test]
    fn recovers_z_channel() {
        assert!(recovery_rate(NoiseModel::z_channel(0.1), 300, 4, 300, 5) >= 0.8);
    }

    #[test]
    fn recovers_gaussian() {
        assert!(recovery_rate(NoiseModel::gaussian(1.0), 300, 4, 300, 5) >= 0.8);
    }

    #[test]
    fn beliefs_stay_finite() {
        let mut rng = StdRng::seed_from_u64(2);
        let run = Instance::builder(200)
            .k(3)
            .queries(50)
            .noise(NoiseModel::channel(0.2, 0.1))
            .build()
            .unwrap()
            .sample(&mut rng);
        let out = BpDecoder::new().solve(&run);
        assert!(out.log_odds.iter().all(|x| x.is_finite()));
        assert!(out.rounds >= 1);
    }

    #[test]
    fn one_agents_rank_higher_on_average() {
        let mut rng = StdRng::seed_from_u64(3);
        let run = Instance::builder(400)
            .k(5)
            .queries(300)
            .noise(NoiseModel::z_channel(0.2))
            .build()
            .unwrap()
            .sample(&mut rng);
        let out = BpDecoder::new().solve(&run);
        let truth = run.ground_truth();
        let mean =
            |pred: bool| -> f64 {
                let vals: Vec<f64> = (0..400)
                    .filter(|&i| truth.is_one(i) == pred)
                    .map(|i| out.log_odds[i])
                    .collect();
                vals.iter().sum::<f64>() / vals.len() as f64
            };
        assert!(
            mean(true) > mean(false) + 1.0,
            "one-agents should carry clearly larger log-odds"
        );
    }

    #[test]
    fn config_validation() {
        let cfg = BpConfig {
            damping: 0.5,
            ..BpConfig::default()
        };
        let dec = BpDecoder::with_config(cfg);
        assert_eq!(dec.config().damping, 0.5);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn rejects_bad_damping() {
        BpDecoder::with_config(BpConfig {
            damping: 1.0,
            ..BpConfig::default()
        });
    }

    #[test]
    fn converges_on_easy_instance() {
        let mut rng = StdRng::seed_from_u64(4);
        let run = Instance::builder(150)
            .k(2)
            .queries(200)
            .build()
            .unwrap()
            .sample(&mut rng);
        let out = BpDecoder::new().solve(&run);
        assert!(out.converged, "BP should converge within the round budget");
    }
}
