//! FISTA — accelerated proximal gradient descent for the lasso relaxation.
//!
//! The pooled data problem is the `{0,1}`-constrained special case of
//! compressed sensing (the paper makes this connection when motivating
//! AMP). The classic convex relaxation drops the integrality constraint and
//! solves
//!
//! ```text
//! min_x  ½‖ỹ − B·x‖² + μ‖x‖₁
//! ```
//!
//! on the centered system of [`npd_amp::preprocess`]. We minimize with
//! FISTA (Beck–Teboulle 2009): gradient steps at rate `1/L` — `L` estimated
//! by power iteration on `BᵀB` — plus Nesterov momentum and a
//! soft-threshold proximal map. The top-`k` coordinates of the minimizer
//! are declared ones, the same output rule as every decoder here.
//!
//! Compared to AMP, FISTA solves a *fixed* convex surrogate without the
//! Onsager correction or prior knowledge beyond sparsity; it is the
//! standard "what would a generic sparse solver do" baseline against which
//! the problem-aware algorithms (greedy, AMP, BP) are judged.

use npd_amp::preprocess::{prepare, Prepared};
use npd_core::{Decoder, Estimate, Run};
use npd_numerics::vector;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Tuning knobs of the FISTA solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FistaConfig {
    /// Maximum number of proximal gradient iterations.
    pub max_iterations: usize,
    /// Convergence threshold on `‖x_{t+1} − x_t‖∞`.
    pub tolerance: f64,
    /// Regularization as a fraction of `‖Bᵀỹ‖∞` (the smallest value that
    /// zeroes the lasso solution); `μ = lambda_factor · ‖Bᵀỹ‖∞`.
    pub lambda_factor: f64,
    /// Power-iteration steps for the Lipschitz estimate.
    pub power_iterations: usize,
}

impl Default for FistaConfig {
    fn default() -> Self {
        Self {
            max_iterations: 400,
            tolerance: 1e-7,
            lambda_factor: 0.05,
            power_iterations: 30,
        }
    }
}

/// Diagnostics of one FISTA solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FistaOutput {
    /// Final (relaxed) signal estimate.
    pub estimate: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the iterate change dropped below the tolerance.
    pub converged: bool,
    /// Estimated Lipschitz constant `L ≈ ‖BᵀB‖₂`.
    pub lipschitz: f64,
    /// The regularization weight μ actually used.
    pub lambda: f64,
}

/// Lasso decoder via FISTA.
///
/// # Examples
///
/// ```
/// use npd_core::{Decoder, Instance, NoiseModel};
/// use npd_decoders::FistaDecoder;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(6);
/// let run = Instance::builder(300)
///     .k(4)
///     .queries(260)
///     .noise(NoiseModel::gaussian(1.0))
///     .build()
///     .unwrap()
///     .sample(&mut rng);
/// let estimate = FistaDecoder::default().decode(&run);
/// assert_eq!(estimate.k(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FistaDecoder {
    config: FistaConfig,
}

impl FistaDecoder {
    /// Creates the decoder with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the decoder with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `max_iterations == 0`, `lambda_factor < 0`, or
    /// `power_iterations == 0`.
    pub fn with_config(config: FistaConfig) -> Self {
        assert!(
            config.max_iterations > 0,
            "FistaDecoder: max_iterations must be positive"
        );
        assert!(
            config.lambda_factor >= 0.0,
            "FistaDecoder: lambda_factor={} must be non-negative",
            config.lambda_factor
        );
        assert!(
            config.power_iterations > 0,
            "FistaDecoder: power_iterations must be positive"
        );
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &FistaConfig {
        &self.config
    }

    /// Runs the solver and returns the full diagnostics.
    pub fn solve(&self, run: &Run) -> FistaOutput {
        let Prepared {
            matrix: b,
            observations: y,
            ..
        } = prepare(run);
        let n = b.cols();

        let lipschitz = estimate_lipschitz(&b, self.config.power_iterations);
        let step = 1.0 / (lipschitz * 1.02);

        let correlation = b.matvec_t(&y);
        let max_corr = correlation.iter().fold(0.0f64, |acc, &v| acc.max(v.abs()));
        let lambda = self.config.lambda_factor * max_corr;
        let threshold = step * lambda;

        let mut x = vec![0.0f64; n];
        let mut z = x.clone();
        let mut t = 1.0f64;
        let mut iterations = 0;
        let mut converged = false;

        while iterations < self.config.max_iterations {
            iterations += 1;
            // Gradient of ½‖y − Bz‖² at z is Bᵀ(Bz − y).
            let mut residual = b.matvec(&z);
            for (r, &yi) in residual.iter_mut().zip(&y) {
                *r -= yi;
            }
            let grad = b.matvec_t(&residual);

            let mut x_next = vec![0.0f64; n];
            let mut max_change = 0.0f64;
            for i in 0..n {
                x_next[i] = soft_threshold(z[i] - step * grad[i], threshold);
                max_change = max_change.max((x_next[i] - x[i]).abs());
            }

            let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
            let momentum = (t - 1.0) / t_next;
            for i in 0..n {
                z[i] = x_next[i] + momentum * (x_next[i] - x[i]);
            }
            x = x_next;
            t = t_next;

            if max_change < self.config.tolerance {
                converged = true;
                break;
            }
        }

        FistaOutput {
            estimate: x,
            iterations,
            converged,
            lipschitz,
            lambda,
        }
    }
}

impl Decoder for FistaDecoder {
    fn decode(&self, run: &Run) -> Estimate {
        let out = self.solve(run);
        Estimate::from_scores(out.estimate, run.instance().k())
    }

    fn name(&self) -> &'static str {
        "fista-lasso"
    }
}

/// Largest eigenvalue of `BᵀB` by power iteration (deterministic seed).
fn estimate_lipschitz(b: &npd_amp::CenteredMatrix, iterations: usize) -> f64 {
    let n = b.cols();
    let mut rng = SmallRng::seed_from_u64(0x5eed_f157);
    let mut v: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
    let norm = vector::norm2(&v).max(f64::MIN_POSITIVE);
    for vi in &mut v {
        *vi /= norm;
    }
    let mut eigen = 1.0;
    for _ in 0..iterations {
        let w = b.matvec_t(&b.matvec(&v));
        eigen = vector::norm2(&w);
        if eigen <= f64::MIN_POSITIVE {
            return 1.0; // zero matrix: any step size works
        }
        v = w;
        for vi in &mut v {
            *vi /= eigen;
        }
    }
    eigen
}

/// `sign(x)·max(|x| − t, 0)`.
fn soft_threshold(x: f64, t: f64) -> f64 {
    if x > t {
        x - t
    } else if x < -t {
        x + t
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npd_core::{exact_recovery, Instance, NoiseModel};
    use rand::rngs::StdRng;

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
    }

    #[test]
    fn recovers_noiseless() {
        let mut rng = StdRng::seed_from_u64(31);
        let run = Instance::builder(300)
            .k(4)
            .queries(260)
            .build()
            .unwrap()
            .sample(&mut rng);
        let est = FistaDecoder::new().decode(&run);
        assert!(exact_recovery(&est, run.ground_truth()));
    }

    #[test]
    fn recovers_under_channel_noise() {
        let mut rng = StdRng::seed_from_u64(32);
        let run = Instance::builder(300)
            .k(4)
            .queries(350)
            .noise(NoiseModel::z_channel(0.1))
            .build()
            .unwrap()
            .sample(&mut rng);
        let est = FistaDecoder::new().decode(&run);
        assert!(exact_recovery(&est, run.ground_truth()));
    }

    #[test]
    fn diagnostics_are_sensible() {
        let mut rng = StdRng::seed_from_u64(33);
        let run = Instance::builder(200)
            .k(3)
            .queries(150)
            .noise(NoiseModel::gaussian(1.0))
            .build()
            .unwrap()
            .sample(&mut rng);
        let out = FistaDecoder::new().solve(&run);
        assert!(out.lipschitz > 0.0);
        assert!(out.lambda > 0.0);
        assert!(out.iterations >= 1);
        assert!(out.estimate.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic() {
        let mut rng = StdRng::seed_from_u64(34);
        let run = Instance::builder(150)
            .k(3)
            .queries(120)
            .build()
            .unwrap()
            .sample(&mut rng);
        let a = FistaDecoder::new().solve(&run);
        let b = FistaDecoder::new().solve(&run);
        assert_eq!(a, b);
    }

    #[test]
    fn stronger_regularization_yields_sparser_minimizer() {
        let mut rng = StdRng::seed_from_u64(35);
        let run = Instance::builder(200)
            .k(5)
            .queries(150)
            .noise(NoiseModel::gaussian(1.0))
            .build()
            .unwrap()
            .sample(&mut rng);
        let sparse = FistaDecoder::with_config(FistaConfig {
            lambda_factor: 0.5,
            ..FistaConfig::default()
        })
        .solve(&run);
        let dense = FistaDecoder::with_config(FistaConfig {
            lambda_factor: 0.01,
            ..FistaConfig::default()
        })
        .solve(&run);
        let support = |x: &[f64]| x.iter().filter(|v| v.abs() > 1e-12).count();
        assert!(support(&sparse.estimate) < support(&dense.estimate));
    }

    #[test]
    #[should_panic(expected = "lambda_factor")]
    fn rejects_negative_lambda() {
        FistaDecoder::with_config(FistaConfig {
            lambda_factor: -0.1,
            ..FistaConfig::default()
        });
    }
}
