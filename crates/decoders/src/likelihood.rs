//! Exact and moment-matched observation likelihoods.
//!
//! Every decoder in this crate reasons about the same question: *how likely
//! is the observed query result `σ̂ₐ` if the query's `Γ` slots touch `c₁`
//! one-agents?* Under the paper's models the answer depends only on `c₁`:
//!
//! * **noiseless** — `σ̂ₐ = c₁` deterministically;
//! * **noisy query** (Section II-B) — `σ̂ₐ ~ N(c₁, λ²)`;
//! * **noisy channel** (Section II-A) — every slot flips independently, so
//!   `σ̂ₐ ~ Bin(c₁, 1−p) + Bin(Γ−c₁, q)`, a binomial convolution.
//!
//! [`query_log_likelihood`] evaluates these exactly (log-sum-exp over the
//! convolution for the channel); [`moment_matched_energy`] provides the
//! Gaussian surrogate `−ln N(σ̂ₐ; μ(c₁), v(c₁))` that the MCMC and BP
//! decoders use where the exact form would be too expensive or degenerate.

use npd_core::NoiseModel;
use npd_numerics::special::ln_binomial_pmf;

/// Natural log of `√(2π)`.
const LN_SQRT_2PI: f64 = 0.918_938_533_204_672_8;

/// Variance floor that keeps Gaussian surrogates well-defined for the
/// noiseless model (where the true conditional variance is zero).
pub const VARIANCE_FLOOR: f64 = 1e-6;

/// Mean and variance of the *per-slot* reading for a slot whose agent holds
/// `bit`.
///
/// Under the channel a one-slot reads one with probability `1−p` and a
/// zero-slot with probability `q`; under the sum models (noiseless / noisy
/// query) the slot reads its bit exactly and the randomness, if any, sits on
/// the whole query instead.
pub fn slot_moments(noise: &NoiseModel, bit: bool) -> (f64, f64) {
    match *noise {
        NoiseModel::Channel { p, q } => {
            if bit {
                (1.0 - p, p * (1.0 - p))
            } else {
                (q, q * (1.0 - q))
            }
        }
        NoiseModel::Noiseless | NoiseModel::Query { .. } => (if bit { 1.0 } else { 0.0 }, 0.0),
    }
}

/// Additive per-query noise variance: `λ²` for the noisy query model, zero
/// otherwise.
pub fn query_noise_variance(noise: &NoiseModel) -> f64 {
    match *noise {
        NoiseModel::Query { lambda } => lambda * lambda,
        NoiseModel::Noiseless | NoiseModel::Channel { .. } => 0.0,
    }
}

/// Exact log-likelihood `ln P(σ̂ₐ = observed | c₁ one-slots out of Γ)`.
///
/// Returns `f64::NEG_INFINITY` for observations the model cannot produce
/// (e.g. a non-integer count under the channel, or a mismatched sum in the
/// noiseless model).
///
/// # Panics
///
/// Panics if `one_slots > gamma`.
pub fn query_log_likelihood(noise: &NoiseModel, gamma: u64, one_slots: u64, observed: f64) -> f64 {
    assert!(
        one_slots <= gamma,
        "query_log_likelihood: one_slots={one_slots} exceeds gamma={gamma}"
    );
    match *noise {
        NoiseModel::Noiseless => {
            if observed == one_slots as f64 {
                0.0
            } else {
                f64::NEG_INFINITY
            }
        }
        NoiseModel::Query { lambda } => {
            if lambda == 0.0 {
                return if observed == one_slots as f64 {
                    0.0
                } else {
                    f64::NEG_INFINITY
                };
            }
            let z = (observed - one_slots as f64) / lambda;
            -0.5 * z * z - lambda.ln() - LN_SQRT_2PI
        }
        NoiseModel::Channel { p, q } => channel_log_pmf(gamma, one_slots, p, q, observed),
    }
}

/// `ln P(Bin(c₁, 1−p) + Bin(c₀, q) = y)` via log-sum-exp over the
/// convolution.
fn channel_log_pmf(gamma: u64, c1: u64, p: f64, q: f64, observed: f64) -> f64 {
    if observed < 0.0 || observed > gamma as f64 || observed.fract() != 0.0 {
        return f64::NEG_INFINITY;
    }
    let y = observed as u64;
    let c0 = gamma - c1;
    // j = number of one-slots that read one; y − j zero-slots flipped to one.
    let j_lo = y.saturating_sub(c0);
    let j_hi = y.min(c1);
    if j_lo > j_hi {
        return f64::NEG_INFINITY;
    }
    let mut max_term = f64::NEG_INFINITY;
    let mut terms = Vec::with_capacity((j_hi - j_lo + 1) as usize);
    for j in j_lo..=j_hi {
        let t = ln_binomial_pmf(c1, 1.0 - p, j) + ln_binomial_pmf(c0, q, y - j);
        if t > max_term {
            max_term = t;
        }
        terms.push(t);
    }
    if max_term == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = terms.iter().map(|t| (t - max_term).exp()).sum();
    max_term + sum.ln()
}

/// Mean and variance of the query result given `c₁` one-slots out of
/// `gamma`, with the [`VARIANCE_FLOOR`] applied.
///
/// This is the second-order summary behind the Gaussian surrogate: under
/// the channel the reading is a sum of `Γ` independent slot Bernoullis,
/// under the noisy query model it is `c₁` plus `N(0, λ²)`.
pub fn query_moments(noise: &NoiseModel, gamma: u64, one_slots: u64) -> (f64, f64) {
    let c1 = one_slots as f64;
    let c0 = (gamma - one_slots) as f64;
    let (m1, v1) = slot_moments(noise, true);
    let (m0, v0) = slot_moments(noise, false);
    let mean = m1 * c1 + m0 * c0;
    let var = v1 * c1 + v0 * c0 + query_noise_variance(noise);
    (mean, var.max(VARIANCE_FLOOR))
}

/// Moment-matched Gaussian energy `−ln N(observed; μ(c₁), v(c₁))` (up to
/// the `√2π` constant, which cancels in all energy differences).
///
/// # Panics
///
/// Panics if `one_slots > gamma`.
pub fn moment_matched_energy(noise: &NoiseModel, gamma: u64, one_slots: u64, observed: f64) -> f64 {
    assert!(
        one_slots <= gamma,
        "moment_matched_energy: one_slots={one_slots} exceeds gamma={gamma}"
    );
    let (mean, var) = query_moments(noise, gamma, one_slots);
    let d = observed - mean;
    d * d / (2.0 * var) + 0.5 * var.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_is_indicator() {
        let m = NoiseModel::Noiseless;
        assert_eq!(query_log_likelihood(&m, 10, 4, 4.0), 0.0);
        assert_eq!(query_log_likelihood(&m, 10, 4, 5.0), f64::NEG_INFINITY);
    }

    #[test]
    fn zero_lambda_gaussian_is_indicator() {
        let m = NoiseModel::gaussian(0.0);
        assert_eq!(query_log_likelihood(&m, 10, 4, 4.0), 0.0);
        assert_eq!(query_log_likelihood(&m, 10, 4, 4.5), f64::NEG_INFINITY);
    }

    #[test]
    fn gaussian_peaks_at_true_sum() {
        let m = NoiseModel::gaussian(2.0);
        let at_peak = query_log_likelihood(&m, 20, 7, 7.0);
        let off_peak = query_log_likelihood(&m, 20, 7, 9.0);
        assert!(at_peak > off_peak);
        // Peak value of N(0, 4): −ln(2√(2π)).
        assert!((at_peak - (-(2.0f64).ln() - LN_SQRT_2PI)).abs() < 1e-12);
    }

    #[test]
    fn channel_pmf_normalizes() {
        let m = NoiseModel::channel(0.3, 0.1);
        for c1 in [0u64, 3, 8] {
            let total: f64 = (0..=8)
                .map(|y| query_log_likelihood(&m, 8, c1, y as f64).exp())
                .sum();
            assert!((total - 1.0).abs() < 1e-10, "c1={c1}: total={total}");
        }
    }

    #[test]
    fn channel_rejects_impossible_observations() {
        let m = NoiseModel::channel(0.2, 0.0);
        assert_eq!(query_log_likelihood(&m, 5, 2, 6.0), f64::NEG_INFINITY);
        assert_eq!(query_log_likelihood(&m, 5, 2, 2.5), f64::NEG_INFINITY);
        assert_eq!(query_log_likelihood(&m, 5, 2, -1.0), f64::NEG_INFINITY);
        // Z-channel cannot read more ones than there are one-slots.
        assert_eq!(query_log_likelihood(&m, 5, 2, 3.0), f64::NEG_INFINITY);
    }

    #[test]
    fn channel_matches_direct_binomial_when_q_zero() {
        // With q = 0 the convolution collapses to Bin(c₁, 1−p).
        let m = NoiseModel::z_channel(0.25);
        for y in 0..=4u64 {
            let ours = query_log_likelihood(&m, 10, 4, y as f64);
            let direct = ln_binomial_pmf(4, 0.75, y);
            assert!((ours - direct).abs() < 1e-12, "y={y}");
        }
    }

    #[test]
    fn slot_moments_match_models() {
        let c = NoiseModel::channel(0.3, 0.1);
        assert_eq!(slot_moments(&c, true), (0.7, 0.3 * 0.7));
        assert_eq!(slot_moments(&c, false), (0.1, 0.1 * 0.9));
        assert_eq!(slot_moments(&NoiseModel::Noiseless, true), (1.0, 0.0));
        assert_eq!(slot_moments(&NoiseModel::gaussian(3.0), false), (0.0, 0.0));
    }

    #[test]
    fn query_moments_accumulate() {
        let m = NoiseModel::channel(0.3, 0.1);
        let (mean, var) = query_moments(&m, 100, 40);
        assert!((mean - (0.7 * 40.0 + 0.1 * 60.0)).abs() < 1e-12);
        assert!((var - (0.21 * 40.0 + 0.09 * 60.0)).abs() < 1e-12);
        let (mean_g, var_g) = query_moments(&NoiseModel::gaussian(2.0), 100, 40);
        assert_eq!(mean_g, 40.0);
        assert_eq!(var_g, 4.0);
        let (_, var_floor) = query_moments(&NoiseModel::Noiseless, 100, 40);
        assert_eq!(var_floor, VARIANCE_FLOOR);
    }

    #[test]
    fn energy_is_lowest_at_true_count() {
        let m = NoiseModel::channel(0.1, 0.05);
        // Observation generated from c₁ = 30 at its mean.
        let (mean, _) = query_moments(&m, 100, 30);
        let e_true = moment_matched_energy(&m, 100, 30, mean);
        for c1 in [10u64, 20, 40, 50] {
            assert!(moment_matched_energy(&m, 100, c1, mean) > e_true, "c1={c1}");
        }
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The channel convolution is a genuine PMF for arbitrary
            /// parameters: non-negative everywhere and summing to one.
            #[test]
            fn channel_pmf_is_normalized(
                gamma in 1u64..14,
                c1_frac in 0.0f64..=1.0,
                p in 0.0f64..0.7,
                q in 0.0f64..0.3,
            ) {
                prop_assume!(p + q < 1.0);
                let c1 = ((gamma as f64) * c1_frac).round() as u64;
                let m = NoiseModel::channel(p, q);
                let total: f64 = (0..=gamma)
                    .map(|y| query_log_likelihood(&m, gamma, c1, y as f64).exp())
                    .sum();
                prop_assert!((total - 1.0).abs() < 1e-8, "total={total}");
            }

            /// The moment-matched mean and variance equal the exact PMF's
            /// first two moments (the surrogate is moment-exact, only the
            /// shape is Gaussian).
            #[test]
            fn surrogate_moments_are_exact(
                gamma in 1u64..12,
                c1_frac in 0.0f64..=1.0,
                p in 0.0f64..0.6,
                q in 0.0f64..0.3,
            ) {
                prop_assume!(p + q < 1.0);
                let c1 = ((gamma as f64) * c1_frac).round() as u64;
                let m = NoiseModel::channel(p, q);
                let (mean, var) = query_moments(&m, gamma, c1);
                let mut pmf_mean = 0.0;
                let mut pmf_m2 = 0.0;
                for y in 0..=gamma {
                    let w = query_log_likelihood(&m, gamma, c1, y as f64).exp();
                    pmf_mean += w * y as f64;
                    pmf_m2 += w * (y as f64) * (y as f64);
                }
                let pmf_var = pmf_m2 - pmf_mean * pmf_mean;
                prop_assert!((mean - pmf_mean).abs() < 1e-8);
                prop_assert!((var - pmf_var).abs() < 1e-6 + VARIANCE_FLOOR);
            }
        }
    }

    #[test]
    fn moment_energy_tracks_exact_channel_likelihood() {
        // The Gaussian surrogate should rank candidate counts in the same
        // order as the exact convolution on a moderately sized query.
        let m = NoiseModel::channel(0.2, 0.05);
        let observed = 18.0;
        let mut exact: Vec<(u64, f64)> = (0..=40)
            .map(|c1| (c1, -query_log_likelihood(&m, 40, c1, observed)))
            .collect();
        let mut surrogate: Vec<(u64, f64)> = (0..=40)
            .map(|c1| (c1, moment_matched_energy(&m, 40, c1, observed)))
            .collect();
        exact.sort_by(|a, b| a.1.total_cmp(&b.1));
        surrogate.sort_by(|a, b| a.1.total_cmp(&b.1));
        // The minimizers agree to within one count.
        let best_exact = exact[0].0 as i64;
        let best_surrogate = surrogate[0].0 as i64;
        assert!((best_exact - best_surrogate).abs() <= 1);
    }
}
