//! Baseline reconstruction algorithms for the noisy pooled data problem.
//!
//! The paper evaluates its greedy algorithm against AMP (Figure 6). This
//! crate widens the comparison with the other standard inference families,
//! all implementing [`npd_core::Decoder`] so the experiment harness can run
//! them head-to-head:
//!
//! | decoder | family | cost | role |
//! |---|---|---|---|
//! | [`MlDecoder`] | exhaustive maximum likelihood | `O(C(n,k)·|E|)` | optimality reference on tiny instances |
//! | [`BpDecoder`] | belief propagation (Gaussian-relaxed factors) | `O(|E|)` per round | the message-passing family AMP approximates |
//! | [`McmcDecoder`] | annealed Metropolis over weight-`k` sets | `O(Δ*)` per step | near-ML reference at realistic sizes; the "local error correction" of the paper's open question |
//! | [`FistaDecoder`] | lasso / convex relaxation | `O(|E|)` per iteration | generic compressed-sensing baseline |
//! | [`LmmseDecoder`] | linear MMSE (ridge + CG) | `O(|E|)` per CG step | best *linear* decoder; midpoint between the greedy score and nonlinear solvers |
//!
//! The exact and moment-matched observation likelihoods shared by these
//! decoders live in [`likelihood`].
//!
//! # Examples
//!
//! ```
//! use npd_core::{overlap, Decoder, Instance, NoiseModel};
//! use npd_decoders::{standard_zoo, BpDecoder};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(2);
//! let run = Instance::builder(300)
//!     .k(4)
//!     .queries(300)
//!     .noise(NoiseModel::z_channel(0.1))
//!     .build()
//!     .unwrap()
//!     .sample(&mut rng);
//! for decoder in standard_zoo() {
//!     let estimate = decoder.decode(&run);
//!     assert_eq!(estimate.k(), 4, "{} must output rank-k", decoder.name());
//! }
//! let bp = BpDecoder::default().decode(&run);
//! assert!(overlap(&bp, run.ground_truth()) > 0.9);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod bp;
pub mod ista;
pub mod likelihood;
pub mod lmmse;
pub mod mcmc;
pub mod ml;

pub use bp::{BpConfig, BpDecoder, BpOutput, BpWorkspace};
pub use ista::{FistaConfig, FistaDecoder, FistaOutput};
pub use lmmse::{LmmseConfig, LmmseDecoder, LmmseOutput};
pub use mcmc::{EnergyKind, InitKind, McmcConfig, McmcDecoder, McmcOutput};
pub use ml::{binomial_coefficient, Combinations, MlDecoder, MlError};

use npd_core::Decoder;

/// The polynomial-time decoders of this crate with default configurations
/// (the exhaustive [`MlDecoder`] is excluded — it does not scale past toy
/// sizes and panics on large search spaces).
pub fn standard_zoo() -> Vec<Box<dyn Decoder>> {
    vec![
        Box::new(BpDecoder::default()),
        Box::new(McmcDecoder::default()),
        Box::new(FistaDecoder::default()),
        Box::new(LmmseDecoder::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_names_are_distinct() {
        let zoo = standard_zoo();
        let mut names: Vec<&str> = zoo.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), zoo.len());
    }
}
