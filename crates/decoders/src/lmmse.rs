//! Linear MMSE estimation via ridge regression and conjugate gradients.
//!
//! The cheapest linear baseline: treat the bits as i.i.d. `Bernoulli(k/n)`
//! with mean `π` and variance `π(1−π)`, model the observation noise as
//! additive with variance `σ²`, and compute the best *linear* estimate of
//! `σ` given `ỹ` — which is the ridge solution
//!
//! ```text
//! x̂ = π·1 + (BᵀB + δI)⁻¹ Bᵀ(ỹ − B·π·1),    δ = σ²/(π(1−π)),
//! ```
//!
//! solved matrix-free with conjugate gradients on the centered system of
//! [`npd_amp::preprocess`]. This is exactly the first-order statistical
//! information the greedy neighborhood sum uses — but solved jointly
//! instead of coordinate-wise, making it the natural midpoint between the
//! greedy score and the nonlinear solvers (AMP, BP) in the decoder
//! comparison.

use npd_amp::preprocess::{prepare, Prepared};
use npd_core::{Decoder, Estimate, NoiseModel, Run};
use npd_numerics::vector;
use serde::{Deserialize, Serialize};

/// Tuning knobs of the LMMSE solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LmmseConfig {
    /// Maximum conjugate-gradient iterations.
    pub max_cg_iterations: usize,
    /// CG residual tolerance (relative to the right-hand side norm).
    pub tolerance: f64,
    /// Explicit ridge δ; `None` derives it from the run's noise model.
    pub ridge: Option<f64>,
}

impl Default for LmmseConfig {
    fn default() -> Self {
        Self {
            max_cg_iterations: 200,
            tolerance: 1e-10,
            ridge: None,
        }
    }
}

/// Diagnostics of one LMMSE solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LmmseOutput {
    /// Posterior-mean-style linear estimate per agent.
    pub estimate: Vec<f64>,
    /// CG iterations executed.
    pub cg_iterations: usize,
    /// The ridge δ actually used.
    pub ridge: f64,
}

/// Ridge-regression decoder.
///
/// # Examples
///
/// ```
/// use npd_core::{Decoder, Instance, NoiseModel};
/// use npd_decoders::LmmseDecoder;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(8);
/// let run = Instance::builder(200)
///     .k(3)
///     .queries(220)
///     .noise(NoiseModel::gaussian(0.5))
///     .build()
///     .unwrap()
///     .sample(&mut rng);
/// let estimate = LmmseDecoder::default().decode(&run);
/// assert_eq!(estimate.k(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LmmseDecoder {
    config: LmmseConfig,
}

impl LmmseDecoder {
    /// Creates the decoder with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the decoder with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `max_cg_iterations == 0` or an explicit ridge is not
    /// positive.
    pub fn with_config(config: LmmseConfig) -> Self {
        assert!(
            config.max_cg_iterations > 0,
            "LmmseDecoder: max_cg_iterations must be positive"
        );
        if let Some(r) = config.ridge {
            assert!(r > 0.0, "LmmseDecoder: ridge={r} must be positive");
        }
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LmmseConfig {
        &self.config
    }

    /// Runs the solver and returns the full diagnostics.
    pub fn solve(&self, run: &Run) -> LmmseOutput {
        let Prepared {
            matrix: b,
            observations: y,
            prior,
        } = prepare(run);
        let n = b.cols();

        let ridge = self
            .config
            .ridge
            .unwrap_or_else(|| derived_ridge(run, prior, b.scale()));

        // Right-hand side Bᵀ(ỹ − B·π·1).
        let prior_vec = vec![prior; n];
        let mut residual = b.matvec(&prior_vec);
        for (r, &yi) in residual.iter_mut().zip(&y) {
            *r = yi - *r;
        }
        let rhs = b.matvec_t(&residual);

        let apply = |v: &[f64]| -> Vec<f64> {
            let mut out = b.matvec_t(&b.matvec(v));
            for (o, &vi) in out.iter_mut().zip(v) {
                *o += ridge * vi;
            }
            out
        };

        let (solution, cg_iterations) = conjugate_gradient(
            apply,
            &rhs,
            self.config.max_cg_iterations,
            self.config.tolerance,
        );

        let estimate: Vec<f64> = solution.iter().map(|&s| prior + s).collect();
        LmmseOutput {
            estimate,
            cg_iterations,
            ridge,
        }
    }
}

/// δ = σ²/(π(1−π)) on the centered scale: the effective per-observation
/// noise variance divided by the per-coordinate prior variance, floored to
/// keep the normal equations well-conditioned in underdetermined noiseless
/// designs.
fn derived_ridge(run: &Run, prior: f64, scale: f64) -> f64 {
    // Realized mean query size: Γ exactly on regular designs, the right
    // variance normalizer on ragged ones.
    let gamma = run.graph().mean_query_slots();
    let noise_var = match *run.instance().noise() {
        NoiseModel::Noiseless => 0.0,
        NoiseModel::Query { lambda } => lambda * lambda,
        NoiseModel::Channel { p, q } => {
            // Variance of the unbiased observation (σ̂ − qΓ)/(1−p−q) at the
            // prior: Γ·(π·p(1−p) + (1−π)·q(1−q)) / (1−p−q)².
            let per_slot = prior * p * (1.0 - p) + (1.0 - prior) * q * (1.0 - q);
            gamma * per_slot / (1.0 - p - q).powi(2)
        }
    };
    let prior_var = (prior * (1.0 - prior)).max(1e-12);
    (noise_var / (scale * scale) / prior_var).max(1e-3)
}

/// Standard conjugate gradients for a symmetric positive-definite operator.
///
/// Returns the approximate solution and the number of iterations used.
pub fn conjugate_gradient<F>(
    apply: F,
    rhs: &[f64],
    max_iterations: usize,
    tolerance: f64,
) -> (Vec<f64>, usize)
where
    F: Fn(&[f64]) -> Vec<f64>,
{
    let n = rhs.len();
    let mut x = vec![0.0f64; n];
    let mut r = rhs.to_vec();
    let mut p = r.clone();
    let rhs_norm = vector::norm2(rhs);
    if rhs_norm == 0.0 {
        return (x, 0);
    }
    let mut rr = vector::dot(&r, &r);
    let mut iterations = 0;
    while iterations < max_iterations {
        iterations += 1;
        let ap = apply(&p);
        let pap = vector::dot(&p, &ap);
        if pap <= 0.0 {
            break; // operator lost positive definiteness numerically
        }
        let alpha = rr / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rr_next = vector::dot(&r, &r);
        if rr_next.sqrt() < tolerance * rhs_norm {
            break;
        }
        let beta = rr_next / rr;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rr = rr_next;
    }
    (x, iterations)
}

impl Decoder for LmmseDecoder {
    fn decode(&self, run: &Run) -> Estimate {
        let out = self.solve(run);
        Estimate::from_scores(out.estimate, run.instance().k())
    }

    fn name(&self) -> &'static str {
        "lmmse"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npd_core::{exact_recovery, Instance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cg_solves_diagonal_system() {
        let diag = [2.0, 4.0, 8.0];
        let apply = |v: &[f64]| -> Vec<f64> { v.iter().zip(diag).map(|(&vi, d)| d * vi).collect() };
        let (x, iters) = conjugate_gradient(apply, &[2.0, 4.0, 8.0], 50, 1e-12);
        assert!(iters <= 3, "CG on a 3-dim system should finish in ≤3 steps");
        for xi in x {
            assert!((xi - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cg_zero_rhs_short_circuits() {
        let apply = |v: &[f64]| v.to_vec();
        let (x, iters) = conjugate_gradient(apply, &[0.0, 0.0], 10, 1e-12);
        assert_eq!(iters, 0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn recovers_overdetermined_noiseless() {
        let mut rng = StdRng::seed_from_u64(41);
        let run = Instance::builder(200)
            .k(3)
            .queries(250)
            .build()
            .unwrap()
            .sample(&mut rng);
        let est = LmmseDecoder::new().decode(&run);
        assert!(exact_recovery(&est, run.ground_truth()));
    }

    #[test]
    fn recovers_under_gaussian_noise() {
        let mut rng = StdRng::seed_from_u64(42);
        let run = Instance::builder(200)
            .k(3)
            .queries(300)
            .noise(NoiseModel::gaussian(1.0))
            .build()
            .unwrap()
            .sample(&mut rng);
        let est = LmmseDecoder::new().decode(&run);
        assert!(exact_recovery(&est, run.ground_truth()));
    }

    #[test]
    fn ridge_derivation_scales_with_noise() {
        let mut rng = StdRng::seed_from_u64(43);
        let quiet = Instance::builder(100)
            .k(2)
            .queries(80)
            .noise(NoiseModel::gaussian(0.5))
            .build()
            .unwrap()
            .sample(&mut rng);
        let loud = Instance::builder(100)
            .k(2)
            .queries(80)
            .noise(NoiseModel::gaussian(5.0))
            .build()
            .unwrap()
            .sample(&mut rng);
        let r_quiet = LmmseDecoder::new().solve(&quiet).ridge;
        let r_loud = LmmseDecoder::new().solve(&loud).ridge;
        assert!(r_loud > r_quiet);
    }

    #[test]
    fn explicit_ridge_is_respected() {
        let mut rng = StdRng::seed_from_u64(44);
        let run = Instance::builder(100)
            .k(2)
            .queries(80)
            .build()
            .unwrap()
            .sample(&mut rng);
        let out = LmmseDecoder::with_config(LmmseConfig {
            ridge: Some(0.7),
            ..LmmseConfig::default()
        })
        .solve(&run);
        assert_eq!(out.ridge, 0.7);
    }

    #[test]
    #[should_panic(expected = "ridge")]
    fn rejects_nonpositive_ridge() {
        LmmseDecoder::with_config(LmmseConfig {
            ridge: Some(0.0),
            ..LmmseConfig::default()
        });
    }
}
