//! Exact maximum-likelihood decoding by exhaustive search.
//!
//! The ground truth is uniform over weight-`k` vectors, so the MAP and ML
//! estimates coincide: maximize `Σₐ ln P(σ̂ₐ | c₁(σ, a))` over all `C(n,k)`
//! candidate assignments. This is the information-theoretically optimal
//! decoder that the converse bounds in `npd-theory` reason about — and it
//! is exponential, which is exactly why the paper's efficient greedy
//! algorithm is interesting. We use it as an optimality reference on tiny
//! instances: no polynomial-time decoder in this workspace can beat its
//! likelihood, and tests hold the others against it.

use crate::likelihood::query_log_likelihood;
use npd_core::{Decoder, Estimate, Run};
use std::fmt;

/// Default cap on the number of enumerated candidates.
pub const DEFAULT_CANDIDATE_LIMIT: u128 = 2_000_000;

/// Exhaustive maximum-likelihood decoder.
///
/// # Examples
///
/// ```
/// use npd_core::{Instance, NoiseModel};
/// use npd_decoders::MlDecoder;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let run = Instance::builder(12)
///     .k(2)
///     .queries(30)
///     .noise(NoiseModel::z_channel(0.1))
///     .build()
///     .unwrap()
///     .sample(&mut rng);
/// let estimate = MlDecoder::new().try_decode(&run)?;
/// assert_eq!(estimate.k(), 2);
/// # Ok::<(), npd_decoders::MlError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MlDecoder {
    limit: u128,
}

impl MlDecoder {
    /// Creates the decoder with [`DEFAULT_CANDIDATE_LIMIT`].
    pub fn new() -> Self {
        Self {
            limit: DEFAULT_CANDIDATE_LIMIT,
        }
    }

    /// Creates the decoder with an explicit candidate cap.
    pub fn with_limit(limit: u128) -> Self {
        Self { limit }
    }

    /// The candidate cap.
    pub fn limit(&self) -> u128 {
        self.limit
    }

    /// Runs the exhaustive search.
    ///
    /// The returned estimate carries per-agent scores equal to the best
    /// log-likelihood among candidates *containing* that agent, so the
    /// score landscape stays meaningful for diagnostics.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::SearchSpaceTooLarge`] when `C(n, k)` exceeds the
    /// configured limit.
    pub fn try_decode(&self, run: &Run) -> Result<Estimate, MlError> {
        let n = run.instance().n();
        let k = run.instance().k();
        let count = binomial_coefficient(n as u128, k as u128);
        if count > self.limit {
            return Err(MlError::SearchSpaceTooLarge {
                combinations: count,
                limit: self.limit,
            });
        }

        let noise = run.instance().noise();
        let results = run.results();
        let queries = run.graph().queries();

        let mut best_ll = f64::NEG_INFINITY;
        let mut best: Vec<u32> = (0..k as u32).collect();
        // Best log-likelihood of any candidate containing agent i.
        let mut agent_best = vec![f64::NEG_INFINITY; n];

        for candidate in Combinations::new(n, k) {
            let mut member = vec![false; n];
            for &a in &candidate {
                member[a as usize] = true;
            }
            let mut ll = 0.0;
            for (j, q) in queries.iter().enumerate() {
                let c1: u64 = q
                    .iter()
                    .filter(|&(a, _)| member[a as usize])
                    .map(|(_, c)| c as u64)
                    .sum();
                // The query's own slot count: exact on ragged designs.
                ll += query_log_likelihood(noise, u64::from(q.total_slots()), c1, results[j]);
                if ll == f64::NEG_INFINITY {
                    break;
                }
            }
            for &a in &candidate {
                if ll > agent_best[a as usize] {
                    agent_best[a as usize] = ll;
                }
            }
            if ll > best_ll {
                best_ll = ll;
                best = candidate;
            }
        }

        let mut bits = vec![false; n];
        for &a in &best {
            bits[a as usize] = true;
        }
        Ok(Estimate::from_parts(bits, agent_best))
    }

    /// Log-likelihood of an explicit assignment under the run's model.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the population size.
    pub fn log_likelihood(run: &Run, bits: &[bool]) -> f64 {
        assert_eq!(
            bits.len(),
            run.instance().n(),
            "MlDecoder::log_likelihood: bits length mismatch"
        );
        let noise = run.instance().noise();
        run.graph()
            .queries()
            .iter()
            .zip(run.results())
            .map(|(q, &y)| {
                let c1: u64 = q
                    .iter()
                    .filter(|&(a, _)| bits[a as usize])
                    .map(|(_, c)| c as u64)
                    .sum();
                query_log_likelihood(noise, u64::from(q.total_slots()), c1, y)
            })
            .sum()
    }
}

impl Default for MlDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Decoder for MlDecoder {
    /// # Panics
    ///
    /// Panics if the search space exceeds the limit; use
    /// [`MlDecoder::try_decode`] for fallible decoding.
    fn decode(&self, run: &Run) -> Estimate {
        #[allow(clippy::expect_used)]
        self.try_decode(run)
            // xtask:allow(unwrap-audit): documented panic contract of `decode`; `try_decode` is the fallible path
            .expect("MlDecoder::decode: search space exceeds limit")
    }

    fn name(&self) -> &'static str {
        "exact-ml"
    }
}

/// Error of [`MlDecoder::try_decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MlError {
    /// `C(n, k)` exceeds the configured candidate limit.
    SearchSpaceTooLarge {
        /// The number of weight-`k` candidates.
        combinations: u128,
        /// The configured cap.
        limit: u128,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::SearchSpaceTooLarge {
                combinations,
                limit,
            } => write!(
                f,
                "search space of {combinations} candidates exceeds the limit {limit}"
            ),
        }
    }
}

impl std::error::Error for MlError {}

/// `C(n, k)` with saturation at `u128::MAX`.
pub fn binomial_coefficient(n: u128, k: u128) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        // acc · (n − i) / (i + 1), guarding the multiplication.
        match acc.checked_mul(n - i) {
            Some(v) => acc = v / (i + 1),
            None => return u128::MAX,
        }
    }
    acc
}

/// Lexicographic enumeration of the `k`-subsets of `{0, …, n−1}`.
#[derive(Debug, Clone)]
pub struct Combinations {
    n: usize,
    k: usize,
    next: Option<Vec<u32>>,
}

impl Combinations {
    /// Starts the enumeration.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k <= n, "Combinations::new: k={k} exceeds n={n}");
        Self {
            n,
            k,
            next: Some((0..k as u32).collect()),
        }
    }
}

impl Iterator for Combinations {
    type Item = Vec<u32>;

    fn next(&mut self) -> Option<Vec<u32>> {
        let current = self.next.take()?;
        // Find the rightmost index that can still advance.
        let mut succ = current.clone();
        let mut i = self.k;
        loop {
            if i == 0 {
                self.next = None;
                break;
            }
            i -= 1;
            if succ[i] < (self.n - self.k + i) as u32 {
                succ[i] += 1;
                for j in i + 1..self.k {
                    succ[j] = succ[j - 1] + 1;
                }
                self.next = Some(succ);
                break;
            }
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npd_core::{Instance, NoiseModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn combinations_enumerate_all() {
        let all: Vec<Vec<u32>> = Combinations::new(5, 3).collect();
        assert_eq!(all.len(), 10);
        assert_eq!(all[0], vec![0, 1, 2]);
        assert_eq!(all[9], vec![2, 3, 4]);
        // Strictly increasing within, lexicographic across.
        for w in all.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn combinations_edge_cases() {
        assert_eq!(Combinations::new(4, 0).count(), 1);
        assert_eq!(Combinations::new(4, 4).count(), 1);
        assert_eq!(Combinations::new(0, 0).count(), 1);
    }

    #[test]
    fn binomial_coefficient_values() {
        assert_eq!(binomial_coefficient(10, 3), 120);
        assert_eq!(binomial_coefficient(5, 6), 0);
        assert_eq!(binomial_coefficient(200, 100), u128::MAX); // saturates
        assert_eq!(binomial_coefficient(0, 0), 1);
    }

    #[test]
    fn recovers_noiseless_truth() {
        let mut rng = StdRng::seed_from_u64(11);
        let run = Instance::builder(14)
            .k(3)
            .queries(25)
            .build()
            .unwrap()
            .sample(&mut rng);
        let est = MlDecoder::new().try_decode(&run).unwrap();
        assert_eq!(est.ones(), run.ground_truth().ones());
    }

    #[test]
    fn recovers_under_mild_channel_noise() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut hits = 0;
        for _ in 0..5 {
            let run = Instance::builder(12)
                .k(2)
                .queries(60)
                .noise(NoiseModel::z_channel(0.1))
                .build()
                .unwrap()
                .sample(&mut rng);
            let est = MlDecoder::new().try_decode(&run).unwrap();
            if est.ones() == run.ground_truth().ones() {
                hits += 1;
            }
        }
        assert!(hits >= 4, "ML recovered only {hits}/5 easy instances");
    }

    #[test]
    fn output_likelihood_dominates_truth() {
        // By construction the argmax beats (or ties) the ground truth.
        let mut rng = StdRng::seed_from_u64(13);
        let run = Instance::builder(10)
            .k(2)
            .queries(8)
            .noise(NoiseModel::channel(0.3, 0.2))
            .build()
            .unwrap()
            .sample(&mut rng);
        let est = MlDecoder::new().try_decode(&run).unwrap();
        let mut est_bits = vec![false; 10];
        for &a in est.ones() {
            est_bits[a as usize] = true;
        }
        let ll_est = MlDecoder::log_likelihood(&run, &est_bits);
        let ll_truth = MlDecoder::log_likelihood(&run, run.ground_truth().bits());
        assert!(ll_est >= ll_truth - 1e-12);
    }

    #[test]
    fn rejects_oversized_search_space() {
        let mut rng = StdRng::seed_from_u64(14);
        let run = Instance::builder(100)
            .k(10)
            .queries(5)
            .build()
            .unwrap()
            .sample(&mut rng);
        let err = MlDecoder::with_limit(1000).try_decode(&run).unwrap_err();
        match err {
            MlError::SearchSpaceTooLarge {
                combinations,
                limit,
            } => {
                assert!(combinations > limit);
                assert_eq!(limit, 1000);
            }
        }
        assert!(err.to_string().contains("exceeds"));
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The lexicographic enumeration yields exactly C(n,k)
            /// strictly increasing, strictly ordered subsets.
            #[test]
            fn combinations_enumerate_exactly(n in 0usize..12, k_frac in 0.0f64..=1.0) {
                let k = ((n as f64) * k_frac).round() as usize;
                let all: Vec<Vec<u32>> = Combinations::new(n, k).collect();
                prop_assert_eq!(all.len() as u128, binomial_coefficient(n as u128, k as u128));
                for c in &all {
                    prop_assert!(c.windows(2).all(|w| w[0] < w[1]));
                    prop_assert!(c.iter().all(|&a| (a as usize) < n));
                }
                for w in all.windows(2) {
                    prop_assert!(w[0] < w[1], "not lexicographic");
                }
            }
        }
    }

    #[test]
    fn gaussian_model_decoding() {
        let mut rng = StdRng::seed_from_u64(15);
        let run = Instance::builder(12)
            .k(2)
            .queries(40)
            .noise(NoiseModel::gaussian(0.5))
            .build()
            .unwrap()
            .sample(&mut rng);
        let est = MlDecoder::new().try_decode(&run).unwrap();
        assert_eq!(est.ones(), run.ground_truth().ones());
    }
}
