//! Deterministic observability for the noisy-pooled-data workspace.
//!
//! The workspace can *prove* a run is bit-identical across shard and
//! thread counts, but until this crate nothing could *see inside* one:
//! AMP/BP convergence was invisible between entry and exit, netsim's
//! per-round behavior was only surfaced through the cumulative
//! [`npd_netsim::Metrics`]-style counters, and the only timing data was
//! criterion medians. `npd-telemetry` adds that visibility without
//! touching the determinism contract, by splitting observability into
//! two strictly separated planes:
//!
//! 1. **The deterministic event plane** — counters, gauges, fixed-log2
//!    histograms, and structured events keyed by
//!    `(phase, round/iteration, shard)`. Everything recorded here is a
//!    contract-pure quantity (message counts, fault tallies, residual
//!    norms, score margins, per-iteration deltas), and every producer
//!    records from a *serial* section of its engine, so the recorded
//!    stream is required to be bit-identical across shard and thread
//!    counts (pinned by `tests/determinism.rs` in the workspace root).
//!    [`Recorder::export_jsonl`] serializes exactly this plane and
//!    nothing else.
//! 2. **The optional wall-clock plane** — a [`Clock`] trait attaches
//!    monotonic timestamps to the same events for phase profiling. The
//!    default [`NullClock`] reads nothing; a real monotonic
//!    implementation lives only in harness crates (`npd-experiments`
//!    and `npd-bench`), never here and never in a library crate — the
//!    `clock-boundary` analyzer rule (contract rule 11) enforces that.
//!    [`Recorder::export_chrome_trace`] uses wall time when a real
//!    clock was attached and falls back to the logical sequence number
//!    otherwise, so the trace stays loadable either way.
//!
//! Producers hold a [`TelemetrySink`] — a cheap clonable handle that is
//! disabled by default. A disabled sink is a `None` check: no event is
//! constructed, no lock is taken, no allocation happens (the
//! `telemetry_overhead` bench row in `BENCH_baseline.json` tracks the
//! cost on the AMP hot loop). Enabled sinks serialize access through a
//! mutex, which is safe *and* deterministic because every instrumented
//! engine records only from serial code sections.
//!
//! # Example
//!
//! ```
//! use npd_telemetry::{Event, TelemetrySink};
//!
//! let sink = TelemetrySink::recording();
//! sink.add("messages_sent", 3);
//! sink.record("inbox_len", 7);
//! sink.emit(|| Event::instant("round").phase("netsim").round(0).u64("sent", 3));
//! let jsonl = sink.export_jsonl().unwrap();
//! assert!(jsonl.contains("\"name\":\"round\""));
//!
//! let off = TelemetrySink::default();
//! assert!(!off.is_enabled());
//! off.emit(|| unreachable!("disabled sinks never build events"));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, PoisonError};

/// Source of wall-clock timestamps for the optional timing plane.
///
/// Library crates must only ever see the [`NullClock`]; monotonic
/// implementations live in harness crates (`npd-experiments`,
/// `npd-bench`), where timing is observable on purpose. The
/// `clock-boundary` analyzer rule (contract rule 11) flags real-time
/// `Clock` impls anywhere else.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Microseconds since an arbitrary fixed origin.
    fn now_micros(&self) -> u64;
}

/// The default clock: reads nothing, always returns zero. With this
/// clock attached the recorder is a pure function of the recorded
/// events, which is what the determinism legs compare.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullClock;

impl Clock for NullClock {
    fn now_micros(&self) -> u64 {
        0
    }
}

/// A value attached to an [`Event`] field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldValue {
    /// Unsigned counter-like quantity.
    U64(u64),
    /// Signed quantity.
    I64(i64),
    /// Floating-point quantity (residual norms, score margins, …).
    F64(f64),
}

/// Span structure of an [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Opens a span (Chrome trace `ph: "B"`).
    Begin,
    /// Closes the most recent span of the same name (Chrome `ph: "E"`).
    End,
    /// A point event (Chrome `ph: "i"`).
    Instant,
}

impl EventKind {
    fn as_str(self) -> &'static str {
        match self {
            EventKind::Begin => "begin",
            EventKind::End => "end",
            EventKind::Instant => "instant",
        }
    }
}

/// One structured trace event, keyed by `(phase, round, shard)`.
///
/// Names, phases, and field names are `&'static str` so constructing an
/// event never allocates for strings; the field vector is the only
/// allocation, and it is only made when a sink is enabled (see
/// [`TelemetrySink::emit`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name (e.g. `"round"`, `"amp.iter"`).
    pub name: &'static str,
    /// Span structure.
    pub kind: EventKind,
    /// Protocol/engine phase the event belongs to (e.g. `"netsim"`,
    /// `"selection"`); doubles as the Chrome trace category.
    pub phase: &'static str,
    /// Round or iteration number.
    pub round: u64,
    /// Shard the event is attributed to (0 for unsharded engines);
    /// becomes the Chrome trace `tid`.
    pub shard: u32,
    /// Contract-pure payload fields, in insertion order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    fn new(name: &'static str, kind: EventKind) -> Self {
        Self {
            name,
            kind,
            phase: "",
            round: 0,
            shard: 0,
            fields: Vec::new(),
        }
    }

    /// A point event.
    pub fn instant(name: &'static str) -> Self {
        Self::new(name, EventKind::Instant)
    }

    /// Opens a span.
    pub fn begin(name: &'static str) -> Self {
        Self::new(name, EventKind::Begin)
    }

    /// Closes a span.
    pub fn end(name: &'static str) -> Self {
        Self::new(name, EventKind::End)
    }

    /// Sets the phase tag.
    #[must_use]
    pub fn phase(mut self, phase: &'static str) -> Self {
        self.phase = phase;
        self
    }

    /// Sets the round/iteration key.
    #[must_use]
    pub fn round(mut self, round: u64) -> Self {
        self.round = round;
        self
    }

    /// Sets the shard key.
    #[must_use]
    pub fn shard(mut self, shard: u32) -> Self {
        self.shard = shard;
        self
    }

    /// Attaches an unsigned field.
    #[must_use]
    pub fn u64(mut self, name: &'static str, value: u64) -> Self {
        self.fields.push((name, FieldValue::U64(value)));
        self
    }

    /// Attaches a signed field.
    #[must_use]
    pub fn i64(mut self, name: &'static str, value: i64) -> Self {
        self.fields.push((name, FieldValue::I64(value)));
        self
    }

    /// Attaches a floating-point field.
    #[must_use]
    pub fn f64(mut self, name: &'static str, value: f64) -> Self {
        self.fields.push((name, FieldValue::F64(value)));
        self
    }
}

/// An [`Event`] as stored by the [`Recorder`]: the deterministic event
/// plus its logical sequence number and (wall-clock plane only) its
/// timestamp.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedEvent {
    /// The deterministic event.
    pub event: Event,
    /// Position in the recorded stream (0-based).
    pub seq: u64,
    /// Wall-clock timestamp from the attached [`Clock`]; always 0 under
    /// the [`NullClock`]. Excluded from [`Recorder::export_jsonl`].
    pub wall_micros: u64,
}

/// Fixed log2-bucketed histogram: bucket `b` holds values whose bit
/// length is `b` (`0` → bucket 0, `1` → bucket 1, `2..=3` → bucket 2,
/// `2^63..` → bucket 64). Bucket boundaries never depend on the data,
/// so merged or re-recorded histograms are bit-identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// The bucket index of a value: its bit length.
fn log2_bucket(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

impl Histogram {
    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[log2_bucket(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (`u64::MAX` when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The non-empty `(bucket, count)` pairs in bucket order.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (b, c))
            .collect()
    }
}

/// Deterministic-plane registries plus the ordered event stream.
#[derive(Debug, Default)]
struct State {
    counters: BTreeMap<&'static str, u64>,
    /// Gauge values stored as `f64::to_bits` so the registry map stays
    /// `Eq`-comparable and export is trivially bit-stable.
    gauges: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    events: Vec<RecordedEvent>,
}

/// A point-in-time copy of the deterministic registries, for metric
/// tables and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter registry in name order.
    pub counters: Vec<(&'static str, u64)>,
    /// Gauge registry in name order.
    pub gauges: Vec<(&'static str, f64)>,
    /// Histogram registry in name order.
    pub histograms: Vec<(&'static str, Histogram)>,
    /// Number of recorded events.
    pub events: usize,
}

/// The shared recording backend behind enabled [`TelemetrySink`]s.
///
/// All mutation goes through one mutex. That is deterministic (not just
/// safe) because every instrumented engine records from *serial* code
/// sections only — the netsim arena build, the AMP/BP iteration
/// boundaries, the protocol's post-run summary — so the recorded order
/// is the engines' serial execution order, never a scheduling order.
#[derive(Debug)]
pub struct Recorder {
    clock: Box<dyn Clock>,
    /// Whether `clock` is a real wall clock (drives the Chrome trace
    /// timestamp source).
    wall: bool,
    state: Mutex<State>,
}

impl Recorder {
    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // A poisoned telemetry mutex only means a producer panicked
        // mid-record; the registries are still well-formed, and losing
        // the trace of a crashing run would hide exactly the evidence
        // wanted most.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current snapshot of the counter/gauge/histogram registries.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let st = self.lock();
        MetricsSnapshot {
            counters: st.counters.iter().map(|(&k, &v)| (k, v)).collect(),
            gauges: st
                .gauges
                .iter()
                .map(|(&k, &v)| (k, f64::from_bits(v)))
                .collect(),
            histograms: st.histograms.iter().map(|(&k, v)| (k, v.clone())).collect(),
            events: st.events.len(),
        }
    }

    /// A copy of the recorded event stream in record order.
    pub fn events(&self) -> Vec<RecordedEvent> {
        self.lock().events.clone()
    }

    /// Serializes the **deterministic plane only** as JSON lines: one
    /// meta line, the counter/gauge/histogram registries in name order,
    /// then every event in record order. Wall-clock timestamps are
    /// deliberately excluded, so this export is required to be
    /// byte-identical across shard and thread counts.
    pub fn export_jsonl(&self) -> String {
        let st = self.lock();
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"meta\",\"schema\":1,\"events\":{},\"counters\":{},\"gauges\":{},\"histograms\":{}}}\n",
            st.events.len(),
            st.counters.len(),
            st.gauges.len(),
            st.histograms.len(),
        ));
        for (name, value) in &st.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":{},\"value\":{value}}}\n",
                json_str(name)
            ));
        }
        for (name, bits) in &st.gauges {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":{},\"value\":{}}}\n",
                json_str(name),
                json_f64(f64::from_bits(*bits))
            ));
        }
        for (name, h) in &st.histograms {
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .into_iter()
                .map(|(b, c)| format!("[{b},{c}]"))
                .collect();
            out.push_str(&format!(
                "{{\"type\":\"histogram\",\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"log2_buckets\":[{}]}}\n",
                json_str(name),
                h.count(),
                h.sum(),
                if h.count() == 0 { 0 } else { h.min() },
                h.max(),
                buckets.join(",")
            ));
        }
        for rec in &st.events {
            let e = &rec.event;
            let mut fields = String::new();
            for (i, (name, value)) in e.fields.iter().enumerate() {
                if i > 0 {
                    fields.push(',');
                }
                fields.push_str(&format!("{}:{}", json_str(name), json_field(*value)));
            }
            out.push_str(&format!(
                "{{\"type\":\"event\",\"seq\":{},\"kind\":\"{}\",\"name\":{},\"phase\":{},\"round\":{},\"shard\":{},\"fields\":{{{fields}}}}}\n",
                rec.seq,
                e.kind.as_str(),
                json_str(e.name),
                json_str(e.phase),
                e.round,
                e.shard,
            ));
        }
        out
    }

    /// Serializes the event stream in Chrome trace-event format
    /// (loadable in `chrome://tracing` / Perfetto). Timestamps come
    /// from the wall-clock plane when a real [`Clock`] was attached and
    /// fall back to the logical sequence number otherwise; counters are
    /// appended as `ph: "C"` samples.
    pub fn export_chrome_trace(&self) -> String {
        let st = self.lock();
        let mut entries: Vec<String> = Vec::with_capacity(st.events.len() + st.counters.len());
        let mut last_ts = 0u64;
        for rec in &st.events {
            let e = &rec.event;
            let ts = if self.wall { rec.wall_micros } else { rec.seq };
            last_ts = last_ts.max(ts);
            let ph = match e.kind {
                EventKind::Begin => "\"ph\":\"B\"",
                EventKind::End => "\"ph\":\"E\"",
                EventKind::Instant => "\"ph\":\"i\",\"s\":\"t\"",
            };
            let mut args = format!("\"round\":{},\"seq\":{}", e.round, rec.seq);
            for (name, value) in &e.fields {
                args.push_str(&format!(",{}:{}", json_str(name), json_field(*value)));
            }
            entries.push(format!(
                "{{\"name\":{},\"cat\":{},{ph},\"pid\":0,\"tid\":{},\"ts\":{ts},\"args\":{{{args}}}}}",
                json_str(e.name),
                json_str(if e.phase.is_empty() { "trace" } else { e.phase }),
                e.shard,
            ));
        }
        for (name, value) in &st.counters {
            entries.push(format!(
                "{{\"name\":{},\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":{last_ts},\"args\":{{\"value\":{value}}}}}",
                json_str(name)
            ));
        }
        format!("{{\"traceEvents\":[{}]}}\n", entries.join(","))
    }
}

/// Minimal JSON string serialization (names are static identifiers, but
/// escape anyway so the export is valid JSON for any input).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON for an f64: Rust's shortest-roundtrip formatting is
/// deterministic; non-finite values (not valid JSON numbers) map to
/// null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a dot; keep the value
        // typed as a float on the way back in.
        if s.contains('.') || s.contains('e') || s.contains("inf") {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".into()
    }
}

fn json_field(v: FieldValue) -> String {
    match v {
        FieldValue::U64(v) => format!("{v}"),
        FieldValue::I64(v) => format!("{v}"),
        FieldValue::F64(v) => json_f64(v),
    }
}

/// A cheap, clonable telemetry handle.
///
/// The default sink is **disabled**: every operation is a single
/// `Option` check and returns immediately — no event construction, no
/// locking, no allocation. Library code therefore holds a sink
/// unconditionally and never branches on configuration itself.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySink(Option<Arc<Recorder>>);

impl TelemetrySink {
    /// The disabled sink (same as `Default`).
    pub fn off() -> Self {
        Self(None)
    }

    /// An enabled sink recording the deterministic plane only (the
    /// [`NullClock`]): the right mode for determinism comparisons.
    pub fn recording() -> Self {
        Self::with_clock(Box::new(NullClock))
    }

    /// An enabled sink with an explicit clock for the wall-time plane.
    /// Harness crates pass their monotonic clock here; library crates
    /// never construct one (contract rule 11).
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        let wall = clock.now_micros() > 0 || {
            // A real monotonic clock can legitimately read 0 on its
            // first call; probe a second time to classify it. The
            // NullClock reads 0 forever, so two zero reads mean the
            // deterministic plane is the only one populated.
            clock.now_micros() > 0
        };
        Self(Some(Arc::new(Recorder {
            clock,
            wall,
            state: Mutex::new(State::default()),
        })))
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The shared recorder, when enabled (for export and inspection).
    pub fn recorder(&self) -> Option<&Recorder> {
        self.0.as_deref()
    }

    /// Records an event. The closure runs only when the sink is
    /// enabled, so a disabled sink never pays for event construction.
    pub fn emit(&self, build: impl FnOnce() -> Event) {
        if let Some(rec) = &self.0 {
            let event = build();
            let wall_micros = rec.clock.now_micros();
            let mut st = rec.lock();
            let seq = st.events.len() as u64;
            st.events.push(RecordedEvent {
                event,
                seq,
                wall_micros,
            });
        }
    }

    /// Adds `delta` to a named counter.
    pub fn add(&self, name: &'static str, delta: u64) {
        if let Some(rec) = &self.0 {
            *rec.lock().counters.entry(name).or_insert(0) += delta;
        }
    }

    /// Sets a named gauge.
    pub fn gauge(&self, name: &'static str, value: f64) {
        if let Some(rec) = &self.0 {
            rec.lock().gauges.insert(name, value.to_bits());
        }
    }

    /// Records a value into a named log2 histogram.
    pub fn record(&self, name: &'static str, value: u64) {
        if let Some(rec) = &self.0 {
            rec.lock().histograms.entry(name).or_default().record(value);
        }
    }

    /// [`Recorder::snapshot`] when enabled.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.recorder().map(Recorder::snapshot)
    }

    /// [`Recorder::export_jsonl`] when enabled.
    pub fn export_jsonl(&self) -> Option<String> {
        self.recorder().map(Recorder::export_jsonl)
    }

    /// [`Recorder::export_chrome_trace`] when enabled.
    pub fn export_chrome_trace(&self) -> Option<String> {
        self.recorder().map(Recorder::export_chrome_trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TelemetrySink::default();
        assert!(!sink.is_enabled());
        sink.add("c", 1);
        sink.gauge("g", 1.0);
        sink.record("h", 1);
        sink.emit(|| unreachable!("must not be called"));
        assert!(sink.snapshot().is_none());
        assert!(sink.export_jsonl().is_none());
        assert!(sink.export_chrome_trace().is_none());
    }

    #[test]
    fn registries_accumulate_in_name_order() {
        let sink = TelemetrySink::recording();
        sink.add("b", 2);
        sink.add("a", 1);
        sink.add("b", 3);
        sink.gauge("g", 0.5);
        sink.gauge("g", 1.5);
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.counters, vec![("a", 1), ("b", 5)]);
        assert_eq!(snap.gauges, vec![("g", 1.5)]);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(u64::MAX), 64);
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (2, 2), (11, 1)]);
    }

    #[test]
    fn events_keep_record_order_and_fields() {
        let sink = TelemetrySink::recording();
        sink.emit(|| Event::begin("round").phase("netsim").round(0).shard(1));
        sink.emit(|| Event::end("round").phase("netsim").round(0).u64("sent", 4));
        let events = sink.recorder().unwrap().events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].event.kind, EventKind::Begin);
        assert_eq!(events[0].event.shard, 1);
        assert_eq!(events[1].event.fields, vec![("sent", FieldValue::U64(4))]);
        // The NullClock records no wall time.
        assert!(events.iter().all(|e| e.wall_micros == 0));
    }

    #[test]
    fn jsonl_export_is_deterministic_and_replayable() {
        let record = || {
            let sink = TelemetrySink::recording();
            sink.add("sent", 7);
            sink.record("inbox", 3);
            sink.gauge("delta", 0.125);
            sink.emit(|| {
                Event::instant("iter")
                    .phase("amp")
                    .round(2)
                    .f64("tau2", 0.5)
            });
            sink.export_jsonl().unwrap()
        };
        let a = record();
        assert_eq!(a, record());
        assert!(a.starts_with("{\"type\":\"meta\",\"schema\":1,"));
        assert!(a.contains("\"type\":\"counter\",\"name\":\"sent\",\"value\":7"));
        assert!(a.contains("\"type\":\"gauge\",\"name\":\"delta\",\"value\":0.125"));
        assert!(a.contains("\"log2_buckets\":[[2,1]]"));
        assert!(a.contains("\"fields\":{\"tau2\":0.5}"));
        // Every line is a JSON object line.
        assert!(a.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn chrome_trace_uses_logical_time_under_null_clock() {
        let sink = TelemetrySink::recording();
        sink.emit(|| Event::begin("round").phase("netsim"));
        sink.emit(|| Event::end("round").phase("netsim"));
        sink.add("sent", 2);
        let trace = sink.export_chrome_trace().unwrap();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"B\""));
        assert!(trace.contains("\"ph\":\"E\",\"pid\":0,\"tid\":0,\"ts\":1"));
        assert!(trace.contains("\"ph\":\"C\""));
    }

    #[test]
    fn chrome_trace_uses_wall_time_with_a_real_clock() {
        #[derive(Debug)]
        struct Fixed(u64);
        impl Clock for Fixed {
            fn now_micros(&self) -> u64 {
                self.0
            }
        }
        let sink = TelemetrySink::with_clock(Box::new(Fixed(123)));
        sink.emit(|| Event::instant("tick"));
        let trace = sink.export_chrome_trace().unwrap();
        assert!(trace.contains("\"ts\":123"), "{trace}");
        // And the deterministic export still carries no wall time.
        assert!(!sink.export_jsonl().unwrap().contains("123"));
    }

    #[test]
    fn clones_share_one_recorder() {
        let sink = TelemetrySink::recording();
        let clone = sink.clone();
        clone.add("c", 1);
        sink.add("c", 1);
        assert_eq!(sink.snapshot().unwrap().counters, vec![("c", 2)]);
    }

    #[test]
    fn json_helpers_stay_valid() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_field(FieldValue::I64(-3)), "-3");
    }
}
