//! Query bounds of Theorems 1 and 2.
//!
//! All functions return the *number of queries* `m` the respective theorem
//! requires for whole-vector recovery w.h.p. They take `n` as `f64` so the
//! harness can evaluate the curves on a continuous grid, matching the dashed
//! theory lines in Figures 2–4.
//!
//! Conventions:
//!
//! * sublinear regime: `k = n^θ`, `θ ∈ (0, 1)`;
//! * linear regime: `k = ζ·n`, `ζ ∈ (0, 1)`;
//! * noisy channel: false-negative rate `p`, false-positive rate `q`,
//!   `p + q < 1` (the Z-channel is `q = 0`);
//! * `ε > 0` is the slack of the theorem statements.

use crate::GAMMA;
use serde::{Deserialize, Serialize};

/// Validates the shared parameter ranges; the bound functions call this.
///
/// # Panics
///
/// Panics when `n < 1`, `p` or `q` is outside `[0, 1)`, `p + q ≥ 1`, or
/// `ε < 0`.
fn validate(n: f64, p: f64, q: f64, eps: f64) {
    assert!(n >= 1.0, "bounds: n={n} must be at least 1");
    assert!((0.0..1.0).contains(&p), "bounds: p={p} must be in [0,1)");
    assert!((0.0..1.0).contains(&q), "bounds: q={q} must be in [0,1)");
    assert!(p + q < 1.0, "bounds: p+q={} must be below 1", p + q);
    assert!(eps >= 0.0, "bounds: eps={eps} must be non-negative");
}

/// `k = n^θ` as a real number (the theory curves treat `k` continuously).
///
/// # Panics
///
/// Panics if `θ` is outside `(0, 1)`.
pub fn sublinear_k(n: f64, theta: f64) -> f64 {
    assert!(
        theta > 0.0 && theta < 1.0,
        "sublinear_k: theta={theta} must be in (0,1)"
    );
    n.powf(theta)
}

/// Theorem 1, sublinear regime, Z-channel (`q = 0`):
/// `m ≥ (4γ + ε)·(1 + √θ)²/(1 − p)·k·ln n`.
///
/// This is the dashed line of Figure 2 (with `p = 0.1`, `ε = 0.05`).
///
/// # Panics
///
/// Panics on invalid parameters (see module docs).
pub fn z_channel_sublinear_queries(n: f64, theta: f64, p: f64, eps: f64) -> f64 {
    validate(n, p, 0.0, eps);
    let k = sublinear_k(n, theta);
    (4.0 * GAMMA + eps) * (1.0 + theta.sqrt()).powi(2) / (1.0 - p) * k * n.ln()
}

/// Theorem 1, sublinear regime, general noisy channel (`q > 0` constant):
/// `m ≥ (4γ + ε)·q·(1 + √θ)²/(1 − p − q)²·n·ln n`.
///
/// Note the `n·ln n` scaling — once `q` dominates `k/n`, false positives
/// force a near-linear number of queries.
///
/// # Panics
///
/// Panics on invalid parameters.
pub fn gnc_sublinear_queries(n: f64, theta: f64, p: f64, q: f64, eps: f64) -> f64 {
    validate(n, p, q, eps);
    assert!(
        theta > 0.0 && theta < 1.0,
        "gnc_sublinear_queries: theta={theta} must be in (0,1)"
    );
    (4.0 * GAMMA + eps) * q * (1.0 + theta.sqrt()).powi(2) / (1.0 - p - q).powi(2) * n * n.ln()
}

/// Combined sublinear noisy-channel bound that interpolates the two cases of
/// Theorem 1:
/// `m ≥ (4γ + ε)·(1 + √θ)²·(q·n + k·(1 − p − q))/(1 − p − q)²·ln n`.
///
/// The remark after Theorem 1 states that `q = o(k/n)` behaves like `q = 0`
/// and `q = ω(k/n)` like constant `q`; this expression follows from the
/// common denominator `q + (k/n)(1 − p − q)` in Equations (8)–(9) of the
/// paper and reduces to [`z_channel_sublinear_queries`] at `q = 0` and to
/// [`gnc_sublinear_queries`] when `q·n ≫ k`. Figure 4's crossover between
/// the `k ln n` and `n ln n` regimes is exactly the bend of this curve.
///
/// # Panics
///
/// Panics on invalid parameters.
pub fn noisy_channel_sublinear_queries(n: f64, theta: f64, p: f64, q: f64, eps: f64) -> f64 {
    validate(n, p, q, eps);
    let k = sublinear_k(n, theta);
    let denom = (1.0 - p - q).powi(2);
    (4.0 * GAMMA + eps) * (1.0 + theta.sqrt()).powi(2) * (q * n + k * (1.0 - p - q)) / denom
        * n.ln()
}

/// Theorem 1, linear regime (`k = ζn`, Z-channel and general channel):
/// `m ≥ (16γ + ε)·(q + (1 − p − q)·ζ)/(1 − p − q)²·n·ln n`.
///
/// # Panics
///
/// Panics on invalid parameters or `ζ ∉ (0, 1)`.
pub fn noisy_channel_linear_queries(n: f64, zeta: f64, p: f64, q: f64, eps: f64) -> f64 {
    validate(n, p, q, eps);
    assert!(
        zeta > 0.0 && zeta < 1.0,
        "noisy_channel_linear_queries: zeta={zeta} must be in (0,1)"
    );
    (16.0 * GAMMA + eps) * (q + (1.0 - p - q) * zeta) / (1.0 - p - q).powi(2) * n * n.ln()
}

/// Theorem 2, sublinear regime (noisy query model, `λ² = o(m/ln n)`):
/// `m ≥ (4γ + ε)·(1 + √θ)²·k·ln n` — the noiseless bound.
///
/// # Panics
///
/// Panics on invalid parameters.
pub fn noisy_query_sublinear_queries(n: f64, theta: f64, eps: f64) -> f64 {
    z_channel_sublinear_queries(n, theta, 0.0, eps)
}

/// Theorem 2, linear regime: `m ≥ (16γ + ε)·ζ·n·ln n`.
///
/// # Panics
///
/// Panics on invalid parameters.
pub fn noisy_query_linear_queries(n: f64, zeta: f64, eps: f64) -> f64 {
    noisy_channel_linear_queries(n, zeta, 0.0, 0.0, eps)
}

/// Classification of the Gaussian query-noise magnitude relative to the
/// phase transition of Theorem 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryNoiseRegime {
    /// `λ² ≪ m / ln n`: the algorithm succeeds w.h.p. with the noiseless
    /// query budget.
    Safe,
    /// Between the two thresholds: the theory makes no statement; empirics
    /// (Figure 3) show graceful degradation here.
    Intermediate,
    /// `λ² = Ω(m)`: the algorithm fails with positive probability for any
    /// number of queries.
    Failing,
}

/// Classifies `λ` against the Theorem-2 phase transition for a given `m, n`.
///
/// The asymptotic statements are mapped to finite-size checks with
/// conventional constants: `Safe` when `λ²·ln n ≤ m/10`, `Failing` when
/// `λ² ≥ m`, `Intermediate` otherwise. These constants are documented
/// choices, not part of the theorem.
///
/// # Panics
///
/// Panics if `λ < 0`, `m ≤ 0`, or `n < 2`.
///
/// # Examples
///
/// ```
/// use npd_theory::bounds::{noise_regime, QueryNoiseRegime};
/// assert_eq!(noise_regime(1.0, 500.0, 1000.0), QueryNoiseRegime::Safe);
/// assert_eq!(noise_regime(40.0, 500.0, 1000.0), QueryNoiseRegime::Failing);
/// ```
pub fn noise_regime(lambda: f64, m: f64, n: f64) -> QueryNoiseRegime {
    assert!(lambda >= 0.0, "noise_regime: lambda={lambda} negative");
    assert!(m > 0.0, "noise_regime: m={m} must be positive");
    assert!(n >= 2.0, "noise_regime: n={n} must be at least 2");
    let l2 = lambda * lambda;
    if l2 * n.ln() <= m / 10.0 {
        QueryNoiseRegime::Safe
    } else if l2 >= m {
        QueryNoiseRegime::Failing
    } else {
        QueryNoiseRegime::Intermediate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn z_channel_reduces_to_noiseless_of_gebhard() {
        // With p = 0, the bound must match the noiseless maximum
        // neighborhood bound (4γ + ε)(1 + √θ)² k ln n of [29].
        let n = 1e4;
        let theta = 0.25;
        let m0 = z_channel_sublinear_queries(n, theta, 0.0, 0.0);
        let manual = 4.0 * GAMMA * 2.25 * n.powf(0.25) * n.ln();
        assert!((m0 - manual).abs() < 1e-6);
    }

    #[test]
    fn z_channel_monotone_in_p() {
        let m1 = z_channel_sublinear_queries(1e4, 0.25, 0.1, 0.05);
        let m3 = z_channel_sublinear_queries(1e4, 0.25, 0.3, 0.05);
        let m5 = z_channel_sublinear_queries(1e4, 0.25, 0.5, 0.05);
        assert!(m1 < m3 && m3 < m5);
    }

    #[test]
    fn figure2_dashed_line_value() {
        // Figure 2's dashed line: θ = 0.25, p = 0.1, ε = 0.05. At n = 10³,
        // k = 10^0.75 ≈ 5.62, ln n ≈ 6.91: m ≈ 1.624 · 2.25 · (1/0.9) · 38.86 ≈ 158.
        let m = z_channel_sublinear_queries(1e3, 0.25, 0.1, 0.05);
        assert!(m > 140.0 && m < 180.0, "m={m}");
    }

    #[test]
    fn gnc_scales_linearly_in_n() {
        let m1 = gnc_sublinear_queries(1e4, 0.25, 0.01, 0.01, 0.0);
        let m2 = gnc_sublinear_queries(1e5, 0.25, 0.01, 0.01, 0.0);
        let ratio = m2 / m1;
        // n ln n growth: 10 · ln(1e5)/ln(1e4) ≈ 12.5.
        assert!((ratio - 12.5).abs() < 0.1, "ratio={ratio}");
    }

    #[test]
    fn combined_bound_reduces_to_z_channel_at_q_zero() {
        let a = noisy_channel_sublinear_queries(5e3, 0.3, 0.2, 0.0, 0.05);
        let b = z_channel_sublinear_queries(5e3, 0.3, 0.2, 0.05);
        assert!((a - b).abs() / b < 1e-12);
    }

    #[test]
    fn combined_bound_approaches_gnc_for_large_qn() {
        // With q·n ≫ k the combined bound is dominated by the GNC term.
        let n = 1e5;
        let combined = noisy_channel_sublinear_queries(n, 0.25, 0.1, 0.1, 0.0);
        let gnc = gnc_sublinear_queries(n, 0.25, 0.1, 0.1, 0.0);
        assert!(
            (combined - gnc) / gnc < 0.01,
            "combined={combined} gnc={gnc}"
        );
        assert!(combined > gnc);
    }

    #[test]
    fn combined_bound_crossover_moves_with_q() {
        // The bend of Figure 4: the q-term overtakes the k-term when
        // q·n ≈ k = n^0.25. For q = 10⁻³ this is n ≈ 10⁴·... — just check
        // that at small n the bound tracks the Z-channel curve and at large
        // n it exceeds it markedly.
        let q = 1e-3;
        let small = noisy_channel_sublinear_queries(100.0, 0.25, q, q, 0.0);
        let z_small = z_channel_sublinear_queries(100.0, 0.25, q, 0.0);
        assert!((small - z_small) / z_small < 0.15);
        let large = noisy_channel_sublinear_queries(1e5, 0.25, q, q, 0.0);
        let z_large = z_channel_sublinear_queries(1e5, 0.25, q, 0.0);
        assert!(large / z_large > 3.0);
    }

    #[test]
    fn linear_bound_noiseless_matches_theorem2() {
        let a = noisy_channel_linear_queries(1e4, 0.3, 0.0, 0.0, 0.05);
        let b = noisy_query_linear_queries(1e4, 0.3, 0.05);
        assert_eq!(a, b);
        let manual = (16.0 * GAMMA + 0.05) * 0.3 * 1e4 * (1e4f64).ln();
        assert!((a - manual).abs() < 1e-6);
    }

    #[test]
    fn noisy_query_sublinear_is_noiseless_z() {
        let a = noisy_query_sublinear_queries(2e3, 0.25, 0.1);
        let b = z_channel_sublinear_queries(2e3, 0.25, 0.0, 0.1);
        assert_eq!(a, b);
    }

    #[test]
    fn noise_regime_classification() {
        assert_eq!(noise_regime(0.0, 100.0, 100.0), QueryNoiseRegime::Safe);
        assert_eq!(noise_regime(2.0, 500.0, 1000.0), QueryNoiseRegime::Safe);
        assert_eq!(
            noise_regime(5.0, 500.0, 1000.0),
            QueryNoiseRegime::Intermediate
        );
        assert_eq!(noise_regime(30.0, 500.0, 1000.0), QueryNoiseRegime::Failing);
    }

    #[test]
    #[should_panic(expected = "must be below 1")]
    fn rejects_p_plus_q_at_least_one() {
        noisy_channel_linear_queries(1e3, 0.5, 0.6, 0.4, 0.0);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn rejects_bad_theta() {
        sublinear_k(100.0, 1.5);
    }

    proptest! {
        /// All bounds are positive and increase with ε.
        #[test]
        fn bounds_positive_and_monotone_in_eps(
            n in 10.0f64..1e6,
            theta in 0.05f64..0.95,
            p in 0.0f64..0.45,
            q in 0.0f64..0.45,
            eps in 0.0f64..1.0,
        ) {
            let base = noisy_channel_sublinear_queries(n, theta, p, q, 0.0);
            let slack = noisy_channel_sublinear_queries(n, theta, p, q, eps);
            prop_assert!(base > 0.0);
            prop_assert!(slack >= base);
        }

        /// The combined sublinear bound dominates both extremal forms.
        #[test]
        fn combined_dominates_extremes(
            n in 10.0f64..1e6,
            theta in 0.05f64..0.95,
            p in 0.0f64..0.45,
            q in 0.001f64..0.45,
        ) {
            let combined = noisy_channel_sublinear_queries(n, theta, p, q, 0.0);
            let gnc = gnc_sublinear_queries(n, theta, p, q, 0.0);
            prop_assert!(combined >= gnc - 1e-9);
        }

        /// Linear-regime bound is monotone in ζ and in the noise level.
        #[test]
        fn linear_monotonicity(
            n in 10.0f64..1e6,
            zeta in 0.05f64..0.9,
            p in 0.0f64..0.4,
        ) {
            let lo = noisy_channel_linear_queries(n, zeta, p, 0.0, 0.0);
            let hi = noisy_channel_linear_queries(n, zeta, (p + 0.05).min(0.45), 0.0, 0.0);
            prop_assert!(hi >= lo);
        }
    }
}
