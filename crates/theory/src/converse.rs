//! Converse (lower) bounds on the number of queries.
//!
//! Theorems 1 and 2 are *achievability* results: enough queries for the
//! greedy algorithm to succeed. This module provides the opposite side of
//! the sandwich — how many queries *any* decoder (efficient or not) needs —
//! so the experiment harness can show measured thresholds pinched between
//! converse and achievability:
//!
//! * [`counting_bound_queries`] — a query returns one of `Γ + 1` values, so
//!   `m` queries distinguish at most `(Γ+1)^m` assignments; rigorous and
//!   noise-free.
//! * [`gaussian_converse_queries`] — under the noisy query model each query
//!   is a Gaussian channel use of capacity `½·log₂(1 + Var(Σ)/λ²)`; Fano
//!   then lower-bounds `m`. Rigorous up to the i.i.d.-slot variance
//!   approximation of `Var(Σ)`.
//! * [`channel_converse_queries`] — under the noisy channel the output
//!   entropy is at most `log₂(Γ+1)` while the *conditional* entropy of the
//!   binomial reading noise is `≈ ½·log₂(2πe·v)` (CLT, `O(1/v)` accurate);
//!   the difference caps the per-query information.
//! * [`binary_channel_capacity`] / [`z_channel_capacity`] — exact closed
//!   forms for the per-slot channel, giving the (weak but fully rigorous)
//!   slot-capacity bound [`slot_capacity_bound_queries`].
//!
//! All bounds return `f64` query counts (not rounded) to keep them
//! plot-friendly alongside the achievability curves of [`crate::bounds`].

use npd_numerics::special::ln_choose;

const LN_2: f64 = std::f64::consts::LN_2;
/// `2πe`, the variance-to-entropy constant of the Gaussian.
const TWO_PI_E: f64 = 2.0 * std::f64::consts::PI * std::f64::consts::E;

/// `log₂ C(n, k)` — the size of the hypothesis space in bits.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn log2_candidates(n: u64, k: u64) -> f64 {
    assert!(k <= n, "log2_candidates: k={k} exceeds n={n}");
    ln_choose(n, k) / LN_2
}

/// Binary entropy `H(x)` in bits, with `H(0) = H(1) = 0`.
///
/// # Panics
///
/// Panics if `x ∉ [0, 1]`.
pub fn binary_entropy(x: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&x),
        "binary_entropy: x={x} not in [0,1]"
    );
    let mut h = 0.0;
    if x > 0.0 {
        h -= x * x.log2();
    }
    if x < 1.0 {
        h -= (1.0 - x) * (1.0 - x).log2();
    }
    h
}

/// The noiseless counting converse: `m ≥ log₂ C(n,k) / log₂(Γ+1)`.
///
/// Any non-adaptive strategy whose queries return integers in `[0, Γ]`
/// cannot distinguish more than `(Γ+1)^m` assignments, so exact recovery
/// (even by exhaustive decoding) requires at least this many queries.
///
/// # Panics
///
/// Panics if `k > n` or `gamma == 0`.
pub fn counting_bound_queries(n: u64, k: u64, gamma: u64) -> f64 {
    assert!(gamma > 0, "counting_bound_queries: gamma must be positive");
    log2_candidates(n, k) / ((gamma as f64 + 1.0).log2())
}

/// Fano-style converse for the noisy query model:
/// `m ≥ log₂ C(n,k) / (½·log₂(1 + Γ·π(1−π)/λ²))` with `π = k/n`.
///
/// The true sum of a query concentrates with variance `≈ Γ·π(1−π)` (i.i.d.
/// slots), so each observation is one use of an additive-Gaussian channel
/// whose capacity the denominator states. Falls back to the counting bound
/// when `λ = 0`.
///
/// # Panics
///
/// Panics if `k > n`, `gamma == 0`, or `lambda < 0`.
pub fn gaussian_converse_queries(n: u64, k: u64, gamma: u64, lambda: f64) -> f64 {
    assert!(
        lambda >= 0.0,
        "gaussian_converse_queries: lambda={lambda} < 0"
    );
    if lambda == 0.0 {
        return counting_bound_queries(n, k, gamma);
    }
    assert!(
        gamma > 0,
        "gaussian_converse_queries: gamma must be positive"
    );
    let pi = k as f64 / n as f64;
    let signal_var = gamma as f64 * pi * (1.0 - pi);
    let capacity = 0.5 * (1.0 + signal_var / (lambda * lambda)).log2();
    if capacity <= 0.0 {
        return f64::INFINITY;
    }
    (log2_candidates(n, k) / capacity).max(counting_bound_queries(n, k, gamma))
}

/// CLT-approximate converse for the noisy channel:
/// `m ≥ log₂ C(n,k) / (log₂(Γ+1) − ½·log₂(2πe·v))` where
/// `v = Γ·(π·p(1−p) + (1−π)·q(1−q))` is the reading variance at the typical
/// slot composition.
///
/// The numerator of the capacity gap is the maximum output entropy, the
/// subtrahend the (CLT) conditional entropy of the binomial reading noise —
/// the per-query information can be no larger than their difference.
/// Reduces to the counting bound as `p, q → 0`.
///
/// # Panics
///
/// Panics if `k > n`, `gamma == 0`, `p ∉ [0,1)`, `q ∉ [0,1)`, or
/// `p + q ≥ 1`.
pub fn channel_converse_queries(n: u64, k: u64, gamma: u64, p: f64, q: f64) -> f64 {
    assert!(
        gamma > 0,
        "channel_converse_queries: gamma must be positive"
    );
    validate_channel(p, q);
    let pi = k as f64 / n as f64;
    let v = gamma as f64 * (pi * p * (1.0 - p) + (1.0 - pi) * q * (1.0 - q));
    let conditional_entropy = if v > 0.0 {
        0.5 * (TWO_PI_E * v).log2()
    } else {
        0.0
    };
    let per_query = ((gamma as f64 + 1.0).log2() - conditional_entropy.max(0.0)).max(0.0);
    if per_query == 0.0 {
        return f64::INFINITY;
    }
    (log2_candidates(n, k) / per_query).max(counting_bound_queries(n, k, gamma))
}

/// Exact capacity (bits/use) of the binary asymmetric channel with
/// false-positive rate `q` (`0 → 1`) and false-negative rate `p`
/// (`1 → 0`) — the per-slot channel of the paper's noisy channel model.
///
/// Closed form (see e.g. Moser, *Information Theory*, for the derivation):
/// with `s = 1 − p − q`,
///
/// ```text
/// C = q/s·H(p) − (1−p)/s·H(q) + log₂(1 + 2^{(H(q) − H(p))/s})
/// ```
///
/// Specializes to `1 − H(p)` for the BSC (`p = q`) and to the classic
/// Z-channel form for `q = 0`.
///
/// # Panics
///
/// Panics if `p ∉ [0,1)`, `q ∉ [0,1)`, or `p + q ≥ 1`.
pub fn binary_channel_capacity(p: f64, q: f64) -> f64 {
    validate_channel(p, q);
    if p == 0.0 && q == 0.0 {
        return 1.0;
    }
    let s = 1.0 - p - q;
    let hp = binary_entropy(p);
    let hq = binary_entropy(q);
    let c = q / s * hp - (1.0 - p) / s * hq + (1.0 + 2f64.powf((hq - hp) / s)).log2();
    c.clamp(0.0, 1.0)
}

/// Exact Z-channel capacity `log₂(1 + (1−p)·p^{p/(1−p)})`.
///
/// # Panics
///
/// Panics if `p ∉ [0, 1)`.
pub fn z_channel_capacity(p: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&p),
        "z_channel_capacity: p={p} not in [0,1)"
    );
    if p == 0.0 {
        return 1.0;
    }
    (1.0 + (1.0 - p) * p.powf(p / (1.0 - p))).log2()
}

/// The rigorous (but loose) slot-capacity converse: every query uses the
/// per-slot channel `Γ` times, so
/// `m ≥ log₂ C(n,k) / (Γ·C_bac(p,q))`.
///
/// This holds for *any* scheme that observes the hidden bits only through
/// the noisy channel — even one that sees each slot reading individually
/// rather than their sum — which is why it is far below the sum-aware
/// [`channel_converse_queries`].
///
/// # Panics
///
/// Panics if `k > n`, `gamma == 0`, or the channel parameters are invalid.
pub fn slot_capacity_bound_queries(n: u64, k: u64, gamma: u64, p: f64, q: f64) -> f64 {
    assert!(
        gamma > 0,
        "slot_capacity_bound_queries: gamma must be positive"
    );
    let c = binary_channel_capacity(p, q);
    if c == 0.0 {
        return f64::INFINITY;
    }
    log2_candidates(n, k) / (gamma as f64 * c)
}

fn validate_channel(p: f64, q: f64) {
    assert!((0.0..1.0).contains(&p), "channel: p={p} not in [0,1)");
    assert!((0.0..1.0).contains(&q), "channel: q={q} not in [0,1)");
    assert!(p + q < 1.0, "channel: p+q={} must be below 1", p + q);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;

    #[test]
    fn log2_candidates_matches_direct_count() {
        // C(10, 3) = 120.
        assert!((log2_candidates(10, 3) - 120f64.log2()).abs() < 1e-9);
        assert_eq!(log2_candidates(5, 0), 0.0);
        assert_eq!(log2_candidates(5, 5), 0.0);
    }

    #[test]
    fn binary_entropy_values() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-15);
        assert!((binary_entropy(0.11) - binary_entropy(0.89)).abs() < 1e-12);
    }

    #[test]
    fn counting_bound_is_informative() {
        // n = 1000, k = 6, Γ = 500: log₂ C ≈ 51.6 bits, ~9 bits per query.
        let m = counting_bound_queries(1000, 6, 500);
        assert!(m > 5.0 && m < 10.0, "m = {m}");
    }

    #[test]
    fn capacity_special_cases() {
        assert_eq!(binary_channel_capacity(0.0, 0.0), 1.0);
        // BSC: C = 1 − H(p).
        for p in [0.05, 0.1, 0.2, 0.3] {
            let c = binary_channel_capacity(p, p);
            assert!((c - (1.0 - binary_entropy(p))).abs() < 1e-12, "p={p}");
        }
        // Z-channel: matches the dedicated closed form.
        for p in [0.01, 0.1, 0.3, 0.6] {
            let general = binary_channel_capacity(p, 0.0);
            let direct = z_channel_capacity(p);
            assert!(
                (general - direct).abs() < 1e-12,
                "p={p}: {general} vs {direct}"
            );
        }
    }

    #[test]
    fn capacity_decreases_with_noise() {
        let mut last = 1.0;
        for p in [0.05, 0.15, 0.25, 0.35, 0.45] {
            let c = binary_channel_capacity(p, p);
            assert!(c < last, "capacity must fall as p grows");
            last = c;
        }
        // Z-channel at p = 0.5: log₂(1 + ½·½) = log₂ 1.25 ≈ 0.3219.
        assert!((z_channel_capacity(0.5) - 1.25f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn converses_sit_below_achievability() {
        // The sandwich must be valid wherever both sides are defined.
        let (n, theta) = (10_000.0, 0.25);
        let k = bounds::sublinear_k(n, theta).round() as u64;
        let gamma = (n as u64) / 2;

        let ach_noiseless = bounds::z_channel_sublinear_queries(n, theta, 0.0, 0.05);
        let conv_noiseless = counting_bound_queries(n as u64, k, gamma);
        assert!(conv_noiseless < ach_noiseless);

        let ach_z = bounds::z_channel_sublinear_queries(n, theta, 0.1, 0.05);
        let conv_z = channel_converse_queries(n as u64, k, gamma, 0.1, 0.0);
        assert!(conv_z < ach_z, "{conv_z} vs {ach_z}");

        let ach_g = bounds::noisy_query_sublinear_queries(n, theta, 0.05);
        let conv_g = gaussian_converse_queries(n as u64, k, gamma, 2.0);
        assert!(conv_g < ach_g, "{conv_g} vs {ach_g}");
    }

    #[test]
    fn channel_converse_reduces_to_counting() {
        let a = channel_converse_queries(1000, 6, 500, 0.0, 0.0);
        let b = counting_bound_queries(1000, 6, 500);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn noise_raises_the_converse() {
        let clean = channel_converse_queries(10_000, 10, 5_000, 0.0, 0.0);
        let z = channel_converse_queries(10_000, 10, 5_000, 0.3, 0.0);
        let gnc = channel_converse_queries(10_000, 10, 5_000, 0.3, 0.1);
        assert!(clean < z, "{clean} vs {z}");
        assert!(z < gnc, "{z} vs {gnc}");

        let quiet = gaussian_converse_queries(10_000, 10, 5_000, 0.5);
        let loud = gaussian_converse_queries(10_000, 10, 5_000, 8.0);
        assert!(quiet < loud);
    }

    #[test]
    fn slot_capacity_bound_is_weakest() {
        let slot = slot_capacity_bound_queries(1000, 6, 500, 0.1, 0.0);
        let sum_aware = channel_converse_queries(1000, 6, 500, 0.1, 0.0);
        assert!(slot < sum_aware);
        assert!(slot > 0.0);
    }

    #[test]
    fn zero_lambda_gaussian_equals_counting() {
        let a = gaussian_converse_queries(1000, 6, 500, 0.0);
        let b = counting_bound_queries(1000, 6, 500);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "p+q")]
    fn rejects_saturated_channel() {
        binary_channel_capacity(0.7, 0.4);
    }
}
