//! Degree expectations and concentration widths (Lemmas 3–5 of the paper).
//!
//! With `Γ = n/2` slots per query and `m` queries, an agent's multi-degree is
//! `Δᵢ ~ Bin(mΓ, 1/n)` with mean `Δ = m/2`; its distinct degree concentrates
//! at `Δ* = γ·m` with `γ = 1 − e^{−1/2}`. These quantities calibrate the
//! greedy score `Ψᵢ − Δ*ᵢ·k/2` and the simulation sanity tests.

use crate::{GAMMA, QUERY_FRACTION};

/// Expected multi-degree `E[Δᵢ] = m·Γ/n = m/2` (Lemma 3 with `Γ = n/2`).
///
/// # Panics
///
/// Panics if `m` is negative.
pub fn expected_multi_degree(m: f64) -> f64 {
    assert!(m >= 0.0, "expected_multi_degree: m={m} negative");
    m * QUERY_FRACTION
}

/// Expected distinct degree `E[Δ*ᵢ] = γ·m` (Corollary 5).
///
/// # Panics
///
/// Panics if `m` is negative.
pub fn expected_distinct_degree(m: f64) -> f64 {
    assert!(m >= 0.0, "expected_distinct_degree: m={m} negative");
    GAMMA * m
}

/// Expected number of *distinct agents* in one query,
/// `n·(1 − (1 − 1/n)^Γ) → γ·n`.
///
/// Uses the exact finite-`n` expression, not the limit.
///
/// # Panics
///
/// Panics if `n < 1` or `gamma_slots < 0`.
pub fn expected_distinct_agents_per_query(n: f64, gamma_slots: f64) -> f64 {
    assert!(n >= 1.0, "expected_distinct_agents_per_query: n={n} < 1");
    assert!(
        gamma_slots >= 0.0,
        "expected_distinct_agents_per_query: negative slots"
    );
    n * (1.0 - (1.0 - 1.0 / n).powf(gamma_slots))
}

/// Concentration half-width of the multi-degree from Lemma 3:
/// `ln(n)·√Δ`.
///
/// # Panics
///
/// Panics if inputs are negative or `n < 1`.
pub fn multi_degree_width(n: f64, m: f64) -> f64 {
    assert!(n >= 1.0, "multi_degree_width: n={n} < 1");
    n.ln() * expected_multi_degree(m).sqrt()
}

/// Concentration half-width of the distinct degree from Corollary 5:
/// `ln²(n)·√Δ*`.
///
/// # Panics
///
/// Panics if inputs are negative or `n < 1`.
pub fn distinct_degree_width(n: f64, m: f64) -> f64 {
    assert!(n >= 1.0, "distinct_degree_width: n={n} < 1");
    n.ln().powi(2) * expected_distinct_degree(m).sqrt()
}

/// The expected score gap between one-agents and zero-agents under the noisy
/// channel, `Δ·(1 − p − q)` (Equation (2) of the paper).
///
/// # Panics
///
/// Panics on parameters outside the model's range.
pub fn expected_score_gap(m: f64, p: f64, q: f64) -> f64 {
    assert!((0.0..1.0).contains(&p), "expected_score_gap: bad p={p}");
    assert!((0.0..1.0).contains(&q), "expected_score_gap: bad q={q}");
    assert!(p + q < 1.0, "expected_score_gap: p+q must be below 1");
    expected_multi_degree(m) * (1.0 - p - q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_degree_is_half_m() {
        assert_eq!(expected_multi_degree(200.0), 100.0);
        assert_eq!(expected_multi_degree(0.0), 0.0);
    }

    #[test]
    fn distinct_degree_uses_gamma() {
        assert!((expected_distinct_degree(100.0) - 39.34693).abs() < 1e-4);
    }

    #[test]
    fn distinct_agents_per_query_approaches_gamma_n() {
        let n = 1e6;
        let exact = expected_distinct_agents_per_query(n, n / 2.0);
        assert!((exact / n - GAMMA).abs() < 1e-6);
    }

    #[test]
    fn distinct_agents_small_n_exact() {
        // n = 2, Γ = 1: expected distinct = 2·(1 − (1/2)) = 1.
        assert!((expected_distinct_agents_per_query(2.0, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn widths_grow_with_m_and_n() {
        assert!(multi_degree_width(1e4, 400.0) > multi_degree_width(1e4, 100.0));
        assert!(distinct_degree_width(1e5, 100.0) > distinct_degree_width(1e3, 100.0));
    }

    #[test]
    fn score_gap_shrinks_with_noise() {
        let clean = expected_score_gap(100.0, 0.0, 0.0);
        let noisy = expected_score_gap(100.0, 0.3, 0.1);
        assert_eq!(clean, 50.0);
        assert!((noisy - 30.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "p+q")]
    fn score_gap_rejects_saturated_channel() {
        expected_score_gap(10.0, 0.7, 0.5);
    }

    #[test]
    fn width_vs_gap_matches_papers_practicality_remark() {
        // Section V of the paper observes that the crude concentration
        // width ln²(n)·√Δ·(1−p) exceeds the score gap Δ·(1−p) at every
        // practical n, while the sharper footnote variant 2·√Δ·ln(k)
        // already holds at n = 10⁴ for p = 0.1. Verify both observations.
        let n = 1e4;
        let theta = 0.25;
        let k = crate::bounds::sublinear_k(n, theta);
        let m = bounds_m(n, 0.1);
        let delta = expected_multi_degree(m);
        let gap = expected_score_gap(m, 0.1, 0.0);
        // Crude width: too large at practical sizes (the paper's caveat).
        assert!(distinct_degree_width(n, m) > gap);
        // Sharp width from the paper's footnote 3: comfortably below.
        let sharp = 2.0 * delta.sqrt() * k.ln();
        assert!(sharp < gap, "sharp={sharp} gap={gap}");
    }

    fn bounds_m(n: f64, p: f64) -> f64 {
        crate::bounds::z_channel_sublinear_queries(n, 0.25, p, 0.05)
    }
}
