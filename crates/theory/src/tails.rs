//! Tail bounds used throughout the paper's analysis.
//!
//! * [`chernoff_upper`] / [`chernoff_lower`] — Theorem 10 (Chernoff bounds
//!   for sums of negatively associated Bernoulli variables, which covers the
//!   multinomial components `Λⱼ(·,·)` of Lemma 7).
//! * [`gaussian_tail_upper`] / [`gaussian_tail_lower`] — Theorem 11 (the
//!   Gaussian tail sandwich via Mill's ratio), used to locate the noisy-query
//!   phase transition.

/// Chernoff upper-tail bound of Theorem 10:
/// `P(X ≥ (1+ε)·E[X]) ≤ exp(−ε²·E[X]/(2+ε))`.
///
/// # Panics
///
/// Panics if `mean < 0` or `eps < 0`.
///
/// # Examples
///
/// ```
/// let b = npd_theory::tails::chernoff_upper(100.0, 0.5);
/// assert!(b < 5e-5);
/// ```
pub fn chernoff_upper(mean: f64, eps: f64) -> f64 {
    assert!(mean >= 0.0, "chernoff_upper: mean={mean} negative");
    assert!(eps >= 0.0, "chernoff_upper: eps={eps} negative");
    (-eps * eps * mean / (2.0 + eps)).exp()
}

/// Chernoff lower-tail bound of Theorem 10:
/// `P(X ≤ (1−ε)·E[X]) ≤ exp(−ε²·E[X]/2)`.
///
/// # Panics
///
/// Panics if `mean < 0` or `eps` is outside `[0, 1]`.
pub fn chernoff_lower(mean: f64, eps: f64) -> f64 {
    assert!(mean >= 0.0, "chernoff_lower: mean={mean} negative");
    assert!(
        (0.0..=1.0).contains(&eps),
        "chernoff_lower: eps={eps} must be in [0,1]"
    );
    (-eps * eps * mean / 2.0).exp()
}

/// Two-sided convenience: bound on `P(|X − E[X]| ≥ ε·E[X])`, the sum of the
/// upper and lower Chernoff bounds (capped at 1).
///
/// # Panics
///
/// Panics on invalid inputs (see the one-sided functions).
pub fn chernoff_two_sided(mean: f64, eps: f64) -> f64 {
    (chernoff_upper(mean, eps) + chernoff_lower(mean, eps.min(1.0))).min(1.0)
}

/// Gaussian upper tail of Theorem 11: for `X ~ N(0, λ²)` and `y > 0`,
/// `P(X ≥ y) ≤ (λ/y)·φ(y/λ)` where `φ` is the standard normal density.
///
/// # Panics
///
/// Panics if `lambda <= 0` or `y <= 0`.
pub fn gaussian_tail_upper(lambda: f64, y: f64) -> f64 {
    assert!(lambda > 0.0, "gaussian_tail_upper: lambda={lambda} <= 0");
    assert!(y > 0.0, "gaussian_tail_upper: y={y} <= 0");
    let z = y / lambda;
    (lambda / y) * phi(z)
}

/// Gaussian lower tail bound of Theorem 11 (Mill's ratio):
/// `P(X ≥ y) ≥ (λ/y − λ³/y³)·φ(y/λ)`.
///
/// The bound is vacuous (negative) for `y < λ`; callers should use it in the
/// tail `y > λ` as the paper does.
///
/// # Panics
///
/// Panics if `lambda <= 0` or `y <= 0`.
pub fn gaussian_tail_lower(lambda: f64, y: f64) -> f64 {
    assert!(lambda > 0.0, "gaussian_tail_lower: lambda={lambda} <= 0");
    assert!(y > 0.0, "gaussian_tail_lower: y={y} <= 0");
    let z = y / lambda;
    (lambda / y - lambda.powi(3) / y.powi(3)) * phi(z)
}

/// Standard normal density `φ(x) = exp(−x²/2)/√(2π)`.
fn phi(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use npd_numerics::special::normal_sf;
    use proptest::prelude::*;

    #[test]
    fn chernoff_upper_decreases_in_eps_and_mean() {
        assert!(chernoff_upper(10.0, 0.5) > chernoff_upper(10.0, 1.0));
        assert!(chernoff_upper(10.0, 0.5) > chernoff_upper(100.0, 0.5));
    }

    #[test]
    fn chernoff_at_zero_eps_is_one() {
        assert_eq!(chernoff_upper(50.0, 0.0), 1.0);
        assert_eq!(chernoff_lower(50.0, 0.0), 1.0);
    }

    #[test]
    fn chernoff_bounds_actual_binomial_tail() {
        // P(Bin(1000, 0.1) ≥ 150) must be below chernoff_upper(100, 0.5).
        // The exact tail is ≈ 7.4e-7 (normal approx), bound is ≈ 4.5e-5.
        let bound = chernoff_upper(100.0, 0.5);
        let exact_approx = normal_sf((150.0 - 100.0) / (90.0f64).sqrt());
        assert!(exact_approx < bound);
    }

    #[test]
    fn two_sided_caps_at_one() {
        assert_eq!(chernoff_two_sided(0.001, 0.001), 1.0);
    }

    #[test]
    fn chernoff_dominates_exact_binomial_tails() {
        // Theorem 10 must upper-bound the exact tail for independent
        // Bernoulli sums (a special case of negative association). Check
        // against exact pmf summation across a parameter grid.
        use npd_numerics::special::ln_binomial_pmf;
        for &(n, p) in &[(40u64, 0.2f64), (100, 0.05), (60, 0.5)] {
            let mean = n as f64 * p;
            for &eps in &[0.2, 0.5, 1.0] {
                // Upper tail: P(X ≥ (1+ε)μ).
                let threshold_hi = ((1.0 + eps) * mean).ceil() as u64;
                let exact_hi: f64 = (threshold_hi..=n)
                    .map(|k| ln_binomial_pmf(n, p, k).exp())
                    .sum();
                assert!(
                    exact_hi <= chernoff_upper(mean, eps) * (1.0 + 1e-9),
                    "upper: n={n} p={p} eps={eps}: exact {exact_hi} vs bound {}",
                    chernoff_upper(mean, eps)
                );
                // Lower tail: P(X ≤ (1−ε)μ).
                if eps < 1.0 {
                    let threshold_lo = ((1.0 - eps) * mean).floor() as u64;
                    let exact_lo: f64 = (0..=threshold_lo)
                        .map(|k| ln_binomial_pmf(n, p, k).exp())
                        .sum();
                    assert!(
                        exact_lo <= chernoff_lower(mean, eps) * (1.0 + 1e-9),
                        "lower: n={n} p={p} eps={eps}: exact {exact_lo} vs bound {}",
                        chernoff_lower(mean, eps)
                    );
                }
            }
        }
    }

    #[test]
    fn gaussian_sandwich_brackets_true_tail() {
        // λ = 1: for a range of y, lower ≤ P(X ≥ y) ≤ upper.
        for &y in &[1.5, 2.0, 3.0, 4.0] {
            let upper = gaussian_tail_upper(1.0, y);
            let lower = gaussian_tail_lower(1.0, y);
            let truth = normal_sf(y);
            assert!(truth <= upper * (1.0 + 1e-6), "y={y}: {truth} vs {upper}");
            assert!(truth >= lower * (1.0 - 1e-6), "y={y}: {truth} vs {lower}");
        }
    }

    #[test]
    fn gaussian_tail_scales_with_lambda() {
        // P(N(0, λ²) ≥ y) = P(N(0,1) ≥ y/λ): bound must respect the scaling.
        let a = gaussian_tail_upper(2.0, 4.0);
        let b = gaussian_tail_upper(1.0, 2.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn gaussian_tail_rejects_zero_lambda() {
        gaussian_tail_upper(0.0, 1.0);
    }

    proptest! {
        /// Sandwich property over a parameter grid (tail region y > λ).
        #[test]
        fn sandwich_property(lambda in 0.1f64..10.0, ratio in 1.1f64..6.0) {
            let y = lambda * ratio;
            let upper = gaussian_tail_upper(lambda, y);
            let lower = gaussian_tail_lower(lambda, y);
            prop_assert!(lower <= upper);
            let truth = normal_sf(ratio);
            prop_assert!(truth <= upper * (1.0 + 1e-6));
            // The A&S erfc approximation has ~1e-7 absolute error; allow it.
            prop_assert!(truth >= lower - 2e-7);
        }

        /// Chernoff bounds are valid probabilities-ish (≤ 1 for ε > 0) and
        /// monotone in the mean.
        #[test]
        fn chernoff_monotone(mean in 0.0f64..1e4, eps in 0.0f64..1.0) {
            let u = chernoff_upper(mean, eps);
            prop_assert!(u <= 1.0 + 1e-12);
            prop_assert!(chernoff_upper(mean + 10.0, eps) <= u + 1e-12);
        }
    }
}
