//! Closed-form theory from *“Distributed Reconstruction of Noisy Pooled
//! Data”* (ICDCS 2022): the query bounds of Theorems 1 and 2, the degree
//! expectations of Lemmas 3–5, and the tail bounds of Theorems 10 and 11.
//!
//! Everything here is a pure function of the model parameters; the
//! experiment harness overlays these curves on the simulation data exactly
//! as the dashed lines in Figures 2–4, 6 and 7 of the paper.
//!
//! # Examples
//!
//! ```
//! use npd_theory::{bounds, GAMMA};
//!
//! // Theorem 1, Z-channel, θ = 0.25, p = 0.1, ε = 0.05 — the dashed line of
//! // Figure 2 at n = 10⁴.
//! let m = bounds::z_channel_sublinear_queries(10_000.0, 0.25, 0.1, 0.05);
//! assert!(m > 0.0);
//! assert!((GAMMA - 0.3934693402873666).abs() < 1e-15);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod bounds;
pub mod converse;
pub mod degrees;
pub mod tails;

/// The constant `γ = 1 − e^{−1/2}` that appears in all bounds of the paper.
///
/// It is the asymptotic fraction of *distinct* neighbors: a query with
/// `Γ = n/2` slots drawn with replacement touches `γ·n` distinct agents in
/// expectation, and an agent appears in `γ·m` distinct queries.
pub const GAMMA: f64 = 1.0 - 0.606_530_659_712_633_4; // 1 − e^{−1/2}

/// Fraction of agents drawn per query in the paper's design, `Γ = n/2`.
pub const QUERY_FRACTION: f64 = 0.5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_matches_direct_computation() {
        assert!((GAMMA - (1.0 - (-0.5f64).exp())).abs() < 1e-15);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn gamma_is_about_0_39() {
        assert!(GAMMA > 0.3934 && GAMMA < 0.3935);
    }
}
