//! Communication-cost model for a distributed AMP execution.
//!
//! The paper's conclusion observes that AMP “has a distributed touch” —
//! every iteration can be phrased as queries messaging their member agents
//! and agents messaging back — but “the communication overhead becomes
//! substantial”, citing reference \[32\]. This module quantifies that claim so the
//! harness can print the greedy-vs-AMP communication table:
//!
//! * per iteration, each *edge* of the pooling graph carries two messages
//!   (query → agent with the current residual contribution, agent → query
//!   with the updated estimate);
//! * each iteration costs two synchronous rounds;
//! * the greedy protocol, by contrast, uses each measurement edge exactly
//!   once plus the `O(log² n)`-round sorting phase.

use serde::{Deserialize, Serialize};

/// Cost model for running AMP as a message-passing protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistributedAmpCost {
    /// Distinct query–agent edges in the pooling graph (`Σⱼ |∂*aⱼ|`).
    pub edges: u64,
    /// AMP iterations executed.
    pub iterations: u64,
}

impl DistributedAmpCost {
    /// Creates the cost model.
    pub fn new(edges: u64, iterations: u64) -> Self {
        Self { edges, iterations }
    }

    /// Total messages: two per edge per iteration.
    pub fn messages(&self) -> u64 {
        2 * self.edges * self.iterations
    }

    /// Total synchronous rounds: two per iteration.
    pub fn rounds(&self) -> u64 {
        2 * self.iterations
    }

    /// Message overhead relative to a protocol that uses each edge once
    /// (the greedy measurement phase).
    ///
    /// Returns `f64::INFINITY` when there are no edges.
    pub fn overhead_vs_single_pass(&self) -> f64 {
        if self.edges == 0 {
            f64::INFINITY
        } else {
            self.messages() as f64 / self.edges as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_scale_with_iterations() {
        let c = DistributedAmpCost::new(1000, 30);
        assert_eq!(c.messages(), 60_000);
        assert_eq!(c.rounds(), 60);
    }

    #[test]
    fn overhead_is_twice_the_iterations() {
        let c = DistributedAmpCost::new(500, 25);
        assert_eq!(c.overhead_vs_single_pass(), 50.0);
    }

    #[test]
    fn zero_edges_is_infinite_overhead() {
        let c = DistributedAmpCost::new(0, 10);
        assert_eq!(c.overhead_vs_single_pass(), f64::INFINITY);
        assert_eq!(c.messages(), 0);
    }

    #[test]
    fn zero_iterations_is_free() {
        let c = DistributedAmpCost::new(1000, 0);
        assert_eq!(c.messages(), 0);
        assert_eq!(c.rounds(), 0);
    }
}
