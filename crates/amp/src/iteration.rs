//! The AMP iteration and the [`npd_core::Decoder`] adapter.

use crate::denoiser::{BayesBernoulli, Denoiser, SoftThreshold};
use crate::preprocess::{prepare, Prepared};
use npd_core::{Decoder, Estimate, Run};
use npd_numerics::vector;
use npd_numerics::vector::resize_fill;
use npd_telemetry::{Event, TelemetrySink};
use serde::{Deserialize, Serialize};

/// Which denoiser family the [`AmpDecoder`] instantiates per run.
///
/// The Bayes posterior mean is the natural (and default) choice for the
/// known `Bernoulli(k/n)` prior; the soft threshold is the original
/// compressed-sensing denoiser, kept for ablation — it ignores the prior
/// weight and therefore needs noticeably more measurements on this problem.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum DenoiserKind {
    /// Posterior mean under `Bernoulli(k/n)` (default).
    #[default]
    BayesBernoulli,
    /// Soft threshold at `α·τ`.
    SoftThreshold {
        /// Threshold multiplier α.
        alpha: f64,
    },
}

/// Tuning knobs of the AMP iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmpConfig {
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Convergence threshold on `‖x_{t+1} − x_t‖∞`.
    pub tolerance: f64,
    /// Damping `d ∈ [0, 1)`: `x ← (1−d)·x_new + d·x_old`. `0` is the pure
    /// DMM iteration; small damping stabilizes borderline instances.
    pub damping: f64,
    /// Whether the Onsager memory term `b·z_{t−1}` is included (default
    /// `true`). Disabling it yields plain iterative thresholding — the
    /// ablation behind DESIGN.md's reading of the paper's update equation;
    /// without the term the effective noise is misestimated and the
    /// transition degrades markedly.
    pub onsager: bool,
}

impl Default for AmpConfig {
    fn default() -> Self {
        Self {
            max_iterations: 60,
            tolerance: 1e-8,
            damping: 0.0,
            onsager: true,
        }
    }
}

/// Full trace of an AMP solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AmpOutput {
    /// Final signal estimate (posterior means in `[0, 1]` for the Bayes
    /// denoiser).
    pub estimate: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
    /// Effective-noise estimates `τ_t² = ‖z_t‖²/m` per iteration.
    pub tau2_history: Vec<f64>,
}

/// Reusable buffers for the AMP iteration.
///
/// One solve needs six working vectors (`x`, `x_new`, `z`, `z_new`, `v`,
/// `bx`); allocating them per call dominated small-instance decode time in
/// the Monte-Carlo sweeps. A workspace is resized on first use and reused
/// across repeated solves of the same shape without touching the
/// allocator. [`run_amp`] remains the one-shot entry point;
/// [`run_amp_with`] produces bit-identical output by construction (same
/// operations in the same order, only the backing storage differs).
#[derive(Debug, Clone, Default)]
pub struct AmpWorkspace {
    x: Vec<f64>,
    x_new: Vec<f64>,
    z: Vec<f64>,
    z_new: Vec<f64>,
    v: Vec<f64>,
    bx: Vec<f64>,
    /// Telemetry handle (disabled by default): one `amp.iter` event per
    /// iteration with the effective noise τ² and the update delta.
    sink: TelemetrySink,
}

impl AmpWorkspace {
    /// Creates an empty workspace (buffers grow on first solve).
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a telemetry sink. Each subsequent solve records one
    /// `amp.iter` event per iteration (round = iteration index) carrying
    /// `tau2` (the empirical state-evolution statistic `‖z‖²/m`) and
    /// `delta` (`‖x_{t+1} − x_t‖∞`). Recorded from the serial iteration
    /// boundary, so the stream is bit-identical across thread counts.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.sink = sink;
    }

    fn prepare(&mut self, m: usize, n: usize, y: &[f64]) {
        resize_fill(&mut self.x, n, 0.0);
        resize_fill(&mut self.x_new, n, 0.0);
        resize_fill(&mut self.v, n, 0.0);
        resize_fill(&mut self.bx, m, 0.0);
        self.z.clear();
        self.z.extend_from_slice(y);
        resize_fill(&mut self.z_new, m, 0.0);
    }
}

/// Runs AMP on a prepared problem with the given denoiser (one-shot entry
/// point; allocates a fresh [`AmpWorkspace`]).
///
/// # Panics
///
/// Panics if the prepared observation vector length does not match the
/// matrix row count.
pub fn run_amp<D: Denoiser>(prep: &Prepared, denoiser: &D, config: &AmpConfig) -> AmpOutput {
    let mut workspace = AmpWorkspace::new();
    run_amp_with(prep, denoiser, config, &mut workspace)
}

/// Runs AMP reusing the caller's workspace buffers.
///
/// Output is identical to [`run_amp`]; repeated calls on problems of the
/// same shape perform no per-call heap allocation beyond the returned
/// [`AmpOutput`].
///
/// # Panics
///
/// Panics if the prepared observation vector length does not match the
/// matrix row count.
pub fn run_amp_with<D: Denoiser>(
    prep: &Prepared,
    denoiser: &D,
    config: &AmpConfig,
    ws: &mut AmpWorkspace,
) -> AmpOutput {
    let m = prep.matrix.rows();
    let n = prep.matrix.cols();
    assert_eq!(
        prep.observations.len(),
        m,
        "run_amp: observations/matrix mismatch"
    );

    let y = &prep.observations;
    ws.prepare(m, n, y);
    let mut tau2_history = Vec::new();
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..config.max_iterations {
        iterations += 1;
        // Pseudo-observations v = Bᵀz + x and effective noise τ².
        prep.matrix.matvec_t_into(&ws.z, &mut ws.v);
        vector::axpy(1.0, &ws.x, &mut ws.v);
        let tau2 = vector::norm2_sq(&ws.z) / m as f64;
        tau2_history.push(tau2);

        // Denoise and compute the Onsager coefficient b = (1/m)Σ η'(v).
        let mut deriv_sum = 0.0;
        for (xn, &vi) in ws.x_new.iter_mut().zip(&ws.v) {
            *xn = denoiser.eta(vi, tau2);
            deriv_sum += denoiser.eta_prime(vi, tau2);
        }
        let onsager = if config.onsager {
            deriv_sum / m as f64
        } else {
            0.0
        };

        if config.damping > 0.0 {
            for (xn, &xo) in ws.x_new.iter_mut().zip(&ws.x) {
                *xn = (1.0 - config.damping) * *xn + config.damping * xo;
            }
        }

        // Residual with memory: z = y − B·x_new + b·z_prev.
        prep.matrix.matvec_into(&ws.x_new, &mut ws.bx);
        ws.z_new.clear();
        ws.z_new.extend_from_slice(y);
        vector::axpy(-1.0, &ws.bx, &mut ws.z_new);
        vector::axpy(onsager, &ws.z, &mut ws.z_new);

        let delta = vector::max_abs_diff(&ws.x_new, &ws.x);
        std::mem::swap(&mut ws.x, &mut ws.x_new);
        std::mem::swap(&mut ws.z, &mut ws.z_new);
        ws.sink.emit(|| {
            Event::instant("amp.iter")
                .phase("amp")
                .round(iterations as u64 - 1)
                .f64("tau2", tau2)
                .f64("delta", delta)
        });
        if delta < config.tolerance {
            converged = true;
            break;
        }
    }

    AmpOutput {
        estimate: ws.x.clone(),
        iterations,
        converged,
        tau2_history,
    }
}

/// AMP as a drop-in [`Decoder`]: prepares the run, iterates with the
/// Bayes-Bernoulli denoiser at prior `k/n`, and thresholds by rank (the top
/// `k` posterior means become ones — the same success criterion as the
/// greedy algorithm).
///
/// # Examples
///
/// ```
/// use npd_amp::{AmpConfig, AmpDecoder};
///
/// let decoder = AmpDecoder::new(AmpConfig { max_iterations: 40, ..AmpConfig::default() });
/// assert_eq!(decoder.config().max_iterations, 40);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AmpDecoder {
    config: AmpConfig,
    denoiser: DenoiserKind,
}

impl AmpDecoder {
    /// Creates a decoder with an explicit configuration and the default
    /// Bayes-Bernoulli denoiser.
    pub fn new(config: AmpConfig) -> Self {
        Self {
            config,
            denoiser: DenoiserKind::default(),
        }
    }

    /// Selects the denoiser family (see [`DenoiserKind`]).
    pub fn with_denoiser(mut self, denoiser: DenoiserKind) -> Self {
        self.denoiser = denoiser;
        self
    }

    /// The iteration configuration.
    pub fn config(&self) -> &AmpConfig {
        &self.config
    }

    /// The selected denoiser family.
    pub fn denoiser(&self) -> DenoiserKind {
        self.denoiser
    }

    /// Decodes and returns the full iteration trace alongside the estimate
    /// (use [`Decoder::decode`] when only the bits matter).
    pub fn decode_with_trace(&self, run: &Run) -> (Estimate, AmpOutput) {
        let mut workspace = AmpWorkspace::new();
        self.decode_with_trace_using(run, &mut workspace)
    }

    /// [`AmpDecoder::decode_with_trace`] reusing the caller's workspace:
    /// repeated decodes on same-shaped runs skip the per-call buffer
    /// allocations. Output is identical to the one-shot path.
    pub fn decode_with_trace_using(
        &self,
        run: &Run,
        workspace: &mut AmpWorkspace,
    ) -> (Estimate, AmpOutput) {
        let prep = prepare(run);
        let output = match self.denoiser {
            DenoiserKind::BayesBernoulli => {
                let denoiser = BayesBernoulli::new(prep.prior.clamp(1e-9, 1.0 - 1e-9));
                run_amp_with(&prep, &denoiser, &self.config, workspace)
            }
            DenoiserKind::SoftThreshold { alpha } => {
                let denoiser = SoftThreshold::new(alpha);
                run_amp_with(&prep, &denoiser, &self.config, workspace)
            }
        };
        let estimate = Estimate::from_scores(output.estimate.clone(), run.instance().k());
        (estimate, output)
    }
}

impl Decoder for AmpDecoder {
    fn decode(&self, run: &Run) -> Estimate {
        self.decode_with_trace(run).0
    }

    fn name(&self) -> &'static str {
        "amp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npd_core::{exact_recovery, overlap, GreedyDecoder, Instance, NoiseModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample(n: usize, k: usize, m: usize, noise: NoiseModel, seed: u64) -> Run {
        Instance::builder(n)
            .k(k)
            .queries(m)
            .noise(noise)
            .build()
            .unwrap()
            .sample(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn recovers_noiseless_instance() {
        for seed in 0..3 {
            let run = sample(500, 5, 300, NoiseModel::Noiseless, seed);
            let est = AmpDecoder::default().decode(&run);
            assert!(
                exact_recovery(&est, run.ground_truth()),
                "seed={seed}: overlap {}",
                overlap(&est, run.ground_truth())
            );
        }
    }

    #[test]
    fn recovers_z_channel_instance() {
        let run = sample(500, 5, 400, NoiseModel::z_channel(0.1), 11);
        let est = AmpDecoder::default().decode(&run);
        assert!(exact_recovery(&est, run.ground_truth()));
    }

    #[test]
    fn recovers_gaussian_noise_instance() {
        let run = sample(500, 5, 400, NoiseModel::gaussian(1.0), 12);
        let est = AmpDecoder::default().decode(&run);
        assert!(exact_recovery(&est, run.ground_truth()));
    }

    #[test]
    fn tau_decreases_on_easy_instances() {
        let run = sample(500, 5, 400, NoiseModel::Noiseless, 13);
        let (_, trace) = AmpDecoder::default().decode_with_trace(&run);
        let first = trace.tau2_history[0];
        let last = *trace.tau2_history.last().unwrap();
        assert!(last < first * 0.1, "τ² did not shrink: {first} → {last}");
    }

    #[test]
    fn converges_within_budget_on_easy_instances() {
        let run = sample(400, 4, 300, NoiseModel::Noiseless, 14);
        let (_, trace) = AmpDecoder::default().decode_with_trace(&run);
        assert!(trace.converged, "iterations={}", trace.iterations);
    }

    #[test]
    fn estimates_are_posterior_means() {
        let run = sample(300, 3, 200, NoiseModel::z_channel(0.2), 15);
        let (_, trace) = AmpDecoder::default().decode_with_trace(&run);
        assert!(trace
            .estimate
            .iter()
            .all(|&x| (-1e-9..=1.0 + 1e-9).contains(&x)));
    }

    #[test]
    fn damping_still_recovers() {
        let run = sample(400, 4, 300, NoiseModel::Noiseless, 16);
        let decoder = AmpDecoder::new(AmpConfig {
            damping: 0.3,
            ..AmpConfig::default()
        });
        let est = decoder.decode(&run);
        assert!(exact_recovery(&est, run.ground_truth()));
    }

    #[test]
    fn beats_or_matches_greedy_between_the_thresholds() {
        // Figure 6's key qualitative claim: AMP's transition sits at (or
        // below) the greedy transition, so in the window between them AMP
        // succeeds more often. Compare success counts over seeds at a query
        // budget chosen inside that window.
        let trials = 10;
        let mut amp_wins = 0;
        let mut greedy_wins = 0;
        for seed in 0..trials {
            let run = sample(1000, 6, 220, NoiseModel::z_channel(0.1), 500 + seed);
            if exact_recovery(&AmpDecoder::default().decode(&run), run.ground_truth()) {
                amp_wins += 1;
            }
            if exact_recovery(&GreedyDecoder::new().decode(&run), run.ground_truth()) {
                greedy_wins += 1;
            }
        }
        assert!(
            amp_wins >= greedy_wins,
            "AMP {amp_wins}/{trials} vs greedy {greedy_wins}/{trials}"
        );
    }

    #[test]
    fn decoder_name() {
        assert_eq!(AmpDecoder::default().name(), "amp");
    }

    #[test]
    fn workspace_reuse_is_bit_identical_to_one_shot() {
        let decoder = AmpDecoder::default();
        let mut ws = AmpWorkspace::new();
        // Decode several different runs with one workspace; every trace
        // must equal the corresponding one-shot decode exactly.
        for seed in 0..4 {
            let run = sample(300, 4, 220, NoiseModel::z_channel(0.1), 40 + seed);
            let (est_fresh, out_fresh) = decoder.decode_with_trace(&run);
            let (est_reuse, out_reuse) = decoder.decode_with_trace_using(&run, &mut ws);
            assert_eq!(est_fresh, est_reuse, "seed={seed}");
            assert_eq!(out_fresh, out_reuse, "seed={seed}");
        }
    }

    #[test]
    fn onsager_term_is_load_bearing() {
        // The ablation behind DESIGN.md's note on the paper's update
        // equation: dropping the b·z_{t−1} memory term turns AMP into plain
        // iterative thresholding, whose transition sits at substantially
        // more measurements. Near AMP's own threshold the difference is
        // stark.
        let no_onsager = AmpDecoder::new(AmpConfig {
            onsager: false,
            ..AmpConfig::default()
        });
        // m = 60 sits just above AMP's transition (~50 for this config) but
        // far below plain iterative thresholding's (> 100): measured gap is
        // ≈ 11/12 vs ≈ 1/12 across seeds.
        let mut with_ok = 0;
        let mut without_ok = 0;
        let trials = 8;
        for seed in 0..trials {
            let run = sample(1000, 6, 60, NoiseModel::z_channel(0.1), 800 + seed);
            if exact_recovery(&AmpDecoder::default().decode(&run), run.ground_truth()) {
                with_ok += 1;
            }
            if exact_recovery(&no_onsager.decode(&run), run.ground_truth()) {
                without_ok += 1;
            }
        }
        assert!(
            with_ok >= without_ok + 3,
            "Onsager {with_ok}/{trials} vs none {without_ok}/{trials}"
        );
    }

    #[test]
    fn soft_threshold_variant_runs_and_is_weaker() {
        // The prior-blind soft threshold is the ablation: it must still
        // produce valid estimates, and on a borderline instance the Bayes
        // denoiser should succeed at least as often across seeds.
        let soft = AmpDecoder::default().with_denoiser(DenoiserKind::SoftThreshold { alpha: 2.0 });
        assert_eq!(soft.denoiser(), DenoiserKind::SoftThreshold { alpha: 2.0 });
        let mut bayes_ok = 0;
        let mut soft_ok = 0;
        let trials = 6;
        for seed in 0..trials {
            let run = sample(600, 5, 120, NoiseModel::z_channel(0.1), 700 + seed);
            if exact_recovery(&AmpDecoder::default().decode(&run), run.ground_truth()) {
                bayes_ok += 1;
            }
            let est = soft.decode(&run);
            assert_eq!(est.k(), 5);
            if exact_recovery(&est, run.ground_truth()) {
                soft_ok += 1;
            }
        }
        assert!(
            bayes_ok >= soft_ok,
            "bayes {bayes_ok}/{trials} vs soft {soft_ok}/{trials}"
        );
    }

    #[test]
    fn object_safe_alongside_greedy() {
        let decoders: Vec<Box<dyn Decoder>> = vec![
            Box::new(GreedyDecoder::new()),
            Box::new(AmpDecoder::default()),
        ];
        let run = sample(200, 2, 150, NoiseModel::Noiseless, 20);
        for d in decoders {
            assert_eq!(d.decode(&run).k(), 2);
        }
    }
}
