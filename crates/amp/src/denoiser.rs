//! Denoisers `η_t` for the AMP iteration.
//!
//! The iteration sees pseudo-observations `v = x + τZ` of the signal
//! coordinates; the denoiser maps them back toward the prior. Two standard
//! choices are provided:
//!
//! * [`BayesBernoulli`] — the Bayes-optimal posterior mean for the pooled
//!   data prior `X ~ Bernoulli(π)` with `π = k/n`, the natural choice for
//!   this problem and the one used in the Figure 6 comparison;
//! * [`SoftThreshold`] — the LASSO-style soft threshold from the original
//!   compressed-sensing AMP papers, kept as an ablation.

/// A coordinate-wise denoiser with an analytic derivative.
///
/// `tau2` is the current effective noise variance `τ²` (estimated as
/// `‖z‖²/m` by the iteration). Implementations must be differentiable in
/// `v` almost everywhere; the derivative feeds the Onsager term.
pub trait Denoiser {
    /// The denoised value `η(v; τ²)`.
    fn eta(&self, v: f64, tau2: f64) -> f64;

    /// The derivative `∂η/∂v (v; τ²)`.
    fn eta_prime(&self, v: f64, tau2: f64) -> f64;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Bayes posterior mean for `X ~ Bernoulli(π)` under Gaussian noise.
///
/// With equal-variance Gaussians at 0 and 1,
/// `η(v) = P(X = 1 | v) = sigmoid(logit(π) + (2v − 1)/(2τ²))`, and
/// `η' = η(1 − η)/τ²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BayesBernoulli {
    logit_prior: f64,
}

impl BayesBernoulli {
    /// Creates the denoiser for prior weight `π`.
    ///
    /// # Panics
    ///
    /// Panics if `π ∉ (0, 1)`.
    pub fn new(pi: f64) -> Self {
        assert!(
            pi > 0.0 && pi < 1.0,
            "BayesBernoulli: prior pi={pi} must be in (0,1)"
        );
        Self {
            logit_prior: (pi / (1.0 - pi)).ln(),
        }
    }

    fn posterior(&self, v: f64, tau2: f64) -> f64 {
        let tau2 = tau2.max(1e-12);
        let logit = self.logit_prior + (2.0 * v - 1.0) / (2.0 * tau2);
        stable_sigmoid(logit)
    }
}

impl Denoiser for BayesBernoulli {
    fn eta(&self, v: f64, tau2: f64) -> f64 {
        self.posterior(v, tau2)
    }

    fn eta_prime(&self, v: f64, tau2: f64) -> f64 {
        let tau2 = tau2.max(1e-12);
        let p = self.posterior(v, tau2);
        p * (1.0 - p) / tau2
    }

    fn name(&self) -> &'static str {
        "bayes-bernoulli"
    }
}

/// Soft threshold `η(v) = sign(v)·max(|v| − α·τ, 0)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftThreshold {
    alpha: f64,
}

impl SoftThreshold {
    /// Creates the denoiser with threshold multiplier `α` (threshold is
    /// `α·τ`).
    ///
    /// # Panics
    ///
    /// Panics if `α < 0`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha >= 0.0, "SoftThreshold: alpha={alpha} must be >= 0");
        Self { alpha }
    }
}

impl Denoiser for SoftThreshold {
    fn eta(&self, v: f64, tau2: f64) -> f64 {
        let thr = self.alpha * tau2.max(0.0).sqrt();
        if v > thr {
            v - thr
        } else if v < -thr {
            v + thr
        } else {
            0.0
        }
    }

    fn eta_prime(&self, v: f64, tau2: f64) -> f64 {
        let thr = self.alpha * tau2.max(0.0).sqrt();
        if v.abs() > thr {
            1.0
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "soft-threshold"
    }
}

/// Numerically stable logistic function.
fn stable_sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bayes_outputs_probabilities() {
        let d = BayesBernoulli::new(0.01);
        for v in [-5.0, -1.0, 0.0, 0.5, 1.0, 5.0] {
            let p = d.eta(v, 0.25);
            assert!((0.0..=1.0).contains(&p), "v={v}: {p}");
        }
    }

    #[test]
    fn bayes_is_monotone_and_centered() {
        let d = BayesBernoulli::new(0.5);
        // With a symmetric prior, v = 0.5 is the decision boundary.
        assert!((d.eta(0.5, 0.1) - 0.5).abs() < 1e-12);
        assert!(d.eta(0.8, 0.1) > 0.5);
        assert!(d.eta(0.2, 0.1) < 0.5);
    }

    #[test]
    fn bayes_sharpens_as_noise_vanishes() {
        let d = BayesBernoulli::new(0.1);
        assert!(d.eta(1.0, 1e-6) > 0.999);
        assert!(d.eta(0.0, 1e-6) < 0.001);
        // Large noise: posterior falls back to the prior.
        assert!((d.eta(0.7, 1e6) - 0.1).abs() < 0.01);
    }

    #[test]
    fn bayes_prime_matches_numeric_derivative() {
        let d = BayesBernoulli::new(0.05);
        let h = 1e-6;
        for v in [-1.0, 0.0, 0.3, 0.5, 0.9, 2.0] {
            for tau2 in [0.05, 0.3, 2.0] {
                let numeric = (d.eta(v + h, tau2) - d.eta(v - h, tau2)) / (2.0 * h);
                let analytic = d.eta_prime(v, tau2);
                assert!(
                    (numeric - analytic).abs() < 1e-4 * (1.0 + analytic.abs()),
                    "v={v} tau2={tau2}: {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn bayes_extreme_logits_do_not_overflow() {
        let d = BayesBernoulli::new(1e-6);
        assert!(d.eta(100.0, 1e-9).is_finite());
        assert!(d.eta(-100.0, 1e-9).is_finite());
        assert!(d.eta_prime(100.0, 1e-9).is_finite());
    }

    #[test]
    #[should_panic(expected = "prior")]
    fn bayes_rejects_degenerate_prior() {
        BayesBernoulli::new(1.0);
    }

    #[test]
    fn soft_threshold_shape() {
        let d = SoftThreshold::new(2.0);
        let tau2 = 0.25; // τ = 0.5, threshold = 1.0
        assert_eq!(d.eta(0.5, tau2), 0.0);
        assert_eq!(d.eta(1.5, tau2), 0.5);
        assert_eq!(d.eta(-1.5, tau2), -0.5);
        assert_eq!(d.eta_prime(0.5, tau2), 0.0);
        assert_eq!(d.eta_prime(1.5, tau2), 1.0);
    }

    #[test]
    fn soft_threshold_zero_alpha_is_identity() {
        let d = SoftThreshold::new(0.0);
        assert_eq!(d.eta(0.7, 1.0), 0.7);
        assert_eq!(d.eta_prime(0.7, 1.0), 1.0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(BayesBernoulli::new(0.1).name(), "bayes-bernoulli");
        assert_eq!(SoftThreshold::new(1.0).name(), "soft-threshold");
    }

    proptest! {
        /// Bayes posterior is monotone increasing in v.
        #[test]
        fn bayes_monotone(pi in 0.001f64..0.999, v in -3.0f64..3.0, d in 0.0f64..2.0, tau2 in 0.01f64..10.0) {
            let den = BayesBernoulli::new(pi);
            prop_assert!(den.eta(v + d, tau2) >= den.eta(v, tau2) - 1e-12);
        }

        /// Soft threshold is a contraction toward zero: |η(v)| ≤ |v|.
        #[test]
        fn soft_threshold_contracts(alpha in 0.0f64..5.0, v in -10.0f64..10.0, tau2 in 0.0f64..4.0) {
            let den = SoftThreshold::new(alpha);
            prop_assert!(den.eta(v, tau2).abs() <= v.abs() + 1e-12);
        }
    }
}
