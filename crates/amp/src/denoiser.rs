//! Denoisers `η_t` for the AMP iteration.
//!
//! The iteration sees pseudo-observations `v = x + τZ` of the signal
//! coordinates; the denoiser maps them back toward the prior. Two standard
//! choices are provided:
//!
//! * [`BayesBernoulli`] — the Bayes-optimal posterior mean for the pooled
//!   data prior `X ~ Bernoulli(π)` with `π = k/n`, the natural choice for
//!   this problem and the one used in the Figure 6 comparison;
//! * [`SoftThreshold`] — the LASSO-style soft threshold from the original
//!   compressed-sensing AMP papers, kept as an ablation.
//!
//! The categorical matrix-AMP iteration uses the vector-valued
//! [`BayesSimplex`] denoiser instead: the posterior mean over the
//! `d`-simplex given a Gaussian observation `v = x + g`, `g ~ N(0, T)`,
//! with `x` a one-hot category indicator.

use npd_numerics::Matrix;

/// A coordinate-wise denoiser with an analytic derivative.
///
/// `tau2` is the current effective noise variance `τ²` (estimated as
/// `‖z‖²/m` by the iteration). Implementations must be differentiable in
/// `v` almost everywhere; the derivative feeds the Onsager term.
pub trait Denoiser {
    /// The denoised value `η(v; τ²)`.
    fn eta(&self, v: f64, tau2: f64) -> f64;

    /// The derivative `∂η/∂v (v; τ²)`.
    fn eta_prime(&self, v: f64, tau2: f64) -> f64;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Bayes posterior mean for `X ~ Bernoulli(π)` under Gaussian noise.
///
/// With equal-variance Gaussians at 0 and 1,
/// `η(v) = P(X = 1 | v) = sigmoid(logit(π) + (2v − 1)/(2τ²))`, and
/// `η' = η(1 − η)/τ²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BayesBernoulli {
    logit_prior: f64,
}

impl BayesBernoulli {
    /// Creates the denoiser for prior weight `π`.
    ///
    /// # Panics
    ///
    /// Panics if `π ∉ (0, 1)`.
    pub fn new(pi: f64) -> Self {
        assert!(
            pi > 0.0 && pi < 1.0,
            "BayesBernoulli: prior pi={pi} must be in (0,1)"
        );
        Self {
            logit_prior: (pi / (1.0 - pi)).ln(),
        }
    }

    fn posterior(&self, v: f64, tau2: f64) -> f64 {
        let tau2 = tau2.max(1e-12);
        let logit = self.logit_prior + (2.0 * v - 1.0) / (2.0 * tau2);
        stable_sigmoid(logit)
    }
}

impl Denoiser for BayesBernoulli {
    fn eta(&self, v: f64, tau2: f64) -> f64 {
        self.posterior(v, tau2)
    }

    fn eta_prime(&self, v: f64, tau2: f64) -> f64 {
        let tau2 = tau2.max(1e-12);
        let p = self.posterior(v, tau2);
        p * (1.0 - p) / tau2
    }

    fn name(&self) -> &'static str {
        "bayes-bernoulli"
    }
}

/// Soft threshold `η(v) = sign(v)·max(|v| − α·τ, 0)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftThreshold {
    alpha: f64,
}

impl SoftThreshold {
    /// Creates the denoiser with threshold multiplier `α` (threshold is
    /// `α·τ`).
    ///
    /// # Panics
    ///
    /// Panics if `α < 0`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha >= 0.0, "SoftThreshold: alpha={alpha} must be >= 0");
        Self { alpha }
    }
}

impl Denoiser for SoftThreshold {
    fn eta(&self, v: f64, tau2: f64) -> f64 {
        let thr = self.alpha * tau2.max(0.0).sqrt();
        if v > thr {
            v - thr
        } else if v < -thr {
            v + thr
        } else {
            0.0
        }
    }

    fn eta_prime(&self, v: f64, tau2: f64) -> f64 {
        let thr = self.alpha * tau2.max(0.0).sqrt();
        if v.abs() > thr {
            1.0
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "soft-threshold"
    }
}

/// Bayes posterior mean over the `d`-simplex for one-hot signals under
/// correlated Gaussian noise — the denoiser of the matrix-AMP iteration
/// (Tan, Pascual Cobo, Scarlett, Venkataramanan 2023).
///
/// The row-wise pseudo-observation is `v = x + g` with `x ∈ {e_0, …,
/// e_{d−1}}` a one-hot category indicator and `g ~ N(0, T)`; the posterior
/// is a softmax over
///
/// ```text
/// score_c = log π_c + (T⁻¹v)_c − ½·(T⁻¹)_{cc},
/// ```
///
/// (the `v`-only quadratic term cancels in the normalization). The
/// Jacobian needed for the Onsager correction is
/// `∂p_c/∂v_b = p_c·[(T⁻¹)_{bc} − Σ_{c′} p_{c′}(T⁻¹)_{bc′}]`.
///
/// The caller supplies `T⁻¹` explicitly (typically ridge-regularized, see
/// the `matrix_amp` module) so one inversion serves all `n` rows.
#[derive(Debug, Clone, PartialEq)]
pub struct BayesSimplex {
    log_prior: Vec<f64>,
}

impl BayesSimplex {
    /// Creates the denoiser for the category prior `π` (normalized
    /// internally).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two categories are given, any weight is not
    /// strictly positive, or the weights do not sum to a positive finite
    /// number.
    pub fn new(prior: &[f64]) -> Self {
        assert!(prior.len() >= 2, "BayesSimplex: need at least 2 categories");
        assert!(
            prior.iter().all(|&p| p > 0.0 && p.is_finite()),
            "BayesSimplex: prior weights must be strictly positive"
        );
        let total: f64 = prior.iter().sum();
        assert!(
            total.is_finite() && total > 0.0,
            "BayesSimplex: prior does not normalize"
        );
        Self {
            log_prior: prior.iter().map(|&p| (p / total).ln()).collect(),
        }
    }

    /// Number of categories `d`.
    pub fn d(&self) -> usize {
        self.log_prior.len()
    }

    /// Posterior mean `out ← η(v; T)` given the (regularized) precision
    /// matrix `t_inv = T⁻¹`.
    ///
    /// # Panics
    ///
    /// Panics if `v`, `out` or `t_inv` disagree with `d`.
    pub fn eta(&self, v: &[f64], t_inv: &Matrix, out: &mut [f64]) {
        let d = self.d();
        assert_eq!(v.len(), d, "BayesSimplex::eta: v has wrong length");
        assert_eq!(out.len(), d, "BayesSimplex::eta: out has wrong length");
        assert_eq!(
            (t_inv.rows(), t_inv.cols()),
            (d, d),
            "BayesSimplex::eta: precision matrix has wrong shape"
        );
        // Scores into `out`, then a stable in-place softmax.
        for c in 0..d {
            let row = t_inv.row(c);
            let proj = npd_numerics::vector::dot(row, v);
            out[c] = self.log_prior[c] + proj - 0.5 * row[c];
        }
        let max = out.iter().fold(f64::NEG_INFINITY, |m, &s| m.max(s));
        let mut total = 0.0;
        for s in out.iter_mut() {
            *s = (*s - max).exp();
            total += *s;
        }
        for s in out.iter_mut() {
            *s /= total;
        }
    }

    /// Adds this row's Jacobian `J[b][c] = ∂η_c/∂v_b` (evaluated at the
    /// posterior returned by [`BayesSimplex::eta`]) into `jac` — the
    /// accumulator for the matrix Onsager correction `C = (1/m)·Σᵢ Jᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if `posterior`, `t_inv` or `jac` disagree with `d`.
    pub fn accumulate_jacobian(&self, posterior: &[f64], t_inv: &Matrix, jac: &mut Matrix) {
        let d = self.d();
        assert_eq!(posterior.len(), d, "accumulate_jacobian: posterior length");
        assert_eq!(
            (t_inv.rows(), t_inv.cols()),
            (d, d),
            "accumulate_jacobian: precision matrix shape"
        );
        assert_eq!(
            (jac.rows(), jac.cols()),
            (d, d),
            "accumulate_jacobian: accumulator shape"
        );
        for b in 0..d {
            let prec_row = t_inv.row(b);
            let mean_prec = npd_numerics::vector::dot(posterior, prec_row);
            let jac_row = jac.row_mut(b);
            for c in 0..d {
                jac_row[c] += posterior[c] * (prec_row[c] - mean_prec);
            }
        }
    }
}

/// Numerically stable logistic function.
fn stable_sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bayes_outputs_probabilities() {
        let d = BayesBernoulli::new(0.01);
        for v in [-5.0, -1.0, 0.0, 0.5, 1.0, 5.0] {
            let p = d.eta(v, 0.25);
            assert!((0.0..=1.0).contains(&p), "v={v}: {p}");
        }
    }

    #[test]
    fn bayes_is_monotone_and_centered() {
        let d = BayesBernoulli::new(0.5);
        // With a symmetric prior, v = 0.5 is the decision boundary.
        assert!((d.eta(0.5, 0.1) - 0.5).abs() < 1e-12);
        assert!(d.eta(0.8, 0.1) > 0.5);
        assert!(d.eta(0.2, 0.1) < 0.5);
    }

    #[test]
    fn bayes_sharpens_as_noise_vanishes() {
        let d = BayesBernoulli::new(0.1);
        assert!(d.eta(1.0, 1e-6) > 0.999);
        assert!(d.eta(0.0, 1e-6) < 0.001);
        // Large noise: posterior falls back to the prior.
        assert!((d.eta(0.7, 1e6) - 0.1).abs() < 0.01);
    }

    #[test]
    fn bayes_prime_matches_numeric_derivative() {
        let d = BayesBernoulli::new(0.05);
        let h = 1e-6;
        for v in [-1.0, 0.0, 0.3, 0.5, 0.9, 2.0] {
            for tau2 in [0.05, 0.3, 2.0] {
                let numeric = (d.eta(v + h, tau2) - d.eta(v - h, tau2)) / (2.0 * h);
                let analytic = d.eta_prime(v, tau2);
                assert!(
                    (numeric - analytic).abs() < 1e-4 * (1.0 + analytic.abs()),
                    "v={v} tau2={tau2}: {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn bayes_extreme_logits_do_not_overflow() {
        let d = BayesBernoulli::new(1e-6);
        assert!(d.eta(100.0, 1e-9).is_finite());
        assert!(d.eta(-100.0, 1e-9).is_finite());
        assert!(d.eta_prime(100.0, 1e-9).is_finite());
    }

    #[test]
    #[should_panic(expected = "prior")]
    fn bayes_rejects_degenerate_prior() {
        BayesBernoulli::new(1.0);
    }

    #[test]
    fn soft_threshold_shape() {
        let d = SoftThreshold::new(2.0);
        let tau2 = 0.25; // τ = 0.5, threshold = 1.0
        assert_eq!(d.eta(0.5, tau2), 0.0);
        assert_eq!(d.eta(1.5, tau2), 0.5);
        assert_eq!(d.eta(-1.5, tau2), -0.5);
        assert_eq!(d.eta_prime(0.5, tau2), 0.0);
        assert_eq!(d.eta_prime(1.5, tau2), 1.0);
    }

    #[test]
    fn soft_threshold_zero_alpha_is_identity() {
        let d = SoftThreshold::new(0.0);
        assert_eq!(d.eta(0.7, 1.0), 0.7);
        assert_eq!(d.eta_prime(0.7, 1.0), 1.0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(BayesBernoulli::new(0.1).name(), "bayes-bernoulli");
        assert_eq!(SoftThreshold::new(1.0).name(), "soft-threshold");
    }

    fn isotropic_precision(d: usize, tau2: f64) -> Matrix {
        let mut m = Matrix::zeros(d, d);
        for c in 0..d {
            *m.get_mut(c, c) = 1.0 / tau2;
        }
        m
    }

    #[test]
    fn simplex_posterior_is_a_distribution() {
        let den = BayesSimplex::new(&[0.7, 0.2, 0.1]);
        let t_inv = isotropic_precision(3, 0.4);
        let mut p = vec![0.0; 3];
        den.eta(&[0.3, 0.9, -0.2], &t_inv, &mut p);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn simplex_sharpens_as_noise_vanishes_and_flattens_to_prior() {
        let prior = [0.5, 0.3, 0.2];
        let den = BayesSimplex::new(&prior);
        let mut p = vec![0.0; 3];
        // Near-noiseless observation of e_1: posterior ≈ e_1.
        den.eta(&[0.0, 1.0, 0.0], &isotropic_precision(3, 1e-4), &mut p);
        assert!(p[1] > 0.999, "{p:?}");
        // Huge noise: posterior falls back to the prior.
        den.eta(&[0.0, 1.0, 0.0], &isotropic_precision(3, 1e6), &mut p);
        for (got, want) in p.iter().zip(&prior) {
            assert!((got - want).abs() < 1e-3, "{p:?}");
        }
    }

    #[test]
    fn simplex_extreme_scores_do_not_overflow() {
        let den = BayesSimplex::new(&[1e-6, 1.0 - 2e-6, 1e-6]);
        let mut p = vec![0.0; 3];
        den.eta(&[500.0, -500.0, 0.0], &isotropic_precision(3, 1e-6), &mut p);
        assert!(p.iter().all(|x| x.is_finite()));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn simplex_jacobian_matches_numeric_derivative() {
        // A correlated (non-diagonal) precision matrix exercises the full
        // formula, not just the isotropic special case.
        let den = BayesSimplex::new(&[0.6, 0.25, 0.15]);
        let t_inv = Matrix::from_rows(&[
            &[3.0, 0.5, 0.2][..],
            &[0.5, 2.0, 0.3][..],
            &[0.2, 0.3, 4.0][..],
        ]);
        let v = [0.4, 0.1, 0.3];
        let mut p = vec![0.0; 3];
        den.eta(&v, &t_inv, &mut p);
        let mut jac = Matrix::zeros(3, 3);
        den.accumulate_jacobian(&p, &t_inv, &mut jac);
        let h = 1e-6;
        for b in 0..3 {
            for c in 0..3 {
                let mut vp = v;
                let mut vm = v;
                vp[b] += h;
                vm[b] -= h;
                let (mut pp, mut pm) = (vec![0.0; 3], vec![0.0; 3]);
                den.eta(&vp, &t_inv, &mut pp);
                den.eta(&vm, &t_inv, &mut pm);
                let numeric = (pp[c] - pm[c]) / (2.0 * h);
                assert!(
                    (jac.get(b, c) - numeric).abs() < 1e-5 * (1.0 + numeric.abs()),
                    "({b},{c}): analytic {} vs numeric {numeric}",
                    jac.get(b, c)
                );
            }
        }
    }

    #[test]
    fn simplex_jacobian_rows_sum_to_zero() {
        // Posteriors sum to one, so Σ_c ∂p_c/∂v_b = 0 for every b.
        let den = BayesSimplex::new(&[0.4, 0.3, 0.2, 0.1]);
        let t_inv = isotropic_precision(4, 0.7);
        let v = [0.9, -0.1, 0.2, 0.05];
        let mut p = vec![0.0; 4];
        den.eta(&v, &t_inv, &mut p);
        let mut jac = Matrix::zeros(4, 4);
        den.accumulate_jacobian(&p, &t_inv, &mut jac);
        for b in 0..4 {
            let row_sum: f64 = jac.row(b).iter().sum();
            assert!(row_sum.abs() < 1e-12, "row {b}: {row_sum}");
        }
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn simplex_rejects_degenerate_prior() {
        BayesSimplex::new(&[0.5, 0.0, 0.5]);
    }

    proptest! {
        /// Bayes posterior is monotone increasing in v.
        #[test]
        fn bayes_monotone(pi in 0.001f64..0.999, v in -3.0f64..3.0, d in 0.0f64..2.0, tau2 in 0.01f64..10.0) {
            let den = BayesBernoulli::new(pi);
            prop_assert!(den.eta(v + d, tau2) >= den.eta(v, tau2) - 1e-12);
        }

        /// Soft threshold is a contraction toward zero: |η(v)| ≤ |v|.
        #[test]
        fn soft_threshold_contracts(alpha in 0.0f64..5.0, v in -10.0f64..10.0, tau2 in 0.0f64..4.0) {
            let den = SoftThreshold::new(alpha);
            prop_assert!(den.eta(v, tau2).abs() <= v.abs() + 1e-12);
        }
    }
}
