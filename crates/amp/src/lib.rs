//! Approximate message passing (AMP) for the pooled data problem.
//!
//! This is the comparison algorithm of Section III of the paper: the
//! Donoho–Maleki–Montanari iteration
//!
//! ```text
//! x_{t+1} = η_t(Bᵀz_t + x_t)
//! z_t     = ỹ − B·x_t + z_{t−1} · (1/m)·Σᵢ η'_{t−1}(v_{t−1,i})
//! ```
//!
//! run against the *centered and scaled* pooling matrix (see
//! [`preprocess::CenteredMatrix`]) with the Bayes-optimal denoiser for the
//! `Bernoulli(k/n)` prior (see [`denoiser::BayesBernoulli`]). The paper's
//! displayed update omits the `z_{t−1}` factor in the Onsager term; we
//! follow the cited original works [DMM 2010], where the factor is present
//! (without it the iteration diverges).
//!
//! The crate provides:
//!
//! * [`AmpDecoder`] — implements [`npd_core::Decoder`], so the experiment
//!   harness can compare it head-to-head with the greedy algorithm
//!   (Figure 6);
//! * [`state_evolution`] — the scalar recursion tracking the effective
//!   noise `τ_t`, the standard analysis tool for AMP;
//! * [`cost`] — the communication-cost model for a distributed AMP
//!   execution, backing the paper's conclusion that unmodified AMP is
//!   communication-heavy in message-passing environments.
//!
//! # Examples
//!
//! ```
//! use npd_amp::AmpDecoder;
//! use npd_core::{Decoder, Instance, NoiseModel};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let run = Instance::builder(400)
//!     .k(4)
//!     .queries(250)
//!     .noise(NoiseModel::z_channel(0.1))
//!     .build()
//!     .unwrap()
//!     .sample(&mut rng);
//! let estimate = AmpDecoder::default().decode(&run);
//! assert_eq!(estimate.k(), 4);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cost;
pub mod denoiser;
pub mod iteration;
pub mod matrix_amp;
pub mod preprocess;
pub mod state_evolution;

pub use denoiser::{BayesBernoulli, BayesSimplex, Denoiser, SoftThreshold};
pub use iteration::{AmpConfig, AmpDecoder, AmpOutput, AmpWorkspace, DenoiserKind};
pub use matrix_amp::{run_matrix_amp, run_matrix_amp_tracking, MatrixAmpConfig, MatrixAmpOutput};
pub use preprocess::{prepare_categorical, CategoricalPrepared, CenteredMatrix};
