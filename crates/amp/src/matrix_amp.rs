//! Matrix-AMP for categorical pooled data (Tan, Pascual Cobo, Scarlett,
//! Venkataramanan 2023).
//!
//! The hidden signal is the one-hot matrix `X ∈ {0,1}^{n×d}` (row `i` is
//! `e_c` when agent `i` has category `c`) and the preprocessed problem is
//! `Ỹ = B·X + W` with the same centered/scaled `B` as the binary decoder,
//! applied column-by-column. The iteration generalizes the scalar one with
//! matrix-valued state:
//!
//! ```text
//! V_t     = Bᵀ·Z_t + X_t                      (n×d pseudo-observations)
//! T_t     = Z_tᵀ·Z_t / m                      (d×d effective noise)
//! X_{t+1} = η(V_t; T_t)    row-wise            (Bayes simplex denoiser)
//! C_t     = (1/m)·Σᵢ ∂η/∂v(v_{t,i})           (d×d Onsager coefficient)
//! Z_{t+1} = Ỹ − B·X_{t+1} + Z_t·C_t
//! ```
//!
//! At `d = 1` every matrix collapses to a scalar and the recursion is the
//! binary iteration of the `iteration` module verbatim.
//!
//! # Rank deficiency and the ridge
//!
//! On query-regular designs `B·1_n = 0` exactly, and the one-hot rows
//! satisfy `X·1_d = 1`; the `d` columns of `B·X` are therefore linearly
//! dependent and `T_t` is singular along the all-ones direction in the
//! noiseless limit. Both the decoder and the matrix state-evolution
//! recursion regularize identically — `T⁻¹` is computed as
//! `(T + ridge·(1 + tr(T)/d)·I)⁻¹` — so the empirical iterates and the SE
//! prediction see the *same* denoiser and stay comparable (the
//! `tests/se_agreement.rs` harness pins that agreement).

use crate::denoiser::BayesSimplex;
use crate::preprocess::CategoricalPrepared;
use npd_numerics::{linalg, Matrix};

/// Configuration of the matrix-AMP iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatrixAmpConfig {
    /// Maximum iterations.
    pub max_iterations: usize,
    /// Early-stop threshold on `max |X_{t+1} − X_t|`; set to `0.0` to run
    /// exactly `max_iterations` iterations (as the SE-agreement harness
    /// does).
    pub tolerance: f64,
    /// Relative ridge added to `T_t` before inversion (see the module
    /// docs); the matrix SE recursion must use the same value.
    pub ridge: f64,
    /// Whether to apply the Onsager memory term (disabling it degrades the
    /// iteration to matrix IST; kept for ablation parity with the binary
    /// config).
    pub onsager: bool,
}

impl Default for MatrixAmpConfig {
    fn default() -> Self {
        Self {
            max_iterations: 50,
            tolerance: 1e-8,
            ridge: 1e-6,
            onsager: true,
        }
    }
}

/// Result of a matrix-AMP run.
#[derive(Debug, Clone)]
pub struct MatrixAmpOutput {
    /// Posterior category means, one row per agent (rows sum to 1).
    pub estimate: Matrix,
    /// Hard labels: per-row argmax of the posterior (first maximum wins).
    pub labels: Vec<u8>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the early-stop tolerance was reached.
    pub converged: bool,
    /// The effective-noise estimate `T_t = Z_tᵀZ_t/m` entering each
    /// iteration, in order.
    pub t_trajectory: Vec<Matrix>,
    /// Per-iteration empirical MSE `‖X_{t+1} − X‖²_F / n` measured after
    /// each denoising step against the true one-hot signal. Empty unless
    /// ground-truth labels were supplied to [`run_matrix_amp_tracking`].
    pub mse_trajectory: Vec<f64>,
}

/// Ridge-regularized inverse `(T + ridge·(1 + tr(T)/d)·I)⁻¹`, escalating
/// the ridge tenfold until the inverse exists. `T` is PSD in every caller,
/// so the first try succeeds for any positive ridge; the escalation only
/// guards against pathological (non-finite) input.
///
/// # Panics
///
/// Panics if no finite escalation of the ridge produces an invertible
/// matrix (the input contained NaN/∞).
pub fn regularized_inverse(t: &Matrix, ridge: f64) -> Matrix {
    let d = t.rows();
    let trace: f64 = (0..d).map(|c| t.get(c, c)).sum();
    let mut eff = ridge.max(f64::MIN_POSITIVE) * (1.0 + trace / d as f64);
    for _ in 0..60 {
        let mut reg = t.clone();
        for c in 0..d {
            *reg.get_mut(c, c) += eff;
        }
        if let Some(inv) = linalg::inverse(&reg) {
            return inv;
        }
        eff *= 10.0;
    }
    panic!("regularized_inverse: matrix not invertible at any ridge (non-finite input?)");
}

/// Cholesky factor of `T` with escalating diagonal jitter, for drawing
/// `N(0, T)` samples in the matrix SE recursion: near-singular `T` (the
/// noiseless all-ones direction) gets just enough jitter to factor.
///
/// # Panics
///
/// Panics if no finite jitter produces a factorization (non-finite input).
pub fn cholesky_with_jitter(t: &Matrix) -> Matrix {
    if let Some(l) = linalg::cholesky(t) {
        return l;
    }
    let d = t.rows();
    let trace: f64 = (0..d).map(|c| t.get(c, c)).sum();
    let mut jitter = 1e-12 * (1.0 + trace / d as f64);
    for _ in 0..60 {
        let mut reg = t.clone();
        for c in 0..d {
            *reg.get_mut(c, c) += jitter;
        }
        if let Some(l) = linalg::cholesky(&reg) {
            return l;
        }
        jitter *= 10.0;
    }
    panic!("cholesky_with_jitter: matrix not factorizable at any jitter (non-finite input?)");
}

/// Runs matrix-AMP on a prepared categorical problem.
pub fn run_matrix_amp(prepared: &CategoricalPrepared, config: &MatrixAmpConfig) -> MatrixAmpOutput {
    run_matrix_amp_tracking(prepared, config, None)
}

/// [`run_matrix_amp_tracking`] with a telemetry sink: emits one
/// `matrix_amp.iter` event per iteration carrying `t_trace` (the trace
/// of the effective-noise matrix `T_t`, the scalar summary of the
/// state-evolution statistic) and, when ground truth was supplied, the
/// per-iteration `mse` the SE recursion predicts. The events are
/// derived from the output trajectories after the solve (serially), so
/// the stream is bit-identical across thread counts.
///
/// # Panics
///
/// Panics if `truth_labels` is given with the wrong length or a label
/// outside `0..d` (as [`run_matrix_amp_tracking`]).
pub fn run_matrix_amp_traced(
    prepared: &CategoricalPrepared,
    config: &MatrixAmpConfig,
    truth_labels: Option<&[u8]>,
    telemetry: &npd_telemetry::TelemetrySink,
) -> MatrixAmpOutput {
    let out = run_matrix_amp_tracking(prepared, config, truth_labels);
    for (t, noise) in out.t_trajectory.iter().enumerate() {
        let mut t_trace = 0.0;
        for c in 0..noise.cols().min(noise.rows()) {
            t_trace += noise.get(c, c);
        }
        let mse = out.mse_trajectory.get(t).copied();
        telemetry.emit(|| {
            let mut event = npd_telemetry::Event::instant("matrix_amp.iter")
                .phase("amp")
                .round(t as u64)
                .f64("t_trace", t_trace);
            if let Some(mse) = mse {
                event = event.f64("mse", mse);
            }
            event
        });
    }
    out
}

/// Runs matrix-AMP, optionally tracking the per-iteration MSE against the
/// true labels (the quantity the state-evolution recursion predicts).
///
/// # Panics
///
/// Panics if `truth_labels` is given with the wrong length or a label
/// outside `0..d`.
pub fn run_matrix_amp_tracking(
    prepared: &CategoricalPrepared,
    config: &MatrixAmpConfig,
    truth_labels: Option<&[u8]>,
) -> MatrixAmpOutput {
    let b = &prepared.matrix;
    let y = &prepared.observations;
    let (m, n) = (b.rows(), b.cols());
    let d = prepared.prior.len();
    assert_eq!(y.rows(), m, "matrix-AMP: observation rows");
    assert_eq!(y.cols(), d, "matrix-AMP: observation cols");
    if let Some(labels) = truth_labels {
        assert_eq!(labels.len(), n, "matrix-AMP: truth label length");
        assert!(
            labels.iter().all(|&l| (l as usize) < d),
            "matrix-AMP: truth label out of range"
        );
    }
    let denoiser = BayesSimplex::new(&prepared.prior);

    let mut x = Matrix::zeros(n, d);
    let mut x_new = Matrix::zeros(n, d);
    let mut z = y.clone(); // Z_0 = Ỹ − B·X_0 with X_0 = 0
    let mut z_new = Matrix::zeros(m, d);
    let mut v = Matrix::zeros(n, d);
    // Column scratch buffers for the per-column matvecs through B.
    let mut col_m = vec![0.0; m];
    let mut col_n = vec![0.0; n];

    let mut t_trajectory = Vec::new();
    let mut mse_trajectory = Vec::new();
    let mut iterations = 0;
    let mut converged = false;

    for _ in 0..config.max_iterations {
        iterations += 1;

        // T_t = ZᵀZ/m, then its ridge-regularized inverse (shared with SE).
        let mut t = Matrix::zeros(d, d);
        for j in 0..m {
            let zr = z.row(j);
            for a in 0..d {
                let za = zr[a];
                if za == 0.0 {
                    continue;
                }
                let tr = t.row_mut(a);
                for c in 0..d {
                    tr[c] += za * zr[c];
                }
            }
        }
        t.map_in_place(|val| val / m as f64);
        let t_inv = regularized_inverse(&t, config.ridge);
        t_trajectory.push(t);

        // V = BᵀZ + X, column by column.
        for c in 0..d {
            for (j, slot) in col_m.iter_mut().enumerate() {
                *slot = z.get(j, c);
            }
            b.matvec_t_into(&col_m, &mut col_n);
            for (i, &val) in col_n.iter().enumerate() {
                *v.get_mut(i, c) = val + x.get(i, c);
            }
        }

        // Row-wise denoise + Onsager accumulation.
        let mut jac = Matrix::zeros(d, d);
        let mut mse = 0.0;
        for i in 0..n {
            let row = x_new.row_mut(i);
            denoiser.eta(v.row(i), &t_inv, row);
            denoiser.accumulate_jacobian(row, &t_inv, &mut jac);
            if let Some(labels) = truth_labels {
                let truth = labels[i] as usize;
                for (c, &p) in row.iter().enumerate() {
                    let e = if c == truth { 1.0 } else { 0.0 };
                    mse += (p - e) * (p - e);
                }
            }
        }
        if truth_labels.is_some() {
            mse_trajectory.push(mse / n as f64);
        }
        jac.map_in_place(|val| val / m as f64);

        // Z_{t+1} = Ỹ − B·X_{t+1} + Z_t·C_t.
        for c in 0..d {
            for (i, slot) in col_n.iter_mut().enumerate() {
                *slot = x_new.get(i, c);
            }
            b.matvec_into(&col_n, &mut col_m);
            for (j, &bx) in col_m.iter().enumerate() {
                let mut val = y.get(j, c) - bx;
                if config.onsager {
                    let zr = z.row(j);
                    for (bb, &zb) in zr.iter().enumerate() {
                        val += zb * jac.get(bb, c);
                    }
                }
                *z_new.get_mut(j, c) = val;
            }
        }

        let delta = x
            .as_slice()
            .iter()
            .zip(x_new.as_slice())
            .fold(0.0f64, |acc, (&a, &bb)| acc.max((a - bb).abs()));
        std::mem::swap(&mut x, &mut x_new);
        std::mem::swap(&mut z, &mut z_new);
        if delta < config.tolerance {
            converged = true;
            break;
        }
    }

    let labels = (0..n)
        .map(|i| {
            let row = x.row(i);
            let mut best = 0usize;
            for (c, &p) in row.iter().enumerate() {
                if p > row[best] {
                    best = c;
                }
            }
            best as u8
        })
        .collect();

    MatrixAmpOutput {
        estimate: x,
        labels,
        iterations,
        converged,
        t_trajectory,
        mse_trajectory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::prepare_categorical;
    use npd_core::{label_accuracy, CategoricalInstance, NoiseModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn decode(noise: NoiseModel, strains: &[usize], seed: u64) -> (MatrixAmpOutput, f64) {
        let inst = CategoricalInstance::new(600, strains.to_vec(), 500)
            .unwrap()
            .with_noise(noise);
        let run = inst.sample(&mut StdRng::seed_from_u64(seed));
        let prep = prepare_categorical(&run);
        let out = run_matrix_amp_tracking(
            &prep,
            &MatrixAmpConfig::default(),
            Some(run.ground_truth().labels()),
        );
        let acc = label_accuracy(&out.labels, run.ground_truth());
        (out, acc)
    }

    #[test]
    fn noiseless_d2_recovers_labels() {
        let (out, acc) = decode(NoiseModel::Noiseless, &[150], 3);
        assert!(acc > 0.99, "accuracy {acc}");
        assert!(
            out.converged,
            "did not converge in {} iters",
            out.iterations
        );
    }

    #[test]
    fn noiseless_d4_recovers_labels() {
        let (out, acc) = decode(NoiseModel::Noiseless, &[120, 90, 90], 5);
        assert!(acc > 0.98, "accuracy {acc}");
        assert!(out.iterations <= 50);
    }

    #[test]
    fn gaussian_noise_d3_beats_the_prior_baseline() {
        // Guessing the majority class scores k_0/n = 0.5; AMP must do much
        // better even under noise.
        let (_, acc) = decode(NoiseModel::gaussian(2.0), &[150, 150], 7);
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn channel_noise_d3_beats_the_prior_baseline() {
        let (_, acc) = decode(NoiseModel::channel(0.05, 0.02), &[150, 150], 9);
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn mse_trajectory_decreases_and_rows_stay_simplex() {
        let (out, _) = decode(NoiseModel::gaussian(1.0), &[120, 120], 11);
        assert_eq!(out.mse_trajectory.len(), out.iterations);
        let first = out.mse_trajectory[0];
        let last = *out.mse_trajectory.last().unwrap();
        assert!(last < first, "MSE did not decrease: {first} → {last}");
        for i in 0..out.estimate.rows() {
            let s: f64 = out.estimate.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row {i} sums to {s}");
        }
    }

    #[test]
    fn deterministic_given_the_run() {
        let inst = CategoricalInstance::new(300, vec![40, 30], 260)
            .unwrap()
            .with_noise(NoiseModel::gaussian(0.5));
        let run = inst.sample(&mut StdRng::seed_from_u64(13));
        let prep = prepare_categorical(&run);
        let a = run_matrix_amp(&prep, &MatrixAmpConfig::default());
        let b = run_matrix_amp(&prep, &MatrixAmpConfig::default());
        assert_eq!(a.estimate.as_slice(), b.estimate.as_slice());
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn onsager_free_variant_differs() {
        // The memory term must actually do something.
        let inst = CategoricalInstance::new(300, vec![60], 260)
            .unwrap()
            .with_noise(NoiseModel::gaussian(1.0));
        let run = inst.sample(&mut StdRng::seed_from_u64(17));
        let prep = prepare_categorical(&run);
        let cfg = MatrixAmpConfig {
            max_iterations: 5,
            tolerance: 0.0,
            ..MatrixAmpConfig::default()
        };
        let with = run_matrix_amp(&prep, &cfg);
        let without = run_matrix_amp(
            &prep,
            &MatrixAmpConfig {
                onsager: false,
                ..cfg
            },
        );
        assert_ne!(with.estimate.as_slice(), without.estimate.as_slice());
    }

    #[test]
    fn regularized_inverse_handles_singular_psd() {
        // Rank-1 PSD matrix: plain inversion fails, the ridge fixes it.
        let t = Matrix::from_rows(&[&[1.0, 1.0][..], &[1.0, 1.0][..]]);
        let inv = regularized_inverse(&t, 1e-6);
        assert!(inv.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cholesky_with_jitter_handles_singular_psd() {
        let t = Matrix::from_rows(&[&[2.0, 2.0][..], &[2.0, 2.0][..]]);
        let l = cholesky_with_jitter(&t);
        // L·Lᵀ ≈ T within the jitter.
        for i in 0..2 {
            for j in 0..2 {
                let mut v = 0.0;
                for k in 0..2 {
                    v += l.get(i, k) * l.get(j, k);
                }
                assert!((v - t.get(i, j)).abs() < 1e-6, "({i},{j}): {v}");
            }
        }
    }
}
