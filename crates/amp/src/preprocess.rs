//! Centering and scaling of the pooling matrix for AMP.
//!
//! AMP's convergence theory assumes a sensing matrix with i.i.d. zero-mean
//! entries and (approximately) unit-norm columns. The raw pooling matrix
//! `A ∈ ℕ₀^{m×n}` has `E[A_ji] = Γ/n` and `Var[A_ji] = v ≈ Γ/n` (slot
//! counts of a with-replacement draw), so we run AMP on
//!
//! ```text
//! B = (A − (Γ/n)·J) / √(m·v),        v = Γ·(1/n)·(1 − 1/n),
//! ỹ = (y' − (Γ/n)·k) / √(m·v),
//! ```
//!
//! where `J` is all-ones and `y'` is the observation vector *unbiased for
//! the channel*: under per-edge noise `E[σ̂ⱼ | A] = (1−p−q)(Aσ)ⱼ + qΓ`, so
//! `y' = (σ̂ − qΓ)/(1−p−q)`; the noiseless and Gaussian models use
//! `y' = σ̂` directly. Then `ỹ = B·σ + noise`, the canonical AMP form.
//!
//! `B` is never materialized: [`CenteredMatrix`] applies the rank-one
//! correction on the fly around the sparse `A`.

use npd_core::{CategoricalRun, NoiseModel, Run};
use npd_numerics::{linalg, CsrMatrix, Matrix};

/// The implicit centered/scaled matrix `B = (A − c·J)/s`.
///
/// Products cost one sparse pass plus a rank-one correction:
/// `B·x = (A·x − c·(Σx)·1)/s` and `Bᵀ·z = (Aᵀ·z − c·(Σz)·1)/s`.
///
/// When a multi-threaded rayon pool is ambient and the matrix is large
/// enough to clear the numerics parallel threshold, the transpose of `A`
/// is materialized lazily, **once per run** (never per iteration): the
/// transposed product then runs as a row-parallel gather over `Aᵀ` with
/// the same per-element accumulation order as the sequential scatter, so
/// it parallelizes without changing the result. Single-threaded runs skip
/// the transpose entirely — the scatter is equally fast there and building
/// `Aᵀ` would cost a full extra pass over the entries.
#[derive(Debug, Clone)]
pub struct CenteredMatrix {
    a: CsrMatrix,
    /// Lazily cached `Aᵀ` for the parallel transposed product.
    at: std::sync::OnceLock<CsrMatrix>,
    c: f64,
    s: f64,
}

impl CenteredMatrix {
    /// Wraps a raw counts matrix with centering constant `c` and scale `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not strictly positive.
    pub fn new(a: CsrMatrix, c: f64, s: f64) -> Self {
        assert!(s > 0.0, "CenteredMatrix: scale s={s} must be positive");
        Self {
            a,
            at: std::sync::OnceLock::new(),
            c,
            s,
        }
    }

    /// Standard preprocessing for a pooling design: `c = Γ/n`,
    /// `s = √(m·v)` with `v = Γ(1/n)(1−1/n)`.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no queries (nothing to decode from).
    pub fn from_counts(a: CsrMatrix, gamma: usize) -> Self {
        let m = a.rows();
        let n = a.cols();
        assert!(m > 0, "CenteredMatrix::from_counts: empty design");
        let c = gamma as f64 / n as f64;
        let v = gamma as f64 * (1.0 / n as f64) * (1.0 - 1.0 / n as f64);
        let s = (m as f64 * v).sqrt();
        Self::new(a, c, s)
    }

    /// Number of rows (queries).
    pub fn rows(&self) -> usize {
        self.a.rows()
    }

    /// Number of columns (agents).
    pub fn cols(&self) -> usize {
        self.a.cols()
    }

    /// Centering constant `c = Γ/n`.
    pub fn centering(&self) -> f64 {
        self.c
    }

    /// Scale `s = √(m·v)`.
    pub fn scale(&self) -> f64 {
        self.s
    }

    /// `B·x`.
    ///
    /// Allocates the output; the AMP inner loop uses
    /// [`CenteredMatrix::matvec_into`] with workspace buffers.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows()];
        self.matvec_into(x, &mut out);
        out
    }

    /// Allocation-free `out ← B·x` (row-parallel above the numerics
    /// threshold).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `out.len() != rows`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        let sum_x: f64 = x.iter().sum();
        self.a.matvec_into(x, out);
        for o in out {
            *o = (*o - self.c * sum_x) / self.s;
        }
    }

    /// `Bᵀ·z`.
    ///
    /// Allocates the output; the AMP inner loop uses
    /// [`CenteredMatrix::matvec_t_into`] with workspace buffers.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != rows`.
    pub fn matvec_t(&self, z: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.cols()];
        self.matvec_t_into(z, &mut out);
        out
    }

    /// Allocation-free `out ← Bᵀ·z`.
    ///
    /// On a multi-threaded pool (and a matrix above the numerics parallel
    /// threshold) this runs as a row-parallel gather over the lazily
    /// cached transpose; otherwise it is the sequential scatter. Both
    /// accumulate each output element in ascending-row order, so the
    /// result is identical either way.
    ///
    /// # Panics
    ///
    /// Panics if `z.len() != rows` or `out.len() != cols`.
    pub fn matvec_t_into(&self, z: &[f64], out: &mut [f64]) {
        let sum_z: f64 = z.iter().sum();
        if rayon::current_num_threads() > 1 && self.a.nnz() >= npd_numerics::PAR_FLOP_THRESHOLD {
            let at = self.at.get_or_init(|| self.a.transpose());
            at.matvec_into(z, out);
        } else {
            self.a.matvec_t_into(z, out);
        }
        for o in out {
            *o = (*o - self.c * sum_z) / self.s;
        }
    }
}

/// A preprocessed AMP problem: the implicit matrix and the transformed
/// observations.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Centered/scaled sensing matrix.
    pub matrix: CenteredMatrix,
    /// Transformed observations `ỹ` with `ỹ ≈ B·σ + noise`.
    pub observations: Vec<f64>,
    /// Prior weight `π = k/n` for the Bayes denoiser.
    pub prior: f64,
}

/// Builds the AMP problem from a sampled run, applying the channel unbiasing
/// described in the module docs.
///
/// # Panics
///
/// Panics if the run has no queries.
pub fn prepare(run: &Run) -> Prepared {
    let instance = run.instance();
    let gamma = instance.gamma();
    let matrix = CenteredMatrix::from_counts(run.graph().to_csr(), gamma);
    let k = instance.k() as f64;

    // Channel unbiasing per query: `E[σ̂ⱼ | A] = (1−p−q)(Aσ)ⱼ + q·|∂aⱼ|`,
    // so the shift uses the query's own slot count — equal to Γ on
    // query-regular designs, exact on ragged (degree-balanced) ones.
    let (scale, flip_q, denom) = match *instance.noise() {
        NoiseModel::Channel { p, q } => (1.0 / (1.0 - p - q), q, 1.0 - p - q),
        NoiseModel::Noiseless | NoiseModel::Query { .. } => (1.0, 0.0, 1.0),
    };

    let c = matrix.centering();
    let s = matrix.scale();
    let observations = run
        .results()
        .iter()
        .zip(run.graph().queries())
        .map(|(&y, q)| {
            let shift = flip_q * f64::from(q.total_slots()) / denom;
            ((y * scale - shift) - c * k) / s
        })
        .collect();

    Prepared {
        matrix,
        observations,
        prior: k / instance.n() as f64,
    }
}

/// A preprocessed categorical (matrix-AMP) problem.
///
/// The matrix is the same centered/scaled `B` as the binary path; the
/// observations are per-category columns `ỹ_c = (y′_c − (Γ/n)·k_c)/s`
/// with `y′` the channel-unbiased counts and `k_c` the per-category agent
/// counts (including the background `k_0`), so that `Ỹ ≈ B·X + W`
/// column-wise for the one-hot signal `X`.
#[derive(Debug, Clone)]
pub struct CategoricalPrepared {
    /// Centered/scaled sensing matrix (shared across the `d` columns).
    pub matrix: CenteredMatrix,
    /// Transformed observations `Ỹ ∈ ℝ^{m×d}`.
    pub observations: Matrix,
    /// Category prior `π_c = k_c/n`, length `d`, summing to one.
    pub prior: Vec<f64>,
    /// Effective measurement-noise covariance `Σ_w` of one row of `W` in
    /// the scaled model — the `noise_cov` input of the matrix
    /// state-evolution recursion.
    pub noise_cov: Matrix,
}

/// Builds the matrix-AMP problem from a sampled categorical run.
///
/// Channel noise is unbiased per query by applying `(Mᵀ)⁻¹` (with `M` the
/// per-slot [confusion matrix](NoiseModel::confusion_matrix)) to the
/// observed count vector, the exact categorical analogue of the binary
/// `(σ̂ − qΓ)/(1−p−q)` correction; the induced noise covariance is the
/// sandwiched multinomial covariance `(Mᵀ)⁻¹[Σ_c Γπ_c(diag(M_c) −
/// M_cM_cᵀ)]M⁻¹/s²`. Gaussian query noise contributes `λ²/s²` on the
/// strain coordinates only (the background count is reported exactly);
/// noiseless runs get a zero covariance.
///
/// # Panics
///
/// Panics if the run has no queries or the channel's confusion matrix is
/// not invertible at this `d` (requires `p < (d−1)/d`; always holds at
/// `d = 2` since the constructor enforces `p + q < 1`).
pub fn prepare_categorical(run: &CategoricalRun) -> CategoricalPrepared {
    let instance = run.instance();
    let d = instance.d();
    let n = instance.n() as f64;
    let matrix = CenteredMatrix::from_counts(run.graph().to_csr(), instance.gamma());
    let c = matrix.centering();
    let s = matrix.scale();
    let counts = instance.category_counts();
    let prior: Vec<f64> = counts.iter().map(|&k| k as f64 / n).collect();

    // Channel unbiasing: E[y_obs | slots] = Mᵀ·slots, so y′ = (Mᵀ)⁻¹·y_obs
    // recovers the slot counts in expectation.
    let mt_inv = match *instance.noise() {
        NoiseModel::Channel { .. } => {
            let m = instance.noise().confusion_matrix(d);
            let mut mt = Matrix::zeros(d, d);
            for row in 0..d {
                for col in 0..d {
                    *mt.get_mut(row, col) = m.get(col, row);
                }
            }
            let Some(inv) = linalg::inverse(&mt) else {
                panic!(
                    "prepare_categorical: confusion matrix not invertible at d={d} \
                     (requires p < (d-1)/d)"
                );
            };
            Some(inv)
        }
        NoiseModel::Noiseless | NoiseModel::Query { .. } => None,
    };

    let m_queries = run.results().len();
    let mut observations = Matrix::zeros(m_queries, d);
    let mut unbiased = vec![0.0; d];
    for (j, obs) in run.results().iter().enumerate() {
        match &mt_inv {
            Some(inv) => inv.matvec_into(obs, &mut unbiased),
            None => unbiased.copy_from_slice(obs),
        }
        let row = observations.row_mut(j);
        for cat in 0..d {
            row[cat] = (unbiased[cat] - c * counts[cat] as f64) / s;
        }
    }

    let gamma = instance.gamma() as f64;
    let noise_cov = match *instance.noise() {
        NoiseModel::Noiseless => Matrix::zeros(d, d),
        NoiseModel::Query { lambda } => {
            let mut cov = Matrix::zeros(d, d);
            for cat in 1..d {
                *cov.get_mut(cat, cat) = lambda * lambda / (s * s);
            }
            cov
        }
        NoiseModel::Channel { .. } => {
            // Per-slot multinomial covariance, weighted by the expected
            // slot count Γ·π_c of each true category, then sandwiched by
            // the unbiasing transform.
            let m = instance.noise().confusion_matrix(d);
            let mut raw = Matrix::zeros(d, d);
            for (cat, &pc) in prior.iter().enumerate() {
                let weight = gamma * pc;
                let mrow = m.row(cat);
                for a in 0..d {
                    for bcol in 0..d {
                        let delta = if a == bcol { mrow[a] } else { 0.0 };
                        *raw.get_mut(a, bcol) += weight * (delta - mrow[a] * mrow[bcol]);
                    }
                }
            }
            #[allow(clippy::expect_used)]
            // xtask:allow(unwrap-audit): mt_inv is Some for the Channel arm by construction above
            let inv = mt_inv.as_ref().expect("channel arm always builds mt_inv");
            let mut cov = Matrix::zeros(d, d);
            for a in 0..d {
                for bcol in 0..d {
                    let mut acc = 0.0;
                    for u in 0..d {
                        for v in 0..d {
                            acc += inv.get(a, u) * raw.get(u, v) * inv.get(bcol, v);
                        }
                    }
                    *cov.get_mut(a, bcol) = acc / (s * s);
                }
            }
            cov
        }
    };

    CategoricalPrepared {
        matrix,
        observations,
        prior,
        noise_cov,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npd_core::{CategoricalInstance, Instance, NoiseModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_with(noise: NoiseModel, seed: u64) -> Run {
        Instance::builder(200)
            .k(4)
            .queries(80)
            .noise(noise)
            .build()
            .unwrap()
            .sample(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn noiseless_observations_match_centered_product() {
        let run = run_with(NoiseModel::Noiseless, 1);
        let prep = prepare(&run);
        let sigma: Vec<f64> = run
            .ground_truth()
            .bits()
            .iter()
            .map(|&b| if b { 1.0 } else { 0.0 })
            .collect();
        let product = prep.matrix.matvec(&sigma);
        for (a, b) in product.iter().zip(&prep.observations) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn channel_unbiasing_centers_observations() {
        // With unbiasing, E[ỹ − Bσ] = 0; the empirical mean over queries
        // should be near zero relative to the noise scale.
        let run = run_with(NoiseModel::channel(0.2, 0.1), 2);
        let prep = prepare(&run);
        let sigma: Vec<f64> = run
            .ground_truth()
            .bits()
            .iter()
            .map(|&b| if b { 1.0 } else { 0.0 })
            .collect();
        let product = prep.matrix.matvec(&sigma);
        let residual: f64 = prep
            .observations
            .iter()
            .zip(&product)
            .map(|(y, p)| y - p)
            .sum::<f64>()
            / prep.observations.len() as f64;
        assert!(residual.abs() < 0.5, "mean residual {residual}");
    }

    #[test]
    fn matvec_matches_explicit_dense_centering() {
        let run = run_with(NoiseModel::Noiseless, 3);
        let prep = prepare(&run);
        let a = run.graph().to_csr().to_dense();
        let (m, n) = (a.rows(), a.cols());
        let c = prep.matrix.centering();
        let s = prep.matrix.scale();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let z: Vec<f64> = (0..m).map(|i| (i as f64 * 0.11).cos()).collect();

        let mut dense_b = npd_numerics::Matrix::zeros(m, n);
        for r in 0..m {
            for col in 0..n {
                *dense_b.get_mut(r, col) = (a.get(r, col) - c) / s;
            }
        }
        let want_fwd = dense_b.matvec(&x);
        let got_fwd = prep.matrix.matvec(&x);
        for (a, b) in want_fwd.iter().zip(&got_fwd) {
            assert!((a - b).abs() < 1e-9);
        }
        let want_t = dense_b.matvec_t(&z);
        let got_t = prep.matrix.matvec_t(&z);
        for (a, b) in want_t.iter().zip(&got_t) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn column_norms_are_near_unit() {
        let run = run_with(NoiseModel::Noiseless, 4);
        let prep = prepare(&run);
        let n = prep.matrix.cols();
        // Check a few representative columns via B·eᵢ.
        let mut checked = 0;
        for i in (0..n).step_by(37) {
            let mut e = vec![0.0; n];
            e[i] = 1.0;
            let col = prep.matrix.matvec(&e);
            let norm = npd_numerics::vector::norm2(&col);
            assert!((norm - 1.0).abs() < 0.35, "column {i}: norm {norm}");
            checked += 1;
        }
        assert!(checked > 3);
    }

    #[test]
    fn prior_is_k_over_n() {
        let run = run_with(NoiseModel::Noiseless, 5);
        let prep = prepare(&run);
        assert!((prep.prior - 4.0 / 200.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_scale() {
        let a = CsrMatrix::from_triplets(1, 1, &[]);
        CenteredMatrix::new(a, 0.5, 0.0);
    }

    fn categorical_run(
        noise: NoiseModel,
        strains: &[usize],
        seed: u64,
    ) -> npd_core::CategoricalRun {
        CategoricalInstance::new(200, strains.to_vec(), 80)
            .unwrap()
            .with_noise(noise)
            .sample(&mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn categorical_noiseless_observations_match_columnwise_product() {
        let run = categorical_run(NoiseModel::Noiseless, &[8, 5], 21);
        let prep = prepare_categorical(&run);
        let d = run.instance().d();
        let n = run.instance().n();
        for cat in 0..d {
            let x_col: Vec<f64> = (0..n)
                .map(|i| {
                    if run.ground_truth().label(i) as usize == cat {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect();
            let product = prep.matrix.matvec(&x_col);
            for (j, &p) in product.iter().enumerate() {
                let y = prep.observations.get(j, cat);
                assert!((y - p).abs() < 1e-9, "cat {cat} query {j}: {y} vs {p}");
            }
        }
    }

    #[test]
    fn categorical_d2_channel_matches_binary_preparation() {
        // The d=2 unbiasing through (Mᵀ)⁻¹ must reproduce the scalar
        // (σ̂ − qΓ)/(1−p−q) path: strain column of Ỹ equals the binary ỹ.
        let noise = NoiseModel::channel(0.15, 0.08);
        let inst = CategoricalInstance::new(200, vec![9], 80)
            .unwrap()
            .with_noise(noise);
        let seed = 33;
        let cat_run = inst.sample(&mut StdRng::seed_from_u64(seed));
        let bin_run = inst
            .to_binary()
            .unwrap()
            .sample(&mut StdRng::seed_from_u64(seed));
        let cat_prep = prepare_categorical(&cat_run);
        let bin_prep = prepare(&bin_run);
        for (j, &y_bin) in bin_prep.observations.iter().enumerate() {
            let y_cat = cat_prep.observations.get(j, 1);
            assert!(
                (y_cat - y_bin).abs() < 1e-9,
                "query {j}: categorical {y_cat} vs binary {y_bin}"
            );
        }
        assert!((cat_prep.prior[1] - bin_prep.prior).abs() < 1e-12);
    }

    #[test]
    fn categorical_prior_is_a_distribution() {
        let run = categorical_run(NoiseModel::Noiseless, &[10, 6, 4], 4);
        let prep = prepare_categorical(&run);
        assert_eq!(prep.prior.len(), 4);
        assert!((prep.prior.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((prep.prior[1] - 10.0 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn categorical_gaussian_noise_cov_is_strain_diagonal() {
        let run = categorical_run(NoiseModel::gaussian(2.0), &[8, 8], 5);
        let prep = prepare_categorical(&run);
        let s = prep.matrix.scale();
        assert_eq!(prep.noise_cov.get(0, 0), 0.0);
        for cat in 1..3 {
            let want = 4.0 / (s * s);
            assert!((prep.noise_cov.get(cat, cat) - want).abs() < 1e-12);
        }
        assert_eq!(prep.noise_cov.get(0, 1), 0.0);
    }

    #[test]
    fn categorical_channel_noise_cov_is_symmetric_psd_diagonal_dominantish() {
        let run = categorical_run(NoiseModel::channel(0.1, 0.05), &[12, 8], 6);
        let prep = prepare_categorical(&run);
        let d = 3;
        for a in 0..d {
            assert!(prep.noise_cov.get(a, a) > 0.0, "diagonal {a} not positive");
            for b in 0..d {
                let diff = prep.noise_cov.get(a, b) - prep.noise_cov.get(b, a);
                assert!(diff.abs() < 1e-12, "asymmetric at ({a},{b})");
            }
        }
    }
}
