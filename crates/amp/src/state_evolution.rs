//! State evolution: the scalar recursion that tracks AMP's effective noise.
//!
//! In the large-system limit the pseudo-observations of iteration `t`
//! behave like `X + τ_t·Z` with `Z ~ N(0,1)`, and the noise evolves as
//!
//! ```text
//! τ_{t+1}² = σ_w² + (n/m) · E[(η(X + τ_t Z; τ_t²) − X)²],
//! ```
//!
//! where `σ_w²` is the measurement-noise variance in the scaled model and
//! the expectation runs over the signal prior `X ~ Bernoulli(π)` and `Z`.
//! The recursion's fixed point predicts whether AMP succeeds: if `τ²` falls
//! to the noise floor, the posterior means separate ones from zeros and the
//! rank-`k` threshold recovers exactly — the sharp transition visible in
//! Figure 6.
//!
//! The expectation is evaluated by Monte-Carlo with a fixed seed, which is
//! accurate to the ~1% level that the qualitative comparison needs.

use crate::denoiser::Denoiser;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the scalar recursion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateEvolutionConfig {
    /// Prior weight `π = k/n`.
    pub prior: f64,
    /// Undersampling ratio `n/m`.
    pub n_over_m: f64,
    /// Measurement-noise variance `σ_w²` in the scaled model.
    pub sigma_w2: f64,
    /// Monte-Carlo sample count per iteration.
    pub samples: usize,
    /// Iterations to run.
    pub iterations: usize,
    /// RNG seed for the Monte-Carlo expectation.
    pub seed: u64,
}

impl Default for StateEvolutionConfig {
    fn default() -> Self {
        Self {
            prior: 0.01,
            n_over_m: 2.0,
            sigma_w2: 0.0,
            samples: 20_000,
            iterations: 30,
            seed: 7,
        }
    }
}

/// The `τ_t²` trajectory of the recursion, starting from the
/// initialization `τ_0² = σ_w² + (n/m)·E[X²]` (the all-zero estimate).
///
/// # Panics
///
/// Panics if the configuration is degenerate (`prior ∉ (0,1)`,
/// `n_over_m ≤ 0`, `samples == 0`).
pub fn evolve<D: Denoiser>(denoiser: &D, config: &StateEvolutionConfig) -> Vec<f64> {
    assert!(
        config.prior > 0.0 && config.prior < 1.0,
        "state evolution: prior must be in (0,1)"
    );
    assert!(
        config.n_over_m > 0.0,
        "state evolution: n/m must be positive"
    );
    assert!(config.samples > 0, "state evolution: need samples");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut gauss = npd_numerics::rng::GaussianSampler::new();
    // E[X²] = π for a Bernoulli prior.
    let mut tau2 = config.sigma_w2 + config.n_over_m * config.prior;
    let mut history = vec![tau2];

    for _ in 0..config.iterations {
        let mut mse = 0.0;
        for _ in 0..config.samples {
            let x = if rng.gen::<f64>() < config.prior {
                1.0
            } else {
                0.0
            };
            let v = x + tau2.sqrt() * gauss.sample(&mut rng);
            let err = denoiser.eta(v, tau2) - x;
            mse += err * err;
        }
        mse /= config.samples as f64;
        tau2 = config.sigma_w2 + config.n_over_m * mse;
        history.push(tau2);
    }
    history
}

/// Convenience: the final `τ²` of [`evolve`] — the (approximate) fixed
/// point.
pub fn fixed_point<D: Denoiser>(denoiser: &D, config: &StateEvolutionConfig) -> f64 {
    let trace = evolve(denoiser, config);
    #[allow(clippy::expect_used)]
    *trace
        .last()
        // xtask:allow(unwrap-audit): evolve unconditionally pushes the initialization before iterating, so the trace is never empty
        .expect("evolve always returns the initialization")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::denoiser::BayesBernoulli;

    #[test]
    fn noiseless_oversampled_collapses_to_zero() {
        // Plenty of measurements (n/m = 1.2) and no noise: τ² → ~0 and AMP
        // succeeds.
        let cfg = StateEvolutionConfig {
            prior: 0.01,
            n_over_m: 1.2,
            sigma_w2: 0.0,
            ..StateEvolutionConfig::default()
        };
        let d = BayesBernoulli::new(cfg.prior);
        let fp = fixed_point(&d, &cfg);
        assert!(fp < 1e-4, "fixed point {fp}");
    }

    #[test]
    fn heavy_undersampling_stalls() {
        // Far too few measurements: τ² stays macroscopic.
        let cfg = StateEvolutionConfig {
            prior: 0.05,
            n_over_m: 200.0,
            sigma_w2: 0.0,
            ..StateEvolutionConfig::default()
        };
        let d = BayesBernoulli::new(cfg.prior);
        let fp = fixed_point(&d, &cfg);
        assert!(fp > 0.1, "fixed point {fp}");
    }

    #[test]
    fn noise_floor_bounds_the_fixed_point() {
        let cfg = StateEvolutionConfig {
            prior: 0.01,
            n_over_m: 1.5,
            sigma_w2: 0.3,
            ..StateEvolutionConfig::default()
        };
        let d = BayesBernoulli::new(cfg.prior);
        let fp = fixed_point(&d, &cfg);
        assert!(fp >= 0.3 - 1e-9, "fixed point {fp} below the noise floor");
        assert!(fp < 0.5, "fixed point {fp} unexpectedly large");
    }

    #[test]
    fn trajectory_is_monotone_decreasing_in_easy_regime() {
        let cfg = StateEvolutionConfig {
            prior: 0.01,
            n_over_m: 1.2,
            sigma_w2: 0.0,
            iterations: 15,
            ..StateEvolutionConfig::default()
        };
        let d = BayesBernoulli::new(cfg.prior);
        let hist = evolve(&d, &cfg);
        for w in hist.windows(2) {
            assert!(w[1] <= w[0] * 1.05, "τ² increased: {} → {}", w[0], w[1]);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = StateEvolutionConfig::default();
        let d = BayesBernoulli::new(cfg.prior);
        assert_eq!(evolve(&d, &cfg), evolve(&d, &cfg));
    }

    #[test]
    #[should_panic(expected = "prior")]
    fn rejects_bad_prior() {
        let cfg = StateEvolutionConfig {
            prior: 0.0,
            ..StateEvolutionConfig::default()
        };
        evolve(&BayesBernoulli::new(0.5), &cfg);
    }
}
