//! State evolution: the scalar recursion that tracks AMP's effective noise.
//!
//! In the large-system limit the pseudo-observations of iteration `t`
//! behave like `X + τ_t·Z` with `Z ~ N(0,1)`, and the noise evolves as
//!
//! ```text
//! τ_{t+1}² = σ_w² + (n/m) · E[(η(X + τ_t Z; τ_t²) − X)²],
//! ```
//!
//! where `σ_w²` is the measurement-noise variance in the scaled model and
//! the expectation runs over the signal prior `X ~ Bernoulli(π)` and `Z`.
//! The recursion's fixed point predicts whether AMP succeeds: if `τ²` falls
//! to the noise floor, the posterior means separate ones from zeros and the
//! rank-`k` threshold recovers exactly — the sharp transition visible in
//! Figure 6.
//!
//! The expectation is evaluated by Monte-Carlo with a fixed seed, which is
//! accurate to the ~1% level that the qualitative comparison needs.

use crate::denoiser::{BayesSimplex, Denoiser};
use crate::matrix_amp::{cholesky_with_jitter, regularized_inverse};
use npd_numerics::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the scalar recursion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateEvolutionConfig {
    /// Prior weight `π = k/n`.
    pub prior: f64,
    /// Undersampling ratio `n/m`.
    pub n_over_m: f64,
    /// Measurement-noise variance `σ_w²` in the scaled model.
    pub sigma_w2: f64,
    /// Monte-Carlo sample count per iteration.
    pub samples: usize,
    /// Iterations to run.
    pub iterations: usize,
    /// RNG seed for the Monte-Carlo expectation.
    pub seed: u64,
}

impl Default for StateEvolutionConfig {
    fn default() -> Self {
        Self {
            prior: 0.01,
            n_over_m: 2.0,
            sigma_w2: 0.0,
            samples: 20_000,
            iterations: 30,
            seed: 7,
        }
    }
}

/// The `τ_t²` trajectory of the recursion, starting from the
/// initialization `τ_0² = σ_w² + (n/m)·E[X²]` (the all-zero estimate).
///
/// # Panics
///
/// Panics if the configuration is degenerate (`prior ∉ (0,1)`,
/// `n_over_m ≤ 0`, `samples == 0`).
pub fn evolve<D: Denoiser>(denoiser: &D, config: &StateEvolutionConfig) -> Vec<f64> {
    assert!(
        config.prior > 0.0 && config.prior < 1.0,
        "state evolution: prior must be in (0,1)"
    );
    assert!(
        config.n_over_m > 0.0,
        "state evolution: n/m must be positive"
    );
    assert!(config.samples > 0, "state evolution: need samples");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut gauss = npd_numerics::rng::GaussianSampler::new();
    // E[X²] = π for a Bernoulli prior.
    let mut tau2 = config.sigma_w2 + config.n_over_m * config.prior;
    let mut history = vec![tau2];

    for _ in 0..config.iterations {
        let mut mse = 0.0;
        for _ in 0..config.samples {
            let x = if rng.gen::<f64>() < config.prior {
                1.0
            } else {
                0.0
            };
            let v = x + tau2.sqrt() * gauss.sample(&mut rng);
            let err = denoiser.eta(v, tau2) - x;
            mse += err * err;
        }
        mse /= config.samples as f64;
        tau2 = config.sigma_w2 + config.n_over_m * mse;
        history.push(tau2);
    }
    history
}

/// Convenience: the final `τ²` of [`evolve`] — the (approximate) fixed
/// point.
pub fn fixed_point<D: Denoiser>(denoiser: &D, config: &StateEvolutionConfig) -> f64 {
    let trace = evolve(denoiser, config);
    #[allow(clippy::expect_used)]
    *trace
        .last()
        // xtask:allow(unwrap-audit): evolve unconditionally pushes the initialization before iterating, so the trace is never empty
        .expect("evolve always returns the initialization")
}

/// Result of [`fixed_point_bounded`]: the last `τ²`, how many iterations
/// were spent reaching it, and whether the relative-change stopping rule
/// fired within the budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixedPoint {
    /// The final `τ²` of the recursion.
    pub tau2: f64,
    /// Iterations actually performed (`≤ config.iterations`).
    pub iterations: usize,
    /// `true` when `|τ²_{t+1} − τ²_t| ≤ rel_tol·τ²_t + 1e-15` fired;
    /// `false` when the iteration budget ran out first. A non-convergent
    /// configuration (e.g. one oscillating between basins at Monte-Carlo
    /// resolution) therefore returns the last iterate with
    /// `converged == false` instead of spinning — [`fixed_point`] keeps
    /// the old always-run-the-budget behavior.
    pub converged: bool,
}

/// Bounded fixed-point search: runs the recursion of [`evolve`] but stops
/// early once successive `τ²` values agree to the relative tolerance
/// `rel_tol`, and reports whether that ever happened.
///
/// # Panics
///
/// Panics on the same degenerate configurations as [`evolve`], and if
/// `rel_tol` is negative or not finite.
pub fn fixed_point_bounded<D: Denoiser>(
    denoiser: &D,
    config: &StateEvolutionConfig,
    rel_tol: f64,
) -> FixedPoint {
    assert!(
        rel_tol.is_finite() && rel_tol >= 0.0,
        "state evolution: rel_tol={rel_tol} must be a non-negative finite number"
    );
    assert!(
        config.prior > 0.0 && config.prior < 1.0,
        "state evolution: prior must be in (0,1)"
    );
    assert!(
        config.n_over_m > 0.0,
        "state evolution: n/m must be positive"
    );
    assert!(config.samples > 0, "state evolution: need samples");

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut gauss = npd_numerics::rng::GaussianSampler::new();
    let mut tau2 = config.sigma_w2 + config.n_over_m * config.prior;

    for it in 0..config.iterations {
        let mut mse = 0.0;
        for _ in 0..config.samples {
            let x = if rng.gen::<f64>() < config.prior {
                1.0
            } else {
                0.0
            };
            let v = x + tau2.sqrt() * gauss.sample(&mut rng);
            let err = denoiser.eta(v, tau2) - x;
            mse += err * err;
        }
        mse /= config.samples as f64;
        let next = config.sigma_w2 + config.n_over_m * mse;
        let delta = (next - tau2).abs();
        tau2 = next;
        if delta <= rel_tol * tau2 + 1e-15 {
            return FixedPoint {
                tau2,
                iterations: it + 1,
                converged: true,
            };
        }
    }
    FixedPoint {
        tau2,
        iterations: config.iterations,
        converged: false,
    }
}

/// Parameters of the matrix state-evolution recursion for categorical
/// matrix-AMP (Tan et al. 2023).
///
/// The recursion tracks the `d × d` effective-noise covariance `T_t`
/// *and* a mean shift `μ_t`. The pooling designs used here are
/// query-regular — every query has exactly `Γ` slots — so the centered
/// matrix satisfies `B·1 = 0` exactly and the decoder only ever sees the
/// *centered* error `Δ_t − 1μ_tᵀ` (the per-category column means of the
/// error are annihilated by `B` but reappear as a deterministic shift of
/// the denoiser input `V_t ≈ X − 1μ_tᵀ + G_t`). The recursion is
///
/// ```text
/// err(x, g) = η(x − μ_t + g; T_t) − x,          g ~ N(0, T_t)
/// μ_{t+1}   = −E[err]
/// T_{t+1}   = Σ_w + (n/m) · Cov[err]            (centered second moment)
/// ```
///
/// with `x` one-hot under `prior` and `η` the [`BayesSimplex`] denoiser
/// evaluated with the *same* ridge-regularized precision as the empirical
/// decoder (the `ridge` field must match `MatrixAmpConfig::ridge` for the
/// prediction to be comparable). On an i.i.d. (non-sum-preserving) design
/// the μ term would be absent; dropping it here mis-predicts the first
/// iteration by ~40% at `π = [0.7, 0.3]`, which is exactly the kind of
/// design-dependence the agreement tests exist to pin down.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixSeConfig {
    /// Category prior `π`, length `d`, strictly positive entries.
    pub prior: Vec<f64>,
    /// Undersampling ratio `n/m`.
    pub n_over_m: f64,
    /// Measurement-noise covariance `Σ_w` of one scaled observation row
    /// (the `noise_cov` field of a prepared categorical problem).
    pub noise_cov: Matrix,
    /// Relative ridge used when inverting `T_t` — keep equal to the
    /// decoder's `MatrixAmpConfig::ridge`.
    pub ridge: f64,
    /// Monte-Carlo sample count per iteration.
    pub samples: usize,
    /// Iterations to run.
    pub iterations: usize,
    /// RNG seed for the Monte-Carlo expectation.
    pub seed: u64,
}

/// Trajectory of the matrix recursion.
#[derive(Debug, Clone)]
pub struct MatrixSeOutput {
    /// `T_t` entering each iteration (length `iterations`, starting from
    /// the initialization `T_0 = Σ_w + (n/m)·(diag(π) − ππᵀ)` that matches
    /// the decoder's all-zero first iterate on a query-regular design —
    /// the error at `t = 0` is `X` itself, whose *centered* row covariance
    /// is `diag(π) − ππᵀ`).
    pub t_trajectory: Vec<Matrix>,
    /// Predicted per-agent MSE `E‖η(x + g; T_t) − x‖²` of the estimate
    /// produced *from* `T_t`, aligned index-for-index with the decoder's
    /// per-iteration empirical MSE.
    pub mse: Vec<f64>,
}

/// Runs the matrix state-evolution recursion by Monte-Carlo.
///
/// # Panics
///
/// Panics if the prior is empty/non-positive, dimensions disagree,
/// `n_over_m ≤ 0`, or `samples == 0`.
pub fn matrix_evolve(config: &MatrixSeConfig) -> MatrixSeOutput {
    let d = config.prior.len();
    assert!(d >= 2, "matrix SE: need at least 2 categories");
    assert!(
        config.prior.iter().all(|&p| p > 0.0),
        "matrix SE: prior must be strictly positive"
    );
    assert_eq!(
        (config.noise_cov.rows(), config.noise_cov.cols()),
        (d, d),
        "matrix SE: noise covariance shape"
    );
    assert!(config.n_over_m > 0.0, "matrix SE: n/m must be positive");
    assert!(config.samples > 0, "matrix SE: need samples");

    let total: f64 = config.prior.iter().sum();
    let prior: Vec<f64> = config.prior.iter().map(|&p| p / total).collect();
    let denoiser = BayesSimplex::new(&prior);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut gauss = npd_numerics::rng::GaussianSampler::new();

    // The decoder starts from X_0 = 0, so its first error is X itself:
    // μ_0 = E[x] = π and T_0 = Σ_w + (n/m)·Cov(x) = Σ_w +
    // (n/m)·(diag(π) − ππᵀ). The −ππᵀ term is the sum-preserving-design
    // correction: B·1 = 0 removes the column means of the error.
    let mut mu = prior.clone();
    let mut t = config.noise_cov.clone();
    for a in 0..d {
        let row = t.row_mut(a);
        for b in 0..d {
            let centered = if a == b {
                prior[a] * (1.0 - prior[a])
            } else {
                -prior[a] * prior[b]
            };
            row[b] += config.n_over_m * centered;
        }
    }

    let mut t_trajectory = Vec::with_capacity(config.iterations);
    let mut mse_out = Vec::with_capacity(config.iterations);
    let mut xi = vec![0.0; d];
    let mut v = vec![0.0; d];
    let mut p = vec![0.0; d];

    for _ in 0..config.iterations {
        let t_inv = regularized_inverse(&t, config.ridge);
        let l = cholesky_with_jitter(&t);
        let mut outer = Matrix::zeros(d, d);
        let mut mean_err = vec![0.0; d];
        let mut mse = 0.0;
        for _ in 0..config.samples {
            // Draw the one-hot category from the prior.
            let u: f64 = rng.gen();
            let mut cat = d - 1;
            let mut cum = 0.0;
            for (c, &pc) in prior.iter().enumerate() {
                cum += pc;
                if u < cum {
                    cat = c;
                    break;
                }
            }
            // v = e_cat − μ + L·ξ with ξ ~ N(0, I): the decoder's input is
            // shifted by the column means of the previous error.
            gauss.fill(&mut rng, &mut xi);
            for (a, va) in v.iter_mut().enumerate() {
                let mut g = 0.0;
                for (b, &xb) in xi.iter().enumerate().take(a + 1) {
                    g += l.get(a, b) * xb;
                }
                *va = g - mu[a] + if a == cat { 1.0 } else { 0.0 };
            }
            denoiser.eta(&v, &t_inv, &mut p);
            p[cat] -= 1.0; // p is now the error vector η − x
            for (a, &ea) in p.iter().enumerate() {
                mse += ea * ea;
                mean_err[a] += ea;
                let row = outer.row_mut(a);
                for (b, &eb) in p.iter().enumerate() {
                    row[b] += ea * eb;
                }
            }
        }
        let samples = config.samples as f64;
        mse /= samples;
        for e in &mut mean_err {
            *e /= samples;
        }
        outer.map_in_place(|val| val / samples);
        t_trajectory.push(t.clone());
        mse_out.push(mse);
        // μ_{t+1} = E[x − η] = −E[err];
        // T_{t+1} = Σ_w + (n/m)·Cov[err] (the column means of the error
        // are annihilated by B, so only the centered moment feeds back).
        t = config.noise_cov.clone();
        for a in 0..d {
            let row = t.row_mut(a);
            for b in 0..d {
                row[b] += config.n_over_m * (outer.get(a, b) - mean_err[a] * mean_err[b]);
            }
        }
        for (m, &e) in mu.iter_mut().zip(mean_err.iter()) {
            *m = -e;
        }
    }

    MatrixSeOutput {
        t_trajectory,
        mse: mse_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::denoiser::BayesBernoulli;

    #[test]
    fn noiseless_oversampled_collapses_to_zero() {
        // Plenty of measurements (n/m = 1.2) and no noise: τ² → ~0 and AMP
        // succeeds.
        let cfg = StateEvolutionConfig {
            prior: 0.01,
            n_over_m: 1.2,
            sigma_w2: 0.0,
            ..StateEvolutionConfig::default()
        };
        let d = BayesBernoulli::new(cfg.prior);
        let fp = fixed_point(&d, &cfg);
        assert!(fp < 1e-4, "fixed point {fp}");
    }

    #[test]
    fn heavy_undersampling_stalls() {
        // Far too few measurements: τ² stays macroscopic.
        let cfg = StateEvolutionConfig {
            prior: 0.05,
            n_over_m: 200.0,
            sigma_w2: 0.0,
            ..StateEvolutionConfig::default()
        };
        let d = BayesBernoulli::new(cfg.prior);
        let fp = fixed_point(&d, &cfg);
        assert!(fp > 0.1, "fixed point {fp}");
    }

    #[test]
    fn noise_floor_bounds_the_fixed_point() {
        let cfg = StateEvolutionConfig {
            prior: 0.01,
            n_over_m: 1.5,
            sigma_w2: 0.3,
            ..StateEvolutionConfig::default()
        };
        let d = BayesBernoulli::new(cfg.prior);
        let fp = fixed_point(&d, &cfg);
        assert!(fp >= 0.3 - 1e-9, "fixed point {fp} below the noise floor");
        assert!(fp < 0.5, "fixed point {fp} unexpectedly large");
    }

    #[test]
    fn trajectory_is_monotone_decreasing_in_easy_regime() {
        let cfg = StateEvolutionConfig {
            prior: 0.01,
            n_over_m: 1.2,
            sigma_w2: 0.0,
            iterations: 15,
            ..StateEvolutionConfig::default()
        };
        let d = BayesBernoulli::new(cfg.prior);
        let hist = evolve(&d, &cfg);
        for w in hist.windows(2) {
            assert!(w[1] <= w[0] * 1.05, "τ² increased: {} → {}", w[0], w[1]);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = StateEvolutionConfig::default();
        let d = BayesBernoulli::new(cfg.prior);
        assert_eq!(evolve(&d, &cfg), evolve(&d, &cfg));
    }

    #[test]
    #[should_panic(expected = "prior")]
    fn rejects_bad_prior() {
        let cfg = StateEvolutionConfig {
            prior: 0.0,
            ..StateEvolutionConfig::default()
        };
        evolve(&BayesBernoulli::new(0.5), &cfg);
    }

    #[test]
    #[should_panic(expected = "prior")]
    fn rejects_degenerate_prior_one() {
        let cfg = StateEvolutionConfig {
            prior: 1.0,
            ..StateEvolutionConfig::default()
        };
        evolve(&BayesBernoulli::new(0.5), &cfg);
    }

    #[test]
    #[should_panic(expected = "prior")]
    fn bounded_fixed_point_rejects_degenerate_prior() {
        let cfg = StateEvolutionConfig {
            prior: 0.0,
            ..StateEvolutionConfig::default()
        };
        fixed_point_bounded(&BayesBernoulli::new(0.5), &cfg, 1e-4);
    }

    #[test]
    #[should_panic(expected = "rel_tol")]
    fn bounded_fixed_point_rejects_bad_tolerance() {
        let cfg = StateEvolutionConfig::default();
        fixed_point_bounded(&BayesBernoulli::new(cfg.prior), &cfg, -1.0);
    }

    #[test]
    fn bounded_fixed_point_converges_early_in_easy_regime() {
        // Noiseless oversampled: τ² collapses fast, so the stopping rule
        // must fire well before the iteration budget.
        let cfg = StateEvolutionConfig {
            prior: 0.01,
            n_over_m: 1.2,
            sigma_w2: 0.0,
            iterations: 100,
            ..StateEvolutionConfig::default()
        };
        let d = BayesBernoulli::new(cfg.prior);
        let fp = fixed_point_bounded(&d, &cfg, 1e-3);
        assert!(fp.converged, "did not converge: {fp:?}");
        assert!(fp.iterations < 100, "used the whole budget: {fp:?}");
        assert!(fp.tau2 < 1e-3, "fixed point {fp:?}");
        // Agrees with the unbounded variant at the same seed to MC noise.
        let full = fixed_point(&d, &cfg);
        assert!((fp.tau2 - full).abs() < 1e-3, "{} vs {full}", fp.tau2);
    }

    #[test]
    fn bounded_fixed_point_noiseless_limit_hits_the_floor() {
        // sigma_w2 = 0: the only fixed point in the easy regime is τ² = 0
        // (up to MC noise); the noise floor is exactly zero.
        let cfg = StateEvolutionConfig {
            prior: 0.01,
            n_over_m: 0.8,
            sigma_w2: 0.0,
            iterations: 60,
            ..StateEvolutionConfig::default()
        };
        let d = BayesBernoulli::new(cfg.prior);
        let fp = fixed_point_bounded(&d, &cfg, 1e-6);
        assert!(fp.tau2 >= 0.0);
        assert!(fp.tau2 < 1e-5, "noiseless limit stalled: {fp:?}");
    }

    #[test]
    fn bounded_fixed_point_reports_non_convergence_instead_of_spinning() {
        // A zero tolerance with MC-noisy iterates never fires the stopping
        // rule in the hard regime; the documented behavior is to return the
        // last iterate with converged == false after exactly the budget.
        let cfg = StateEvolutionConfig {
            prior: 0.05,
            n_over_m: 200.0,
            sigma_w2: 0.1,
            iterations: 8,
            samples: 2_000,
            ..StateEvolutionConfig::default()
        };
        let d = BayesBernoulli::new(cfg.prior);
        let fp = fixed_point_bounded(&d, &cfg, 0.0);
        assert!(!fp.converged, "unexpectedly converged: {fp:?}");
        assert_eq!(fp.iterations, 8);
        assert!(fp.tau2 > 0.1, "fixed point {fp:?}");
    }

    fn small_matrix_config(d: usize) -> MatrixSeConfig {
        let prior = match d {
            2 => vec![0.7, 0.3],
            _ => vec![0.55, 0.15, 0.15, 0.15],
        };
        MatrixSeConfig {
            prior,
            n_over_m: 2.0,
            noise_cov: Matrix::zeros(d, d),
            ridge: 1e-6,
            samples: 4_000,
            iterations: 6,
            seed: 11,
        }
    }

    #[test]
    fn matrix_se_is_deterministic_per_seed() {
        let cfg = small_matrix_config(4);
        let a = matrix_evolve(&cfg);
        let b = matrix_evolve(&cfg);
        assert_eq!(a.mse, b.mse);
        for (x, y) in a.t_trajectory.iter().zip(&b.t_trajectory) {
            assert_eq!(x.as_slice(), y.as_slice());
        }
    }

    #[test]
    fn matrix_se_mse_decreases_in_easy_regime() {
        let cfg = MatrixSeConfig {
            n_over_m: 1.0,
            ..small_matrix_config(2)
        };
        let out = matrix_evolve(&cfg);
        assert_eq!(out.mse.len(), 6);
        assert!(
            out.mse.last().unwrap() < &out.mse[0],
            "MSE did not decrease: {:?}",
            out.mse
        );
        // MSE is a squared norm: non-negative throughout.
        assert!(out.mse.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn matrix_se_noise_floor_props_into_t() {
        let mut noise_cov = Matrix::zeros(2, 2);
        *noise_cov.get_mut(1, 1) = 0.25;
        let cfg = MatrixSeConfig {
            noise_cov,
            ..small_matrix_config(2)
        };
        let out = matrix_evolve(&cfg);
        for t in &out.t_trajectory {
            assert!(
                t.get(1, 1) >= 0.25 - 1e-12,
                "T fell below the noise floor: {}",
                t.get(1, 1)
            );
        }
    }

    #[test]
    #[should_panic(expected = "prior")]
    fn matrix_se_rejects_non_positive_prior() {
        let cfg = MatrixSeConfig {
            prior: vec![0.5, 0.0],
            ..small_matrix_config(2)
        };
        matrix_evolve(&cfg);
    }
}
