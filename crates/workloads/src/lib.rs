//! Structured and temporal population models for the pooled-data problem.
//!
//! The paper — and until this crate, every experiment in the workspace —
//! samples the hidden assignment as a *uniform* weight-`k` vector. Recovery
//! thresholds are known to be sensitive to the prior structure of the
//! ground truth (Scarlett & Cevher's phase-transition analysis of the
//! pooled data problem; the near-optimal sparse-regime algorithms of
//! Hahn-Klimroth et al.), and real pooled-testing deployments — epidemic
//! screening, heavy-hitter detection — face correlated, drifting
//! populations. This crate makes the *population* pluggable the same way
//! `npd_core::design` made the *pooling* pluggable:
//!
//! * [`PopulationModel`] — object-safe sampling trait: `(n, rng)` to a
//!   [`GroundTruth`] plus metadata (name, expected `k`, per-agent prior
//!   marginals).
//! * [`UniformKSubset`] — the paper's sampler behind the trait,
//!   bit-identical to [`GroundTruth::sample`] (fingerprint-pinned).
//! * [`CommunityBlocks`] — SBM-style block prevalences: most one-agents
//!   concentrate in a few "hot" communities.
//! * [`HouseholdClusters`] — infections arrive in household bursts: the
//!   one-set is a union of small contiguous clusters.
//! * [`HeavyTailedHubs`] — Zipf-weighted marginals: a few hub agents carry
//!   most of the prior mass (heavy-hitter detection).
//! * [`SirDynamics`] — a temporal susceptible–infectious–recovered model
//!   evolving the ground truth over epochs; the [`tracking`] module streams
//!   pooled queries against the drifting truth
//!   (`npd_core::IncrementalSim::set_truth`) and re-decodes per epoch.
//!
//! The per-agent priors feed the posterior decoding paths in `npd-core`
//! ([`npd_core::GreedyDecoder::posterior_scores`],
//! [`npd_core::estimation::decode_with_prior`]): on structured workloads
//! the prior-aware rule beats the prior-blind rule at a fixed query budget
//! (pinned by test).
//!
//! # Determinism contract
//!
//! Every model consumes only the caller's RNG stream: `(model, n, seed)`
//! identifies a population exactly, and the temporal models evolve through
//! an explicit state ([`SirState`]) so an epoch sequence is a pure function
//! of `(model, n, seed)` — independent of thread or shard counts (pinned
//! in `tests/determinism.rs` at the workspace root).
//!
//! # Examples
//!
//! ```
//! use npd_workloads::{CommunityBlocks, PopulationModel};
//! use rand::SeedableRng;
//!
//! let model = CommunityBlocks::new(8, 2, 0.9, npd_core::Regime::sublinear(0.5));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let truth = model.sample(1_000, &mut rng);
//! // ≈ 90% of the ones land in the two hot blocks (125 agents each).
//! let prior = model.prior(1_000);
//! assert_eq!(prior.len(), 1_000);
//! assert!(truth.k() > 0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod models;
pub mod sir;
pub mod tracking;

pub use models::{
    CommunityBlocks, HeavyTailedHubs, HouseholdClusters, MultiStrain, UniformKSubset,
};
pub use sir::{SirDynamics, SirState};
pub use tracking::{track_greedy, track_protocol, EpochReport, TrackingConfig};

use npd_core::model::GroundTruth;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A scheme for sampling the hidden assignment `σ`.
///
/// The population-side counterpart of [`npd_core::PoolingDesign`]:
/// object-safe so heterogeneous workload catalogs can be iterated
/// (`Vec<Box<dyn PopulationModel>>`), with enough metadata for decoders to
/// exploit the prior (per-agent marginals) and for harness code to size
/// budgets (expected `k`). `Send + Sync` is part of the contract: the
/// Monte-Carlo runner shares one model across worker threads (models are
/// plain parameter structs; all sampling state lives in the caller's RNG).
pub trait PopulationModel: Send + Sync {
    /// Short stable identifier (`"uniform"`, `"community"`, …) used in
    /// reports and the scenario registry.
    fn name(&self) -> &'static str;

    /// Expected number of one-agents at population size `n`.
    fn expected_k(&self, n: usize) -> f64;

    /// Per-agent prior marginals `πᵢ = P(σᵢ = 1)`.
    ///
    /// This is what the posterior decoding paths consume
    /// ([`npd_core::GreedyDecoder::posterior_scores`]); models with
    /// correlated structure (households) still report the *marginal* here.
    fn prior(&self, n: usize) -> Vec<f64>;

    /// Samples one hidden assignment over `n` agents.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > u32::MAX` (models may add documented
    /// scheme-specific constraints).
    fn sample(&self, n: usize, rng: &mut dyn RngCore) -> GroundTruth;
}

/// A copyable, serializable name for a population model.
///
/// The workload-side counterpart of [`npd_core::DesignSpec`]:
/// configuration types (the experiment harness's scenario registry) carry
/// a `WorkloadSpec` and build the concrete model on demand via
/// [`WorkloadSpec::model`]. It also implements [`PopulationModel`] itself
/// by delegation, so it can be used anywhere a model is expected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// The paper's uniform `k`-subset ([`UniformKSubset`]).
    Uniform {
        /// Sparsity exponent θ (`k = n^θ`).
        theta: f64,
    },
    /// Community blocks ([`CommunityBlocks`]) with the catalog defaults
    /// (8 blocks, 2 hot, 90% of the ones in the hot blocks).
    Community {
        /// Sparsity exponent θ for the total expected `k`.
        theta: f64,
    },
    /// Household clusters ([`HouseholdClusters`]) with the catalog
    /// defaults (households of 4, secondary attack rate 0.7).
    Households {
        /// Sparsity exponent θ for the total expected `k`.
        theta: f64,
    },
    /// Heavy-tailed hubs ([`HeavyTailedHubs`]) with Zipf exponent 1.
    Hubs {
        /// Sparsity exponent θ for the total expected `k`.
        theta: f64,
    },
    /// Temporal SIR dynamics ([`SirDynamics`]) with the catalog defaults
    /// (see [`SirDynamics::catalog`]); one-shot samples snapshot the
    /// process after its burn-in.
    Sir,
    /// Categorical multi-strain population ([`MultiStrain`]): `strains`
    /// distinguishable variants (`d = strains + 1` categories); the binary
    /// view collapses strains to affected/unaffected.
    MultiStrain {
        /// Number of strains (1 to 255); `strains = 1` is the binary
        /// special case, bit-identical to [`WorkloadSpec::Uniform`].
        strains: usize,
        /// Sparsity exponent θ for the total expected `k` across strains.
        theta: f64,
    },
}

impl WorkloadSpec {
    /// Builds the concrete model this spec names.
    pub fn model(&self) -> Box<dyn PopulationModel> {
        let regime = |theta: f64| npd_core::Regime::sublinear(theta);
        match *self {
            WorkloadSpec::Uniform { theta } => Box::new(UniformKSubset::new(regime(theta))),
            WorkloadSpec::Community { theta } => {
                Box::new(CommunityBlocks::new(8, 2, 0.9, regime(theta)))
            }
            WorkloadSpec::Households { theta } => {
                Box::new(HouseholdClusters::new(4, 0.7, regime(theta)))
            }
            WorkloadSpec::Hubs { theta } => Box::new(HeavyTailedHubs::new(1.0, regime(theta))),
            WorkloadSpec::Sir => Box::new(SirDynamics::catalog()),
            WorkloadSpec::MultiStrain { strains, theta } => {
                Box::new(MultiStrain::new(strains, regime(theta)))
            }
        }
    }

    /// Strain count used by the catalog `multi-strain` name (see
    /// [`WorkloadSpec::parse`]).
    pub const CATALOG_STRAINS: usize = 3;

    /// The categorical model behind this spec, if it is one (the
    /// categorical scenarios branch on this the way the tracking scenarios
    /// branch on [`WorkloadSpec::sir`]).
    pub fn multi_strain(&self) -> Option<MultiStrain> {
        match *self {
            WorkloadSpec::MultiStrain { strains, theta } => Some(MultiStrain::new(
                strains,
                npd_core::Regime::sublinear(theta),
            )),
            _ => None,
        }
    }

    /// The temporal model behind this spec, if it is one (the tracking
    /// scenarios branch on this).
    pub fn sir(&self) -> Option<SirDynamics> {
        match self {
            WorkloadSpec::Sir => Some(SirDynamics::catalog()),
            _ => None,
        }
    }

    /// Parses the stable [`name`](PopulationModel::name) form back into a
    /// spec; parametrized models get the catalog defaults at the paper's
    /// θ = 0.25.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "uniform" => Some(WorkloadSpec::Uniform { theta: 0.25 }),
            "community" => Some(WorkloadSpec::Community { theta: 0.25 }),
            "households" => Some(WorkloadSpec::Households { theta: 0.25 }),
            "hubs" => Some(WorkloadSpec::Hubs { theta: 0.25 }),
            "sir" => Some(WorkloadSpec::Sir),
            "multi-strain" => Some(WorkloadSpec::MultiStrain {
                strains: Self::CATALOG_STRAINS,
                theta: 0.25,
            }),
            _ => None,
        }
    }
}

impl PopulationModel for WorkloadSpec {
    fn name(&self) -> &'static str {
        match self {
            WorkloadSpec::Uniform { .. } => "uniform",
            WorkloadSpec::Community { .. } => "community",
            WorkloadSpec::Households { .. } => "households",
            WorkloadSpec::Hubs { .. } => "hubs",
            WorkloadSpec::Sir => "sir",
            WorkloadSpec::MultiStrain { .. } => "multi-strain",
        }
    }

    fn expected_k(&self, n: usize) -> f64 {
        self.model().expected_k(n)
    }

    fn prior(&self, n: usize) -> Vec<f64> {
        self.model().prior(n)
    }

    fn sample(&self, n: usize, rng: &mut dyn RngCore) -> GroundTruth {
        self.model().sample(n, rng)
    }
}

/// `Display` prints the stable [`PopulationModel::name`] plus parameters.
impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadSpec::Uniform { theta } => write!(f, "uniform(θ={theta})"),
            WorkloadSpec::Community { theta } => write!(f, "community(θ={theta})"),
            WorkloadSpec::Households { theta } => write!(f, "households(θ={theta})"),
            WorkloadSpec::Hubs { theta } => write!(f, "hubs(θ={theta})"),
            WorkloadSpec::Sir => f.write_str("sir"),
            WorkloadSpec::MultiStrain { strains, theta } => {
                write!(f, "multi-strain(s={strains}, θ={theta})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn spec_parse_round_trips_names() {
        for name in [
            "uniform",
            "community",
            "households",
            "hubs",
            "sir",
            "multi-strain",
        ] {
            let spec = WorkloadSpec::parse(name).expect("catalog name parses");
            assert_eq!(spec.name(), name);
            assert_eq!(spec.model().name(), name);
        }
        assert!(WorkloadSpec::parse("nope").is_none());
    }

    #[test]
    fn spec_display_is_informative() {
        assert_eq!(
            WorkloadSpec::Community { theta: 0.5 }.to_string(),
            "community(θ=0.5)"
        );
        assert_eq!(WorkloadSpec::Sir.to_string(), "sir");
    }

    #[test]
    fn spec_delegates_to_model() {
        let spec = WorkloadSpec::Uniform { theta: 0.5 };
        let n = 400;
        let direct = spec.model().sample(n, &mut StdRng::seed_from_u64(3));
        let via_spec = spec.sample(n, &mut StdRng::seed_from_u64(3));
        assert_eq!(direct, via_spec);
        assert_eq!(spec.prior(n).len(), n);
        assert!(spec.expected_k(n) >= 1.0);
    }

    #[test]
    fn models_are_object_safe() {
        let catalog: Vec<Box<dyn PopulationModel>> = vec![
            WorkloadSpec::Uniform { theta: 0.25 }.model(),
            WorkloadSpec::Community { theta: 0.25 }.model(),
            WorkloadSpec::Households { theta: 0.25 }.model(),
            WorkloadSpec::Hubs { theta: 0.25 }.model(),
            WorkloadSpec::Sir.model(),
            WorkloadSpec::MultiStrain {
                strains: 3,
                theta: 0.25,
            }
            .model(),
        ];
        let mut rng = StdRng::seed_from_u64(11);
        for model in &catalog {
            let truth = model.sample(500, &mut rng);
            assert_eq!(truth.n(), 500, "{}", model.name());
            let prior = model.prior(500);
            assert_eq!(prior.len(), 500);
            assert!(prior.iter().all(|&p| (0.0..=1.0).contains(&p)));
            // The prior mass tracks the expected k within sampling slack.
            let mass: f64 = prior.iter().sum();
            let want = model.expected_k(500);
            assert!(
                (mass - want).abs() < want.max(1.0) * 0.5 + 2.0,
                "{}: prior mass {mass} vs expected k {want}",
                model.name()
            );
        }
    }
}
