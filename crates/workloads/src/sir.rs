//! Temporal population dynamics: discrete-time SIR epidemics.
//!
//! The tracking experiments need a ground truth that *drifts*: pooled
//! tests answered in epoch `t` describe a population that has partly moved
//! on by epoch `t+1`. A susceptible–infectious–recovered process is the
//! canonical such drift for the epidemic-screening reading of the pooled
//! data problem — the one-agents are the currently infectious.

use crate::PopulationModel;
use npd_core::model::GroundTruth;
use rand::{Rng, RngCore};

/// Compartment of one agent in the [`SirDynamics`] process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Susceptible,
    Infectious,
    Recovered,
}

/// A discrete-time, well-mixed SIR process over `n` agents.
///
/// Per epoch (synchronous update from the previous epoch's state):
///
/// * every susceptible becomes infectious with probability
///   `min(0.95, β·I/n)` (`I` = current infectious count) — the mean-field
///   contact pressure;
/// * every infectious recovers with probability `ρ`;
/// * if the epidemic dies out (`I = 0`) while susceptibles remain, one
///   uniformly chosen susceptible is infected — an *exogenous importation*,
///   the standard device keeping a monitored process observable; without
///   it every tracking run ends in an empty, untrackable truth.
///
/// The ground truth at any epoch is the infectious set
/// ([`SirState::truth`]). The process is a pure function of
/// `(parameters, n, rng stream)`: no hidden state, so epoch sequences are
/// bit-reproducible per seed at any thread count.
///
/// # Examples
///
/// ```
/// use npd_workloads::SirDynamics;
/// use rand::SeedableRng;
///
/// let model = SirDynamics::new(8, 1.8, 0.35);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let mut state = model.init(1_000, &mut rng);
/// let k0 = state.truth().k();
/// model.step(&mut state, &mut rng);
/// assert_ne!(state.truth().k(), 0); // importation keeps it observable
/// assert_eq!(k0, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SirDynamics {
    initial_infected: usize,
    transmission: f64,
    recovery: f64,
    burn_in: usize,
}

impl SirDynamics {
    /// Contact pressure is capped below one so a single epoch can never
    /// deterministically infect everyone.
    const PRESSURE_CAP: f64 = 0.95;

    /// An SIR process seeded with `initial_infected` cases, transmission
    /// rate `β` (expected infectious contacts per case per epoch) and
    /// recovery probability `ρ`.
    ///
    /// # Panics
    ///
    /// Panics if `initial_infected == 0`, `β` is negative or not finite,
    /// or `ρ ∉ [0, 1]`.
    pub fn new(initial_infected: usize, transmission: f64, recovery: f64) -> Self {
        assert!(
            initial_infected > 0,
            "SirDynamics: need at least one initial case"
        );
        assert!(
            transmission.is_finite() && transmission >= 0.0,
            "SirDynamics: transmission={transmission} must be a non-negative finite number"
        );
        assert!(
            (0.0..=1.0).contains(&recovery),
            "SirDynamics: recovery={recovery} must be in [0, 1]"
        );
        Self {
            initial_infected,
            transmission,
            recovery,
            burn_in: 0,
        }
    }

    /// The scenario catalog's operating point: 8 seed cases, `β = 1.8`,
    /// `ρ = 0.35`, 4 burn-in epochs for one-shot samples — a growing wave
    /// that peaks after a handful of epochs, so tracking sees both the
    /// upswing and the turnover.
    pub fn catalog() -> Self {
        Self::new(8, 1.8, 0.35).with_burn_in(4)
    }

    /// Sets the number of epochs a *one-shot* [`PopulationModel::sample`]
    /// advances before snapshotting (temporal uses step explicitly).
    pub fn with_burn_in(mut self, burn_in: usize) -> Self {
        self.burn_in = burn_in;
        self
    }

    /// Initializes the process: `initial_infected` uniformly chosen cases
    /// (clamped to `n`), everyone else susceptible.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > u32::MAX`.
    pub fn init(&self, n: usize, rng: &mut dyn RngCore) -> SirState {
        crate::models::assert_population(n);
        let seeds = GroundTruth::sample(n, self.initial_infected.min(n), rng);
        let status = (0..n)
            .map(|i| {
                if seeds.is_one(i) {
                    Status::Infectious
                } else {
                    Status::Susceptible
                }
            })
            .collect();
        SirState { status }
    }

    /// Advances the process by one epoch (see the type docs for the
    /// update rule).
    pub fn step(&self, state: &mut SirState, rng: &mut dyn RngCore) {
        let n = state.status.len();
        let infectious = state
            .status
            .iter()
            .filter(|&&s| s == Status::Infectious)
            .count();
        let pressure = (self.transmission * infectious as f64 / n as f64).min(Self::PRESSURE_CAP);
        // Synchronous update: infections draw on the old infectious count,
        // recoveries apply to the old infectious set. Statuses are visited
        // in id order so the RNG stream is schedule-independent.
        let mut still_susceptible = 0usize;
        let mut now_infectious = 0usize;
        for s in state.status.iter_mut() {
            match *s {
                Status::Susceptible => {
                    if rng.gen_bool(pressure) {
                        *s = Status::Infectious;
                        now_infectious += 1;
                    } else {
                        still_susceptible += 1;
                    }
                }
                Status::Infectious => {
                    if rng.gen_bool(self.recovery) {
                        *s = Status::Recovered;
                    } else {
                        now_infectious += 1;
                    }
                }
                Status::Recovered => {}
            }
        }
        if now_infectious == 0 && still_susceptible > 0 {
            // Exogenous importation: infect the `j`-th remaining
            // susceptible, `j` uniform.
            let mut j = rng.gen_range(0..still_susceptible);
            for s in state.status.iter_mut() {
                if *s == Status::Susceptible {
                    if j == 0 {
                        *s = Status::Infectious;
                        break;
                    }
                    j -= 1;
                }
            }
        }
    }

    /// The deterministic mean-field prevalence after `epochs` steps
    /// (fractions of the population), used for the prior metadata.
    fn mean_field(&self, n: usize, epochs: usize) -> f64 {
        let mut s = 1.0 - self.initial_infected.min(n) as f64 / n as f64;
        let mut i = self.initial_infected.min(n) as f64 / n as f64;
        for _ in 0..epochs {
            let pressure = (self.transmission * i).min(Self::PRESSURE_CAP);
            let new_inf = s * pressure;
            s -= new_inf;
            i = i * (1.0 - self.recovery) + new_inf;
        }
        i
    }
}

impl PopulationModel for SirDynamics {
    fn name(&self) -> &'static str {
        "sir"
    }

    fn expected_k(&self, n: usize) -> f64 {
        (self.mean_field(n, self.burn_in) * n as f64).max(1.0)
    }

    fn prior(&self, n: usize) -> Vec<f64> {
        let pi = (self.expected_k(n) / n as f64).clamp(1e-9, 1.0);
        vec![pi; n]
    }

    fn sample(&self, n: usize, rng: &mut dyn RngCore) -> GroundTruth {
        let mut state = self.init(n, rng);
        for _ in 0..self.burn_in {
            self.step(&mut state, rng);
        }
        state.truth()
    }
}

/// The compartment assignment of every agent at one epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SirState {
    status: Vec<Status>,
}

impl SirState {
    /// Population size.
    pub fn n(&self) -> usize {
        self.status.len()
    }

    /// `(susceptible, infectious, recovered)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0usize, 0usize, 0usize);
        for s in &self.status {
            match s {
                Status::Susceptible => c.0 += 1,
                Status::Infectious => c.1 += 1,
                Status::Recovered => c.2 += 1,
            }
        }
        c
    }

    /// The pooled-data ground truth at this epoch: the infectious set.
    pub fn truth(&self) -> GroundTruth {
        GroundTruth::from_ones(
            self.status.len(),
            self.status
                .iter()
                .enumerate()
                .filter_map(|(i, &s)| (s == Status::Infectious).then_some(i as u32)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn init_seeds_exactly_the_initial_cases() {
        let model = SirDynamics::new(5, 2.0, 0.3);
        let state = model.init(200, &mut StdRng::seed_from_u64(1));
        let (s, i, r) = state.counts();
        assert_eq!((s, i, r), (195, 5, 0));
        assert_eq!(state.truth().k(), 5);
    }

    #[test]
    fn conservation_and_monotone_recovered() {
        let model = SirDynamics::new(6, 1.8, 0.35);
        let mut rng = StdRng::seed_from_u64(2);
        let mut state = model.init(500, &mut rng);
        let mut prev_r = 0;
        for _ in 0..20 {
            model.step(&mut state, &mut rng);
            let (s, i, r) = state.counts();
            assert_eq!(s + i + r, 500);
            assert!(r >= prev_r, "recovered shrank");
            prev_r = r;
        }
    }

    #[test]
    fn epidemic_wave_rises_then_recedes() {
        // β/ρ ≈ 5 ≫ 1: the infectious count must grow well past the seeds
        // and eventually fall back (herd depletion).
        let model = SirDynamics::new(4, 1.8, 0.35);
        let mut rng = StdRng::seed_from_u64(3);
        let mut state = model.init(2_000, &mut rng);
        let mut peak = 0usize;
        let mut last = 0usize;
        for _ in 0..40 {
            model.step(&mut state, &mut rng);
            last = state.counts().1;
            peak = peak.max(last);
        }
        assert!(peak > 200, "no outbreak: peak={peak}");
        assert!(
            last < peak / 2,
            "wave never receded: last={last}, peak={peak}"
        );
    }

    #[test]
    fn importation_keeps_truth_nonempty_while_susceptibles_remain() {
        // ρ = 1: every case recovers each epoch; only importation keeps
        // the process alive.
        let model = SirDynamics::new(1, 0.0, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut state = model.init(50, &mut rng);
        for _ in 0..30 {
            model.step(&mut state, &mut rng);
            let (s, i, _) = state.counts();
            if s > 0 {
                assert_eq!(i, 1, "importation should reseed exactly one case");
            }
        }
    }

    #[test]
    fn steps_are_deterministic_per_seed() {
        let model = SirDynamics::catalog();
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut state = model.init(300, &mut rng);
            for _ in 0..10 {
                model.step(&mut state, &mut rng);
            }
            state
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn one_shot_sample_matches_burn_in_metadata() {
        let model = SirDynamics::catalog();
        let ks: Vec<f64> = (0..10)
            .map(|s| model.sample(2_000, &mut StdRng::seed_from_u64(100 + s)).k() as f64)
            .collect();
        let mean = ks.iter().sum::<f64>() / ks.len() as f64;
        let want = model.expected_k(2_000);
        assert!(
            (mean - want).abs() < want * 0.5 + 5.0,
            "mean k {mean} far from mean-field {want}"
        );
    }
}
