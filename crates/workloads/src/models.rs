//! The static structured population models.
//!
//! Every model here is a pure function of `(parameters, n, rng)`; the
//! per-agent prior marginals are a pure function of `(parameters, n)` —
//! no sampling — so decoders can consume them without coordination.

use crate::PopulationModel;
use npd_core::model::GroundTruth;
use npd_core::{CategoricalTruth, Regime};
use rand::{Rng, RngCore};

/// Shared guard for the samplers.
pub(crate) fn assert_population(n: usize) {
    assert!(n > 0, "PopulationModel::sample: n must be positive");
    assert!(
        n <= u32::MAX as usize,
        "PopulationModel::sample: n={n} exceeds u32 range"
    );
}

/// Draws `count` distinct agents uniformly from `lo..hi` via a partial
/// Fisher–Yates shuffle, appending them to `out`.
fn sample_range_subset(
    lo: usize,
    hi: usize,
    count: usize,
    rng: &mut dyn RngCore,
    out: &mut Vec<u32>,
) {
    debug_assert!(count <= hi - lo);
    let mut idx: Vec<u32> = (lo as u32..hi as u32).collect();
    let len = idx.len();
    for i in 0..count {
        let j = rng.gen_range(i..len);
        idx.swap(i, j);
    }
    out.extend_from_slice(&idx[..count]);
}

/// The paper's population: a uniformly random weight-`k` assignment.
///
/// This is [`GroundTruth::sample`] refactored behind [`PopulationModel`];
/// the two consume **identical RNG streams** (pinned by the fingerprint
/// regression test in `tests/workloads.rs`), so every legacy experiment is
/// the `UniformKSubset` special case of the workload layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformKSubset {
    regime: Regime,
}

impl UniformKSubset {
    /// A uniform model whose `k` follows the given regime.
    pub fn new(regime: Regime) -> Self {
        Self { regime }
    }

    /// The regime determining `k`.
    pub fn regime(&self) -> Regime {
        self.regime
    }
}

impl PopulationModel for UniformKSubset {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn expected_k(&self, n: usize) -> f64 {
        self.regime.k_for(n) as f64
    }

    fn prior(&self, n: usize) -> Vec<f64> {
        let pi = self.regime.k_for(n) as f64 / n as f64;
        vec![pi; n]
    }

    fn sample(&self, n: usize, rng: &mut dyn RngCore) -> GroundTruth {
        assert_population(n);
        GroundTruth::sample(n, self.regime.k_for(n), rng)
    }
}

/// SBM-style community structure: `blocks` contiguous equal blocks, with
/// `hot_share` of the one-agents concentrated in the first `hot` blocks.
///
/// Within each block the one-agents are a uniform subset of *exactly* the
/// block's deterministic count, so the realized `k` is a constant of
/// `(parameters, n)` — which keeps fixed-budget comparisons between
/// prior-aware and prior-blind decoding clean. The hot blocks are the
/// blocks with the smallest ids (deterministic, so the prior needs no
/// sampling); under the exchangeable i.i.d. pooling designs agent ids
/// carry no other meaning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommunityBlocks {
    blocks: usize,
    hot: usize,
    hot_share: f64,
    regime: Regime,
}

impl CommunityBlocks {
    /// A block model with `blocks` communities, `hot` of which carry
    /// `hot_share` of the expected `k` (the rest spread uniformly over the
    /// cold blocks).
    ///
    /// # Panics
    ///
    /// Panics if `blocks == 0`, `hot` is not in `[1, blocks]`, or
    /// `hot_share ∉ [0, 1]`.
    pub fn new(blocks: usize, hot: usize, hot_share: f64, regime: Regime) -> Self {
        assert!(blocks > 0, "CommunityBlocks: need at least one block");
        assert!(
            (1..=blocks).contains(&hot),
            "CommunityBlocks: hot={hot} must be in [1, {blocks}]"
        );
        assert!(
            (0.0..=1.0).contains(&hot_share),
            "CommunityBlocks: hot_share={hot_share} must be in [0, 1]"
        );
        Self {
            blocks,
            hot,
            hot_share,
            regime,
        }
    }

    /// Block boundary: block `b` covers `[start(b), start(b+1))`.
    fn block_start(&self, n: usize, b: usize) -> usize {
        b * n / self.blocks
    }

    /// Deterministic per-block one-counts at population size `n`.
    fn block_counts(&self, n: usize) -> Vec<usize> {
        let k = self.regime.k_for(n);
        let hot_total = (k as f64 * self.hot_share).round() as usize;
        let cold_total = k - hot_total.min(k);
        let cold_blocks = self.blocks - self.hot;
        let mut counts = vec![0usize; self.blocks];
        for (b, count) in counts.iter_mut().enumerate() {
            let size = self.block_start(n, b + 1) - self.block_start(n, b);
            let (total, group, rank) = if b < self.hot {
                (hot_total.min(k), self.hot, b)
            } else if cold_blocks > 0 {
                (cold_total, cold_blocks, b - self.hot)
            } else {
                (0, 1, 0)
            };
            // Spread `total` over the group's blocks, remainder first.
            let base = total / group;
            let extra = usize::from(rank < total % group);
            *count = (base + extra).min(size);
        }
        counts
    }
}

impl PopulationModel for CommunityBlocks {
    fn name(&self) -> &'static str {
        "community"
    }

    fn expected_k(&self, n: usize) -> f64 {
        self.block_counts(n).iter().sum::<usize>() as f64
    }

    fn prior(&self, n: usize) -> Vec<f64> {
        let counts = self.block_counts(n);
        let mut prior = Vec::with_capacity(n);
        for (b, &c) in counts.iter().enumerate() {
            let size = self.block_start(n, b + 1) - self.block_start(n, b);
            let pi = if size == 0 {
                0.0
            } else {
                c as f64 / size as f64
            };
            prior.extend(std::iter::repeat_n(pi, size));
        }
        prior
    }

    fn sample(&self, n: usize, rng: &mut dyn RngCore) -> GroundTruth {
        assert_population(n);
        let counts = self.block_counts(n);
        let mut ones = Vec::with_capacity(counts.iter().sum());
        for (b, &c) in counts.iter().enumerate() {
            let (lo, hi) = (self.block_start(n, b), self.block_start(n, b + 1));
            sample_range_subset(lo, hi, c, rng, &mut ones);
        }
        GroundTruth::from_ones(n, ones)
    }
}

/// Household bursts: the one-set is a union of small contiguous clusters.
///
/// Agents partition into contiguous households of `household` members
/// (the last household may be smaller). Infection arrives household by
/// household — a uniformly chosen household gets one index case (uniform
/// member) and every other member independently with probability
/// `secondary_attack` — until at least the regime's `k` one-agents exist.
/// The marginal prior is uniform (households are exchangeable); the
/// *correlation* between household members is what distinguishes this
/// workload from [`UniformKSubset`] at equal `k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HouseholdClusters {
    household: usize,
    secondary_attack: f64,
    regime: Regime,
}

impl HouseholdClusters {
    /// Clustered infections with the given household size and secondary
    /// attack rate.
    ///
    /// # Panics
    ///
    /// Panics if `household == 0` or `secondary_attack ∉ [0, 1]`.
    pub fn new(household: usize, secondary_attack: f64, regime: Regime) -> Self {
        assert!(
            household > 0,
            "HouseholdClusters: household size must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&secondary_attack),
            "HouseholdClusters: secondary_attack={secondary_attack} must be in [0, 1]"
        );
        Self {
            household,
            secondary_attack,
            regime,
        }
    }
}

impl PopulationModel for HouseholdClusters {
    fn name(&self) -> &'static str {
        "households"
    }

    fn expected_k(&self, n: usize) -> f64 {
        // The arrival loop stops at ≥ k with overshoot < household; the
        // expected overshoot is below half a household.
        self.regime.k_for(n) as f64
    }

    fn prior(&self, n: usize) -> Vec<f64> {
        let pi = (self.regime.k_for(n) as f64 / n as f64).min(1.0);
        vec![pi; n]
    }

    fn sample(&self, n: usize, rng: &mut dyn RngCore) -> GroundTruth {
        assert_population(n);
        let target = self.regime.k_for(n).min(n);
        let households = n.div_ceil(self.household);
        // Uniform household order via a reusable partial Fisher–Yates.
        let mut order: Vec<u32> = (0..households as u32).collect();
        let mut ones: Vec<u32> = Vec::with_capacity(target + self.household);
        let mut drawn = 0usize;
        while ones.len() < target && drawn < households {
            let j = rng.gen_range(drawn..households);
            order.swap(drawn, j);
            let h = order[drawn] as usize;
            drawn += 1;
            let lo = h * self.household;
            let hi = ((h + 1) * self.household).min(n);
            let index_case = lo + rng.gen_range(0..hi - lo);
            for a in lo..hi {
                if a == index_case || rng.gen_bool(self.secondary_attack) {
                    ones.push(a as u32);
                }
            }
        }
        GroundTruth::from_ones(n, ones)
    }
}

/// Heavy-tailed hub marginals: `πᵢ ∝ (i+1)^{-α}`, scaled so the prior mass
/// equals the regime's expected `k` (entries capped at 0.95 with the
/// excess water-filled onto the tail).
///
/// The heavy-hitter workload: a few hub agents are very likely one, the
/// long tail individually unlikely but collectively substantial. Each
/// agent's bit is an independent Bernoulli of its marginal, so the
/// realized `k` fluctuates around the expected value — decoders that
/// estimate `k` from the data ([`npd_core::estimation::estimate_k`],
/// [`npd_core::estimation::estimate_k_with_prior`]) are the natural fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeavyTailedHubs {
    alpha: f64,
    regime: Regime,
}

impl HeavyTailedHubs {
    /// Maximum marginal after capping.
    const CAP: f64 = 0.95;

    /// Zipf-weighted marginals with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or not finite.
    pub fn new(alpha: f64, regime: Regime) -> Self {
        assert!(
            alpha.is_finite() && alpha >= 0.0,
            "HeavyTailedHubs: alpha={alpha} must be a non-negative finite number"
        );
        Self { alpha, regime }
    }
}

impl PopulationModel for HeavyTailedHubs {
    fn name(&self) -> &'static str {
        "hubs"
    }

    fn expected_k(&self, n: usize) -> f64 {
        self.prior(n).iter().sum()
    }

    fn prior(&self, n: usize) -> Vec<f64> {
        let target = (self.regime.k_for(n) as f64).min(n as f64 * Self::CAP);
        let weights: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-self.alpha)).collect();
        let mut prior = vec![0.0; n];
        let mut capped = vec![false; n];
        // Water-filling: scale the uncapped weights to the remaining mass,
        // cap any overflow, repeat. Terminates in ≤ n rounds; in practice a
        // handful, since each round either caps a new entry or fixes the
        // scale.
        loop {
            let capped_mass: f64 = prior
                .iter()
                .zip(&capped)
                .filter(|(_, &c)| c)
                .map(|(p, _)| p)
                .sum();
            let free_weight: f64 = weights
                .iter()
                .zip(&capped)
                .filter(|(_, &c)| !c)
                .map(|(w, _)| w)
                .sum();
            let remaining = (target - capped_mass).max(0.0);
            if free_weight <= 0.0 || remaining <= 0.0 {
                break;
            }
            let scale = remaining / free_weight;
            let mut newly_capped = false;
            for i in 0..n {
                if !capped[i] {
                    let p = weights[i] * scale;
                    if p >= Self::CAP {
                        prior[i] = Self::CAP;
                        capped[i] = true;
                        newly_capped = true;
                    } else {
                        prior[i] = p;
                    }
                }
            }
            if !newly_capped {
                break;
            }
        }
        prior
    }

    fn sample(&self, n: usize, rng: &mut dyn RngCore) -> GroundTruth {
        assert_population(n);
        let prior = self.prior(n);
        let ones: Vec<u32> = (0..n)
            .filter(|&i| rng.gen_bool(prior[i]))
            .map(|i| i as u32)
            .collect();
        GroundTruth::from_ones(n, ones)
    }
}

/// A categorical population: the regime's `k` affected agents split
/// near-evenly across `strains` distinguishable variants (multi-strain
/// surveillance, multi-class heavy hitters).
///
/// This is the population side of the categorical layer in `npd-core`:
/// [`MultiStrain::sample_categorical`] produces a [`CategoricalTruth`]
/// whose `d = strains + 1` categories feed the matrix-AMP decoder, while
/// the [`PopulationModel`] impl collapses strains to the binary
/// affected/unaffected view so every existing harness path (greedy,
/// binary AMP, the distributed protocol) still runs on the same
/// population. At `strains = 1` the categorical sample is bit-identical
/// to [`GroundTruth::sample`] (the d = 2 contract of
/// [`CategoricalTruth::sample`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiStrain {
    strains: usize,
    regime: Regime,
}

impl MultiStrain {
    /// A multi-strain population with the given number of strains.
    ///
    /// # Panics
    ///
    /// Panics if `strains` is zero or exceeds 255 (the categorical label
    /// width).
    pub fn new(strains: usize, regime: Regime) -> Self {
        assert!(strains >= 1, "MultiStrain: need at least one strain");
        assert!(strains <= 255, "MultiStrain: at most 255 strains");
        Self { strains, regime }
    }

    /// Number of strains (categories excluding the unaffected background).
    pub fn strains(&self) -> usize {
        self.strains
    }

    /// Deterministic per-strain counts at population size `n`: the
    /// regime's `k` split near-evenly, remainder to the lowest strains.
    pub fn strain_counts(&self, n: usize) -> Vec<usize> {
        let k = self.regime.k_for(n).min(n);
        let base = k / self.strains;
        let extra = k % self.strains;
        (0..self.strains)
            .map(|s| base + usize::from(s < extra))
            .collect()
    }

    /// The categorical prior `π` over `d = strains + 1` categories
    /// (background first) — the prior the matrix-AMP denoiser and the
    /// matrix state evolution consume.
    pub fn categorical_prior(&self, n: usize) -> Vec<f64> {
        let counts = self.strain_counts(n);
        let k_total: usize = counts.iter().sum();
        let mut prior = Vec::with_capacity(self.strains + 1);
        prior.push((n - k_total) as f64 / n as f64);
        prior.extend(counts.iter().map(|&c| c as f64 / n as f64));
        prior
    }

    /// Samples the full categorical assignment.
    pub fn sample_categorical(&self, n: usize, rng: &mut dyn RngCore) -> CategoricalTruth {
        assert_population(n);
        CategoricalTruth::sample(n, &self.strain_counts(n), rng)
    }
}

impl PopulationModel for MultiStrain {
    fn name(&self) -> &'static str {
        "multi-strain"
    }

    fn expected_k(&self, n: usize) -> f64 {
        self.strain_counts(n).iter().sum::<usize>() as f64
    }

    fn prior(&self, n: usize) -> Vec<f64> {
        let pi = self.expected_k(n) / n as f64;
        vec![pi; n]
    }

    fn sample(&self, n: usize, rng: &mut dyn RngCore) -> GroundTruth {
        self.sample_categorical(n, rng).to_binary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_matches_legacy_sampler() {
        // The refactor contract: identical RNG stream, identical output.
        for seed in [0u64, 7, 0xBEEF] {
            let legacy = GroundTruth::sample(333, 9, &mut StdRng::seed_from_u64(seed));
            let model = UniformKSubset::new(Regime::explicit(9));
            let mut rng = StdRng::seed_from_u64(seed);
            assert_eq!(model.sample(333, &mut rng), legacy, "seed={seed}");
        }
    }

    #[test]
    fn community_counts_are_deterministic_and_concentrated() {
        let model = CommunityBlocks::new(8, 2, 0.9, Regime::explicit(40));
        let n = 800;
        assert_eq!(model.expected_k(n), 40.0);
        let mut rng = StdRng::seed_from_u64(5);
        let truth = model.sample(n, &mut rng);
        assert_eq!(truth.k(), 40);
        // 90% of the ones inside the two hot blocks (agents 0..200).
        let hot_ones = truth.ones().iter().filter(|&&o| o < 200).count();
        assert_eq!(hot_ones, 36);
        // Prior matches the realized block structure exactly.
        let prior = model.prior(n);
        assert!((prior.iter().sum::<f64>() - 40.0).abs() < 1e-9);
        assert!(prior[0] > prior[250], "hot block marginal must dominate");
    }

    #[test]
    fn community_handles_all_hot_blocks() {
        let model = CommunityBlocks::new(4, 4, 1.0, Regime::explicit(10));
        let truth = model.sample(100, &mut StdRng::seed_from_u64(1));
        assert_eq!(truth.k(), 10);
    }

    #[test]
    fn households_cluster_and_hit_target() {
        let model = HouseholdClusters::new(5, 1.0, Regime::explicit(20));
        let truth = model.sample(1_000, &mut StdRng::seed_from_u64(3));
        // Full secondary attack: whole households of 5, so k = 20 exactly.
        assert_eq!(truth.k(), 20);
        for chunk in truth.ones().chunks(5) {
            let h = chunk[0] / 5;
            assert!(chunk.iter().all(|&o| o / 5 == h), "ones not clustered");
        }
        // Partial attack overshoots by at most one household.
        let partial = HouseholdClusters::new(5, 0.4, Regime::explicit(20));
        let truth = partial.sample(1_000, &mut StdRng::seed_from_u64(4));
        assert!((20..25).contains(&truth.k()), "k={}", truth.k());
    }

    #[test]
    fn hubs_prior_is_heavy_tailed_with_target_mass() {
        let model = HeavyTailedHubs::new(1.0, Regime::explicit(25));
        let prior = model.prior(2_000);
        let mass: f64 = prior.iter().sum();
        assert!((mass - 25.0).abs() < 1e-6, "mass={mass}");
        assert!(prior[0] <= HeavyTailedHubs::CAP + 1e-12);
        assert!(prior[0] > 10.0 * prior[100], "not heavy-tailed");
        // Realized k concentrates around the prior mass.
        let ks: Vec<usize> = (0..20)
            .map(|s| model.sample(2_000, &mut StdRng::seed_from_u64(s)).k())
            .collect();
        let mean = ks.iter().sum::<usize>() as f64 / ks.len() as f64;
        assert!((mean - 25.0).abs() < 5.0, "mean k={mean}");
    }

    #[test]
    fn hubs_zero_alpha_is_uniform() {
        let model = HeavyTailedHubs::new(0.0, Regime::explicit(10));
        let prior = model.prior(100);
        assert!(prior.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12));
        assert!((prior[0] - 0.1).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "hot")]
    fn community_rejects_bad_hot_count() {
        CommunityBlocks::new(4, 5, 0.5, Regime::explicit(3));
    }

    #[test]
    fn multi_strain_splits_k_evenly_and_collapses_to_binary() {
        let model = MultiStrain::new(3, Regime::explicit(20));
        let counts = model.strain_counts(900);
        assert_eq!(counts, vec![7, 7, 6]);
        assert_eq!(model.expected_k(900), 20.0);
        let prior = model.categorical_prior(900);
        assert_eq!(prior.len(), 4);
        assert!((prior.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((prior[0] - 880.0 / 900.0).abs() < 1e-12);
        // The binary view is exactly "label != 0" of the categorical view.
        let cat = model.sample_categorical(900, &mut StdRng::seed_from_u64(8));
        let bin = model.sample(900, &mut StdRng::seed_from_u64(8));
        assert_eq!(cat.to_binary(), bin);
        assert_eq!(bin.k(), 20);
    }

    #[test]
    fn multi_strain_single_strain_matches_legacy_sampler() {
        // strains = 1 is the d = 2 contract: same stream as GroundTruth.
        for seed in [2u64, 99] {
            let legacy = GroundTruth::sample(400, 12, &mut StdRng::seed_from_u64(seed));
            let model = MultiStrain::new(1, Regime::explicit(12));
            assert_eq!(
                model.sample(400, &mut StdRng::seed_from_u64(seed)),
                legacy,
                "seed={seed}"
            );
        }
    }

    #[test]
    fn samples_are_deterministic_per_seed() {
        let models: Vec<Box<dyn PopulationModel>> = vec![
            Box::new(UniformKSubset::new(Regime::sublinear(0.4))),
            Box::new(CommunityBlocks::new(6, 2, 0.8, Regime::sublinear(0.4))),
            Box::new(HouseholdClusters::new(4, 0.6, Regime::sublinear(0.4))),
            Box::new(HeavyTailedHubs::new(1.2, Regime::sublinear(0.4))),
        ];
        for model in &models {
            let a = model.sample(500, &mut StdRng::seed_from_u64(42));
            let b = model.sample(500, &mut StdRng::seed_from_u64(42));
            assert_eq!(a, b, "{}", model.name());
            let c = model.sample(500, &mut StdRng::seed_from_u64(43));
            assert_ne!(a, c, "{}: seed must matter", model.name());
        }
    }
}
