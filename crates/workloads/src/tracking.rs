//! Tracking a drifting population: per-epoch re-decoding.
//!
//! The temporal workloads pose a problem the paper's one-shot experiments
//! cannot: queries answered in epoch `t` describe a population that has
//! partly moved on by epoch `t+1`. Two trackers measure how much overlap
//! the reconstruction retains per epoch:
//!
//! * [`track_greedy`] — the streaming form: one
//!   [`npd_core::IncrementalSim`] accumulates queries across epochs
//!   (measured against the truth current at their time — see
//!   [`npd_core::IncrementalSim::set_truth`]), and the current score
//!   landscape is re-decoded top-`k` at every epoch boundary. Stale
//!   evidence is deliberately kept: its dilution of the overlap *is* the
//!   tracking cost being measured.
//! * [`track_protocol`] — the distributed form: each epoch runs the full
//!   message-passing protocol (`npd_core::distributed`) once on a fresh
//!   pooling graph measured against the current truth, reporting overlap
//!   plus round/message cost.
//!
//! Both are pure functions of `(model, n, config, seed)` — bit-identical
//! at any thread or shard count (pinned in `tests/determinism.rs`).

use crate::sir::SirDynamics;
use npd_core::distributed::{self, SelectionStrategy};
use npd_core::{
    overlap, DesignSpec, Estimate, GroundTruth, IncrementalSim, Instance, NoiseModel, PoolingDesign,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of a tracking run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackingConfig {
    /// Query size `Γ`.
    pub gamma: usize,
    /// Queries posed per epoch.
    pub queries_per_epoch: usize,
    /// Number of epochs (the initial state counts as epoch 0).
    pub epochs: usize,
    /// Noise model of every measurement.
    pub noise: NoiseModel,
    /// Pooling design.
    pub design: DesignSpec,
}

/// One epoch of a tracking run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochReport {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// One-agents (infectious) at this epoch.
    pub k: usize,
    /// Overlap of the epoch's reconstruction with the epoch's truth
    /// (`1.0` when `k = 0`: there is nothing to find).
    pub overlap: f64,
    /// Whether the reconstruction was exact.
    pub exact: bool,
    /// Protocol rounds spent this epoch (`0` for the streaming tracker).
    pub rounds: u64,
    /// Protocol messages sent this epoch (`0` for the streaming tracker).
    pub messages: u64,
}

/// Overlap with the `k = 0` corner made total: an empty truth is fully
/// tracked by an empty estimate.
fn overlap_or_trivial(est: &Estimate, truth: &GroundTruth) -> (f64, bool) {
    if truth.k() == 0 {
        (1.0, est.k() == 0)
    } else {
        let o = overlap(est, truth);
        (o, o == 1.0 && est.k() == truth.k())
    }
}

/// Streams `cfg.queries_per_epoch` queries per epoch against the evolving
/// SIR truth and re-decodes the accumulated score landscape at each epoch
/// boundary (see the module docs for the staleness semantics).
///
/// The population stream and the query stream derive from `seed`
/// independently, so the same epidemic can be replayed under different
/// query budgets.
///
/// # Panics
///
/// Panics on configurations [`IncrementalSim`] rejects (`n < 2`,
/// `gamma == 0`, Γ-subset with `gamma > n`) or `cfg.epochs == 0`.
pub fn track_greedy(
    model: &SirDynamics,
    n: usize,
    cfg: &TrackingConfig,
    seed: u64,
) -> Vec<EpochReport> {
    assert!(cfg.epochs > 0, "track_greedy: need at least one epoch");
    let mut pop_rng = StdRng::seed_from_u64(seed);
    let mut state = model.init(n, &mut pop_rng);
    let mut sim = IncrementalSim::with_truth(
        state.truth(),
        cfg.gamma,
        cfg.noise,
        cfg.design,
        seed ^ 0x51D0_57EA,
    );
    let mut reports = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        for _ in 0..cfg.queries_per_epoch {
            sim.add_query();
        }
        let truth = sim.truth().clone();
        let est = Estimate::from_scores(sim.scores(), truth.k());
        let (overlap, exact) = overlap_or_trivial(&est, &truth);
        reports.push(EpochReport {
            epoch,
            k: truth.k(),
            overlap,
            exact,
            rounds: 0,
            messages: 0,
        });
        if epoch + 1 < cfg.epochs {
            model.step(&mut state, &mut pop_rng);
            sim.set_truth(state.truth());
        }
    }
    reports
}

/// Runs the full distributed protocol once per epoch on the evolving SIR
/// truth: a fresh pooling graph of `cfg.queries_per_epoch` queries is
/// measured against the current truth, the protocol reconstructs on the
/// network simulator, and the epoch reports overlap plus communication
/// cost.
///
/// Epochs with `k = 0` (possible only when no susceptibles remain to
/// import into) skip the protocol and report a trivially exact epoch.
///
/// # Panics
///
/// Panics if the protocol exceeds its round budget (a bug, not a
/// configuration error) or on invalid instance configurations.
pub fn track_protocol(
    model: &SirDynamics,
    n: usize,
    cfg: &TrackingConfig,
    strategy: SelectionStrategy,
    seed: u64,
) -> Vec<EpochReport> {
    assert!(cfg.epochs > 0, "track_protocol: need at least one epoch");
    let mut pop_rng = StdRng::seed_from_u64(seed);
    let mut query_rng = StdRng::seed_from_u64(seed ^ 0x51D0_57EB);
    let mut state = model.init(n, &mut pop_rng);
    let mut reports = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let truth = state.truth();
        let k = truth.k();
        let report = if k == 0 {
            EpochReport {
                epoch,
                k,
                overlap: 1.0,
                exact: true,
                rounds: 0,
                messages: 0,
            }
        } else {
            #[allow(clippy::expect_used)]
            let instance = Instance::builder(n)
                .k(k)
                .queries(cfg.queries_per_epoch)
                .query_size(cfg.gamma)
                .noise(cfg.noise)
                .design(cfg.design)
                .build()
                // xtask:allow(unwrap-audit): TrackingConfig's fields are validated knobs; the builder only rejects shapes the config cannot express
                .expect("tracking configurations are valid instances");
            let graph = cfg
                .design
                .sample(n, cfg.queries_per_epoch, cfg.gamma, &mut query_rng);
            let results = graph.measure(&truth, &cfg.noise, &mut query_rng);
            #[allow(clippy::expect_used)]
            let run = instance
                .assemble(truth.clone(), graph, results)
                // xtask:allow(unwrap-audit): graph and results were just sampled from this very instance's parameters
                .expect("assembled parts match the instance");
            #[allow(clippy::expect_used)]
            let outcome = distributed::run_protocol_configured(&run, strategy, None)
                // xtask:allow(unwrap-audit): fault-free budget bound is proven by the protocol round-budget tests
                .expect("fault-free protocol terminates within its budget");
            let (overlap, exact) = overlap_or_trivial(&outcome.estimate, &truth);
            EpochReport {
                epoch,
                k,
                overlap,
                exact,
                rounds: outcome.rounds,
                messages: outcome.metrics.messages_sent,
            }
        };
        reports.push(report);
        if epoch + 1 < cfg.epochs {
            model.step(&mut state, &mut pop_rng);
        }
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> TrackingConfig {
        TrackingConfig {
            gamma: 100,
            queries_per_epoch: 300,
            epochs: 5,
            noise: NoiseModel::z_channel(0.1),
            design: DesignSpec::Iid,
        }
    }

    #[test]
    fn greedy_tracker_reports_every_epoch() {
        let reports = track_greedy(&SirDynamics::new(4, 1.5, 0.3), 200, &config(), 7);
        assert_eq!(reports.len(), 5);
        for (e, r) in reports.iter().enumerate() {
            assert_eq!(r.epoch, e);
            assert!((0.0..=1.0).contains(&r.overlap), "epoch {e}: {r:?}");
            assert_eq!(r.rounds, 0);
        }
        // Early epochs with a generous per-epoch budget track well.
        assert!(reports[0].overlap > 0.5, "{:?}", reports[0]);
    }

    #[test]
    fn greedy_tracker_is_deterministic_and_seed_sensitive() {
        let model = SirDynamics::catalog();
        let a = track_greedy(&model, 150, &config(), 3);
        let b = track_greedy(&model, 150, &config(), 3);
        assert_eq!(a, b);
        let c = track_greedy(&model, 150, &config(), 4);
        assert_ne!(a, c);
    }

    #[test]
    fn protocol_tracker_reports_cost_and_overlap() {
        let mut cfg = config();
        cfg.queries_per_epoch = 150;
        cfg.epochs = 3;
        let reports = track_protocol(
            &SirDynamics::new(3, 1.5, 0.3),
            128,
            &cfg,
            SelectionStrategy::gossip(),
            11,
        );
        assert_eq!(reports.len(), 3);
        for r in &reports {
            if r.k > 0 {
                assert!(r.rounds > 0 && r.messages > 0, "{r:?}");
            }
            assert!((0.0..=1.0).contains(&r.overlap));
        }
        // Fresh per-epoch queries at a generous budget: the protocol
        // reconstructs the current truth exactly in most epochs.
        assert!(
            reports.iter().filter(|r| r.exact).count() >= 2,
            "{reports:?}"
        );
    }

    #[test]
    fn staleness_costs_overlap_under_drift() {
        // The streaming tracker keeps stale evidence; with a fast-moving
        // epidemic and a small per-epoch budget, later epochs must on
        // average track worse than a fresh-start decode of epoch 0.
        let model = SirDynamics::new(6, 2.2, 0.5);
        let mut cfg = config();
        cfg.queries_per_epoch = 120;
        cfg.epochs = 6;
        let mut first = 0.0;
        let mut last = 0.0;
        let trials = 8;
        for seed in 0..trials {
            let reports = track_greedy(&model, 300, &cfg, 100 + seed);
            first += reports[0].overlap;
            last += reports[5].overlap;
        }
        assert!(
            last < first,
            "drift did not cost overlap: first {first}, last {last} (sum over {trials} trials)"
        );
    }
}
