//! Comparator sorting networks.
//!
//! Step II of the paper's Algorithm 1 has the agents “sort themselves via a
//! sorting network” on their neighborhood scores (the paper cites Batcher's
//! classic construction). A sorting network is an *oblivious* sorting
//! algorithm — the sequence of compare-exchange operations is fixed in
//! advance — which makes it directly executable as a distributed protocol:
//! each layer is one synchronous round in which disjoint pairs of agents
//! exchange values.
//!
//! Provided constructions:
//!
//! * [`SortingNetwork::batcher_odd_even`] — Batcher's odd-even mergesort for
//!   arbitrary `n`, depth `O(log² n)`, size `O(n log² n)`. This is the
//!   network the distributed protocol uses.
//! * [`SortingNetwork::bitonic`] — Batcher's bitonic sorter (power-of-two
//!   sizes), same asymptotics, more regular structure.
//! * [`SortingNetwork::odd_even_transposition`] — the brick-wall network of
//!   depth `n`, used as a baseline in the round-complexity ablation.
//!
//! All constructions are validated in the test suite through the 0–1
//! principle: a comparator network sorts every input iff it sorts every
//! binary input.
//!
//! # Examples
//!
//! ```
//! use npd_sortnet::SortingNetwork;
//!
//! let net = SortingNetwork::batcher_odd_even(6);
//! let mut data = [5, 1, 4, 2, 6, 3];
//! net.apply(&mut data);
//! assert_eq!(data, [1, 2, 3, 4, 5, 6]);
//! assert!(net.depth() <= 6); // ⌈log₂6⌉(⌈log₂6⌉+1)/2 = 6 layers
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use serde::{Deserialize, Serialize};

/// One compare-exchange gate: after application, the minimum of the two
/// wired values sits at [`lo`](Self::lo) and the maximum at
/// [`hi`](Self::hi).
///
/// `lo` and `hi` are *positions*, and `lo > hi` is allowed — bitonic
/// networks contain descending comparators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Comparator {
    /// Position receiving the smaller value.
    pub lo: usize,
    /// Position receiving the larger value.
    pub hi: usize,
}

impl Comparator {
    /// Creates a comparator.
    ///
    /// # Panics
    ///
    /// Panics if `lo == hi`.
    pub fn new(lo: usize, hi: usize) -> Self {
        assert_ne!(lo, hi, "Comparator: lo and hi must differ");
        Self { lo, hi }
    }

    /// The two wired positions in ascending position order.
    pub fn positions(&self) -> (usize, usize) {
        (self.lo.min(self.hi), self.lo.max(self.hi))
    }
}

/// A layered comparator network for a fixed input size.
///
/// Comparators within a layer touch disjoint positions, so a layer is one
/// parallel round; [`depth`](Self::depth) is therefore the round complexity
/// of the distributed sort.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortingNetwork {
    size: usize,
    layers: Vec<Vec<Comparator>>,
}

impl SortingNetwork {
    /// Builds a network from an ordered comparator sequence, packing the
    /// gates greedily into the earliest layer where both positions are free.
    ///
    /// Greedy packing preserves the sequential semantics because a gate is
    /// never placed before another gate that shares a wire.
    ///
    /// # Panics
    ///
    /// Panics if a comparator references a position `>= size`.
    pub fn from_comparators(size: usize, comparators: &[Comparator]) -> Self {
        let mut layers: Vec<Vec<Comparator>> = Vec::new();
        // earliest[pos] = first layer index where `pos` is unused.
        let mut earliest = vec![0usize; size];
        for &c in comparators {
            let (a, b) = c.positions();
            assert!(
                b < size,
                "SortingNetwork: comparator ({}, {}) out of range for size {size}",
                c.lo,
                c.hi
            );
            let layer = earliest[a].max(earliest[b]);
            if layer == layers.len() {
                layers.push(Vec::new());
            }
            layers[layer].push(c);
            earliest[a] = layer + 1;
            earliest[b] = layer + 1;
        }
        Self { size, layers }
    }

    /// Batcher's odd-even mergesort for arbitrary `n`.
    ///
    /// Uses the iterative power-of-two construction with out-of-range gates
    /// dropped; dropping is sound because padding the input with `+∞`
    /// sentinels above position `n − 1` makes exactly those gates no-ops.
    ///
    /// For `n ≤ 1` the network is empty.
    pub fn batcher_odd_even(n: usize) -> Self {
        let mut comparators = Vec::new();
        if n >= 2 {
            let n2 = n.next_power_of_two();
            let mut p = 1usize;
            while p < n2 {
                let mut k = p;
                while k >= 1 {
                    let mut j = k % p;
                    while j + k < n2 {
                        let limit = (k).min(n2 - j - k);
                        for i in 0..limit {
                            let a = i + j;
                            let b = i + j + k;
                            if (a / (2 * p)) == (b / (2 * p)) && b < n {
                                comparators.push(Comparator::new(a, b));
                            }
                        }
                        j += 2 * k;
                    }
                    if k == 1 {
                        break;
                    }
                    k /= 2;
                }
                p *= 2;
            }
        }
        Self::from_comparators(n, &comparators)
    }

    /// Batcher's bitonic sorter (ascending).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two (use
    /// [`batcher_odd_even`](Self::batcher_odd_even) for general sizes).
    pub fn bitonic(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "SortingNetwork::bitonic: n={n} must be a power of two"
        );
        let mut comparators = Vec::new();
        let mut k = 2usize;
        while k <= n {
            let mut j = k / 2;
            while j > 0 {
                for i in 0..n {
                    let l = i ^ j;
                    if l > i {
                        if i & k == 0 {
                            comparators.push(Comparator::new(i, l));
                        } else {
                            comparators.push(Comparator::new(l, i));
                        }
                    }
                }
                j /= 2;
            }
            k *= 2;
        }
        Self::from_comparators(n, &comparators)
    }

    /// Odd-even transposition sort (“brick wall”), depth exactly `n` for
    /// `n ≥ 2`.
    ///
    /// Asymptotically worse than Batcher (`O(n)` rounds vs `O(log² n)`) but
    /// each node only ever talks to its two ring neighbors; used as a
    /// baseline in the communication ablation.
    pub fn odd_even_transposition(n: usize) -> Self {
        let mut comparators = Vec::new();
        if n >= 2 {
            for round in 0..n {
                let start = round % 2;
                let mut i = start;
                while i + 1 < n {
                    comparators.push(Comparator::new(i, i + 1));
                    i += 2;
                }
            }
        }
        Self::from_comparators(n, &comparators)
    }

    /// Input size the network is wired for.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of parallel layers (distributed round complexity).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total number of compare-exchange gates.
    pub fn comparator_count(&self) -> usize {
        self.layers.iter().map(Vec::len).sum()
    }

    /// The layers, outermost first; gates within a layer touch disjoint
    /// positions.
    pub fn layers(&self) -> &[Vec<Comparator>] {
        &self.layers
    }

    /// Applies the network in place with natural ordering.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.size()`.
    pub fn apply<T: Ord>(&self, data: &mut [T]) {
        self.apply_by(data, |a, b| a.cmp(b));
    }

    /// Applies the network in place with a custom comparison.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.size()`.
    pub fn apply_by<T, F: FnMut(&T, &T) -> std::cmp::Ordering>(&self, data: &mut [T], mut cmp: F) {
        assert_eq!(
            data.len(),
            self.size,
            "SortingNetwork::apply: data length {} does not match network size {}",
            data.len(),
            self.size
        );
        for layer in &self.layers {
            for c in layer {
                if cmp(&data[c.lo], &data[c.hi]) == std::cmp::Ordering::Greater {
                    data.swap(c.lo, c.hi);
                }
            }
        }
    }

    /// Exhaustively checks the 0–1 principle: the network sorts all `2^n`
    /// binary inputs iff it sorts every input.
    ///
    /// # Panics
    ///
    /// Panics if `size > 24` (the check would be intractable).
    pub fn sorts_all_zero_one_inputs(&self) -> bool {
        assert!(
            self.size <= 24,
            "sorts_all_zero_one_inputs: size {} too large for exhaustive check",
            self.size
        );
        let n = self.size;
        for mask in 0u32..(1u32 << n) {
            let mut data: Vec<u8> = (0..n).map(|i| ((mask >> i) & 1) as u8).collect();
            self.apply(&mut data);
            if data.windows(2).any(|w| w[0] > w[1]) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn batcher_sorts_zero_one_small_sizes() {
        for n in 0..=10 {
            let net = SortingNetwork::batcher_odd_even(n);
            assert!(net.sorts_all_zero_one_inputs(), "batcher n={n}");
        }
    }

    #[test]
    fn batcher_sorts_zero_one_medium_sizes() {
        for n in [13, 16, 17] {
            let net = SortingNetwork::batcher_odd_even(n);
            assert!(net.sorts_all_zero_one_inputs(), "batcher n={n}");
        }
    }

    #[test]
    fn bitonic_sorts_zero_one() {
        for n in [1usize, 2, 4, 8, 16] {
            let net = SortingNetwork::bitonic(n);
            assert!(net.sorts_all_zero_one_inputs(), "bitonic n={n}");
        }
    }

    #[test]
    fn transposition_sorts_zero_one() {
        for n in 0..=9 {
            let net = SortingNetwork::odd_even_transposition(n);
            assert!(net.sorts_all_zero_one_inputs(), "transposition n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bitonic_rejects_non_power_of_two() {
        SortingNetwork::bitonic(6);
    }

    #[test]
    fn batcher_depth_matches_formula_on_powers_of_two() {
        // Depth of odd-even mergesort on n = 2^t is t(t+1)/2.
        for t in 1..=6u32 {
            let n = 1usize << t;
            let net = SortingNetwork::batcher_odd_even(n);
            let want = (t * (t + 1) / 2) as usize;
            assert_eq!(net.depth(), want, "n={n}");
        }
    }

    #[test]
    fn bitonic_comparator_count_formula() {
        // Bitonic sorter on n = 2^t has n·t(t+1)/4 comparators.
        for t in 1..=6u32 {
            let n = 1usize << t;
            let net = SortingNetwork::bitonic(n);
            let want = n * (t as usize) * (t as usize + 1) / 4;
            assert_eq!(net.comparator_count(), want, "n={n}");
        }
    }

    #[test]
    fn transposition_depth_is_n() {
        // n = 2 compresses to a single layer (its odd round is empty);
        // beyond that the brick wall needs exactly n rounds.
        assert_eq!(SortingNetwork::odd_even_transposition(2).depth(), 1);
        for n in 3..10 {
            assert_eq!(SortingNetwork::odd_even_transposition(n).depth(), n);
        }
    }

    #[test]
    fn layers_are_disjoint() {
        for net in [
            SortingNetwork::batcher_odd_even(19),
            SortingNetwork::bitonic(16),
            SortingNetwork::odd_even_transposition(11),
        ] {
            for (li, layer) in net.layers().iter().enumerate() {
                let mut seen = std::collections::HashSet::new();
                for c in layer {
                    assert!(seen.insert(c.lo), "layer {li} reuses position {}", c.lo);
                    assert!(seen.insert(c.hi), "layer {li} reuses position {}", c.hi);
                }
            }
        }
    }

    #[test]
    fn apply_sorts_concrete_input() {
        let net = SortingNetwork::batcher_odd_even(8);
        let mut data = [8, 7, 6, 5, 4, 3, 2, 1];
        net.apply(&mut data);
        assert_eq!(data, [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn apply_by_sorts_floats_descending() {
        let net = SortingNetwork::batcher_odd_even(5);
        let mut data = [0.5, 2.5, 1.5, -1.0, 0.0];
        net.apply_by(&mut data, |a, b| b.partial_cmp(a).unwrap());
        assert_eq!(data, [2.5, 1.5, 0.5, 0.0, -1.0]);
    }

    #[test]
    fn apply_is_stable_under_equal_keys_by_position() {
        // Sorting networks are not stable in general; this documents that
        // equal keys keep *some* deterministic arrangement — applying twice
        // is idempotent.
        let net = SortingNetwork::batcher_odd_even(6);
        let mut a = [3, 1, 2, 1, 3, 2];
        net.apply(&mut a);
        let mut b = a;
        net.apply(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "does not match network size")]
    fn apply_wrong_length_panics() {
        let net = SortingNetwork::batcher_odd_even(4);
        net.apply(&mut [1, 2, 3]);
    }

    #[test]
    fn empty_and_single_networks() {
        for n in [0usize, 1] {
            let net = SortingNetwork::batcher_odd_even(n);
            assert_eq!(net.comparator_count(), 0);
            assert_eq!(net.depth(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn comparator_rejects_self_loop() {
        Comparator::new(3, 3);
    }

    #[test]
    fn from_comparators_greedy_layering() {
        // (0,1) and (2,3) can share a layer; (1,2) must come after.
        let net = SortingNetwork::from_comparators(
            4,
            &[
                Comparator::new(0, 1),
                Comparator::new(2, 3),
                Comparator::new(1, 2),
            ],
        );
        assert_eq!(net.depth(), 2);
        assert_eq!(net.layers()[0].len(), 2);
        assert_eq!(net.layers()[1].len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_comparators_rejects_out_of_range() {
        SortingNetwork::from_comparators(2, &[Comparator::new(0, 5)]);
    }

    proptest! {
        /// Batcher sorts arbitrary integer inputs (0–1 principle says the
        /// exhaustive binary tests already imply this; this is a belt-and-
        /// braces check on the apply path).
        #[test]
        fn batcher_sorts_random_inputs(mut data in proptest::collection::vec(-1000i32..1000, 0..64)) {
            let net = SortingNetwork::batcher_odd_even(data.len());
            let mut expected = data.clone();
            expected.sort_unstable();
            net.apply(&mut data);
            prop_assert_eq!(data, expected);
        }

        /// Result of applying any of the three networks is a permutation of
        /// the input (comparators only ever swap).
        #[test]
        fn apply_is_permutation(mut data in proptest::collection::vec(0u8..4, 2..32)) {
            let net = SortingNetwork::odd_even_transposition(data.len());
            let mut histogram_before = [0usize; 4];
            for &v in &data { histogram_before[v as usize] += 1; }
            net.apply(&mut data);
            let mut histogram_after = [0usize; 4];
            for &v in &data { histogram_after[v as usize] += 1; }
            prop_assert_eq!(histogram_before, histogram_after);
        }

        /// Depth of the layered representation never exceeds the number of
        /// comparators, and every gate survives layering.
        #[test]
        fn layering_preserves_gates(n in 2usize..40) {
            let net = SortingNetwork::batcher_odd_even(n);
            let total: usize = net.layers().iter().map(Vec::len).sum();
            prop_assert_eq!(total, net.comparator_count());
            prop_assert!(net.depth() <= total.max(1));
        }
    }
}
