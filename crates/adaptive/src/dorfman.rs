//! Two-stage Dorfman screening with sum queries.
//!
//! Dorfman's 1943 scheme — the historical root of the whole pooled-data
//! line, cited first in the paper's related work — tests fixed pools and
//! then retests members of positive pools individually. With *sum* queries
//! the scheme gets two upgrades over the binary original: a pool whose
//! count equals its size resolves immediately (all ones), and one member of
//! every retested pool can be inferred by subtraction instead of queried.
//!
//! Only two adaptivity rounds are used, making this the cheapest
//! *almost*-non-adaptive baseline: it quantifies how much even a single
//! extra round of adaptivity buys over the paper's one-shot design.

use crate::oracle::{Oracle, Strategy, Transcript};
use crate::repetition::CountEstimator;

/// Classic pool-size rule of thumb `s ≈ √(n/k)`, clamped to `[2, n]`.
///
/// # Panics
///
/// Panics if `n == 0` or `k == 0`.
pub fn optimal_pool_size(n: usize, k: usize) -> usize {
    assert!(n > 0, "optimal_pool_size: n must be positive");
    assert!(k > 0, "optimal_pool_size: k must be positive");
    let s = (n as f64 / k as f64).sqrt().round() as usize;
    s.clamp(2, n)
}

/// Two-stage Dorfman screening.
///
/// # Examples
///
/// ```
/// use npd_adaptive::{optimal_pool_size, Dorfman, Oracle, Strategy};
/// use npd_core::{GroundTruth, NoiseModel};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let truth = GroundTruth::sample(400, 4, &mut rng);
/// let mut oracle = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng);
/// let strategy = Dorfman::new(optimal_pool_size(400, 4), 1);
/// let transcript = strategy.reconstruct(4, &mut oracle);
/// assert!(transcript.is_exact(&truth));
/// assert_eq!(transcript.rounds, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dorfman {
    pool_size: usize,
    repetitions: usize,
}

impl Dorfman {
    /// Creates the strategy with explicit pool size and repetition count.
    ///
    /// # Panics
    ///
    /// Panics if `pool_size < 2` or `repetitions == 0`.
    pub fn new(pool_size: usize, repetitions: usize) -> Self {
        assert!(pool_size >= 2, "Dorfman: pool_size must be at least 2");
        assert!(repetitions > 0, "Dorfman: repetitions must be positive");
        Self {
            pool_size,
            repetitions,
        }
    }

    /// The stage-1 pool size.
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Queries per count estimate.
    pub fn repetitions(&self) -> usize {
        self.repetitions
    }
}

impl Strategy for Dorfman {
    fn reconstruct(&self, _k: usize, oracle: &mut Oracle<'_>) -> Transcript {
        let n = oracle.n();
        let estimator = CountEstimator::new(self.repetitions);
        let mut bits = vec![false; n];

        // Stage 1: pool counts (one parallel round).
        oracle.next_round();
        let pools: Vec<Vec<u32>> = (0..n)
            .step_by(self.pool_size)
            .map(|start| (start as u32..(start + self.pool_size).min(n) as u32).collect())
            .collect();
        let counts: Vec<u64> = pools
            .iter()
            .map(|pool| estimator.estimate_count(oracle, pool, 0, pool.len() as u64))
            .collect();

        // Stage 2: resolve mixed pools individually, inferring the last
        // member of each pool by subtraction.
        oracle.next_round();
        for (pool, &count) in pools.iter().zip(&counts) {
            let size = pool.len() as u64;
            if count == 0 {
                continue;
            }
            if count == size {
                for &a in pool {
                    bits[a as usize] = true;
                }
                continue;
            }
            let mut found = 0u64;
            for (idx, &a) in pool.iter().enumerate() {
                if idx + 1 == pool.len() {
                    // Inferred member: the remaining count decides its bit.
                    bits[a as usize] = count - found >= 1;
                } else {
                    let remaining_slots = (pool.len() - idx - 1) as u64;
                    let lo = (count - found).saturating_sub(remaining_slots).min(1);
                    let hi = u64::from(found < count);
                    let bit = if lo == hi {
                        lo // forced by feasibility, no query needed
                    } else {
                        estimator.estimate_count(oracle, &[a], lo, hi)
                    };
                    if bit == 1 {
                        bits[a as usize] = true;
                        found += 1;
                    }
                }
            }
        }

        Transcript {
            estimate: bits,
            queries: oracle.queries_used(),
            rounds: oracle.rounds_used(),
        }
    }

    fn name(&self) -> &'static str {
        "dorfman-two-stage"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npd_core::{GroundTruth, NoiseModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pool_size_rule() {
        assert_eq!(optimal_pool_size(400, 4), 10);
        assert_eq!(optimal_pool_size(100, 100), 2); // clamped from 1
        assert_eq!(optimal_pool_size(8, 1), 3);
    }

    #[test]
    fn exact_in_noiseless_case() {
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(20 + seed);
            let truth = GroundTruth::sample(300, 5, &mut rng);
            let mut oracle = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng);
            let s = Dorfman::new(optimal_pool_size(300, 5), 1);
            let t = s.reconstruct(5, &mut oracle);
            assert!(t.is_exact(&truth), "seed {seed}");
            assert!(t.rounds <= 2);
        }
    }

    #[test]
    fn query_count_beats_individual_testing_for_sparse_truth() {
        let mut rng = StdRng::seed_from_u64(30);
        let truth = GroundTruth::sample(1000, 10, &mut rng);
        let mut oracle = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng);
        let s = Dorfman::new(optimal_pool_size(1000, 10), 1);
        let t = s.reconstruct(10, &mut oracle);
        assert!(t.is_exact(&truth));
        assert!(
            t.queries < 500,
            "Dorfman used {} queries, worse than half of individual testing",
            t.queries
        );
    }

    #[test]
    fn saturated_pools_resolve_without_stage_two() {
        // All agents are ones: every pool count equals its size.
        let truth = GroundTruth::from_bits(vec![true; 40]);
        let mut rng = StdRng::seed_from_u64(31);
        let mut oracle = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng);
        let t = Dorfman::new(8, 1).reconstruct(40, &mut oracle);
        assert!(t.is_exact(&truth));
        assert_eq!(t.queries, 5, "only the five stage-1 pool queries");
        assert_eq!(t.rounds, 1);
    }

    #[test]
    fn uneven_last_pool_is_handled() {
        // n = 11 with pool size 4 leaves a trailing pool of 3.
        let truth = GroundTruth::from_bits(vec![
            false, true, false, false, false, false, false, false, false, false, true,
        ]);
        let mut rng = StdRng::seed_from_u64(32);
        let mut oracle = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng);
        let t = Dorfman::new(4, 1).reconstruct(2, &mut oracle);
        assert!(t.is_exact(&truth));
    }

    #[test]
    fn repetitions_restore_exactness_under_noise() {
        let noise = NoiseModel::gaussian(0.8);
        let mut exact = 0;
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(200 + seed);
            let truth = GroundTruth::sample(200, 4, &mut rng);
            let mut oracle = Oracle::new(&truth, noise, &mut rng);
            let t = Dorfman::new(optimal_pool_size(200, 4), 40).reconstruct(4, &mut oracle);
            if t.is_exact(&truth) {
                exact += 1;
            }
        }
        assert!(exact >= 9, "only {exact}/10 exact under repeated queries");
    }

    #[test]
    #[should_panic(expected = "pool_size")]
    fn rejects_tiny_pools() {
        Dorfman::new(1, 1);
    }
}
