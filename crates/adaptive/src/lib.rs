//! Adaptive baselines for the pooled data problem.
//!
//! The paper restricts itself to the *non-adaptive* setting — all `m`
//! queries run in parallel — because in its target applications (GPU
//! clusters, pipetting robots) the time to perform a query dominates
//! everything else. This crate implements the classic *adaptive* sum-query
//! strategies so the experiment harness can put a number on that design
//! decision: how many queries does one-round parallelism cost, and how many
//! rounds does query-efficiency cost?
//!
//! | strategy | queries (noiseless, sparse) | rounds |
//! |---|---|---|
//! | [`RecursiveSplitting`] | `O(k·log₂(n/k))` | `⌈log₂ n⌉` |
//! | [`Dorfman`] | `≈ n/s + k·(s−1)` | 2 |
//! | [`IndividualTesting`] | `n` | 1 |
//! | paper's non-adaptive design + Algorithm 1 | `Θ(k·ln n)` (Theorem 1) | 1 |
//!
//! Under noise every count estimate is repetition-coded; see
//! [`recommended_repetitions`] for the sizing rule.
//!
//! # Examples
//!
//! ```
//! use npd_adaptive::{Oracle, RecursiveSplitting, Strategy};
//! use npd_core::{GroundTruth, NoiseModel};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let truth = GroundTruth::sample(512, 4, &mut rng);
//! let mut oracle = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng);
//! let transcript = RecursiveSplitting::new(1).reconstruct(4, &mut oracle);
//! assert!(transcript.is_exact(&truth));
//! println!(
//!     "{} queries across {} adaptive rounds",
//!     transcript.queries, transcript.rounds
//! );
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]
#![warn(clippy::unwrap_used)]
#![warn(clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod dorfman;
pub mod individual;
pub mod oracle;
pub mod repetition;
pub mod splitting;

pub use dorfman::{optimal_pool_size, Dorfman};
pub use individual::IndividualTesting;
pub use oracle::{Oracle, Strategy, Transcript};
pub use repetition::{recommended_repetitions, CountEstimator};
pub use splitting::RecursiveSplitting;

#[cfg(test)]
mod tests {
    use super::*;
    use npd_core::{GroundTruth, NoiseModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn strategies_are_object_safe_and_ordered_by_queries() {
        let mut rng = StdRng::seed_from_u64(50);
        let truth = GroundTruth::sample(512, 4, &mut rng);
        let strategies: Vec<Box<dyn Strategy>> = vec![
            Box::new(RecursiveSplitting::new(1)),
            Box::new(Dorfman::new(optimal_pool_size(512, 4), 1)),
            Box::new(IndividualTesting::new(1)),
        ];
        let mut queries = Vec::new();
        for s in &strategies {
            let mut oracle = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng);
            let t = s.reconstruct(4, &mut oracle);
            assert!(t.is_exact(&truth), "{} failed", s.name());
            queries.push(t.queries);
        }
        // Splitting < Dorfman < individual on a sparse instance.
        assert!(queries[0] < queries[1], "{queries:?}");
        assert!(queries[1] < queries[2], "{queries:?}");
    }
}
