//! The adaptive query oracle.
//!
//! Adaptive strategies interact with the hidden assignment only through
//! [`Oracle::query`]: hand over any subset of agents, receive one noisy sum
//! measurement under the same noise semantics as the paper's non-adaptive
//! design (per-slot channel flips or per-query Gaussian noise). The oracle
//! counts queries and adaptivity rounds, which is the whole point of the
//! comparison — the paper restricts itself to one round because "the time
//! to perform a single query dominates the time to compute the
//! reconstruction", and this crate quantifies how many queries that
//! restriction costs.

use npd_core::{GroundTruth, NoiseModel};
use rand::RngCore;

/// A noisy sum-query oracle over a fixed hidden assignment.
///
/// # Round accounting
///
/// Queries issued between two calls to [`next_round`](Oracle::next_round)
/// are considered parallel (one adaptivity round). Strategies must call
/// `next_round` before issuing queries that *depend* on earlier answers;
/// the tests of each strategy pin its expected round count.
pub struct Oracle<'a> {
    truth: &'a GroundTruth,
    noise: NoiseModel,
    rng: &'a mut dyn RngCore,
    queries: usize,
    rounds: usize,
    queried_this_round: bool,
}

impl<'a> Oracle<'a> {
    /// Creates an oracle over the given assignment and noise model.
    pub fn new(truth: &'a GroundTruth, noise: NoiseModel, rng: &'a mut dyn RngCore) -> Self {
        Self {
            truth,
            noise,
            rng,
            queries: 0,
            rounds: 0,
            queried_this_round: false,
        }
    }

    /// Measures the (noisy) number of one-agents among `agents`.
    ///
    /// Each listed agent occupies one slot; listing an agent twice queries
    /// it twice, mirroring the multigraph semantics of the non-adaptive
    /// design.
    ///
    /// # Panics
    ///
    /// Panics if `agents` is empty or an id is out of range.
    pub fn query(&mut self, agents: &[u32]) -> f64 {
        assert!(!agents.is_empty(), "Oracle::query: empty query");
        let mut ones = 0u64;
        for &a in agents {
            assert!(
                (a as usize) < self.truth.n(),
                "Oracle::query: agent {a} out of range for n={}",
                self.truth.n()
            );
            if self.truth.is_one(a as usize) {
                ones += 1;
            }
        }
        let zeros = agents.len() as u64 - ones;
        if !self.queried_this_round {
            self.queried_this_round = true;
            self.rounds += 1;
        }
        self.queries += 1;
        self.noise.measure(ones, zeros, self.rng)
    }

    /// Declares a round boundary: subsequent queries may depend on all
    /// answers received so far.
    pub fn next_round(&mut self) {
        self.queried_this_round = false;
    }

    /// Total queries issued.
    pub fn queries_used(&self) -> usize {
        self.queries
    }

    /// Adaptivity rounds used (rounds in which at least one query ran).
    pub fn rounds_used(&self) -> usize {
        self.rounds
    }

    /// The noise model the oracle perturbs measurements with.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Population size of the hidden assignment.
    pub fn n(&self) -> usize {
        self.truth.n()
    }
}

impl std::fmt::Debug for Oracle<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Oracle")
            .field("n", &self.truth.n())
            .field("noise", &self.noise)
            .field("queries", &self.queries)
            .field("rounds", &self.rounds)
            .finish_non_exhaustive()
    }
}

/// Outcome of one adaptive reconstruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transcript {
    /// The reconstructed bits.
    pub estimate: Vec<bool>,
    /// Queries consumed.
    pub queries: usize,
    /// Adaptivity rounds consumed.
    pub rounds: usize,
}

impl Transcript {
    /// Whether the estimate matches the assignment exactly.
    pub fn is_exact(&self, truth: &GroundTruth) -> bool {
        self.estimate.iter().zip(truth.bits()).all(|(a, b)| a == b)
    }

    /// Number of one-bits in the estimate.
    pub fn weight(&self) -> usize {
        self.estimate.iter().filter(|&&b| b).count()
    }
}

/// An adaptive reconstruction strategy.
///
/// Object-safe so the experiment harness can iterate heterogeneous
/// strategy collections, mirroring [`npd_core::Decoder`] for the
/// non-adaptive side; `Send + Sync` so one strategy value can drive
/// parallel trials.
pub trait Strategy: Send + Sync {
    /// Reconstructs the hidden bits through the oracle.
    ///
    /// `k` is the known number of one-agents (the model assumption shared
    /// with the non-adaptive decoders); strategies may use it or ignore it.
    fn reconstruct(&self, k: usize, oracle: &mut Oracle<'_>) -> Transcript;

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counts_queries_and_rounds() {
        let truth = GroundTruth::from_bits(vec![true, false, true, false]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut oracle = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng);
        assert_eq!(oracle.query(&[0, 1]), 1.0);
        assert_eq!(oracle.query(&[0, 2]), 2.0);
        assert_eq!(oracle.rounds_used(), 1);
        oracle.next_round();
        assert_eq!(oracle.rounds_used(), 1, "empty rounds are not counted");
        assert_eq!(oracle.query(&[3]), 0.0);
        assert_eq!(oracle.queries_used(), 3);
        assert_eq!(oracle.rounds_used(), 2);
    }

    #[test]
    fn multiset_queries_count_slots() {
        let truth = GroundTruth::from_bits(vec![true, false]);
        let mut rng = StdRng::seed_from_u64(2);
        let mut oracle = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng);
        assert_eq!(oracle.query(&[0, 0, 0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_query() {
        let truth = GroundTruth::from_bits(vec![true]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut oracle = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng);
        oracle.query(&[]);
    }

    #[test]
    fn channel_noise_flows_through() {
        // With p = 0.5 on 10_000 one-slots the reading concentrates near
        // 5_000 — far from the exact sum.
        let truth = GroundTruth::from_bits(vec![true; 10_000]);
        let mut rng = StdRng::seed_from_u64(4);
        let mut oracle = Oracle::new(&truth, NoiseModel::z_channel(0.5), &mut rng);
        let agents: Vec<u32> = (0..10_000).collect();
        let reading = oracle.query(&agents);
        assert!((reading - 5_000.0).abs() < 300.0, "reading={reading}");
    }

    #[test]
    fn transcript_exactness() {
        let truth = GroundTruth::from_bits(vec![true, false, true]);
        let t = Transcript {
            estimate: vec![true, false, true],
            queries: 5,
            rounds: 2,
        };
        assert!(t.is_exact(&truth));
        assert_eq!(t.weight(), 2);
        let wrong = Transcript {
            estimate: vec![true, true, false],
            queries: 5,
            rounds: 2,
        };
        assert!(!wrong.is_exact(&truth));
    }
}
