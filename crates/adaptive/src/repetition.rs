//! Repetition-coded count estimation.
//!
//! Adaptive strategies branch on *exact integer counts*, but a noisy oracle
//! returns perturbed readings. The classic fix is a repetition code: ask
//! the same query `r` times, average, unbias for the channel, and round to
//! the nearest feasible integer. [`CountEstimator`] implements this;
//! [`recommended_repetitions`] sizes `r` so one estimate errs with
//! probability at most `δ` (CLT sizing — the error of an averaged reading
//! is asymptotically Gaussian, and the tests verify empirical coverage).

use crate::oracle::Oracle;
use npd_core::NoiseModel;
use npd_numerics::special::normal_quantile;

/// Estimates integer one-counts through repeated noisy queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountEstimator {
    repetitions: usize,
}

impl CountEstimator {
    /// Creates an estimator issuing `repetitions` queries per count.
    ///
    /// # Panics
    ///
    /// Panics if `repetitions == 0`.
    pub fn new(repetitions: usize) -> Self {
        assert!(
            repetitions > 0,
            "CountEstimator: repetitions must be positive"
        );
        Self { repetitions }
    }

    /// Queries per estimate.
    pub fn repetitions(&self) -> usize {
        self.repetitions
    }

    /// Estimates the number of one-agents among `agents`, clamped to
    /// `[lo, hi]` (the feasibility interval the caller derives from
    /// context, e.g. a parent count in a splitting tree).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > agents.len()`.
    pub fn estimate_count(&self, oracle: &mut Oracle<'_>, agents: &[u32], lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "CountEstimator: lo={lo} exceeds hi={hi}");
        assert!(
            hi <= agents.len() as u64,
            "CountEstimator: hi={hi} exceeds set size {}",
            agents.len()
        );
        let mut total = 0.0;
        for _ in 0..self.repetitions {
            total += oracle.query(agents);
        }
        let raw_mean = total / self.repetitions as f64;
        let unbiased = match *oracle.noise() {
            NoiseModel::Channel { p, q } => (raw_mean - q * agents.len() as f64) / (1.0 - p - q),
            NoiseModel::Noiseless | NoiseModel::Query { .. } => raw_mean,
        };
        (unbiased.round().max(0.0) as u64).clamp(lo, hi)
    }
}

/// Repetitions needed so one estimate over a set of `set_size` agents errs
/// with probability at most `delta` (CLT sizing against the rounding
/// threshold of ½).
///
/// Returns `1` for the noiseless model.
///
/// # Panics
///
/// Panics if `delta ∉ (0, 1)` or `set_size == 0`.
pub fn recommended_repetitions(noise: &NoiseModel, set_size: usize, delta: f64) -> usize {
    assert!(
        delta > 0.0 && delta < 1.0,
        "recommended_repetitions: delta={delta} must be in (0,1)"
    );
    assert!(
        set_size > 0,
        "recommended_repetitions: set_size must be positive"
    );
    let single_var = match *noise {
        NoiseModel::Noiseless => return 1,
        NoiseModel::Query { lambda } => {
            if lambda == 0.0 {
                return 1;
            }
            lambda * lambda
        }
        NoiseModel::Channel { p, q } => {
            // Worst case over the unknown split: every slot at the larger
            // per-slot variance, then unbiasing divides by (1−p−q)².
            let vmax = (p * (1.0 - p)).max(q * (1.0 - q));
            if vmax == 0.0 {
                return 1;
            }
            set_size as f64 * vmax / (1.0 - p - q).powi(2)
        }
    };
    let z = normal_quantile(1.0 - delta / 2.0);
    // |N(0, var/r)| < ½  ⇔  r > var·z²/¼.
    (single_var * z * z / 0.25).ceil().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use npd_core::GroundTruth;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_needs_one_query() {
        assert_eq!(
            recommended_repetitions(&NoiseModel::Noiseless, 100, 0.01),
            1
        );
        assert_eq!(
            recommended_repetitions(&NoiseModel::gaussian(0.0), 100, 0.01),
            1
        );
    }

    #[test]
    fn repetitions_grow_with_noise_and_shrink_with_delta() {
        let small = recommended_repetitions(&NoiseModel::gaussian(1.0), 10, 0.05);
        let loud = recommended_repetitions(&NoiseModel::gaussian(3.0), 10, 0.05);
        let strict = recommended_repetitions(&NoiseModel::gaussian(1.0), 10, 0.001);
        assert!(loud > small);
        assert!(strict > small);
    }

    #[test]
    fn channel_repetitions_grow_with_set_size() {
        let noise = NoiseModel::z_channel(0.2);
        let small = recommended_repetitions(&noise, 10, 0.01);
        let large = recommended_repetitions(&noise, 1000, 0.01);
        assert!(large > small);
    }

    #[test]
    fn estimates_are_exact_when_noiseless() {
        let truth = GroundTruth::from_bits(vec![true, true, false, false, true]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut oracle = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng);
        let est = CountEstimator::new(1);
        assert_eq!(est.estimate_count(&mut oracle, &[0, 1, 2, 3, 4], 0, 5), 3);
        assert_eq!(est.estimate_count(&mut oracle, &[2, 3], 0, 2), 0);
        assert_eq!(oracle.queries_used(), 2);
    }

    #[test]
    fn recommended_repetitions_achieve_coverage() {
        // Empirical check of the CLT sizing: ≥ 97% of estimates must be
        // exact at δ = 0.01 (allowing CLT slack on 300 trials).
        let bits: Vec<bool> = (0..40).map(|i| i % 5 == 0).collect();
        let truth = GroundTruth::from_bits(bits);
        let agents: Vec<u32> = (0..40).collect();
        let noise = NoiseModel::gaussian(2.0);
        let r = recommended_repetitions(&noise, 40, 0.01);
        let est = CountEstimator::new(r);
        let mut rng = StdRng::seed_from_u64(2);
        let mut exact = 0;
        for _ in 0..300 {
            let mut oracle = Oracle::new(&truth, noise, &mut rng);
            if est.estimate_count(&mut oracle, &agents, 0, 40) == 8 {
                exact += 1;
            }
        }
        assert!(exact >= 291, "only {exact}/300 exact estimates");
    }

    #[test]
    fn unbiasing_corrects_channel_drift() {
        // 30 ones, 70 zeros, p = 0.3, q = 0.1: raw mean ≈ 28, true count 30.
        let bits: Vec<bool> = (0..100).map(|i| i < 30).collect();
        let truth = GroundTruth::from_bits(bits);
        let agents: Vec<u32> = (0..100).collect();
        let noise = NoiseModel::channel(0.3, 0.1);
        let mut rng = StdRng::seed_from_u64(3);
        let mut oracle = Oracle::new(&truth, noise, &mut rng);
        let est = CountEstimator::new(400);
        assert_eq!(est.estimate_count(&mut oracle, &agents, 0, 100), 30);
    }

    #[test]
    fn clamping_respects_feasibility() {
        let truth = GroundTruth::from_bits(vec![true, true, true]);
        let mut rng = StdRng::seed_from_u64(4);
        let mut oracle = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng);
        let est = CountEstimator::new(1);
        // True count is 3 but the caller knows it cannot exceed 2.
        assert_eq!(est.estimate_count(&mut oracle, &[0, 1, 2], 0, 2), 2);
    }

    #[test]
    #[should_panic(expected = "repetitions")]
    fn rejects_zero_repetitions() {
        CountEstimator::new(0);
    }
}
