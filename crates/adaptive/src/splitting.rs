//! Recursive count splitting — the adaptive gold standard for sum queries.
//!
//! With exact sum queries, knowing that a segment holds `c` one-agents lets
//! a strategy query only the *left half*: the right half's count follows by
//! subtraction. Recursing until every segment is resolved (count `0` or
//! count = segment length) identifies all `k` one-agents with
//! `O(k·log₂(n/k))` queries — exponentially fewer than the `Θ(k·ln n)` the
//! non-adaptive design needs, at the price of `⌈log₂ n⌉` adaptivity rounds.
//! That price is exactly what the paper's setting cannot pay (query time
//! dominates), which makes this strategy the right yardstick for the cost
//! of non-adaptiveness.
//!
//! Under noise every count estimate is repetition-coded
//! ([`CountEstimator`]); feasibility clamping at each split guarantees the
//! output weight is exactly `k` regardless of noise.

use crate::oracle::{Oracle, Strategy, Transcript};
use crate::repetition::CountEstimator;

/// Adaptive binary splitting over agent-id segments.
///
/// # Examples
///
/// ```
/// use npd_adaptive::{Oracle, RecursiveSplitting, Strategy};
/// use npd_core::{GroundTruth, NoiseModel};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let truth = GroundTruth::sample(256, 4, &mut rng);
/// let mut oracle = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng);
/// let transcript = RecursiveSplitting::new(1).reconstruct(4, &mut oracle);
/// assert!(transcript.is_exact(&truth));
/// assert!(transcript.queries < 60); // ≪ the ~700 a non-adaptive design needs
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecursiveSplitting {
    repetitions: usize,
}

impl RecursiveSplitting {
    /// Creates the strategy with `repetitions` queries per count estimate.
    ///
    /// # Panics
    ///
    /// Panics if `repetitions == 0`.
    pub fn new(repetitions: usize) -> Self {
        assert!(
            repetitions > 0,
            "RecursiveSplitting: repetitions must be positive"
        );
        Self { repetitions }
    }

    /// Queries per count estimate.
    pub fn repetitions(&self) -> usize {
        self.repetitions
    }
}

impl Strategy for RecursiveSplitting {
    fn reconstruct(&self, k: usize, oracle: &mut Oracle<'_>) -> Transcript {
        let n = oracle.n();
        let estimator = CountEstimator::new(self.repetitions);
        let mut bits = vec![false; n];

        // Worklist of unresolved segments [start, end) with known counts;
        // processed level by level so sibling queries share a round.
        let mut level: Vec<(usize, usize, u64)> = vec![(0, n, k as u64)];
        while !level.is_empty() {
            let mut next: Vec<(usize, usize, u64)> = Vec::new();
            let mut round_opened = false;
            for (start, end, count) in level {
                let len = (end - start) as u64;
                if count == 0 {
                    continue; // all zeros, bits already false
                }
                if count == len {
                    for b in &mut bits[start..end] {
                        *b = true;
                    }
                    continue;
                }
                let mid = start + (end - start) / 2;
                let left: Vec<u32> = (start as u32..mid as u32).collect();
                let left_len = (mid - start) as u64;
                let right_len = len - left_len;
                if !round_opened {
                    oracle.next_round();
                    round_opened = true;
                }
                let lo = count.saturating_sub(right_len);
                let hi = count.min(left_len);
                let left_count = estimator.estimate_count(oracle, &left, lo, hi);
                next.push((start, mid, left_count));
                next.push((mid, end, count - left_count));
            }
            level = next;
        }

        Transcript {
            estimate: bits,
            queries: oracle.queries_used(),
            rounds: oracle.rounds_used(),
        }
    }

    fn name(&self) -> &'static str {
        "recursive-splitting"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npd_core::{GroundTruth, NoiseModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_in_noiseless_case() {
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let truth = GroundTruth::sample(200, 5, &mut rng);
            let mut oracle = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng);
            let t = RecursiveSplitting::new(1).reconstruct(5, &mut oracle);
            assert!(t.is_exact(&truth), "seed {seed}");
        }
    }

    #[test]
    fn query_count_scales_like_k_log_n() {
        // k·⌈log₂ n⌉ is a generous ceiling for the split tree with the
        // right-half inference; check we stay under it.
        let mut rng = StdRng::seed_from_u64(5);
        let truth = GroundTruth::sample(1024, 8, &mut rng);
        let mut oracle = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng);
        let t = RecursiveSplitting::new(1).reconstruct(8, &mut oracle);
        assert!(t.is_exact(&truth));
        assert!(
            t.queries <= 8 * 10 + 10,
            "used {} queries for k=8, n=1024",
            t.queries
        );
    }

    #[test]
    fn rounds_are_bounded_by_tree_depth() {
        let mut rng = StdRng::seed_from_u64(6);
        let truth = GroundTruth::sample(512, 3, &mut rng);
        let mut oracle = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng);
        let t = RecursiveSplitting::new(1).reconstruct(3, &mut oracle);
        assert!(t.rounds <= 9, "rounds={} exceeds ⌈log₂ 512⌉", t.rounds);
    }

    #[test]
    fn weight_is_always_k_even_under_heavy_noise() {
        // Feasibility clamping conserves the total count along every split.
        let mut rng = StdRng::seed_from_u64(7);
        let truth = GroundTruth::sample(128, 6, &mut rng);
        let mut oracle = Oracle::new(&truth, NoiseModel::gaussian(10.0), &mut rng);
        let t = RecursiveSplitting::new(1).reconstruct(6, &mut oracle);
        assert_eq!(t.weight(), 6);
    }

    #[test]
    fn repetitions_restore_exactness_under_noise() {
        let noise = NoiseModel::gaussian(1.0);
        let mut exact = 0;
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let truth = GroundTruth::sample(256, 4, &mut rng);
            let mut oracle = Oracle::new(&truth, noise, &mut rng);
            let t = RecursiveSplitting::new(60).reconstruct(4, &mut oracle);
            if t.is_exact(&truth) {
                exact += 1;
            }
        }
        assert!(exact >= 9, "only {exact}/10 exact under repeated queries");
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;
        // Both globs export a `Strategy` trait; the explicit import makes
        // `reconstruct` resolve to ours.
        use crate::oracle::Strategy;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Feasibility clamping conserves the total count: whatever
            /// the noise does, the output has weight exactly k — and in
            /// the noiseless case it is the exact truth.
            #[test]
            fn weight_invariant_and_noiseless_exactness(
                n in 2usize..200,
                k_frac in 0.0f64..=1.0,
                lambda in 0.0f64..4.0,
                seed in 0u64..500,
            ) {
                let k = (((n as f64) * k_frac).round() as usize).min(n);
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let truth = GroundTruth::sample(n, k, &mut rng);
                let noise = if lambda < 0.5 {
                    NoiseModel::Noiseless
                } else {
                    NoiseModel::gaussian(lambda)
                };
                let mut oracle = Oracle::new(&truth, noise, &mut rng);
                let t = RecursiveSplitting::new(1).reconstruct(k, &mut oracle);
                prop_assert_eq!(t.weight(), k);
                if noise == NoiseModel::Noiseless {
                    prop_assert!(t.is_exact(&truth));
                }
            }
        }
    }

    #[test]
    fn degenerate_all_ones() {
        let truth = GroundTruth::from_bits(vec![true; 16]);
        let mut rng = StdRng::seed_from_u64(8);
        let mut oracle = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng);
        let t = RecursiveSplitting::new(1).reconstruct(16, &mut oracle);
        assert!(t.is_exact(&truth));
        assert_eq!(t.queries, 0, "count == length resolves without queries");
    }

    #[test]
    fn degenerate_no_ones() {
        let truth = GroundTruth::from_bits(vec![false; 16]);
        let mut rng = StdRng::seed_from_u64(9);
        let mut oracle = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng);
        let t = RecursiveSplitting::new(1).reconstruct(0, &mut oracle);
        assert!(t.is_exact(&truth));
        assert_eq!(t.queries, 0);
    }
}
