//! Individual testing — the trivial one-round reference.
//!
//! Query every agent by itself: `n` queries, a single round, and no pooling
//! at all. This anchors both axes of the adaptive comparison: it is the
//! *most* parallel strategy (like the paper's design) and the *least*
//! query-efficient one for sparse assignments; any pooled scheme must beat
//! it to justify its existence.

use crate::oracle::{Oracle, Strategy, Transcript};
use crate::repetition::CountEstimator;

/// One-round individual testing.
///
/// # Examples
///
/// ```
/// use npd_adaptive::{IndividualTesting, Oracle, Strategy};
/// use npd_core::{GroundTruth, NoiseModel};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let truth = GroundTruth::sample(50, 5, &mut rng);
/// let mut oracle = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng);
/// let t = IndividualTesting::new(1).reconstruct(5, &mut oracle);
/// assert!(t.is_exact(&truth));
/// assert_eq!(t.queries, 50);
/// assert_eq!(t.rounds, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndividualTesting {
    repetitions: usize,
}

impl IndividualTesting {
    /// Creates the strategy with `repetitions` queries per agent.
    ///
    /// # Panics
    ///
    /// Panics if `repetitions == 0`.
    pub fn new(repetitions: usize) -> Self {
        assert!(
            repetitions > 0,
            "IndividualTesting: repetitions must be positive"
        );
        Self { repetitions }
    }

    /// Queries per agent.
    pub fn repetitions(&self) -> usize {
        self.repetitions
    }
}

impl Strategy for IndividualTesting {
    fn reconstruct(&self, _k: usize, oracle: &mut Oracle<'_>) -> Transcript {
        let n = oracle.n();
        let estimator = CountEstimator::new(self.repetitions);
        oracle.next_round();
        let bits: Vec<bool> = (0..n as u32)
            .map(|a| estimator.estimate_count(oracle, &[a], 0, 1) == 1)
            .collect();
        Transcript {
            estimate: bits,
            queries: oracle.queries_used(),
            rounds: oracle.rounds_used(),
        }
    }

    fn name(&self) -> &'static str {
        "individual-testing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npd_core::{GroundTruth, NoiseModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_in_noiseless_case() {
        let mut rng = StdRng::seed_from_u64(40);
        let truth = GroundTruth::sample(64, 7, &mut rng);
        let mut oracle = Oracle::new(&truth, NoiseModel::Noiseless, &mut rng);
        let t = IndividualTesting::new(1).reconstruct(7, &mut oracle);
        assert!(t.is_exact(&truth));
        assert_eq!(t.queries, 64);
        assert_eq!(t.rounds, 1);
    }

    #[test]
    fn majority_voting_survives_channel_noise() {
        let mut rng = StdRng::seed_from_u64(41);
        let truth = GroundTruth::sample(64, 7, &mut rng);
        let mut oracle = Oracle::new(&truth, NoiseModel::channel(0.2, 0.1), &mut rng);
        let t = IndividualTesting::new(51).reconstruct(7, &mut oracle);
        assert!(t.is_exact(&truth));
        assert_eq!(t.queries, 64 * 51);
    }

    #[test]
    fn single_read_fails_under_strong_noise() {
        // With p = 0.45 a single read per one-agent misses often; across 30
        // one-agents at least one miss is near-certain.
        let mut rng = StdRng::seed_from_u64(42);
        let truth = GroundTruth::sample(200, 30, &mut rng);
        let mut oracle = Oracle::new(&truth, NoiseModel::z_channel(0.45), &mut rng);
        let t = IndividualTesting::new(1).reconstruct(30, &mut oracle);
        assert!(!t.is_exact(&truth));
    }
}
