//! Fixture-driven self-tests of the parser-level analyzer, plus the
//! workspace self-check: the real tree must analyze clean.

use std::path::{Path, PathBuf};
use std::process::Command;

use xtask::engine::{self, LintOutcome};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn analyze(name: &str) -> LintOutcome {
    engine::analyze_paths(&[fixture(name)], false).expect("fixture readable")
}

fn rules_hit(outcome: &LintOutcome) -> Vec<&str> {
    let mut rules: Vec<&str> = outcome.reports.iter().map(|r| r.finding.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

/// Runs the real `xtask` binary and returns (exit-success, stdout).
fn run_binary(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(args)
        .output()
        .expect("xtask binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn rng_provenance_fixture_is_flagged() {
    let outcome = analyze("bad/rng_provenance.rs");
    assert_eq!(rules_hit(&outcome), ["rng-provenance"]);
    // Early return between draws, ambient thread_rng, direct closure
    // capture, and the FnDb-resolved call-argument capture.
    assert_eq!(outcome.reports.len(), 4, "{:?}", outcome.reports);
    let messages: Vec<&str> = outcome
        .reports
        .iter()
        .map(|r| r.finding.message.as_str())
        .collect();
    assert!(messages.iter().any(|m| m.contains("returns between draws")));
    assert!(messages.iter().any(|m| m.contains("ambient thread RNG")));
    assert!(messages
        .iter()
        .any(|m| m.contains("crosses a rayon closure")));
    assert!(
        messages
            .iter()
            .any(|m| m.contains("passed to `sample_one`")),
        "the fn database must resolve the innocuously-named capture"
    );
}

#[test]
fn float_order_fixture_is_flagged() {
    let outcome = analyze("bad/float_order.rs");
    assert_eq!(rules_hit(&outcome), ["float-order"]);
    // Untyped `.sum()`, explicit `.sum::<f64>()`, and `.reduce(...)`.
    assert_eq!(outcome.reports.len(), 3, "{:?}", outcome.reports);
}

#[test]
fn impl_purity_fixture_is_flagged() {
    let outcome = analyze("bad/impl_purity.rs");
    assert_eq!(rules_hit(&outcome), ["impl-purity"]);
    // Wall clock in a PoolingDesign, env read in a PopulationModel, and a
    // mutable static in a NoiseModel.
    assert_eq!(outcome.reports.len(), 3, "{:?}", outcome.reports);
}

#[test]
fn clock_boundary_fixture_is_flagged() {
    let outcome = analyze("bad/clock_boundary.rs");
    assert_eq!(rules_hit(&outcome), ["clock-boundary"]);
    // Instant::now, SystemTime, and a stored-origin .elapsed() — the
    // constant SteadyClock impl must not be flagged.
    assert_eq!(outcome.reports.len(), 3, "{:?}", outcome.reports);
    let messages: Vec<&str> = outcome
        .reports
        .iter()
        .map(|r| r.finding.message.as_str())
        .collect();
    assert!(messages.iter().all(|m| m.contains("contract rule 11")));
    assert!(messages
        .iter()
        .any(|m| m.contains("the monotonic wall clock")));
    assert!(messages.iter().any(|m| m.contains("the system clock")));
    assert!(messages
        .iter()
        .any(|m| m.contains("a stored wall-clock origin")));
}

#[test]
fn analyzer_traps_stay_clean() {
    let outcome = analyze("clean/analyze_traps.rs");
    assert!(
        outcome.reports.is_empty(),
        "false positives: {:?}",
        outcome.reports
    );
}

#[test]
fn binary_exits_nonzero_on_every_bad_analyzer_fixture() {
    for name in [
        "bad/rng_provenance.rs",
        "bad/float_order.rs",
        "bad/impl_purity.rs",
        "bad/clock_boundary.rs",
    ] {
        let path = fixture(name);
        let (ok, stdout) = run_binary(&["analyze", path.to_str().expect("utf-8 path")]);
        assert!(!ok, "{name} must fail analysis; stdout:\n{stdout}");
    }
}

#[test]
fn json_report_is_schema_versioned_for_both_tools() {
    let path = fixture("bad/float_order.rs");
    let (ok, stdout) = run_binary(&["analyze", "--json", path.to_str().expect("utf-8 path")]);
    assert!(!ok);
    assert!(stdout.contains("\"schema\": 1"), "{stdout}");
    assert!(stdout.contains("\"tool\": \"analyze\""), "{stdout}");
    assert!(stdout.contains("\"rule\": \"float-order\""), "{stdout}");
    assert!(
        stdout.contains("\"per_rule\": {\"float-order\": 3}"),
        "{stdout}"
    );
    assert!(stdout.contains("\"ok\": false"), "{stdout}");

    let lint_path = fixture("bad/wall_clock.rs");
    let (ok, stdout) = run_binary(&["lint", "--json", lint_path.to_str().expect("utf-8 path")]);
    assert!(!ok);
    assert!(stdout.contains("\"schema\": 1"), "{stdout}");
    assert!(stdout.contains("\"tool\": \"lint\""), "{stdout}");
}

#[test]
fn workspace_analyzes_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let outcome = engine::analyze_workspace(&root, false).expect("workspace readable");
    assert!(
        outcome.reports.is_empty(),
        "the workspace violates its own determinism contract:\n{}",
        engine::render_text(&outcome, "analyze")
    );
    // The walk really covered the tree; lint fixtures are the only skips.
    assert!(outcome.files > 150, "only {} files scanned", outcome.files);
}
