//! The `--include-harness` scope: determinism-pinning tests must not
//! themselves use hash-iteration or wall-clock ordering, and the real
//! harness files must pass that bar.

use std::path::{Path, PathBuf};

use xtask::engine;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists")
}

#[test]
fn harness_scope_applies_hash_and_clock_rules_to_test_files() {
    // Under the default scope an explicit path is linted as strict library
    // code; under --include-harness it is linted as a test file, where
    // only the ordering hazards that matter in pinning tests apply. The
    // bad fixtures double as "test files" here.
    let hash =
        engine::lint_paths(&[fixture("bad/hash_iteration.rs")], true).expect("fixture readable");
    assert!(
        hash.reports
            .iter()
            .all(|r| r.finding.rule == "hash-iteration"),
        "{:?}",
        hash.reports
    );
    assert!(!hash.reports.is_empty());

    let clock =
        engine::lint_paths(&[fixture("bad/wall_clock.rs")], true).expect("fixture readable");
    assert!(
        clock.reports.iter().all(|r| r.finding.rule == "wall-clock"),
        "{:?}",
        clock.reports
    );
    assert!(!clock.reports.is_empty());

    // Rules outside the harness subset must NOT apply to test files:
    // unwrap is the designed failure mode of a broken test.
    let unwrap =
        engine::lint_paths(&[fixture("bad/unwrap_audit.rs")], true).expect("fixture readable");
    assert!(
        unwrap.reports.is_empty(),
        "unwrap-audit must not fire in harness scope: {:?}",
        unwrap.reports
    );
}

#[test]
fn pinning_test_files_pass_the_harness_bar() {
    // The CI leg: the determinism replay suite and the static-contract
    // pins are themselves free of ordering hazards, under both tools.
    let targets = [
        root().join("tests/determinism.rs"),
        root().join("tests/static_contract.rs"),
    ];
    let lint = engine::lint_paths(&targets, true).expect("harness files readable");
    assert!(
        lint.reports.is_empty(),
        "pinning tests use ordering hazards:\n{}",
        engine::render_text(&lint, "lint")
    );
    let analyze = engine::analyze_paths(&targets, true).expect("harness files readable");
    assert!(
        analyze.reports.is_empty(),
        "pinning tests fail analysis:\n{}",
        engine::render_text(&analyze, "analyze")
    );
}

#[test]
fn whole_workspace_passes_the_harness_sweep() {
    // Beyond the two pinned CI files, the full tree under
    // --include-harness: every test/bench/example is free of the
    // hash-iteration and wall-clock hazards.
    let outcome = engine::lint_workspace(&root(), true).expect("workspace readable");
    assert!(
        outcome.reports.is_empty(),
        "harness files use ordering hazards:\n{}",
        engine::render_text(&outcome, "lint")
    );
}
