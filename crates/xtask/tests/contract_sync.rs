//! The contract-sync drift fixture: a miniature repo whose docs disagree
//! with its code in exactly five pinned ways.

use std::path::{Path, PathBuf};

use xtask::engine;

fn drift_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/bad/contract_drift")
}

#[test]
fn contract_drift_fixture_yields_the_five_pinned_findings() {
    let outcome = engine::analyze_workspace(&drift_root(), false).expect("fixture tree readable");
    let messages: Vec<String> = outcome
        .reports
        .iter()
        .map(|r| format!("{}: {}", r.file, r.finding.message))
        .collect();
    assert!(
        outcome
            .reports
            .iter()
            .all(|r| r.finding.rule == "contract-sync"),
        "only contract-sync findings expected: {messages:?}"
    );
    assert_eq!(outcome.reports.len(), 5, "{messages:#?}");

    let has = |needle: &str| messages.iter().any(|m| m.contains(needle));
    assert!(
        has("live rule `float-order` is not documented"),
        "{messages:#?}"
    );
    assert!(
        has("documented rule `retired-rule` is not implemented"),
        "{messages:#?}"
    );
    assert!(
        has("`xtask:allow(no-such-rule)` names a rule the engine does not implement"),
        "{messages:#?}"
    );
    assert!(
        has("scenario row `ghost-scn` does not resolve"),
        "{messages:#?}"
    );
    assert!(has("repro target `fig9` does not resolve"), "{messages:#?}");
}

#[test]
fn drift_fixture_resolves_the_healthy_references() {
    // The same fixture also contains references that DO resolve —
    // `alpha-run`, `fig2`, the eleven contiguous numbered rules, and the
    // ten live-rule bullets — none of which may produce findings.
    let outcome = engine::analyze_workspace(&drift_root(), false).expect("fixture tree readable");
    for bad in ["alpha-run", "fig2", "not contiguous", "numbered rules"] {
        assert!(
            !outcome
                .reports
                .iter()
                .any(|r| r.finding.message.contains(bad)),
            "false positive on `{bad}`: {:?}",
            outcome.reports
        );
    }
}
