//! Fixture-driven self-tests of the determinism linter, plus the
//! workspace self-check: the real tree must lint clean.

use std::path::{Path, PathBuf};
use std::process::Command;

use xtask::engine::{self, LintOutcome};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(name: &str) -> LintOutcome {
    engine::lint_paths(&[fixture(name)], false).expect("fixture readable")
}

fn rules_hit(outcome: &LintOutcome) -> Vec<&str> {
    let mut rules: Vec<&str> = outcome.reports.iter().map(|r| r.finding.rule).collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

/// Runs the real `xtask` binary and returns (exit-success, stdout).
fn run_binary(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(args)
        .output()
        .expect("xtask binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn hash_iteration_fixture_is_flagged() {
    let outcome = lint("bad/hash_iteration.rs");
    assert_eq!(rules_hit(&outcome), ["hash-iteration"]);
    // The `use`, the type annotation, and both constructor mentions.
    assert_eq!(outcome.reports.len(), 3);
}

#[test]
fn wall_clock_fixture_is_flagged() {
    let outcome = lint("bad/wall_clock.rs");
    assert_eq!(rules_hit(&outcome), ["wall-clock"]);
    // `use … {Instant, SystemTime}` contributes one SystemTime mention,
    // the body one `Instant::now` and one `SystemTime` each.
    assert_eq!(outcome.reports.len(), 3);
}

#[test]
fn thread_observable_fixture_is_flagged() {
    let outcome = lint("bad/thread_observable.rs");
    assert_eq!(rules_hit(&outcome), ["thread-observable"]);
    assert_eq!(outcome.reports.len(), 3);
}

#[test]
fn shared_rng_fixture_is_flagged() {
    let outcome = lint("bad/shared_rng.rs");
    assert_eq!(rules_hit(&outcome), ["shared-rng"]);
    assert_eq!(
        outcome.reports.len(),
        2,
        "one &mut capture + one direct method call: {:?}",
        outcome.reports
    );
}

#[test]
fn unwrap_audit_fixture_is_flagged() {
    let outcome = lint("bad/unwrap_audit.rs");
    assert_eq!(rules_hit(&outcome), ["unwrap-audit"]);
    assert_eq!(outcome.reports.len(), 2, "unwrap_or must not count");
}

#[test]
fn allow_misuse_fixture_is_flagged() {
    let outcome = lint("bad/stale_allow.rs");
    assert_eq!(rules_hit(&outcome), ["allow-audit"]);
    let messages: Vec<&str> = outcome
        .reports
        .iter()
        .map(|r| r.finding.message.as_str())
        .collect();
    assert!(messages.iter().any(|m| m.contains("unknown rule")));
    assert!(messages.iter().any(|m| m.contains("no justification")));
    assert!(messages.iter().any(|m| m.contains("suppresses nothing")));
}

#[test]
fn comment_string_and_test_traps_stay_clean() {
    let outcome = lint("clean/traps.rs");
    assert!(
        outcome.reports.is_empty(),
        "false positives: {:?}",
        outcome.reports
    );
}

#[test]
fn justified_allows_stay_clean_and_count_as_used() {
    let outcome = lint("clean/allowed.rs");
    assert!(
        outcome.reports.is_empty(),
        "false positives: {:?}",
        outcome.reports
    );
    assert_eq!(outcome.allows_used, 3);
}

#[test]
fn binary_exits_nonzero_on_every_bad_fixture() {
    for name in [
        "bad/hash_iteration.rs",
        "bad/wall_clock.rs",
        "bad/thread_observable.rs",
        "bad/shared_rng.rs",
        "bad/unwrap_audit.rs",
        "bad/stale_allow.rs",
    ] {
        let path = fixture(name);
        let (ok, stdout) = run_binary(&["lint", path.to_str().expect("utf-8 path")]);
        assert!(!ok, "{name} must fail the lint; stdout:\n{stdout}");
    }
}

#[test]
fn binary_json_report_is_machine_readable() {
    let path = fixture("bad/wall_clock.rs");
    let (ok, stdout) = run_binary(&["lint", "--json", path.to_str().expect("utf-8 path")]);
    assert!(!ok);
    assert!(stdout.contains("\"ok\": false"), "{stdout}");
    assert!(stdout.contains("\"rule\": \"wall-clock\""), "{stdout}");
}

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root exists");
    let outcome = engine::lint_workspace(&root, false).expect("workspace readable");
    assert!(
        outcome.reports.is_empty(),
        "the workspace violates its own determinism contract:\n{}",
        engine::render_text(&outcome, "lint")
    );
    // The walk really covered the tree (all ~130 workspace sources), and
    // the annotated escapes documented in ARCHITECTURE.md are live.
    assert!(outcome.files > 100, "only {} files scanned", outcome.files);
    assert!(outcome.allows_used >= 20, "allows: {}", outcome.allows_used);
}
