//! Clean fixture: constructs that superficially resemble the analyzer's
//! hazards but are deliberately tolerated. Every fn here must produce
//! zero findings.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use rayon::prelude::*;

/// Rejection sampling: the `return` is inside a loop body, so the draw
/// count is data-dependent but still a pure function of the stream.
fn rejection(rng: &mut SmallRng, p: f64) -> f64 {
    loop {
        let x = rng.gen::<f64>();
        if x < p {
            return x;
        }
    }
}

/// Argument guard: the `return` happens before the first draw.
fn guarded(rng: &mut SmallRng, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let a = rng.gen::<f64>();
    a + rng.gen::<f64>()
}

/// Symmetry recursion: the `return` statement itself draws (delegation),
/// so the stream advances on every path.
fn symmetric(rng: &mut SmallRng, n: u64, p: f64) -> u64 {
    if p > 0.5 {
        return n - symmetric(rng, n, 1.0 - p);
    }
    let mut hits = 0u64;
    for _ in 0..n {
        hits += u64::from(rng.gen::<f64>() < p);
    }
    hits
}

/// Reborrow aliases of one stream used sequentially are fine.
fn aliased(rng: &mut SmallRng) -> f64 {
    let r = &mut *rng;
    r.gen::<f64>() + r.gen::<f64>()
}

/// The sanctioned parallel form: a per-item RNG derived inside the
/// closure from a pure identity hash — no stream crosses the boundary.
fn per_item(xs: &mut [f64], seed: u64) {
    xs.par_iter_mut().enumerate().for_each(|(i, x)| {
        let mut rng = SmallRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9e37));
        *x = rng.gen::<f64>();
    });
}

/// Integer turbofish reductions are exact in any combination order.
fn count_set(xs: &[u32]) -> u64 {
    xs.par_iter().map(|x| u64::from(*x & 1)).sum::<u64>()
}

/// A sequential float fold *inside* a parallel closure runs per item in a
/// fixed order: only chain-level reductions combine across items.
fn row_norms(rows: &mut [Vec<f64>]) {
    rows.par_iter_mut().for_each(|row| {
        let norm: f64 = row.iter().map(|v| v * v).sum();
        for v in row.iter_mut() {
            *v /= norm.max(1e-12);
        }
    });
}

/// The order-preserving row-chunk idiom (`matvec_into`): each output
/// element keeps its sequential accumulation order.
fn matvec(out: &mut [f64], m: &[f64], x: &[f64], cols: usize) {
    out.par_chunks_mut(1).enumerate().for_each(|(r, slot)| {
        let mut acc = 0.0;
        for c in 0..cols {
            acc += m[r * cols + c] * x[c];
        }
        slot[0] = acc;
    });
}

/// A pure impl with a threaded-through stream parameter is exactly what
/// the contract asks for.
struct FineDesign;

impl PoolingDesign for FineDesign {
    fn pick(&self, n: usize, rng: &mut dyn RngCore) -> usize {
        (rng.next_u64() as usize) % n.max(1)
    }
}

/// Doc comments and strings discussing hazards are prose, not code:
/// `xs.par_iter().sum::<f64>()` here must not trip the parser, nor must
/// the string below.
fn documented() -> &'static str {
    "thread_rng() and Instant::now() and par_iter().sum::<f64>() are prose"
}
