//! Fixture: false-positive traps. Every banned name below appears only in
//! a comment, a string, a raw string, or test-gated code — the linter must
//! report nothing for this file.
//!
//! A doc comment may freely discuss `HashMap::iter()`, `Instant::now()`,
//! `SystemTime`, `available_parallelism`, `thread::current` and
//! `.unwrap()` — prose is not code.

/* Block comments too: HashSet iteration, RAYON_NUM_THREADS, .expect("x").
   /* Nested blocks stay comments: Instant::now() */
   Still inside the outer comment: SystemTime. */

pub fn strings_are_opaque() -> String {
    let cooked = "HashMap iteration via Instant::now() and .unwrap() here";
    let raw = r#"SystemTime and "available_parallelism" in a raw string"#;
    let rawer = r##"thread::current() with embedded "# quote"##;
    let bytes = b"std::thread::current().unwrap()";
    let lifetime_not_char: &'static str = "'a is a lifetime, not a char";
    let ch = '"'; // a quote char must not open a string
    let esc = '\''; // nor an escaped quote char
    format!("{cooked}{raw}{rawer}{bytes:?}{lifetime_not_char}{ch}{esc}")
}

// `unwrap_or` family: same prefix, not a panic.
pub fn fallbacks(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap_or_default() + xs.last().copied().unwrap_or(7)
}

// A sequential closure may hold a caller's RNG: no rayon adapter in sight.
pub fn sequential_rng(xs: &[u64], rng: &mut SmallRng) -> u64 {
    xs.iter().map(|&x| x ^ rng.next_u64()).sum()
}

// The sanctioned parallel pattern: a per-item RNG derived *inside* the
// closure from a pure identity hash (netsim::faults style).
pub fn per_item_rng(xs: &[u64]) -> Vec<u64> {
    xs.par_iter()
        .map(|&x| {
            let mut rng = SmallRng::seed_from_u64(splitmix64(x));
            rng.next_u64()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u32);
        let t = std::time::Instant::now();
        let id = std::thread::current().id();
        assert!(m.values().next().copied().unwrap() == 2, "{t:?} {id:?}");
    }
}
