//! Fixture: correctly-used escape hatches. Each directive below carries a
//! reason and suppresses a real finding, so the file must lint clean.

// xtask:allow(hash-iteration): membership probe only; never iterated
use std::collections::HashSet;

pub fn dedup_count(xs: &[u64]) -> usize {
    // xtask:allow(hash-iteration): membership probe only; the loop walks `xs`
    let mut seen = HashSet::new();
    xs.iter().filter(|&&x| seen.insert(x)).count()
}

pub fn first(xs: &[u64]) -> u64 {
    // xtask:allow(unwrap-audit): caller contract documented: xs is non-empty
    xs.first().copied().unwrap()
}
