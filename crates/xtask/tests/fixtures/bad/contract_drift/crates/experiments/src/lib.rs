//! Holds the one drifted escape hatch: the rule name below is not
//! implemented by the engine, which `contract-sync` must flag.

pub fn plain() -> u32 {
    // xtask:allow(no-such-rule): kept to pin the dead-directive finding
    41 + 1
}
