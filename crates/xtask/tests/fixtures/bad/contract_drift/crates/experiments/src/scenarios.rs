//! Mini scenario registry: `alpha-run` exists, `ghost-scn` does not.

pub fn names() -> &'static [&'static str] {
    &["alpha-run", "beta-run"]
}
