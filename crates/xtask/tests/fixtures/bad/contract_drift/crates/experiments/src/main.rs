//! Mini repro binary: knows `scenarios` and `fig2`, but not `fig9`.

fn main() {
    let targets = ["scenarios", "fig2", "all"];
    for t in targets {
        println!("{t}");
    }
}
