//! Fixture: thread-identity and pool-shape observations. The
//! `thread::current` call, the `available_parallelism` call, and the
//! `"RAYON_NUM_THREADS"` env read must each be flagged.

pub fn worker_fingerprint() -> u64 {
    let id = std::thread::current().id();
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let knob = std::env::var("RAYON_NUM_THREADS").ok();
    (format!("{id:?}{cores}{knob:?}").len()) as u64
}
