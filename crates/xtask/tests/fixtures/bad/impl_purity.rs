//! Known-bad fixture for `impl-purity`: exactly three findings.
//!
//! 1. a wall-clock read inside a `PoolingDesign` impl
//! 2. a process-environment read inside a `PopulationModel` impl
//! 3. a mutable static touched from a `NoiseModel` impl
//!
//! None of the methods takes an RNG parameter, so these are pure
//! `impl-purity` findings with no `rng-provenance` overlap.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::SystemTime;

struct ClockDesign;

impl PoolingDesign for ClockDesign {
    fn degree(&self, n: usize) -> usize {
        let jitter = SystemTime::now();
        let _ = jitter;
        n / 2
    }
}

struct EnvPopulation;

impl PopulationModel for EnvPopulation {
    fn marginals(&self, n: usize) -> Vec<f64> {
        let bias = std::env::var("NPD_BIAS").is_ok();
        vec![if bias { 0.9 } else { 0.1 }; n]
    }
}

static CALLS: AtomicUsize = AtomicUsize::new(0);

struct CountedNoise;

impl NoiseModel for CountedNoise {
    fn apply(&self, y: u32) -> u32 {
        CALLS.fetch_add(1, Ordering::Relaxed);
        y
    }
}
