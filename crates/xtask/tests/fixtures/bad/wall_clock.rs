//! Fixture: wall-clock reads in replayable code. Both the `Instant::now`
//! call and the `SystemTime` mention must be flagged.

use std::time::{Instant, SystemTime};

pub fn jittered_backoff(round: u64) -> u64 {
    let t = Instant::now();
    let skew = SystemTime::now();
    let _ = skew;
    round + t.elapsed().as_nanos() as u64 % 3
}
