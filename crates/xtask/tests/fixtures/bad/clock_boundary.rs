//! Known-bad fixture for `clock-boundary`: exactly three findings.
//!
//! 1. `Instant::now` inside a `Clock` impl
//! 2. `SystemTime` inside a `Clock` impl
//! 3. `.elapsed()` on a stored origin inside a `Clock` impl
//!
//! The explicit-path analyzer runs fixtures under the strict context
//! (crate `core`, a library crate), so every real-time read inside an
//! `impl Clock` body is a boundary violation. `SteadyClock` at the
//! bottom is the sanctioned library shape — a constant — and must stay
//! clean.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

struct BadInstantClock;

impl Clock for BadInstantClock {
    fn now_micros(&self) -> u64 {
        let t = Instant::now();
        let _ = t;
        0
    }
}

struct BadSystemClock;

impl Clock for BadSystemClock {
    fn now_micros(&self) -> u64 {
        match SystemTime::now().duration_since(UNIX_EPOCH) {
            Ok(d) => d.as_micros() as u64,
            Err(_) => 0,
        }
    }
}

struct BadOriginClock {
    origin: Instant,
}

impl Clock for BadOriginClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

struct SteadyClock;

impl Clock for SteadyClock {
    fn now_micros(&self) -> u64 {
        0
    }
}
