//! Known-bad fixture for `float-order`: exactly three findings.
//!
//! 1. an untyped `.sum()` across parallel items (element type invisible)
//! 2. an explicit float turbofish `.sum::<f64>()` across parallel items
//! 3. a `.reduce(...)` across parallel items

use rayon::prelude::*;

/// (1) No turbofish: if the element is a float, the combination order
/// depends on work splitting.
fn total_energy(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * x).sum()
}

/// (2) A float turbofish makes the hazard explicit.
fn l1_norm(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x.abs()).sum::<f64>()
}

/// (3) `reduce` combines partial results in scheduling order.
fn max_leverage(xs: &[f64]) -> f64 {
    xs.par_iter().cloned().reduce(|| 0.0, f64::max)
}
