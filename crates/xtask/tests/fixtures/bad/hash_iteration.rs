//! Fixture: iterating a std hash container in a deterministic crate.
//! Every `HashMap`/`HashSet` mention below must be flagged — the decoder
//! walks the map, so per-process hash seeding reaches the output stream.

use std::collections::HashMap;

pub fn tally(pairs: &[(u32, i64)]) -> f64 {
    let mut delta: HashMap<u32, i64> = HashMap::new();
    for &(j, d) in pairs {
        *delta.entry(j).or_insert(0) += d;
    }
    let mut acc = 0.0;
    // The hazard: float accumulation in hash order.
    for (&j, &d) in &delta {
        acc += (j as f64).mul_add(1e-9, d as f64);
    }
    acc
}
