//! Fixture: escape-hatch misuse. All three directives below must be
//! flagged by `allow-audit`: one names an unknown rule, one carries no
//! reason, one suppresses nothing.

// xtask:allow(hash-iterations): typo'd rule name never matches
pub fn a() {}

pub fn b(xs: &[u64]) -> u64 {
    // xtask:allow(unwrap-audit)
    xs.first().copied().unwrap_or(0)
}

// xtask:allow(wall-clock): nothing on the next line reads a clock
pub fn c() {}
