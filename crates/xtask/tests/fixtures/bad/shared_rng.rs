//! Fixture: one RNG stream consumed from inside rayon parallel closures.
//! Both the `&mut`-capture and the direct method call must be flagged; the
//! scheduling order decides which task draws which sample.

pub fn scores(items: &[u64], rng: &mut SmallRng) -> Vec<f64> {
    let mut shared_rng = SmallRng::seed_from_u64(rng.next_u64());
    items
        .par_iter()
        .map(|&item| {
            let noise = sample_noise(&mut shared_rng);
            item as f64 + noise
        })
        .collect()
}

pub fn perturb(cells: &mut [f64], rng: &mut SmallRng) {
    cells.par_chunks_mut(64).for_each(|chunk| {
        for c in chunk.iter_mut() {
            *c += rng.gen::<f64>();
        }
    });
}
