//! Fixture: panicking extraction in library code. Both sites must be
//! flagged; `unwrap_or`/`unwrap_or_else` style fallbacks must not be.

pub fn head_plus_tail(xs: &[u64]) -> u64 {
    let head = xs.first().unwrap();
    let tail = xs.last().copied().expect("non-empty");
    let fine = xs.get(1).copied().unwrap_or(0); // not a finding
    head + tail + fine
}
