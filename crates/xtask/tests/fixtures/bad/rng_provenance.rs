//! Known-bad fixture for `rng-provenance`: exactly four findings.
//!
//! 1. an early `return` between draws (stream length becomes data-dependent)
//! 2. an ambient `thread_rng` read inside an RNG-taking fn
//! 3. an RNG parameter captured directly by a rayon closure
//! 4. a captured local handed to a callee's RNG position (FnDb cross-check)

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// (1) The drop-gate shape: the second draw only happens on one branch, so
/// the number of variates consumed depends on the first draw's value.
fn gate(rng: &mut SmallRng, threshold: f64) -> f64 {
    let first = rng.gen::<f64>();
    if first < threshold {
        return 0.0;
    }
    first + rng.gen::<f64>()
}

/// (2) Mixing the caller's stream with the ambient thread RNG silently
/// widens the fn's input set beyond (args, stream).
fn boosted(rng: &mut SmallRng) -> f64 {
    let boost = rand::thread_rng().gen::<f64>();
    rng.gen::<f64>() + boost
}

/// (3) One stream consumed from concurrently scheduled tasks draws in
/// scheduling order.
fn jitter_all(xs: &mut [f64], rng: &mut SmallRng) {
    xs.par_iter_mut().for_each(|x| {
        *x += rng.gen::<f64>();
    });
}

/// Registers in the fn database: parameter 0 is RNG-typed.
fn sample_one(noise: &mut SmallRng) -> f64 {
    noise.gen::<f64>()
}

/// (4) `master` says nothing about RNGs by name, but the database knows
/// `sample_one`'s parameter 0 is a stream.
fn fan_out(xs: &mut [f64], seed: u64) {
    let mut master = SmallRng::seed_from_u64(seed);
    xs.par_iter_mut().for_each(|x| {
        *x = sample_one(&mut master);
    });
}
