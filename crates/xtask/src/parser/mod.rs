//! A lightweight item-granularity Rust parser on top of [`crate::lexer`].
//!
//! The build environment is offline (no `syn`), so this module recovers
//! just enough structure from the token stream for the parser-level rules
//! in [`crate::analysis`]:
//!
//! * **items** — `fn`, `impl`, `use`, `static`, `mod` (recursed into),
//!   everything else skipped with balanced-delimiter recovery;
//! * **fn signatures** — name, parameter names and the identifier tokens
//!   of each parameter's type (enough to recognize `&mut impl Rng`,
//!   `&mut dyn RngCore`, `SmallRng`, …), plus the token range of the body;
//! * **impl blocks** — trait name (for `impl Trait for Type`), type name,
//!   and the methods they contain;
//! * **use graph** — flattened leaf paths of every `use` declaration
//!   (`use a::{b, c::d}` yields `a::b` and `a::c::d`).
//!
//! The parser never fails: unrecognized constructs are skipped token by
//! token, so a file that rustc rejects still yields whatever items were
//! recoverable. Rules must therefore treat absence as "not proven", never
//! as "proven absent".

use crate::lexer::{Lexed, Token, TokenKind};

/// One parsed function (free or associated).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name (associated fns keep just the method name).
    pub name: String,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Parsed value parameters (receiver `self` excluded).
    pub params: Vec<Param>,
    /// Token-index range of the body *interior* (exclusive of the braces);
    /// `None` for bodyless declarations (`fn f();` in traits/extern).
    pub body: Option<(usize, usize)>,
    /// Index into [`ParsedFile::impls`] when this fn is an associated item.
    pub impl_index: Option<usize>,
}

/// One `fn` parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (the last identifier of the pattern, `mut`/`ref`
    /// stripped); empty for purely structural patterns.
    pub name: String,
    /// The identifier tokens of the type, in order (`&mut impl Rng` →
    /// `["mut", "impl", "Rng"]` — punctuation dropped, `mut` kept because
    /// the lexer classes it as an identifier).
    pub ty: Vec<String>,
}

impl Param {
    /// Whether this parameter is an RNG by type (`Rng`, `RngCore`,
    /// `SmallRng`, `StdRng` anywhere in the type) or by name (`rng`, or a
    /// `_rng` suffix).
    pub fn is_rng(&self) -> bool {
        self.ty
            .iter()
            .any(|t| matches!(t.as_str(), "Rng" | "RngCore" | "SmallRng" | "StdRng"))
            || self.name == "rng"
            || self.name.ends_with("_rng")
    }
}

/// One `impl` block.
#[derive(Debug, Clone)]
pub struct ImplItem {
    /// `Some("Trait")` for `impl Trait for Type`, `None` for inherent.
    pub trait_name: Option<String>,
    /// The implementing type's head identifier.
    pub type_name: String,
    /// 1-indexed line of the `impl` keyword.
    pub line: u32,
}

/// One flattened `use` leaf path.
#[derive(Debug, Clone)]
pub struct UsePath {
    /// 1-indexed line of the `use` keyword.
    pub line: u32,
    /// Path segments (`use a::b::C` → `["a", "b", "C"]`).
    pub segments: Vec<String>,
}

/// One `static` item.
#[derive(Debug, Clone)]
pub struct StaticItem {
    /// Item name.
    pub name: String,
    /// 1-indexed line of the `static` keyword.
    pub line: u32,
    /// `static mut`, or a type mentioning an interior-mutability /
    /// synchronization primitive — i.e. observable mutable process state,
    /// as opposed to a plain constant table.
    pub hazardous: bool,
}

/// Type identifiers that make a `static` observable mutable state.
const INTERIOR_MUTABILITY: &[&str] = &[
    "AtomicBool",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicU32",
    "AtomicU64",
    "AtomicU8",
    "AtomicUsize",
    "Cell",
    "Mutex",
    "OnceCell",
    "OnceLock",
    "RefCell",
    "RwLock",
    "UnsafeCell",
];

/// Item-level structure recovered from one source file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every function, including associated fns inside `impl`/`mod` blocks.
    pub fns: Vec<FnItem>,
    /// Every `impl` block.
    pub impls: Vec<ImplItem>,
    /// Flattened `use` declarations.
    pub uses: Vec<UsePath>,
    /// `static` items declared anywhere in the file.
    pub statics: Vec<StaticItem>,
}

/// Returns the index of the delimiter closing the one at `open` (assumed
/// to be `(`, `[` or `{`), or `toks.len()` when unbalanced.
pub fn matching(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match toks[i].kind {
            TokenKind::Punct('(' | '[' | '{') => depth += 1,
            TokenKind::Punct(')' | ']' | '}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i)?.kind {
        TokenKind::Ident(ref s) => Some(s),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i), Some(Token { kind: TokenKind::Punct(p), .. }) if *p == c)
}

/// Parses a lexed file into its item structure.
pub fn parse(lexed: &Lexed) -> ParsedFile {
    let mut file = ParsedFile::default();
    parse_items(&lexed.tokens, 0, lexed.tokens.len(), None, &mut file);
    file
}

/// Parses the item sequence in `toks[start..end]` (a file body, `mod`
/// interior, or `impl` interior), appending to `file`.
fn parse_items(
    toks: &[Token],
    start: usize,
    end: usize,
    impl_index: Option<usize>,
    file: &mut ParsedFile,
) {
    let mut i = start;
    while i < end {
        // Attributes: `#[...]` / `#![...]`.
        if punct_at(toks, i, '#') {
            let mut j = i + 1;
            if punct_at(toks, j, '!') {
                j += 1;
            }
            if punct_at(toks, j, '[') {
                i = matching(toks, j) + 1;
                continue;
            }
            i += 1;
            continue;
        }
        match ident_at(toks, i) {
            // Qualifiers that may precede an item keyword.
            Some("pub") => {
                i += 1;
                if punct_at(toks, i, '(') {
                    i = matching(toks, i) + 1;
                }
            }
            Some("unsafe" | "async" | "default") => i += 1,
            Some("extern") => {
                i += 1;
                if matches!(
                    toks.get(i),
                    Some(Token {
                        kind: TokenKind::Str(_),
                        ..
                    })
                ) {
                    i += 1;
                }
                // `extern "C" { ... }` block: recurse into it.
                if punct_at(toks, i, '{') {
                    let close = matching(toks, i);
                    parse_items(toks, i + 1, close, impl_index, file);
                    i = close + 1;
                }
            }
            Some("const") => {
                // `const fn` falls through to `fn`; `const NAME: T = ...;`
                // is skipped to its terminating `;`.
                if ident_at(toks, i + 1) == Some("fn") {
                    i += 1;
                } else {
                    i = skip_to_semicolon(toks, i + 1, end);
                }
            }
            Some("fn") => i = parse_fn(toks, i, end, impl_index, file),
            Some("impl") => i = parse_impl(toks, i, end, file),
            Some("use") => i = parse_use(toks, i, end, file),
            Some("static") => {
                let line = toks[i].line;
                let mut j = i + 1;
                let is_mut = ident_at(toks, j) == Some("mut");
                if is_mut {
                    j += 1;
                }
                if let Some(name) = ident_at(toks, j) {
                    let next = skip_to_semicolon(toks, j, end);
                    let hazardous = is_mut
                        || toks[j..next].iter().any(|t| match &t.kind {
                            TokenKind::Ident(s) => INTERIOR_MUTABILITY.contains(&s.as_str()),
                            _ => false,
                        });
                    file.statics.push(StaticItem {
                        name: name.to_string(),
                        line,
                        hazardous,
                    });
                    i = next;
                } else {
                    i = skip_to_semicolon(toks, j, end);
                }
            }
            Some("mod") => {
                // `mod name { items }` recursed into; `mod name;` skipped.
                let mut j = i + 1;
                while j < end && !punct_at(toks, j, '{') && !punct_at(toks, j, ';') {
                    j += 1;
                }
                if punct_at(toks, j, '{') {
                    let close = matching(toks, j);
                    parse_items(toks, j + 1, close, None, file);
                    i = close + 1;
                } else {
                    i = j + 1;
                }
            }
            Some("struct" | "enum" | "union" | "trait" | "type" | "macro_rules") => {
                i = skip_item(toks, i + 1, end);
            }
            _ => i += 1,
        }
    }
}

/// Skips to just past the next `;` at delimiter depth 0, balancing any
/// bracketed groups on the way (initializers can contain braces).
fn skip_to_semicolon(toks: &[Token], mut i: usize, end: usize) -> usize {
    while i < end {
        match toks[i].kind {
            TokenKind::Punct('(' | '[' | '{') => i = matching(toks, i) + 1,
            TokenKind::Punct(';') => return i + 1,
            _ => i += 1,
        }
    }
    end
}

/// Skips a struct/enum/trait/type item body: to the first `;` or past the
/// first balanced `{...}` at depth 0 (whichever comes first).
fn skip_item(toks: &[Token], mut i: usize, end: usize) -> usize {
    while i < end {
        match toks[i].kind {
            TokenKind::Punct('(' | '[') => i = matching(toks, i) + 1,
            TokenKind::Punct('{') => return matching(toks, i) + 1,
            TokenKind::Punct(';') => return i + 1,
            _ => i += 1,
        }
    }
    end
}

/// Skips a `<...>` generics group starting at `i` (which must be `<`),
/// tracking angle-bracket depth. Returns the index past the closing `>`.
fn skip_generics(toks: &[Token], mut i: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let open = i;
    while i < end {
        match toks[i].kind {
            TokenKind::Punct('<') => depth += 1,
            // `>` preceded by `-` is the arrow of an `Fn(..) -> Ret` bound,
            // not a closing angle bracket.
            TokenKind::Punct('>') if !(i > open && punct_at(toks, i - 1, '-')) => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            // Parenthesized groups inside generics (`Fn(A) -> B` bounds).
            TokenKind::Punct('(' | '[') => i = matching(toks, i),
            _ => {}
        }
        i += 1;
    }
    end
}

/// Parses `fn name<...>(params) -> Ret {body}` starting at the `fn`
/// keyword; returns the index past the item.
fn parse_fn(
    toks: &[Token],
    fn_kw: usize,
    end: usize,
    impl_index: Option<usize>,
    file: &mut ParsedFile,
) -> usize {
    let line = toks[fn_kw].line;
    let Some(name) = ident_at(toks, fn_kw + 1) else {
        return fn_kw + 1;
    };
    let name = name.to_string();
    let mut i = fn_kw + 2;
    if punct_at(toks, i, '<') {
        i = skip_generics(toks, i, end);
    }
    if !punct_at(toks, i, '(') {
        return i;
    }
    let params_close = matching(toks, i);
    let params = parse_params(&toks[i + 1..params_close]);
    // Seek the body `{` (or a `;` for bodyless declarations), skipping the
    // return type and any `where` clause. Bracketed groups (e.g. `-> [f64;
    // 2]`, `where F: Fn(A)`) are balanced over.
    let mut j = params_close + 1;
    let mut body = None;
    while j < end {
        match toks[j].kind {
            TokenKind::Punct('(' | '[') => j = matching(toks, j) + 1,
            TokenKind::Punct('<') => j = skip_generics(toks, j, end),
            TokenKind::Punct('{') => {
                let close = matching(toks, j);
                body = Some((j + 1, close));
                j = close + 1;
                break;
            }
            TokenKind::Punct(';') => {
                j += 1;
                break;
            }
            _ => j += 1,
        }
    }
    file.fns.push(FnItem {
        name,
        line,
        params,
        body,
        impl_index,
    });
    j
}

/// Splits a parameter list's tokens at depth-0 commas and extracts each
/// parameter's binding name and type identifiers.
fn parse_params(toks: &[Token]) -> Vec<Param> {
    let mut params = Vec::new();
    let mut start = 0usize;
    let mut i = 0usize;
    let mut angle = 0i32;
    while i <= toks.len() {
        let at_split =
            i == toks.len() || (angle == 0 && matches!(toks[i].kind, TokenKind::Punct(',')));
        if at_split {
            if let Some(p) = parse_one_param(&toks[start..i]) {
                params.push(p);
            }
            start = i + 1;
            i += 1;
            continue;
        }
        match toks[i].kind {
            TokenKind::Punct('(' | '[' | '{') => {
                i = matching(toks, i) + 1;
                continue;
            }
            TokenKind::Punct('<') => angle += 1,
            TokenKind::Punct('>') => angle -= 1,
            _ => {}
        }
        i += 1;
    }
    params
}

fn parse_one_param(toks: &[Token]) -> Option<Param> {
    if toks.is_empty() {
        return None;
    }
    // Receiver (`self`, `&self`, `&mut self`, `mut self`) — not a value
    // parameter.
    let idents: Vec<&str> = toks
        .iter()
        .filter_map(|t| match &t.kind {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    let colon = toks
        .iter()
        .position(|t| matches!(t.kind, TokenKind::Punct(':')));
    if colon.is_none() && idents.last() == Some(&"self") {
        return None;
    }
    let colon = colon?;
    let name = toks[..colon]
        .iter()
        .filter_map(|t| match &t.kind {
            TokenKind::Ident(s) if s != "mut" && s != "ref" => Some(s.clone()),
            _ => None,
        })
        .next_back()
        .unwrap_or_default();
    let ty = toks[colon + 1..]
        .iter()
        .filter_map(|t| match &t.kind {
            TokenKind::Ident(s) => Some(s.clone()),
            _ => None,
        })
        .collect();
    Some(Param { name, ty })
}

/// Parses `impl<...> Trait for Type {items}` / `impl Type {items}`
/// starting at the `impl` keyword; returns the index past the block.
fn parse_impl(toks: &[Token], impl_kw: usize, end: usize, file: &mut ParsedFile) -> usize {
    let line = toks[impl_kw].line;
    let mut i = impl_kw + 1;
    if punct_at(toks, i, '<') {
        i = skip_generics(toks, i, end);
    }
    // Head: tokens up to `{` (or a terminating `;`), split by `for`.
    let mut head_idents_before_for: Vec<String> = Vec::new();
    let mut head_idents_after_for: Vec<String> = Vec::new();
    let mut saw_for = false;
    while i < end {
        match &toks[i].kind {
            TokenKind::Punct('{') => break,
            TokenKind::Punct(';') => return i + 1,
            TokenKind::Punct('<') => {
                i = skip_generics(toks, i, end);
                continue;
            }
            TokenKind::Punct('(' | '[') => {
                i = matching(toks, i) + 1;
                continue;
            }
            TokenKind::Ident(s) if s == "for" => saw_for = true,
            TokenKind::Ident(s) if s == "where" => {
                // `where` clause: the head is complete.
                while i < end && !punct_at(toks, i, '{') {
                    if punct_at(toks, i, '<') {
                        i = skip_generics(toks, i, end);
                    } else {
                        i += 1;
                    }
                }
                break;
            }
            TokenKind::Ident(s) => {
                if saw_for {
                    head_idents_after_for.push(s.clone());
                } else {
                    head_idents_before_for.push(s.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    if !punct_at(toks, i, '{') {
        return i;
    }
    let close = matching(toks, i);
    let (trait_name, type_name) = if saw_for {
        // Trait path: the last segment before `for` is the trait ident
        // (path prefixes like `npd_core::design::` come earlier).
        (
            head_idents_before_for.last().cloned(),
            head_idents_after_for.last().cloned().unwrap_or_default(),
        )
    } else {
        (
            None,
            head_idents_before_for.last().cloned().unwrap_or_default(),
        )
    };
    let idx = file.impls.len();
    file.impls.push(ImplItem {
        trait_name,
        type_name,
        line,
    });
    parse_items(toks, i + 1, close, Some(idx), file);
    close + 1
}

/// Parses a `use` declaration, expanding nested `{...}` groups into flat
/// leaf paths; returns the index past the `;`.
fn parse_use(toks: &[Token], use_kw: usize, end: usize, file: &mut ParsedFile) -> usize {
    let line = toks[use_kw].line;
    let semi = {
        let mut j = use_kw + 1;
        while j < end && !punct_at(toks, j, ';') {
            j += 1;
        }
        j
    };
    let mut leaves = Vec::new();
    expand_use(&toks[use_kw + 1..semi], &[], &mut leaves);
    file.uses.extend(
        leaves
            .into_iter()
            .map(|segments| UsePath { line, segments }),
    );
    semi + 1
}

/// Recursively expands a use-tree token slice under `prefix`.
fn expand_use(toks: &[Token], prefix: &[String], out: &mut Vec<Vec<String>>) {
    // Split the slice at depth-0 commas; each piece is `seg::seg::…` with
    // an optional trailing `{group}` or `as alias`.
    let mut start = 0usize;
    let mut i = 0usize;
    while i <= toks.len() {
        let split = i == toks.len() || matches!(toks[i].kind, TokenKind::Punct(','));
        if !split {
            if matches!(toks[i].kind, TokenKind::Punct('{')) {
                i = matching(toks, i) + 1;
                continue;
            }
            i += 1;
            continue;
        }
        let piece = &toks[start..i];
        if !piece.is_empty() {
            let mut path: Vec<String> = prefix.to_vec();
            let mut j = 0usize;
            let mut done = false;
            while j < piece.len() {
                match &piece[j].kind {
                    TokenKind::Ident(s) if s == "as" => {
                        // Alias: the leaf is already recorded; skip it.
                        j = piece.len();
                    }
                    TokenKind::Ident(s) => {
                        path.push(s.clone());
                        j += 1;
                    }
                    TokenKind::Punct('{') => {
                        let close = matching(piece, j);
                        expand_use(&piece[j + 1..close], &path, out);
                        done = true;
                        j = close + 1;
                    }
                    TokenKind::Punct('*') => {
                        path.push("*".to_string());
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            if !done && !path.is_empty() {
                out.push(path);
            }
        }
        start = i + 1;
        i += 1;
    }
}

#[cfg(test)]
mod tests;
