//! Unit tests for [`super`] (split out to keep the module readable).

use super::*;
use crate::lexer;

fn parsed(src: &str) -> ParsedFile {
    parse(&lexer::lex(src))
}

#[test]
fn fn_signatures_capture_rng_params() {
    let f = parsed(
        "pub fn sample<R: Rng + ?Sized>(n: usize, rng: &mut R) -> u64 { n }\n\
         fn draw(src: &mut impl Rng) {}\n\
         fn plain(x: f64) -> f64 { x }",
    );
    assert_eq!(f.fns.len(), 3);
    assert_eq!(f.fns[0].name, "sample");
    assert_eq!(f.fns[0].params.len(), 2);
    assert!(f.fns[0].params[1].is_rng(), "rng-by-name");
    assert!(f.fns[1].params[0].is_rng(), "rng-by-type (impl Rng)");
    assert!(!f.fns[2].params[0].is_rng());
}

#[test]
fn impl_blocks_record_trait_and_type() {
    let f = parsed(
        "impl PoolingDesign for IidDesign { fn name(&self) -> &'static str { \"iid\" } }\n\
         impl NoiseModel { fn helper(&self) {} }",
    );
    assert_eq!(f.impls.len(), 2);
    assert_eq!(f.impls[0].trait_name.as_deref(), Some("PoolingDesign"));
    assert_eq!(f.impls[0].type_name, "IidDesign");
    assert_eq!(f.impls[1].trait_name, None);
    assert_eq!(f.impls[1].type_name, "NoiseModel");
    assert_eq!(f.fns.len(), 2);
    assert_eq!(f.fns[0].impl_index, Some(0));
    assert_eq!(f.fns[1].impl_index, Some(1));
}

#[test]
fn qualified_trait_paths_keep_the_final_segment() {
    let f = parsed("impl npd_core::design::PoolingDesign for MyDesign {}");
    assert_eq!(f.impls[0].trait_name.as_deref(), Some("PoolingDesign"));
    assert_eq!(f.impls[0].type_name, "MyDesign");
}

#[test]
fn use_groups_flatten_to_leaf_paths() {
    let f = parsed("use rand::{rngs::{SmallRng, StdRng}, Rng};\nuse std::fmt;");
    let paths: Vec<String> = f.uses.iter().map(|u| u.segments.join("::")).collect();
    assert_eq!(
        paths,
        [
            "rand::rngs::SmallRng",
            "rand::rngs::StdRng",
            "rand::Rng",
            "std::fmt"
        ]
    );
}

#[test]
fn statics_and_nested_mods_are_found() {
    let f = parsed(
        "static TABLE: [f64; 2] = [0.0, 1.0];\n\
         static COUNT: AtomicUsize = AtomicUsize::new(0);\n\
         mod inner { static mut CACHE: [f64; 4] = [0.0; 4]; fn g() {} }",
    );
    let names: Vec<&str> = f.statics.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, ["TABLE", "COUNT", "CACHE"]);
    assert!(!f.statics[0].hazardous, "plain constant table");
    assert!(f.statics[1].hazardous, "atomic");
    assert!(f.statics[2].hazardous, "static mut");
    assert_eq!(f.fns.len(), 1);
    assert_eq!(f.fns[0].name, "g");
}

#[test]
fn bodyless_and_generic_fns_do_not_derail_the_parser() {
    let f = parsed(
        "trait T { fn decl(&self); }\n\
         fn after<F: Fn(u32) -> u32>(f: F) -> u32 { f(1) }",
    );
    // Trait interiors are skipped; the free fn after the trait parses.
    assert_eq!(f.fns.len(), 1);
    assert_eq!(f.fns[0].name, "after");
    assert!(f.fns[0].body.is_some());
}

#[test]
fn const_fn_parses_and_const_items_are_skipped() {
    let f = parsed("const LIMIT: usize = { 3 };\npub const fn cap(x: usize) -> usize { x }");
    assert_eq!(f.fns.len(), 1);
    assert_eq!(f.fns[0].name, "cap");
}
