//! Report rendering for both tools: the human-readable text form and the
//! hand-rolled, schema-versioned `--json` document.

use std::collections::BTreeMap;

use super::LintOutcome;

/// Renders the human-readable report. `tool` is `"lint"` or `"analyze"`.
pub fn render_text(outcome: &LintOutcome, tool: &str) -> String {
    let mut s = String::new();
    for r in &outcome.reports {
        s.push_str(&format!(
            "{}:{}: [{}] {}\n",
            r.file, r.finding.line, r.finding.rule, r.finding.message
        ));
    }
    s.push_str(&format!(
        "xtask {tool}: {} finding(s) across {} file(s) ({} allow escape(s) in use)\n",
        outcome.reports.len(),
        outcome.files,
        outcome.allows_used
    ));
    s
}

/// Renders the `--json` report (hand-rolled: the vendored serde is a no-op
/// facade, and xtask deliberately has no dependencies). The `schema` field
/// versions the document shape for downstream tooling; `per_rule` gives
/// finding counts by rule.
pub fn render_json(outcome: &LintOutcome, tool: &str) -> String {
    let mut s = String::from("{\n  \"schema\": 1,\n");
    s.push_str(&format!("  \"tool\": \"{}\",\n", json_escape(tool)));
    s.push_str("  \"findings\": [");
    for (i, r) in outcome.reports.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&r.file),
            r.finding.line,
            json_escape(r.finding.rule),
            json_escape(&r.finding.message)
        ));
    }
    if !outcome.reports.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("],\n  \"per_rule\": {");
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for r in &outcome.reports {
        *counts.entry(r.finding.rule).or_default() += 1;
    }
    for (i, (rule, n)) in counts.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!("\"{}\": {}", json_escape(rule), n));
    }
    s.push_str(&format!(
        "}},\n  \"files_scanned\": {},\n  \"allows_used\": {},\n  \"ok\": {}\n}}\n",
        outcome.files,
        outcome.allows_used,
        outcome.reports.is_empty()
    ));
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
