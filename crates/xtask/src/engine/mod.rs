//! Walks source files, runs the rules, applies `xtask:allow` suppressions,
//! and renders reports (human-readable and `--json`).
//!
//! Two pipelines share this machinery:
//!
//! * `lint` — the token-level rules of [`crate::rules`] (contract rule 9);
//! * `analyze` — the parser-level rules of [`crate::analysis`] (contract
//!   rule 10), plus the workspace-level `contract-sync` drift check.
//!
//! Suppression is ruleset-aware: each pipeline audits only the directives
//! that name *its* rules (so an `xtask:allow(float-order)` is never
//! reported stale by `lint`, which does not run `float-order`), while
//! unknown-rule auditing always validates against the combined registry.

mod render;

pub use render::{render_json, render_text};

use std::fs;
use std::path::{Path, PathBuf};

use crate::analysis::{self, FnDb};
use crate::lexer::{self, AllowDirective, Lexed};
use crate::parser;
use crate::rules::{self, FileContext, FileKind, Finding};

/// A finding bound to the file it was found in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Path as reported (relative to the workspace root when walking the
    /// workspace, verbatim for explicit paths).
    pub file: String,
    /// The underlying finding.
    pub finding: Finding,
}

/// Outcome of linting or analyzing a set of files.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Surviving (unsuppressed) findings, sorted by (file, line).
    pub reports: Vec<Report>,
    /// Number of files scanned.
    pub files: usize,
    /// Number of allow directives that suppressed at least one finding.
    pub allows_used: usize,
}

/// Applies `xtask:allow` suppression to `raw` findings and audits the
/// directives that belong to `my_rules`.
///
/// A finding of rule `r` at line `l` is silenced by an
/// `xtask:allow(r): reason` directive on line `l` or `l - 1`. Directives
/// naming one of `my_rules` are policed: omitting the reason or
/// suppressing nothing are findings (`allow-audit`). When `audit_unknown`
/// is set, directives naming a rule outside the *combined* lint + analyze
/// registry are findings too (only `lint` sets it, so the two pipelines
/// never report the same unknown directive twice).
///
/// `shadow` findings mark directives as used without ever being
/// reported: the default lint walk passes the harness-scope findings of
/// a test file here, so an escape that exists for `--include-harness`
/// (e.g. a justified `wall-clock` in an example) is not called stale by
/// the scope in which the rule never ran.
fn apply_allows(
    lexed: &Lexed,
    raw: Vec<Finding>,
    shadow: &[Finding],
    my_rules: &[&str],
    audit_unknown: bool,
) -> (Vec<Finding>, usize) {
    let mut used = vec![false; lexed.allows.len()];
    let mark_used = |used: &mut Vec<bool>, f: &Finding| -> bool {
        let mut suppressed = false;
        for (i, a) in lexed.allows.iter().enumerate() {
            if a.rule == f.rule
                && !a.reason.is_empty()
                && (a.line == f.line || a.line + 1 == f.line)
            {
                used[i] = true;
                suppressed = true;
            }
        }
        suppressed
    };
    for f in shadow {
        mark_used(&mut used, f);
    }
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .filter(|f| !mark_used(&mut used, f))
        .collect();

    let all_rules = analysis::live_rules();
    for (i, a) in lexed.allows.iter().enumerate() {
        if !all_rules.contains(&a.rule.as_str()) {
            if audit_unknown {
                findings.push(Finding {
                    rule: "allow-audit",
                    line: a.line,
                    message: format!(
                        "`xtask:allow({})` names an unknown rule (known: {})",
                        a.rule,
                        all_rules.join(", ")
                    ),
                });
            }
            continue;
        }
        if !my_rules.contains(&a.rule.as_str()) {
            continue; // the other pipeline owns this directive
        }
        if a.reason.is_empty() {
            findings.push(Finding {
                rule: "allow-audit",
                line: a.line,
                message: format!(
                    "`xtask:allow({})` carries no justification; write \
                     `// xtask:allow({}): <reason>`",
                    a.rule, a.rule
                ),
            });
        } else if !used[i] {
            findings.push(Finding {
                rule: "allow-audit",
                line: a.line,
                message: format!(
                    "`xtask:allow({})` suppresses nothing on this or the next \
                     line; remove the stale escape",
                    a.rule
                ),
            });
        }
    }
    findings.sort_by_key(|f| (f.line, f.rule));
    let used_count = used.iter().filter(|&&u| u).count();
    (findings, used_count)
}

/// Lints one file's contents under `ctx`, returning surviving findings.
pub fn lint_source(ctx: &FileContext, src: &str) -> (Vec<Finding>, usize) {
    lint_source_scoped(ctx, src, false)
}

/// [`lint_source`] with the opt-in harness scope: test/bench/example
/// files, normally exempt, are checked for the ordering hazards
/// (`hash-iteration`, `wall-clock`) that matter even in pinning tests.
pub fn lint_source_scoped(
    ctx: &FileContext,
    src: &str,
    include_harness: bool,
) -> (Vec<Finding>, usize) {
    let lexed = lexer::lex(src);
    if ctx.crate_name == "xtask" {
        // The linter's own sources and docs *mention* the directive syntax
        // constantly; policing them would flag every explanatory comment.
        return (Vec::new(), 0);
    }
    if ctx.kind == FileKind::TestLike && !include_harness {
        // Harness files are exempt from the ordering rules in this scope,
        // but their escapes may exist for the `--include-harness` leg:
        // compute those findings as shadows so a justified escape that
        // suppresses a harness-only finding is not audited as stale here.
        let shadow = rules::check_harness(&lexed);
        let raw = rules::check_file(ctx, &lexed);
        return apply_allows(&lexed, raw, &shadow, rules::RULE_NAMES, true);
    }
    let raw = if ctx.kind == FileKind::TestLike {
        rules::check_harness(&lexed)
    } else {
        rules::check_file(ctx, &lexed)
    };
    apply_allows(&lexed, raw, &[], rules::RULE_NAMES, true)
}

/// Analyzes one file's contents under `ctx` with a database built from
/// the file itself. Workspace runs use [`analyze_workspace`], which sees
/// cross-file fn signatures.
pub fn analyze_source(ctx: &FileContext, src: &str) -> (Vec<Finding>, usize) {
    analyze_source_scoped(ctx, src, false)
}

/// [`analyze_source`] with the opt-in harness scope.
pub fn analyze_source_scoped(
    ctx: &FileContext,
    src: &str,
    include_harness: bool,
) -> (Vec<Finding>, usize) {
    let lexed = lexer::lex(src);
    if ctx.crate_name == "xtask" {
        return (Vec::new(), 0);
    }
    let parsed = parser::parse(&lexed);
    let mut db = FnDb::default();
    db.add_file(&parsed);
    let raw = analysis::check_file(ctx, &lexed, &parsed, &db, include_harness);
    apply_allows(&lexed, raw, &[], analysis::ANALYZE_RULE_NAMES, false)
}

/// Lints every workspace source file under `root`.
pub fn lint_workspace(root: &Path, include_harness: bool) -> std::io::Result<LintOutcome> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut outcome = LintOutcome::default();
    for rel in files {
        let Some(ctx) = FileContext::classify(&rel) else {
            continue;
        };
        let src = fs::read_to_string(root.join(&rel))?;
        let (findings, used) = lint_source_scoped(&ctx, &src, include_harness);
        outcome.files += 1;
        outcome.allows_used += used;
        outcome
            .reports
            .extend(findings.into_iter().map(|finding| Report {
                file: rel.clone(),
                finding,
            }));
    }
    Ok(outcome)
}

/// Analyzes every workspace source file under `root`: builds the
/// cross-file fn database in a first pass, runs the parser-level rules in
/// a second, and finishes with the workspace-level `contract-sync` drift
/// check (docs ↔ rule registry ↔ escapes ↔ README targets).
pub fn analyze_workspace(root: &Path, include_harness: bool) -> std::io::Result<LintOutcome> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut entries: Vec<(String, FileContext, Lexed, parser::ParsedFile)> = Vec::new();
    let mut db = FnDb::default();
    let mut allows: Vec<(String, AllowDirective)> = Vec::new();
    for rel in files {
        let Some(ctx) = FileContext::classify(&rel) else {
            continue;
        };
        let src = fs::read_to_string(root.join(&rel))?;
        let lexed = lexer::lex(&src);
        let parsed = parser::parse(&lexed);
        if ctx.crate_name != "xtask" {
            allows.extend(lexed.allows.iter().cloned().map(|a| (rel.clone(), a)));
        }
        if analysis::analyzed_crate(&ctx) && ctx.kind == FileKind::Lib {
            db.add_file(&parsed);
        }
        entries.push((rel, ctx, lexed, parsed));
    }
    let mut outcome = LintOutcome::default();
    for (rel, ctx, lexed, parsed) in &entries {
        outcome.files += 1;
        if ctx.crate_name == "xtask" {
            continue;
        }
        let raw = analysis::check_file(ctx, lexed, parsed, &db, include_harness);
        let (findings, used) = apply_allows(lexed, raw, &[], analysis::ANALYZE_RULE_NAMES, false);
        outcome.allows_used += used;
        outcome
            .reports
            .extend(findings.into_iter().map(|finding| Report {
                file: rel.clone(),
                finding,
            }));
    }
    outcome
        .reports
        .extend(analysis::contract_sync(root, &allows));
    outcome.reports.sort_by(|a, b| {
        (&a.file, a.finding.line, a.finding.rule).cmp(&(&b.file, b.finding.line, b.finding.rule))
    });
    Ok(outcome)
}

/// Resolves explicit paths (files or directories) to the per-file list.
fn expand_paths(paths: &[PathBuf]) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for p in paths {
        if p.is_dir() {
            let mut nested = Vec::new();
            collect_rs_files(p, p, &mut nested)?;
            nested.sort();
            files.extend(nested.into_iter().map(|rel| p.join(rel)));
        } else {
            files.push(p.clone());
        }
    }
    Ok(files)
}

/// The context for explicitly-passed paths: strict (deterministic library
/// code) so fixture snippets exercise every rule — or, under the harness
/// scope, test-like, so the harness rules apply to the named test files.
fn explicit_ctx(include_harness: bool) -> FileContext {
    if include_harness {
        FileContext {
            crate_name: "noisy_pooled_data".to_string(),
            kind: FileKind::TestLike,
        }
    } else {
        FileContext::strict()
    }
}

/// Lints explicitly-listed paths (files or directories).
pub fn lint_paths(paths: &[PathBuf], include_harness: bool) -> std::io::Result<LintOutcome> {
    let mut outcome = LintOutcome::default();
    let ctx = explicit_ctx(include_harness);
    for path in expand_paths(paths)? {
        let src = fs::read_to_string(&path)?;
        let (findings, used) = lint_source_scoped(&ctx, &src, include_harness);
        outcome.files += 1;
        outcome.allows_used += used;
        outcome
            .reports
            .extend(findings.into_iter().map(|finding| Report {
                file: path.display().to_string(),
                finding,
            }));
    }
    Ok(outcome)
}

/// Analyzes explicitly-listed paths (files or directories). The fn
/// database spans all the given files, so cross-file provenance works
/// within a fixture set.
pub fn analyze_paths(paths: &[PathBuf], include_harness: bool) -> std::io::Result<LintOutcome> {
    let ctx = explicit_ctx(include_harness);
    let files = expand_paths(paths)?;
    let mut entries: Vec<(PathBuf, Lexed, parser::ParsedFile)> = Vec::new();
    let mut db = FnDb::default();
    for path in files {
        let src = fs::read_to_string(&path)?;
        let lexed = lexer::lex(&src);
        let parsed = parser::parse(&lexed);
        db.add_file(&parsed);
        entries.push((path, lexed, parsed));
    }
    let mut outcome = LintOutcome::default();
    for (path, lexed, parsed) in &entries {
        let raw = analysis::check_file(&ctx, lexed, parsed, &db, include_harness);
        let (findings, used) = apply_allows(lexed, raw, &[], analysis::ANALYZE_RULE_NAMES, false);
        outcome.files += 1;
        outcome.allows_used += used;
        outcome
            .reports
            .extend(findings.into_iter().map(|finding| Report {
                file: path.display().to_string(),
                finding,
            }));
    }
    Ok(outcome)
}

/// Recursively lists `.rs` files below `dir` as root-relative paths,
/// skipping `target/`, hidden directories, and lint fixtures.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Locates the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
