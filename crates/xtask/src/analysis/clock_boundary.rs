//! `clock-boundary`: real-time `Clock` impls belong to harness crates
//! only (contract rule 11). See the table in [`super`].
//!
//! The telemetry layer splits observability into a deterministic event
//! plane (library crates, `NullClock`) and an optional wall-clock plane
//! whose monotonic [`npd_telemetry::Clock`] implementation may exist
//! *only* in the harness (`experiments`, `bench`). This rule flags any
//! `impl Clock for _` outside the harness whose body reads real time —
//! `Instant::now`, `SystemTime`, or a libc-style `clock_gettime` — which
//! would let wall time leak into the deterministic plane.

use crate::lexer::{Token, TokenKind};
use crate::parser::ParsedFile;
use crate::rules::{FileContext, Finding};

use super::{ident_at, punct_at};

/// Crates where a real-time `Clock` impl is the *designed* pattern: the
/// harness constructs the clock and injects it into library sinks.
const HARNESS_CRATES: &[&str] = &["experiments", "bench"];

pub(super) fn clock_boundary(
    ctx: &FileContext,
    toks: &[Token],
    parsed: &ParsedFile,
    out: &mut Vec<Finding>,
) {
    if HARNESS_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    for f in &parsed.fns {
        let Some(ii) = f.impl_index else { continue };
        let imp = &parsed.impls[ii];
        if imp.trait_name.as_deref() != Some("Clock") {
            continue;
        }
        let Some((b0, b1)) = f.body else { continue };
        let body = &toks[b0..b1];
        let mut flag = |line: u32, what: &str| {
            out.push(Finding {
                rule: "clock-boundary",
                line,
                message: format!(
                    "`impl Clock for {}` reads {what} in crate `{}`: real-time \
                     clocks live in harness crates only (experiments/bench) — \
                     contract rule 11. Library code takes the deterministic \
                     `NullClock` default and lets the harness inject wall time, \
                     or justify with `// xtask:allow(clock-boundary): <why \
                     deterministic>`",
                    imp.type_name, ctx.crate_name
                ),
            });
        };
        for i in 0..body.len() {
            match &body[i].kind {
                TokenKind::Ident(s) if s == "SystemTime" => {
                    flag(body[i].line, "the system clock");
                }
                TokenKind::Ident(s) if s == "clock_gettime" => {
                    flag(body[i].line, "the system clock");
                }
                TokenKind::Ident(s)
                    if s == "Instant"
                        && punct_at(body, i + 1, ':')
                        && punct_at(body, i + 2, ':')
                        && ident_at(body, i + 3) == Some("now") =>
                {
                    flag(body[i].line, "the monotonic wall clock");
                }
                TokenKind::Ident(s) if s == "elapsed" && punct_at(body, i.wrapping_sub(1), '.') => {
                    flag(body[i].line, "a stored wall-clock origin");
                }
                _ => {}
            }
        }
    }
}
