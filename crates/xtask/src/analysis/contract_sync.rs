//! `contract-sync`: drift detection between ARCHITECTURE.md's contract
//! section, the live rule registry, the workspace's escape hatches, and
//! the README's scenario/repro references. See the table in [`super`].

use std::fs;
use std::path::Path;

use crate::engine::Report;
use crate::lexer::{self, AllowDirective, TokenKind};
use crate::rules::Finding;

use super::live_rules;

/// Workspace-level drift detection between the docs, the escape hatches,
/// and the code. `allows` is every `xtask:allow` directive collected from
/// the workspace walk (xtask's own sources excluded — they discuss the
/// syntax in prose).
pub fn contract_sync(root: &Path, allows: &[(String, AllowDirective)]) -> Vec<Report> {
    let mut reports = Vec::new();
    let live = live_rules();
    let finding = |file: &str, line: u32, message: String| Report {
        file: file.to_string(),
        finding: Finding {
            rule: "contract-sync",
            line,
            message,
        },
    };

    // (1) ARCHITECTURE.md: numbered contract rules and documented rule
    // bullets must match the live registry.
    let arch_path = "docs/ARCHITECTURE.md";
    match fs::read_to_string(root.join(arch_path)) {
        Err(_) => reports.push(finding(
            arch_path,
            1,
            "missing: the determinism contract's document of record is gone".into(),
        )),
        Ok(text) => {
            let section = contract_section(&text);
            match &section {
                None => reports.push(finding(
                    arch_path,
                    1,
                    "no `## Determinism and threading contract` section found".into(),
                )),
                Some((start_line, body)) => {
                    // Numbered rules: contiguous 1..=max, max >= 10 (rule 9
                    // = lint, rule 10 = analyze are the enforcement rules).
                    let numbers = numbered_rules(body);
                    let max = numbers.iter().copied().max().unwrap_or(0);
                    for n in 1..=max {
                        if !numbers.contains(&n) {
                            reports.push(finding(
                                arch_path,
                                *start_line,
                                format!("contract rules are not contiguous: rule {n} is missing"),
                            ));
                        }
                    }
                    if max < 10 {
                        reports.push(finding(
                            arch_path,
                            *start_line,
                            format!(
                                "contract documents {max} numbered rules; the static \
                                 enforcement rules (9: lint, 10: analyze) must be kept \
                                 in the document of record"
                            ),
                        ));
                    }
                    // Every live rule documented…
                    for rule in &live {
                        if !body.contains(&format!("`{rule}`")) {
                            reports.push(finding(
                                arch_path,
                                *start_line,
                                format!(
                                    "live rule `{rule}` is not documented in the \
                                     contract section"
                                ),
                            ));
                        }
                    }
                    // …and every documented rule bullet alive.
                    for (line, name) in rule_bullets(body, *start_line) {
                        if !live.contains(&name.as_str()) {
                            reports.push(finding(
                                arch_path,
                                line,
                                format!(
                                    "documented rule `{name}` is not implemented by \
                                     the engine; prune the bullet or restore the rule"
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    // (2) Every escape hatch in the workspace names a live rule.
    for (file, a) in allows {
        if !live.contains(&a.rule.as_str()) {
            reports.push(finding(
                file,
                a.line,
                format!(
                    "`xtask:allow({})` names a rule the engine does not implement \
                     (live: {})",
                    a.rule,
                    live.join(", ")
                ),
            ));
        }
    }

    // (3) README scenario rows and repro targets still resolve.
    let readme_path = "README.md";
    match fs::read_to_string(root.join(readme_path)) {
        Err(_) => reports.push(finding(readme_path, 1, "missing README.md".into())),
        Ok(text) => {
            let scenario_strs = string_literals(root, "crates/experiments/src/scenarios.rs");
            let target_strs = string_literals(root, "crates/experiments/src/main.rs");
            match &scenario_strs {
                None => reports.push(finding(
                    "crates/experiments/src/scenarios.rs",
                    1,
                    "missing: the scenario registry README rows point at".into(),
                )),
                Some(strs) => {
                    for (line, name) in scenario_rows(&text) {
                        if !strs.iter().any(|s| s == &name) {
                            reports.push(finding(
                                readme_path,
                                line,
                                format!(
                                    "scenario row `{name}` does not resolve in the \
                                     registry (crates/experiments/src/scenarios.rs)"
                                ),
                            ));
                        }
                    }
                }
            }
            match &target_strs {
                None => reports.push(finding(
                    "crates/experiments/src/main.rs",
                    1,
                    "missing: the repro binary README targets point at".into(),
                )),
                Some(strs) => {
                    for (line, target) in repro_targets(&text) {
                        if !strs.iter().any(|s| s == &target) {
                            reports.push(finding(
                                readme_path,
                                line,
                                format!(
                                    "repro target `{target}` does not resolve in \
                                     crates/experiments/src/main.rs"
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    reports
}

/// The `## Determinism and threading contract` section: its 1-indexed
/// start line and text up to the next `## ` heading.
fn contract_section(text: &str) -> Option<(u32, String)> {
    let mut lines = text.lines().enumerate();
    let start = lines
        .by_ref()
        .find(|(_, l)| l.starts_with("## ") && l.contains("contract"))?
        .0;
    let mut body = String::new();
    for (_, l) in lines {
        if l.starts_with("## ") {
            break;
        }
        body.push_str(l);
        body.push('\n');
    }
    Some((start as u32 + 1, body))
}

/// Numbers of `N. **Title**` items in the contract section.
fn numbered_rules(body: &str) -> Vec<u32> {
    let mut numbers = Vec::new();
    for line in body.lines() {
        let t = line.trim_start();
        let digits: String = t.chars().take_while(char::is_ascii_digit).collect();
        if digits.is_empty() {
            continue;
        }
        let rest = &t[digits.len()..];
        if rest.starts_with(". **") {
            if let Ok(n) = digits.parse() {
                numbers.push(n);
            }
        }
    }
    numbers
}

/// `- `kebab-name` — …` bullets in the contract section (rule names are
/// lowercase kebab-case with at least one hyphen, which excludes type
/// names and file paths).
fn rule_bullets(body: &str, section_start: u32) -> Vec<(u32, String)> {
    let mut bullets = Vec::new();
    for (i, line) in body.lines().enumerate() {
        let t = line.trim_start();
        let Some(rest) = t.strip_prefix("- `") else {
            continue;
        };
        let Some(close) = rest.find('`') else {
            continue;
        };
        let name = &rest[..close];
        let kebab = name.contains('-')
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-');
        if kebab && rest[close + 1..].trim_start().starts_with('—') {
            bullets.push((section_start + i as u32 + 1, name.to_string()));
        }
    }
    bullets
}

/// First-cell names of rows in README tables whose header has a
/// `scenario` column.
fn scenario_rows(text: &str) -> Vec<(u32, String)> {
    let mut rows = Vec::new();
    let mut in_table = false;
    for (i, line) in text.lines().enumerate() {
        let t = line.trim_start();
        if !t.starts_with('|') {
            in_table = false;
            continue;
        }
        if t.contains("| scenario ") || t.starts_with("| scenario") {
            in_table = true;
            continue;
        }
        if !in_table || t.starts_with("|-") || t.starts_with("|--") || t.starts_with("|---") {
            continue;
        }
        let Some(rest) = t.strip_prefix("| `") else {
            continue;
        };
        if let Some(close) = rest.find('`') {
            rows.push((i as u32 + 1, rest[..close].to_string()));
        }
    }
    rows
}

/// Repro targets referenced from README: `repro -- <target>` occurrences
/// plus the backticked names in the `Targets:` paragraph.
fn repro_targets(text: &str) -> Vec<(u32, String)> {
    let mut targets = Vec::new();
    let mut in_targets_para = false;
    for (i, line) in text.lines().enumerate() {
        let lineno = i as u32 + 1;
        let mut rest = line;
        while let Some(pos) = rest.find("repro -- ") {
            rest = &rest[pos + "repro -- ".len()..];
            let word: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
                .collect();
            if !word.is_empty() && !word.starts_with('-') {
                targets.push((lineno, word));
            }
        }
        if line.starts_with("Targets:") {
            in_targets_para = true;
        } else if line.trim().is_empty() {
            in_targets_para = false;
        }
        if in_targets_para {
            let mut s = line;
            while let Some(open) = s.find('`') {
                let Some(close_rel) = s[open + 1..].find('`') else {
                    break;
                };
                let name = &s[open + 1..open + 1 + close_rel];
                if !name.is_empty()
                    && name
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
                {
                    targets.push((lineno, name.to_string()));
                }
                s = &s[open + 2 + close_rel..];
            }
        }
    }
    targets
}

/// All string literals in a source file, or `None` if it is unreadable.
fn string_literals(root: &Path, rel: &str) -> Option<Vec<String>> {
    let src = fs::read_to_string(root.join(rel)).ok()?;
    let lexed = lexer::lex(&src);
    Some(
        lexed
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Str(s) => Some(s),
                _ => None,
            })
            .collect(),
    )
}
