//! Parser-level rules for `cargo run -p xtask -- analyze` (contract rule
//! 10): checks that need item/fn structure rather than a flat token
//! stream.
//!
//! | rule | what it proves |
//! |------|----------------|
//! | `rng-provenance` | an RNG parameter's stream stays length-deterministic (no draws split by data-dependent `return`s) and never crosses a rayon closure boundary — per-item pure-hash derivation is the only sanctioned parallel form |
//! | `float-order` | no cross-item float reduction (`sum`/`product`/`fold`/`reduce` at chain level) inside a rayon adapter span; integer turbofish reductions are exempt, and the order-preserving `par_chunks_mut + for_each` row-chunk idiom never reduces across items in the first place |
//! | `impl-purity` | `PoolingDesign` / `PopulationModel` / `NoiseModel` impls are pure in `(params, n, stream)`: no wall clock, thread observables, ambient RNGs, environment reads, or (interior-)mutable statics (contract rules 6–8) |
//! | `clock-boundary` | real-time `Clock` impls (the telemetry wall-time plane) exist only in harness crates; library crates keep the deterministic `NullClock` default (contract rule 11) |
//! | `contract-sync` | ARCHITECTURE.md's numbered contract rules, the documented rule bullets, every `xtask:allow` in the workspace, and every README scenario row / repro target still resolve against the live rule registry and the code |
//!
//! Design notes on false positives the rules deliberately tolerate:
//!
//! * `rng-provenance` exempts `return`s inside `loop`/`while`/`for` bodies
//!   (rejection sampling draws a data-dependent *number* of variates but is
//!   still a pure function of the stream — `npd_numerics::rng` is built on
//!   this), `return`s before the first draw (argument guards), and
//!   `return`s whose own statement draws (the `n - binomial(rng, n, 1-p)`
//!   symmetry recursion).
//! * `float-order` only inspects reductions at the *chain level* of a
//!   parallel adapter: a sequential `fold`/`sum` inside a `for_each`
//!   closure runs per item in a fixed order and is exempt by construction.
//! * Both rules treat absence of parse structure as "nothing to check":
//!   the parser never fails, so malformed code degrades to fewer findings,
//!   and the compile step — which always runs first in CI — owns syntax.

mod clock_boundary;
mod contract_sync;
mod float_order;
mod impl_purity;
mod provenance;

pub use self::contract_sync::contract_sync;

use std::collections::BTreeMap;

use crate::lexer::{self, Token, TokenKind};
use crate::parser::ParsedFile;
use crate::rules::{FileContext, FileKind, Finding, PAR_ADAPTERS, RULE_NAMES};

/// The analyzer's rule names, for directive validation and `--json`
/// output. `contract-sync` findings are workspace-level and cannot be
/// suppressed with an allow.
pub const ANALYZE_RULE_NAMES: &[&str] = &[
    "rng-provenance",
    "float-order",
    "impl-purity",
    "clock-boundary",
    "contract-sync",
];

/// Whether `analyze`'s file rules apply to this crate at all. The
/// vendored compat tree exists to *wrap* nondeterminism, `bench` is the
/// timing harness, and xtask's own sources discuss the rules in prose.
pub fn analyzed_crate(ctx: &FileContext) -> bool {
    !ctx.crate_name.starts_with("compat/") && ctx.crate_name != "xtask" && ctx.crate_name != "bench"
}

/// Cross-file function database: fn name → RNG-typed parameter positions
/// (receiver excluded). Built from every analyzed library file, consulted
/// when a call inside a parallel closure hands a captured identifier to a
/// known RNG position. Same-name definitions in different modules are
/// merged by intersection, so a collision can only ever *suppress* a
/// finding.
#[derive(Debug, Default)]
pub struct FnDb {
    map: BTreeMap<String, Vec<Vec<usize>>>,
}

impl FnDb {
    /// Records every fn in `parsed` that takes at least one RNG parameter.
    pub fn add_file(&mut self, parsed: &ParsedFile) {
        for f in &parsed.fns {
            let positions: Vec<usize> = f
                .params
                .iter()
                .enumerate()
                .filter(|(_, p)| p.is_rng())
                .map(|(i, _)| i)
                .collect();
            if positions.is_empty() {
                continue;
            }
            self.map.entry(f.name.clone()).or_default().push(positions);
        }
    }

    /// Parameter positions that are RNG-typed in *every* recorded
    /// definition of `name`.
    pub(super) fn rng_positions(&self, name: &str) -> Option<Vec<usize>> {
        let defs = self.map.get(name)?;
        let mut it = defs.iter();
        let mut acc: Vec<usize> = it.next()?.clone();
        for d in it {
            acc.retain(|p| d.contains(p));
        }
        if acc.is_empty() {
            None
        } else {
            Some(acc)
        }
    }
}

/// Runs the four file-level analyzer rules over one parsed file.
/// (`contract-sync` is workspace-level; see [`contract_sync`].)
pub fn check_file(
    ctx: &FileContext,
    lexed: &lexer::Lexed,
    parsed: &ParsedFile,
    db: &FnDb,
    include_harness: bool,
) -> Vec<Finding> {
    if !analyzed_crate(ctx) {
        return Vec::new();
    }
    if ctx.kind == FileKind::TestLike && !include_harness {
        return Vec::new();
    }
    let toks = &lexed.tokens;
    let mut findings = Vec::new();
    provenance::rng_provenance(toks, parsed, db, &mut findings);
    float_order::float_order(toks, &mut findings);
    impl_purity::impl_purity(toks, parsed, &mut findings);
    clock_boundary::clock_boundary(ctx, toks, parsed, &mut findings);
    if ctx.kind == FileKind::Lib {
        let regions = crate::rules::test_regions(toks);
        findings.retain(|f| !crate::rules::in_regions(f.line, &regions));
    }
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

pub(super) fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i)?.kind {
        TokenKind::Ident(ref s) => Some(s),
        _ => None,
    }
}

pub(super) fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i), Some(Token { kind: TokenKind::Punct(p), .. }) if *p == c)
}

/// Whether the ident at `i` opens a rayon parallel region (adapter method
/// or `rayon::{join, scope, spawn}`).
pub(super) fn is_par_entry(toks: &[Token], i: usize) -> bool {
    match ident_at(toks, i) {
        Some(name) => {
            PAR_ADAPTERS.contains(&name)
                || ((name == "join" || name == "scope" || name == "spawn")
                    && ident_at(toks, i.wrapping_sub(3)) == Some("rayon")
                    && punct_at(toks, i.wrapping_sub(2), ':')
                    && punct_at(toks, i.wrapping_sub(1), ':'))
        }
        None => false,
    }
}

/// Statement extent of the parallel expression starting at token `i`.
pub(super) fn par_span_end(toks: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut end = i;
    while end < toks.len() {
        match toks[end].kind {
            TokenKind::Punct('(' | '[' | '{') => depth += 1,
            TokenKind::Punct(')' | ']' | '}') => {
                depth -= 1;
                if depth < 0 {
                    break;
                }
            }
            TokenKind::Punct(';') if depth == 0 => break,
            _ => {}
        }
        end += 1;
    }
    end
}

/// Every rule name the combined `lint` + `analyze` engine implements.
pub fn live_rules() -> Vec<&'static str> {
    let mut all: Vec<&'static str> = RULE_NAMES.to_vec();
    all.extend_from_slice(ANALYZE_RULE_NAMES);
    all.push("allow-audit");
    all
}
