//! `float-order`: no cross-item float reduction at the chain level of a
//! rayon adapter (contract rule 3). See the table in [`super`].

use crate::lexer::{Token, TokenKind};
use crate::rules::Finding;

use super::{is_par_entry, par_span_end, punct_at};

// ---------------------------------------------------------------------
// float-order
// ---------------------------------------------------------------------

/// Chain-level reduction methods that combine results *across* parallel
/// items.
const REDUCERS: &[&str] = &["sum", "product", "reduce", "fold"];

/// Element types whose addition is associative, so cross-item reduction
/// order cannot change the result.
const ORDER_SAFE_TYPES: &[&str] = &[
    "bool", "i128", "i16", "i32", "i64", "i8", "isize", "u128", "u16", "u32", "u64", "u8", "usize",
];

pub(super) fn float_order(toks: &[Token], out: &mut Vec<Finding>) {
    let mut i = 0usize;
    while i < toks.len() {
        if !is_par_entry(toks, i) {
            i += 1;
            continue;
        }
        let end = par_span_end(toks, i);
        // Chain level = delimiter depth 0 relative to the adapter; closure
        // bodies and argument lists sit at depth ≥ 1, so their sequential
        // per-item reductions are exempt by construction.
        let mut depth = 0i32;
        let mut j = i;
        while j < end {
            match &toks[j].kind {
                TokenKind::Punct('(' | '[' | '{') => depth += 1,
                TokenKind::Punct(')' | ']' | '}') => depth -= 1,
                TokenKind::Ident(m)
                    if depth == 0
                        && REDUCERS.contains(&m.as_str())
                        && punct_at(toks, j.wrapping_sub(1), '.') =>
                {
                    match turbofish_types(toks, j + 1) {
                        Some(types)
                            if types.iter().all(|t| ORDER_SAFE_TYPES.contains(&t.as_str())) => {}
                        Some(_) => out.push(Finding {
                            rule: "float-order",
                            line: toks[j].line,
                            message: format!(
                                "float `.{m}()` across items of a rayon adapter: \
                                 the combination order depends on work splitting, \
                                 so the result is not bit-identical across thread \
                                 counts. Collect in input order and reduce \
                                 sequentially (runner::parallel_map), use the \
                                 order-preserving row-chunk idiom \
                                 (numerics matvec_into), or justify with \
                                 `// xtask:allow(float-order): <order-invariance \
                                 argument>`"
                            ),
                        }),
                        None => out.push(Finding {
                            rule: "float-order",
                            line: toks[j].line,
                            message: format!(
                                "`.{m}()` across items of a rayon adapter with no \
                                 element type visible: if the element is a float, \
                                 the combination order depends on work splitting. \
                                 Spell the type with a turbofish (`.{m}::<u64>()`) \
                                 if it is an integer, or reduce sequentially over \
                                 an order-preserving collect, or justify with \
                                 `// xtask:allow(float-order): <order-invariance \
                                 argument>`"
                            ),
                        }),
                    }
                }
                _ => {}
            }
            j += 1;
        }
        i = end.max(i + 1);
    }
}

/// The identifier list of a `::<...>` turbofish starting at `i`, or `None`
/// when there is no turbofish.
fn turbofish_types(toks: &[Token], i: usize) -> Option<Vec<String>> {
    if !(punct_at(toks, i, ':') && punct_at(toks, i + 1, ':') && punct_at(toks, i + 2, '<')) {
        return None;
    }
    let mut types = Vec::new();
    let mut depth = 1i32;
    let mut j = i + 3;
    while j < toks.len() && depth > 0 {
        match &toks[j].kind {
            TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct('>') => depth -= 1,
            TokenKind::Ident(s) => types.push(s.clone()),
            _ => {}
        }
        j += 1;
    }
    Some(types)
}
