//! `impl-purity`: `PoolingDesign` / `PopulationModel` / `NoiseModel`
//! impls must be pure in `(params, n, stream)` (contract rules 6-8). See
//! the table in [`super`].

use crate::lexer::{Token, TokenKind};
use crate::parser::ParsedFile;
use crate::rules::Finding;

use super::{ident_at, punct_at};

/// The traits (and the one enum with an inherent sampling impl) whose
/// impls must be pure in `(params, n, stream)` — contract rules 6–8.
const PURE_IMPL_TARGETS: &[&str] = &["PoolingDesign", "PopulationModel", "NoiseModel"];
// ---------------------------------------------------------------------
// impl-purity
// ---------------------------------------------------------------------

/// Idents that constitute observable process state inside a pure impl.
const IMPURE_IDENTS: &[(&str, &str)] = &[
    ("thread_rng", "the ambient thread RNG"),
    ("SystemTime", "the wall clock"),
    ("available_parallelism", "the worker-pool shape"),
    ("current_num_threads", "the worker-pool shape"),
    ("AtomicBool", "interior-mutable shared state"),
    ("AtomicI64", "interior-mutable shared state"),
    ("AtomicU32", "interior-mutable shared state"),
    ("AtomicU64", "interior-mutable shared state"),
    ("AtomicUsize", "interior-mutable shared state"),
    ("Cell", "interior-mutable shared state"),
    ("Mutex", "lock-ordered shared state"),
    ("OnceCell", "interior-mutable shared state"),
    ("OnceLock", "interior-mutable shared state"),
    ("RefCell", "interior-mutable shared state"),
    ("RwLock", "lock-ordered shared state"),
];

pub(super) fn impl_purity(toks: &[Token], parsed: &ParsedFile, out: &mut Vec<Finding>) {
    for f in &parsed.fns {
        let Some(ii) = f.impl_index else { continue };
        let imp = &parsed.impls[ii];
        let target = match imp.trait_name.as_deref() {
            Some(t) => PURE_IMPL_TARGETS.contains(&t),
            None => PURE_IMPL_TARGETS.contains(&imp.type_name.as_str()),
        };
        if !target {
            continue;
        }
        let subject = imp
            .trait_name
            .clone()
            .unwrap_or_else(|| imp.type_name.clone());
        let Some((b0, b1)) = f.body else { continue };
        let body = &toks[b0..b1];
        let mut flag = |line: u32, what: &str| {
            out.push(Finding {
                rule: "impl-purity",
                line,
                message: format!(
                    "`{}::{}` reaches {what}: a `{subject}` impl must be a pure \
                     function of (params, n, stream) — contract rules 6–8. Move \
                     the state into explicit parameters, or justify with \
                     `// xtask:allow(impl-purity): <why unobservable>`",
                    subject, f.name
                ),
            });
        };
        for i in 0..body.len() {
            match &body[i].kind {
                TokenKind::Ident(s) => {
                    if let Some((_, what)) = IMPURE_IDENTS.iter().find(|(id, _)| id == s) {
                        flag(body[i].line, what);
                    } else if s == "Instant"
                        && punct_at(body, i + 1, ':')
                        && punct_at(body, i + 2, ':')
                        && ident_at(body, i + 3) == Some("now")
                    {
                        flag(body[i].line, "the wall clock");
                    } else if s == "env"
                        && punct_at(body, i + 1, ':')
                        && punct_at(body, i + 2, ':')
                        && ident_at(body, i + 3) == Some("var")
                    {
                        flag(body[i].line, "the process environment");
                    } else if s == "thread"
                        && punct_at(body, i + 1, ':')
                        && punct_at(body, i + 2, ':')
                        && ident_at(body, i + 3) == Some("current")
                    {
                        flag(body[i].line, "thread identity");
                    } else if s == "static" {
                        flag(body[i].line, "a function-local static");
                    } else if parsed
                        .statics
                        .iter()
                        .any(|st| st.hazardous && st.name == *s)
                    {
                        flag(body[i].line, "a mutable static");
                    }
                }
                TokenKind::Str(s) if s.contains("RAYON_NUM_THREADS") => {
                    flag(body[i].line, "the worker-pool shape");
                }
                _ => {}
            }
        }
    }
}
