//! `rng-provenance`: RNG parameters must stay pure, length-deterministic
//! streams and never cross a rayon closure boundary (contract rules 1, 4,
//! 6, 7). See the table in [`super`] and the false-positive notes there.

use crate::lexer::{Token, TokenKind};
use crate::parser::{matching, ParsedFile};
use crate::rules::Finding;

use super::{ident_at, is_par_entry, par_span_end, punct_at, FnDb};

// ---------------------------------------------------------------------
// rng-provenance
// ---------------------------------------------------------------------

pub(super) fn rng_provenance(
    toks: &[Token],
    parsed: &ParsedFile,
    db: &FnDb,
    out: &mut Vec<Finding>,
) {
    for f in &parsed.fns {
        let Some((b0, b1)) = f.body else { continue };
        let body = &toks[b0..b1];
        let mut rng_names: Vec<String> = f
            .params
            .iter()
            .filter(|p| p.is_rng() && !p.name.is_empty())
            .map(|p| p.name.clone())
            .collect();
        collect_reborrow_aliases(body, &mut rng_names);
        if !rng_names.is_empty() {
            early_return_between_draws(body, &rng_names, &f.name, out);
            ambient_state_reads(body, parsed, &f.name, out);
        }
        parallel_boundary(body, &rng_names, db, out);
    }
}

/// Adds `let [mut] alias = &mut [*] rng;` reborrow names to the tracked
/// set (the `npd_core::model` idiom for passing one stream to several
/// callees), iterating to a fixpoint so aliases of aliases are covered.
fn collect_reborrow_aliases(body: &[Token], names: &mut Vec<String>) {
    loop {
        let mut grew = false;
        let mut i = 0usize;
        while i < body.len() {
            if ident_at(body, i) != Some("let") {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            if ident_at(body, j) == Some("mut") {
                j += 1;
            }
            let Some(alias) = ident_at(body, j) else {
                i += 1;
                continue;
            };
            // `= & mut [*] <tracked> ;`
            let mut k = j + 1;
            if !punct_at(body, k, '=') || !punct_at(body, k + 1, '&') {
                i = j;
                continue;
            }
            k += 2;
            if ident_at(body, k) == Some("mut") {
                k += 1;
            }
            if punct_at(body, k, '*') {
                k += 1;
            }
            let src_is_tracked = ident_at(body, k).is_some_and(|s| names.iter().any(|n| n == s))
                && punct_at(body, k + 1, ';');
            if src_is_tracked && !names.iter().any(|n| n == alias) {
                names.push(alias.to_string());
                grew = true;
            }
            i = k;
        }
        if !grew {
            break;
        }
    }
}

/// Token-index ranges of `loop`/`while`/`for` bodies within `body`.
fn loop_regions(body: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < body.len() {
        if !matches!(ident_at(body, i), Some("loop" | "while" | "for")) {
            i += 1;
            continue;
        }
        // Seek the block `{` of this construct, balancing over any
        // parenthesized/indexed groups in the header expression.
        let mut j = i + 1;
        while j < body.len() {
            match body[j].kind {
                TokenKind::Punct('(' | '[') => j = matching(body, j) + 1,
                TokenKind::Punct('{') => break,
                TokenKind::Punct(';' | '}') => break,
                _ => j += 1,
            }
        }
        if punct_at(body, j, '{') {
            let close = matching(body, j);
            regions.push((j, close));
            // Continue scanning *inside* the loop too (nested loops), but
            // from past the header.
        }
        i = j + 1;
    }
    regions
}

/// Flags `return`s that sit between draws from a tracked RNG outside any
/// loop body: the number of variates consumed becomes a function of the
/// data, so two inputs of equal size leave the stream in different
/// positions and every draw downstream diverges.
fn early_return_between_draws(
    body: &[Token],
    rng_names: &[String],
    fn_name: &str,
    out: &mut Vec<Finding>,
) {
    let draws: Vec<usize> = (0..body.len())
        .filter(|&i| ident_at(body, i).is_some_and(|s| rng_names.iter().any(|n| n == s)))
        .collect();
    if draws.len() < 2 {
        return;
    }
    let loops = loop_regions(body);
    for i in 0..body.len() {
        if ident_at(body, i) != Some("return") {
            continue;
        }
        if loops.iter().any(|&(a, b)| a <= i && i <= b) {
            continue;
        }
        // Statement extent: to `;` at this nesting level or a net-negative
        // closer.
        let mut depth = 0i32;
        let mut end = i;
        while end < body.len() {
            match body[end].kind {
                TokenKind::Punct('(' | '[' | '{') => depth += 1,
                TokenKind::Punct(')' | ']' | '}') => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                TokenKind::Punct(';') if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        if draws.iter().any(|&d| d >= i && d <= end) {
            continue; // the return expression itself draws (delegation)
        }
        let before = draws.iter().any(|&d| d < i);
        let after = draws.iter().any(|&d| d > end);
        if before && after {
            out.push(Finding {
                rule: "rng-provenance",
                line: body[i].line,
                message: format!(
                    "`{fn_name}` returns between draws from its RNG parameter: the \
                     number of variates consumed becomes data-dependent, so every \
                     draw downstream of the call replays differently. Hoist the \
                     draws above the branch, move the guard before the first draw, \
                     or justify with `// xtask:allow(rng-provenance): <why the \
                     stream position stays input-independent>`"
                ),
            });
        }
    }
}

/// Flags ambient-state reads inside a fn that takes an RNG: such a fn
/// claims `(args, stream) -> value` purity, and wall clock / environment /
/// thread observables / ambient RNGs / mutable statics silently widen its
/// input set (contract rules 1 and 6).
fn ambient_state_reads(body: &[Token], parsed: &ParsedFile, fn_name: &str, out: &mut Vec<Finding>) {
    let mut flag = |line: u32, what: &str| {
        out.push(Finding {
            rule: "rng-provenance",
            line,
            message: format!(
                "`{fn_name}` takes an RNG but also reads {what}: a sampling fn \
                 must be a pure function of (args, stream). Thread the value in \
                 as a parameter, or justify with \
                 `// xtask:allow(rng-provenance): <why output-invariant>`"
            ),
        });
    };
    for i in 0..body.len() {
        match &body[i].kind {
            TokenKind::Ident(s) if s == "thread_rng" => {
                flag(body[i].line, "the ambient thread RNG")
            }
            TokenKind::Ident(s) if s == "SystemTime" => flag(body[i].line, "the wall clock"),
            TokenKind::Ident(s)
                if s == "Instant"
                    && punct_at(body, i + 1, ':')
                    && punct_at(body, i + 2, ':')
                    && ident_at(body, i + 3) == Some("now") =>
            {
                flag(body[i].line, "the wall clock");
            }
            TokenKind::Ident(s) if s == "available_parallelism" || s == "current_num_threads" => {
                flag(body[i].line, "the worker-pool shape");
            }
            TokenKind::Ident(s)
                if s == "env"
                    && punct_at(body, i + 1, ':')
                    && punct_at(body, i + 2, ':')
                    && ident_at(body, i + 3) == Some("var") =>
            {
                flag(body[i].line, "the process environment");
            }
            TokenKind::Ident(s)
                if s == "thread"
                    && punct_at(body, i + 1, ':')
                    && punct_at(body, i + 2, ':')
                    && ident_at(body, i + 3) == Some("current") =>
            {
                flag(body[i].line, "thread identity");
            }
            TokenKind::Ident(s)
                if parsed
                    .statics
                    .iter()
                    .any(|st| st.hazardous && st.name == *s) =>
            {
                flag(body[i].line, "a mutable static");
            }
            _ => {}
        }
    }
}
/// Calls `visit(params, body)` for each closure in `span`.
fn for_each_closure(span: &[Token], visit: &mut dyn FnMut(&[String], &[Token])) {
    let mut i = 0usize;
    while i < span.len() {
        let opens = punct_at(span, i, '|')
            && (i == 0
                || matches!(&span[i - 1].kind, TokenKind::Punct('(' | ',' | '{' | '='))
                || ident_at(span, i - 1) == Some("move"));
        if !opens {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let mut params: Vec<String> = Vec::new();
        while j < span.len() && !punct_at(span, j, '|') {
            if let Some(name) = ident_at(span, j) {
                params.push(name.to_string());
            }
            j += 1;
        }
        let body_start = j + 1;
        let mut k = body_start;
        let mut depth = 0i32;
        let braced = punct_at(span, body_start, '{');
        while k < span.len() {
            match span[k].kind {
                TokenKind::Punct('(' | '[' | '{') => depth += 1,
                TokenKind::Punct(')' | ']' | '}') => {
                    depth -= 1;
                    if depth < 0 || (braced && depth == 0) {
                        break;
                    }
                }
                TokenKind::Punct(',') if depth == 0 && !braced => break,
                _ => {}
            }
            k += 1;
        }
        let body = &span[body_start..k.min(span.len())];
        visit(&params, body);
        i = k + 1;
    }
}

/// Names bound inside a closure body: its params plus `let` / `for`
/// bindings (flat scan — over-approximating bindings only ever
/// *suppresses* findings).
fn closure_bound_names(params: &[String], body: &[Token]) -> Vec<String> {
    let mut bound: Vec<String> = params.to_vec();
    let mut i = 0usize;
    while i < body.len() {
        match ident_at(body, i) {
            Some("let") => {
                let mut j = i + 1;
                while j < body.len() && !punct_at(body, j, '=') && !punct_at(body, j, ';') {
                    if let Some(name) = ident_at(body, j) {
                        bound.push(name.to_string());
                    }
                    j += 1;
                }
                i = j;
            }
            Some("for") => {
                let mut j = i + 1;
                while j < body.len() && ident_at(body, j) != Some("in") {
                    if let Some(name) = ident_at(body, j) {
                        bound.push(name.to_string());
                    }
                    j += 1;
                }
                i = j;
            }
            _ => i += 1,
        }
    }
    bound
}

/// Flags tracked RNG parameters (and their reborrow aliases) used inside a
/// rayon closure, plus captured identifiers handed to a known fn's RNG
/// position — even when the variable's *name* says nothing about RNGs,
/// which is what the token-level `shared-rng` heuristic cannot see.
fn parallel_boundary(body: &[Token], rng_names: &[String], db: &FnDb, out: &mut Vec<Finding>) {
    let mut i = 0usize;
    while i < body.len() {
        if !is_par_entry(body, i) {
            i += 1;
            continue;
        }
        let end = par_span_end(body, i);
        let span = &body[i..end];
        let mut seen: Vec<(u32, String)> = Vec::new();
        for_each_closure(span, &mut |params, cbody| {
            let bound = closure_bound_names(params, cbody);
            for t in 0..cbody.len() {
                let Some(name) = ident_at(cbody, t) else {
                    continue;
                };
                let line = cbody[t].line;
                // (i) direct use of a tracked RNG parameter.
                if rng_names.iter().any(|n| n == name)
                    && !bound.iter().any(|b| b == name)
                    && !seen.contains(&(line, name.to_string()))
                {
                    seen.push((line, name.to_string()));
                    out.push(Finding {
                        rule: "rng-provenance",
                        line,
                        message: format!(
                            "RNG parameter `{name}` crosses a rayon closure \
                             boundary: one stream consumed from concurrently \
                             scheduled tasks draws in scheduling order. Derive a \
                             per-item rng inside the closure from a pure identity \
                             hash (see netsim::faults), or justify with \
                             `// xtask:allow(rng-provenance): <why sequential>`"
                        ),
                    });
                }
                // (ii) captured identifier handed to a known RNG position.
                if punct_at(cbody, t + 1, '(') {
                    let Some(positions) = db.rng_positions(name) else {
                        continue;
                    };
                    let close = matching(cbody, t + 1);
                    let args = split_args(&cbody[t + 2..close]);
                    for &pos in &positions {
                        let Some(arg) = args.get(pos) else { continue };
                        let Some(arg_name) = lone_ident(arg) else {
                            continue;
                        };
                        if arg_name == "self"
                            || bound.iter().any(|b| b == arg_name)
                            || seen.contains(&(cbody[t].line, arg_name.to_string()))
                        {
                            continue;
                        }
                        seen.push((cbody[t].line, arg_name.to_string()));
                        out.push(Finding {
                            rule: "rng-provenance",
                            line: cbody[t].line,
                            message: format!(
                                "`{arg_name}` is captured by a rayon closure and \
                                 passed to `{name}`, whose parameter {pos} is an \
                                 RNG: the stream splits across scheduled tasks. \
                                 Derive a per-item rng inside the closure from a \
                                 pure identity hash (see netsim::faults), or \
                                 justify with `// xtask:allow(rng-provenance): \
                                 <why sequential>`"
                            ),
                        });
                    }
                }
            }
        });
        i = end.max(i + 1);
    }
}

/// Splits a call's argument tokens at depth-0 commas.
fn split_args(toks: &[Token]) -> Vec<Vec<Token>> {
    let mut args = Vec::new();
    let mut cur: Vec<Token> = Vec::new();
    let mut depth = 0i32;
    for t in toks {
        match t.kind {
            TokenKind::Punct('(' | '[' | '{') => depth += 1,
            TokenKind::Punct(')' | ']' | '}') => depth -= 1,
            TokenKind::Punct(',') if depth == 0 => {
                args.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        args.push(cur);
    }
    args
}

/// The single identifier of an argument after stripping `&`/`mut`/`*`
/// sigils, or `None` for anything more structured.
fn lone_ident(arg: &[Token]) -> Option<&str> {
    let mut name = None;
    for t in arg {
        match &t.kind {
            TokenKind::Punct('&' | '*') => {}
            TokenKind::Ident(s) if s == "mut" => {}
            TokenKind::Ident(s) => {
                if name.is_some() {
                    return None;
                }
                name = Some(s.as_str());
            }
            _ => return None,
        }
    }
    name
}
