//! Unit tests for [`super`] (split out to keep the module readable).

use super::*;

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter_map(|t| match t.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        })
        .collect()
}

#[test]
fn comments_are_skipped_including_nested_blocks() {
    let src = "a /* x /* y */ z */ b // c\nd";
    assert_eq!(idents(src), ["a", "b", "d"]);
}

#[test]
fn strings_hide_code_but_keep_contents() {
    let src = r#"let s = "Instant::now() \" quoted";"#;
    let lexed = lex(src);
    assert_eq!(idents(src), ["let", "s"]);
    assert!(lexed.tokens.iter().any(|t| matches!(
        &t.kind,
        TokenKind::Str(s) if s.contains("Instant::now")
    )));
}

#[test]
fn raw_strings_with_hashes_terminate_correctly() {
    let src = r##"let s = r#"a "quoted" HashMap"# ; tail"##;
    assert_eq!(idents(src), ["let", "s", "tail"]);
}

#[test]
fn byte_and_raw_byte_strings() {
    let src = "let s = b\"ab\\\"c\"; let t = br#\"x\"#; done";
    assert_eq!(idents(src), ["let", "s", "let", "t", "done"]);
}

#[test]
fn lifetimes_are_not_char_literals() {
    let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }";
    let lexed = lex(src);
    let lifetimes = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .count();
    let chars = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Char)
        .count();
    assert_eq!((lifetimes, chars), (2, 2));
}

#[test]
fn raw_identifiers_are_idents() {
    assert_eq!(idents("r#match + r#\"raw\"#"), ["match"]);
}

#[test]
fn line_numbers_advance_through_all_literal_forms() {
    let src = "a\n\"two\nlines\"\nb\n/* c\n */\nd";
    let lexed = lex(src);
    let find = |name: &str| {
        lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Ident(name.into()))
            .map(|t| t.line)
    };
    assert_eq!(find("a"), Some(1));
    assert_eq!(find("b"), Some(4));
    assert_eq!(find("d"), Some(7));
}

#[test]
fn line_continuation_escape_still_counts_the_newline() {
    // `\` at end of line inside a cooked (or byte) string consumes the
    // newline as an escape; the line counter must not lose it, or every
    // finding and allow-directive below the string shifts up by one.
    let src = "let s = \"first \\\n second\";\nlet t = b\"x \\\n y\";\ntail";
    let lexed = lex(src);
    let find = |name: &str| {
        lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Ident(name.into()))
            .map(|t| t.line)
    };
    assert_eq!(find("t"), Some(3));
    assert_eq!(find("tail"), Some(5));
}

#[test]
fn allow_directives_parse_rule_and_reason() {
    let src = "x(); // xtask:allow(hash-iteration): membership probe only\n";
    let lexed = lex(src);
    assert_eq!(
        lexed.allows,
        vec![AllowDirective {
            line: 1,
            rule: "hash-iteration".into(),
            reason: "membership probe only".into(),
        }]
    );
}

#[test]
fn allow_directive_without_reason_has_empty_reason() {
    let lexed = lex("// xtask:allow(wall-clock)\n");
    assert_eq!(lexed.allows[0].reason, "");
}

#[test]
fn numeric_ranges_do_not_swallow_dots() {
    let src = "for i in 0..10 { f(1.5); }";
    let lexed = lex(src);
    let dots = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Punct('.'))
        .count();
    assert_eq!(dots, 2, "both dots of `..` must survive as puncts");
}
