//! A minimal hand-rolled Rust lexer.
//!
//! The build environment is offline, so `syn`/`proc-macro2` are not
//! available; the rule engine instead works on this token stream. The lexer
//! does *not* aim to be a full Rust front end — it only has to be exact
//! about the things that would otherwise produce false positives or false
//! negatives in the lint rules:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`) are skipped, but line comments are scanned for
//!   `xtask:allow(rule): reason` suppression directives;
//! * string literals (`"…"` with escapes), byte strings (`b"…"`), raw
//!   strings (`r"…"`, `r#"…"#`, `br##"…"##`) and char/byte-char literals
//!   (`'x'`, `'\n'`, `b'\xFF'`) are lexed as single tokens so that a
//!   banned name *inside* a literal is never mistaken for code — but the
//!   literal text is kept, because one rule (`thread-observable`) bans a
//!   specific *string* (`"RAYON_NUM_THREADS"`) from appearing in code;
//! * lifetimes (`'a`) are distinguished from char literals;
//! * raw identifiers (`r#match`) are lexed as identifiers, not raw strings.
//!
//! Everything else (numbers, punctuation) is tokenized loosely: rules match
//! identifier/punctuation sequences and never interpret numeric values.

/// One lexed token plus the 1-indexed line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-indexed source line of the token's first character.
    pub line: u32,
    /// What was lexed.
    pub kind: TokenKind,
}

/// Token payload. Only the distinctions the rules need are kept.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (raw identifiers lose their `r#` prefix).
    Ident(String),
    /// String / byte-string / raw-string literal, with its *contents*
    /// (quotes, prefixes and hashes stripped; escapes left as written).
    Str(String),
    /// Char or byte-char literal (contents not needed by any rule).
    Char,
    /// Lifetime such as `'a` (never confused with a char literal).
    Lifetime,
    /// Numeric literal (value never interpreted).
    Num,
    /// A single punctuation character: `.` `:` `#` `|` `&` `(` … Multi-char
    /// operators arrive as consecutive tokens (`::` is `:` `:`).
    Punct(char),
}

/// An `xtask:allow(rule): reason` directive harvested from a line comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// 1-indexed line the comment sits on.
    pub line: u32,
    /// Rule name between the parentheses (not yet validated).
    pub rule: String,
    /// Justification text after the closing `):`, trimmed. Empty when the
    /// author wrote no reason — the engine reports that as its own finding.
    pub reason: String,
}

/// Full lexer output for one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream with comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// Suppression directives found in line comments.
    pub allows: Vec<AllowDirective>,
}

/// Tokenizes `src`, skipping comments and harvesting allow directives.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                scan_line_comment(&src[start..i], line, &mut out.allows);
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comment; `/*` inside opens another level.
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                let start_line = line;
                let (content, next) = cooked_string(src, i + 1, &mut line);
                i = next;
                out.tokens.push(Token {
                    line: start_line,
                    kind: TokenKind::Str(content),
                });
            }
            b'\'' => {
                let start_line = line;
                i = quote_token(src, i, &mut line, start_line, &mut out.tokens);
            }
            c if c.is_ascii_digit() => {
                let start_line = line;
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        i += 1;
                    } else if d == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                        i += 1; // decimal point of `1.5`, but not the range in `0..n`
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    line: start_line,
                    kind: TokenKind::Num,
                });
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start_line = line;
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                // `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` prefixes; but
                // `r#ident` is a raw identifier, not a raw string.
                match (word, b.get(i).copied()) {
                    ("r" | "br" | "b", Some(b'"')) | ("r" | "br", Some(b'#'))
                        if !is_raw_ident(word, b, i) =>
                    {
                        let (content, next) = raw_or_byte_string(src, i, &mut line);
                        i = next;
                        out.tokens.push(Token {
                            line: start_line,
                            kind: TokenKind::Str(content),
                        });
                    }
                    ("b", Some(b'\'')) => {
                        i = quote_token(src, i, &mut line, start_line, &mut out.tokens);
                    }
                    ("r", Some(b'#')) => {
                        // Raw identifier: skip the `#`, lex the word itself.
                        let start = i + 1;
                        i = start;
                        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                            i += 1;
                        }
                        out.tokens.push(Token {
                            line: start_line,
                            kind: TokenKind::Ident(src[start..i].to_string()),
                        });
                    }
                    _ => out.tokens.push(Token {
                        line: start_line,
                        kind: TokenKind::Ident(word.to_string()),
                    }),
                }
            }
            c => {
                out.tokens.push(Token {
                    line,
                    kind: TokenKind::Punct(c as char),
                });
                i += 1;
            }
        }
    }
    out
}

/// True when `r` at `b[after]` starts a raw *identifier* (`r#match`) rather
/// than a raw string (`r#"…"` / `r##"…"##`).
fn is_raw_ident(word: &str, b: &[u8], after: usize) -> bool {
    word == "r"
        && b.get(after) == Some(&b'#')
        && b.get(after + 1)
            .is_some_and(|&d| d == b'_' || d.is_ascii_alphabetic())
}

/// Lexes a cooked string body starting just past the opening `"`. Returns
/// (contents, index past the closing quote). Handles `\"`, `\\` and keeps
/// other escapes verbatim; tolerates an unterminated string at EOF.
fn cooked_string(src: &str, mut i: usize, line: &mut u32) -> (String, usize) {
    let b = src.as_bytes();
    let start = i;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                // Skip the escaped char ("\"" and "\\" included). A
                // line-continuation escape (`\` before a newline) still
                // consumes a source line and must keep the counter honest.
                if b.get(i + 1) == Some(&b'\n') {
                    *line += 1;
                }
                i += 2;
            }
            b'"' => return (src[start..i].to_string(), i + 1),
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (src[start..i.min(b.len())].to_string(), i.min(b.len()))
}

/// Lexes a raw / byte / raw-byte string whose prefix letters are already
/// consumed; `i` points at `#` or `"`. Returns (contents, index past end).
fn raw_or_byte_string(src: &str, mut i: usize, line: &mut u32) -> (String, usize) {
    let b = src.as_bytes();
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if b.get(i) != Some(&b'"') {
        // `br#foo` can't occur in valid Rust; treat as punct soup.
        return (String::new(), i);
    }
    if hashes == 0 {
        // `r"…"` / `b"…"`: a plain `"` terminates. `b"…"` honors escapes
        // like a cooked string; `r"…"` / `br"…"` have none, so a backslash
        // there is literal text. The consumed prefix word decides which.
        let raw = src[..i].ends_with('r');
        let start = i + 1;
        let mut j = start;
        while j < b.len() {
            match b[j] {
                b'\\' if !raw => {
                    if b.get(j + 1) == Some(&b'\n') {
                        *line += 1;
                    }
                    j += 2;
                }
                b'"' => return (src[start..j].to_string(), j + 1),
                b'\n' => {
                    *line += 1;
                    j += 1;
                }
                _ => j += 1,
            }
        }
        return (src[start..].to_string(), b.len());
    }
    // `r#"…"#` with `hashes` hashes: ends at `"` followed by that many `#`.
    let start = i + 1;
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    let mut j = start;
    while j < b.len() {
        if b[j] == b'"' && b[j..].starts_with(&closer) {
            return (src[start..j].to_string(), j + closer.len());
        }
        if b[j] == b'\n' {
            *line += 1;
        }
        j += 1;
    }
    (src[start..].to_string(), b.len())
}

/// Lexes the token starting at a `'` at byte `i`: either a lifetime (`'a`,
/// `'static`) or a char literal (`'x'`, `'\n'`, `'('`). Pushes the token
/// and returns the index past it.
fn quote_token(
    src: &str,
    i: usize,
    line: &mut u32,
    start_line: u32,
    tokens: &mut Vec<Token>,
) -> usize {
    let b = src.as_bytes();
    debug_assert_eq!(b[i], b'\'');
    let c1 = b.get(i + 1).copied();
    // `'\…'` is always a char literal; `'x'` (closing quote two ahead) is a
    // char literal; otherwise an ident-start char begins a lifetime.
    if c1 == Some(b'\\') {
        // Skip escape: '\n', '\'', '\\', '\x41', '\u{1F600}'.
        let mut j = i + 2;
        if b.get(j) == Some(&b'u') && b.get(j + 1) == Some(&b'{') {
            while j < b.len() && b[j] != b'}' {
                j += 1;
            }
            j += 1;
        } else {
            j += 1;
            if matches!(b.get(i + 2), Some(b'x')) {
                j += 2;
            }
        }
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        tokens.push(Token {
            line: start_line,
            kind: TokenKind::Char,
        });
        return j + 1;
    }
    let c2 = b.get(i + 2).copied();
    if c2 == Some(b'\'') {
        tokens.push(Token {
            line: start_line,
            kind: TokenKind::Char,
        });
        return i + 3;
    }
    if c1.is_some_and(|d| d == b'_' || d.is_ascii_alphabetic()) {
        let mut j = i + 1;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        tokens.push(Token {
            line: start_line,
            kind: TokenKind::Lifetime,
        });
        return j;
    }
    // Multi-byte char literal like '∞' (UTF-8): find the closing quote.
    let mut j = i + 1;
    while j < b.len() && b[j] != b'\'' && b[j] != b'\n' {
        j += 1;
    }
    if b.get(j) == Some(&b'\'') {
        tokens.push(Token {
            line: start_line,
            kind: TokenKind::Char,
        });
        return j + 1;
    }
    if b.get(j) == Some(&b'\n') {
        *line += 1;
    }
    tokens.push(Token {
        line: start_line,
        kind: TokenKind::Punct('\''),
    });
    j
}

/// Scans one line-comment body for `xtask:allow(rule)` / `xtask:allow(rule):
/// reason` directives (several may share a line).
fn scan_line_comment(text: &str, line: u32, allows: &mut Vec<AllowDirective>) {
    const NEEDLE: &str = "xtask:allow(";
    let mut rest = text;
    while let Some(pos) = rest.find(NEEDLE) {
        let after = &rest[pos + NEEDLE.len()..];
        let Some(close) = after.find(')') else {
            return; // malformed: no closing paren — ignore the tail
        };
        let rule = after[..close].trim().to_string();
        let mut tail = &after[close + 1..];
        let reason = if let Some(stripped) = tail.strip_prefix(':') {
            // Reason runs to the end of the comment or the next directive.
            let end = stripped.find(NEEDLE).unwrap_or(stripped.len());
            let r = stripped[..end].trim().to_string();
            tail = &stripped[end..];
            r
        } else {
            String::new()
        };
        allows.push(AllowDirective { line, rule, reason });
        rest = tail;
    }
}

#[cfg(test)]
mod tests;
