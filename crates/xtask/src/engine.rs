//! Walks source files, runs the rules, applies `xtask:allow` suppressions,
//! and renders reports (human-readable and `--json`).

use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer;
use crate::rules::{self, FileContext, Finding};

/// A finding bound to the file it was found in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Path as reported (relative to the workspace root when walking the
    /// workspace, verbatim for explicit paths).
    pub file: String,
    /// The underlying finding.
    pub finding: Finding,
}

/// Outcome of linting a set of files.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Surviving (unsuppressed) findings, sorted by (file, line).
    pub reports: Vec<Report>,
    /// Number of files scanned.
    pub files: usize,
    /// Number of allow directives that suppressed at least one finding.
    pub allows_used: usize,
}

/// Lints one file's contents under `ctx`, returning surviving findings.
///
/// Suppression: a finding of rule `r` at line `l` is silenced by an
/// `xtask:allow(r): reason` directive on line `l` or `l - 1`. Directives
/// are themselves policed — naming an unknown rule, omitting the reason, or
/// suppressing nothing are each findings (`allow-audit`), so stale escapes
/// cannot accumulate.
pub fn lint_source(ctx: &FileContext, src: &str) -> (Vec<Finding>, usize) {
    let lexed = lexer::lex(src);
    if ctx.crate_name == "xtask" {
        // The linter's own sources and docs *mention* the directive syntax
        // constantly; policing them would flag every explanatory comment.
        return (Vec::new(), 0);
    }
    let raw = rules::check_file(ctx, &lexed);
    let mut used = vec![false; lexed.allows.len()];
    let mut findings: Vec<Finding> = raw
        .into_iter()
        .filter(|f| {
            let mut suppressed = false;
            for (i, a) in lexed.allows.iter().enumerate() {
                if a.rule == f.rule
                    && !a.reason.is_empty()
                    && (a.line == f.line || a.line + 1 == f.line)
                {
                    used[i] = true;
                    suppressed = true;
                }
            }
            !suppressed
        })
        .collect();

    for (i, a) in lexed.allows.iter().enumerate() {
        if !rules::RULE_NAMES.contains(&a.rule.as_str()) {
            findings.push(Finding {
                rule: "allow-audit",
                line: a.line,
                message: format!(
                    "`xtask:allow({})` names an unknown rule (known: {})",
                    a.rule,
                    rules::RULE_NAMES.join(", ")
                ),
            });
        } else if a.reason.is_empty() {
            findings.push(Finding {
                rule: "allow-audit",
                line: a.line,
                message: format!(
                    "`xtask:allow({})` carries no justification; write \
                     `// xtask:allow({}): <reason>`",
                    a.rule, a.rule
                ),
            });
        } else if !used[i] {
            findings.push(Finding {
                rule: "allow-audit",
                line: a.line,
                message: format!(
                    "`xtask:allow({})` suppresses nothing on this or the next \
                     line; remove the stale escape",
                    a.rule
                ),
            });
        }
    }
    findings.sort_by_key(|f| (f.line, f.rule));
    let used_count = used.iter().filter(|&&u| u).count();
    (findings, used_count)
}

/// Lints every workspace source file under `root`.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintOutcome> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut outcome = LintOutcome::default();
    for rel in files {
        let Some(ctx) = FileContext::classify(&rel) else {
            continue;
        };
        let src = fs::read_to_string(root.join(&rel))?;
        let (findings, used) = lint_source(&ctx, &src);
        outcome.files += 1;
        outcome.allows_used += used;
        outcome
            .reports
            .extend(findings.into_iter().map(|finding| Report {
                file: rel.clone(),
                finding,
            }));
    }
    Ok(outcome)
}

/// Lints explicitly-listed paths (files or directories) under the strict
/// context — deterministic library code — so fixture snippets exercise
/// every rule regardless of where they live.
pub fn lint_paths(paths: &[PathBuf]) -> std::io::Result<LintOutcome> {
    let mut outcome = LintOutcome::default();
    let ctx = FileContext::strict();
    let mut files = Vec::new();
    for p in paths {
        if p.is_dir() {
            let mut nested = Vec::new();
            collect_rs_files(p, p, &mut nested)?;
            nested.sort();
            files.extend(nested.into_iter().map(|rel| p.join(rel)));
        } else {
            files.push(p.clone());
        }
    }
    for path in files {
        let src = fs::read_to_string(&path)?;
        let (findings, used) = lint_source(&ctx, &src);
        outcome.files += 1;
        outcome.allows_used += used;
        outcome
            .reports
            .extend(findings.into_iter().map(|finding| Report {
                file: path.display().to_string(),
                finding,
            }));
    }
    Ok(outcome)
}

/// Recursively lists `.rs` files below `dir` as root-relative paths,
/// skipping `target/`, hidden directories, and lint fixtures.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Renders the human-readable report.
pub fn render_text(outcome: &LintOutcome) -> String {
    let mut s = String::new();
    for r in &outcome.reports {
        s.push_str(&format!(
            "{}:{}: [{}] {}\n",
            r.file, r.finding.line, r.finding.rule, r.finding.message
        ));
    }
    s.push_str(&format!(
        "xtask lint: {} finding(s) across {} file(s) ({} allow escape(s) in use)\n",
        outcome.reports.len(),
        outcome.files,
        outcome.allows_used
    ));
    s
}

/// Renders the `--json` report (hand-rolled: the vendored serde is a no-op
/// facade, and xtask deliberately has no dependencies).
pub fn render_json(outcome: &LintOutcome) -> String {
    let mut s = String::from("{\n  \"findings\": [");
    for (i, r) in outcome.reports.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&r.file),
            r.finding.line,
            json_escape(r.finding.rule),
            json_escape(&r.finding.message)
        ));
    }
    if !outcome.reports.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str(&format!(
        "],\n  \"files_scanned\": {},\n  \"allows_used\": {},\n  \"ok\": {}\n}}\n",
        outcome.files,
        outcome.allows_used,
        outcome.reports.is_empty()
    ));
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Locates the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
