//! CLI entry point: `cargo run -p xtask -- lint [--json] [paths…]`.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::engine;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}`");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: cargo run -p xtask -- lint [--json] [paths…]
  lint            check the whole workspace against the determinism contract
  lint <paths>    check specific files/dirs under the strict (deterministic
                  library) context — used by the fixture suite
  --json          machine-readable report on stdout";

fn lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("xtask lint: unknown flag `{flag}`\n{USAGE}");
                return ExitCode::from(2);
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    let outcome = if paths.is_empty() {
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("xtask lint: cannot read current dir: {e}");
                return ExitCode::from(2);
            }
        };
        let Some(root) = engine::find_workspace_root(&cwd) else {
            eprintln!("xtask lint: no workspace root ([workspace] Cargo.toml) above {cwd:?}");
            return ExitCode::from(2);
        };
        engine::lint_workspace(&root)
    } else {
        engine::lint_paths(&paths)
    };

    match outcome {
        Ok(outcome) => {
            if json {
                print!("{}", engine::render_json(&outcome));
            } else {
                print!("{}", engine::render_text(&outcome));
            }
            if outcome.reports.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: {e}");
            ExitCode::from(2)
        }
    }
}
