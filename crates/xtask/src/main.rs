//! CLI entry point: `cargo run -p xtask -- <lint|analyze> [--json]
//! [--include-harness] [paths…]`.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::engine;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run("lint", &args[1..]),
        Some("analyze") => run("analyze", &args[1..]),
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}`");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str =
    "usage: cargo run -p xtask -- <lint|analyze> [--json] [--include-harness] [paths…]
  lint               token-level determinism rules (contract rule 9)
  analyze            parser-level rules + contract cross-check (contract rule 10)
  <cmd> <paths>      check specific files/dirs under the strict (deterministic
                     library) context — used by the fixture suites
  --json             machine-readable report on stdout (schema-versioned)
  --include-harness  also check tests/benches/examples for the ordering
                     hazards that matter in pinning tests (with explicit
                     paths: check them under the harness context instead)";

fn run(tool: &'static str, args: &[String]) -> ExitCode {
    let mut json = false;
    let mut include_harness = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            "--include-harness" => include_harness = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("xtask {tool}: unknown flag `{flag}`\n{USAGE}");
                return ExitCode::from(2);
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    let outcome = if paths.is_empty() {
        let cwd = match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("xtask {tool}: cannot read current dir: {e}");
                return ExitCode::from(2);
            }
        };
        let Some(root) = engine::find_workspace_root(&cwd) else {
            eprintln!("xtask {tool}: no workspace root ([workspace] Cargo.toml) above {cwd:?}");
            return ExitCode::from(2);
        };
        match tool {
            "lint" => engine::lint_workspace(&root, include_harness),
            _ => engine::analyze_workspace(&root, include_harness),
        }
    } else {
        match tool {
            "lint" => engine::lint_paths(&paths, include_harness),
            _ => engine::analyze_paths(&paths, include_harness),
        }
    };

    match outcome {
        Ok(outcome) => {
            if json {
                print!("{}", engine::render_json(&outcome, tool));
            } else {
                print!("{}", engine::render_text(&outcome, tool));
            }
            if outcome.reports.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask {tool}: {e}");
            ExitCode::from(2)
        }
    }
}
