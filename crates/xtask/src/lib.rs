//! `xtask` — workspace automation for the noisy-pooled-data repo.
//!
//! Two subcommands statically enforce the determinism contract of
//! `docs/ARCHITECTURE.md`: the dynamic replay suite
//! (`tests/determinism.rs`) samples a handful of pinned (scenario, seed)
//! points, but a hazard like unordered `HashMap` iteration can pass every
//! pinned seed while corrupting replay elsewhere. This crate turns the
//! contract into a machine-checked property:
//!
//! ```text
//! cargo run -p xtask -- lint               # token-level rules (contract rule 9)
//! cargo run -p xtask -- analyze            # parser-level rules (contract rule 10)
//! cargo run -p xtask -- <cmd> --json       # machine-readable report (schema 1)
//! cargo run -p xtask -- <cmd> <paths>      # check specific files (strict context)
//! cargo run -p xtask -- <cmd> --include-harness <paths>   # pinning-test scope
//! ```
//!
//! `lint` walks a flat token stream: see [`rules`] for its five rules and
//! their scopes, and [`lexer`] for the hand-rolled tokenizer that keeps
//! comments/strings from producing false positives. `analyze` recovers
//! item/fn structure on top of the same lexer — see [`parser`] — and runs
//! the cross-statement rules of [`analysis`]: RNG-stream provenance,
//! parallel float-reduction order, trait-impl purity, and the
//! `contract-sync` drift check between ARCHITECTURE.md, the escape
//! hatches, and the code. [`engine`] owns the shared walking, suppression
//! (`// xtask:allow(rule): reason`) and report rendering.

#![warn(missing_docs)]

pub mod analysis;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod rules;
