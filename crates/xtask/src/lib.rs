//! `xtask` — workspace automation for the noisy-pooled-data repo.
//!
//! The one subcommand, `lint`, statically enforces the determinism
//! contract of `docs/ARCHITECTURE.md` (contract rule 9): the dynamic
//! replay suite (`tests/determinism.rs`) samples a handful of pinned
//! (scenario, seed) points, but a hazard like unordered `HashMap`
//! iteration can pass every pinned seed while corrupting replay
//! elsewhere. This crate turns the contract into a machine-checked
//! property:
//!
//! ```text
//! cargo run -p xtask -- lint            # human-readable, exit 1 on findings
//! cargo run -p xtask -- lint --json     # machine-readable report
//! cargo run -p xtask -- lint <paths>    # lint specific files (strict context)
//! ```
//!
//! See [`rules`] for the five rules and their scopes, [`lexer`] for the
//! hand-rolled tokenizer that keeps comments/strings from producing false
//! positives, and [`engine`] for suppression (`// xtask:allow(rule):
//! reason`) and report rendering.

#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod rules;
