//! The determinism-contract rules (docs/ARCHITECTURE.md, contract rule 9).
//!
//! Each rule walks the token stream of one file (already stripped of
//! comments and with literals opaque, see [`crate::lexer`]) and emits
//! [`Finding`]s. Suppression via `// xtask:allow(rule): reason` comments is
//! applied afterwards by the engine, which also polices that every
//! directive names a real rule, carries a written reason, and actually
//! suppresses something.
//!
//! | rule | scope | hazard |
//! |------|-------|--------|
//! | `hash-iteration` | deterministic crates | `std` `HashMap`/`HashSet` iteration order is seeded per process; any use must prove itself membership-only via an allow |
//! | `wall-clock` | all but `bench`, `compat/criterion` | `Instant::now`/`SystemTime` leak real time into replayable state |
//! | `thread-observable` | all but `compat/rayon` | `thread::current`, `available_parallelism`, `"RAYON_NUM_THREADS"` make output depend on the pool shape |
//! | `shared-rng` | deterministic crates | an outer RNG used inside a rayon closure splits its stream by scheduling order |
//! | `unwrap-audit` | library crates | `.unwrap()`/`.expect()` in library code panics instead of degrading |
//!
//! Test code (`tests/`, `benches/`, `examples/`, `#[cfg(test)]` modules and
//! `#[test]` functions) is exempt from every rule: it never runs inside a
//! replayed experiment.

use crate::lexer::{Lexed, Token, TokenKind};

/// The crates whose outputs are covered by the bit-identical-replay
/// contract (ARCHITECTURE.md rules 1–7).
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "core",
    "netsim",
    "decoders",
    "workloads",
    "numerics",
    "sortnet",
    "adaptive",
    "telemetry",
];

/// Library crates audited for `unwrap()`/`expect()`: the deterministic set
/// plus the pure-math crates. The harness crates (`experiments`, `bench`,
/// `xtask`) are exempt — panicking on programmer error is their designed
/// failure mode — as are the vendored `compat` stand-ins.
pub const LIBRARY_CRATES: &[&str] = &[
    "core",
    "netsim",
    "decoders",
    "workloads",
    "numerics",
    "sortnet",
    "adaptive",
    "amp",
    "theory",
    "telemetry",
    "noisy_pooled_data",
];

/// All rule names, for directive validation and `--json` output.
pub const RULE_NAMES: &[&str] = &[
    "hash-iteration",
    "wall-clock",
    "thread-observable",
    "shared-rng",
    "unwrap-audit",
];

/// What kind of source file this is, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Ships in a library or binary (`src/`).
    Lib,
    /// Test, bench or example code — exempt from all rules.
    TestLike,
}

/// Per-file lint context: which crate the file belongs to and which rule
/// scopes apply.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Crate name as spelled in `crates/<name>` (compat crates are
    /// `compat/<name>`; the facade package is `noisy_pooled_data`).
    pub crate_name: String,
    /// Library vs test-like code.
    pub kind: FileKind,
}

impl FileContext {
    /// Context for an explicitly-passed path outside the workspace layout:
    /// the strictest one (deterministic library code), so fixture snippets
    /// exercise every rule.
    pub fn strict() -> Self {
        FileContext {
            crate_name: "core".to_string(),
            kind: FileKind::Lib,
        }
    }

    /// Derives the context from a path relative to the workspace root, or
    /// `None` when the file should not be linted at all (vendored lexer
    /// fixtures, generated code under `target/`).
    pub fn classify(rel_path: &str) -> Option<Self> {
        let norm = rel_path.replace('\\', "/");
        let parts: Vec<&str> = norm.split('/').collect();
        if parts.iter().any(|p| *p == "target" || *p == "fixtures") {
            return None;
        }
        let (crate_name, rest) = if parts.first() == Some(&"crates") {
            if parts.get(1) == Some(&"compat") {
                (
                    format!("compat/{}", parts.get(2)?),
                    parts.get(3..).unwrap_or(&[]),
                )
            } else {
                (parts.get(1)?.to_string(), parts.get(2..).unwrap_or(&[]))
            }
        } else {
            // Workspace-root `src/`, `tests/`, `examples/` belong to the
            // facade package.
            ("noisy_pooled_data".to_string(), &parts[..])
        };
        let kind = if rest
            .iter()
            .any(|p| matches!(*p, "tests" | "benches" | "examples"))
        {
            FileKind::TestLike
        } else {
            FileKind::Lib
        };
        Some(FileContext { crate_name, kind })
    }

    fn is_deterministic(&self) -> bool {
        DETERMINISTIC_CRATES.contains(&self.crate_name.as_str())
    }

    fn is_library(&self) -> bool {
        LIBRARY_CRATES.contains(&self.crate_name.as_str())
    }

    fn wall_clock_exempt(&self) -> bool {
        matches!(self.crate_name.as_str(), "bench" | "compat/criterion")
    }

    fn thread_observable_exempt(&self) -> bool {
        self.crate_name == "compat/rayon"
    }
}

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule name (one of [`RULE_NAMES`], or the engine's directive checks).
    pub rule: &'static str,
    /// 1-indexed line.
    pub line: u32,
    /// Human-readable explanation including the sanctioned fix.
    pub message: String,
}

/// Runs every applicable rule over one lexed file.
pub fn check_file(ctx: &FileContext, lexed: &Lexed) -> Vec<Finding> {
    if ctx.kind == FileKind::TestLike || ctx.crate_name == "xtask" {
        return Vec::new();
    }
    let toks = &lexed.tokens;
    let test_regions = test_regions(toks);
    let mut findings = Vec::new();

    if ctx.is_deterministic() {
        hash_iteration(toks, &mut findings);
        shared_rng(toks, &mut findings);
    }
    if !ctx.wall_clock_exempt() && !ctx.crate_name.starts_with("compat/") {
        wall_clock(toks, &mut findings);
    }
    if !ctx.thread_observable_exempt() && !ctx.crate_name.starts_with("compat/") {
        thread_observable(toks, &mut findings);
    }
    if ctx.is_library() {
        unwrap_audit(toks, &mut findings);
    }

    findings.retain(|f| !in_regions(f.line, &test_regions));
    findings
}

pub(crate) fn in_regions(line: u32, regions: &[(u32, u32)]) -> bool {
    regions.iter().any(|&(a, b)| a <= line && line <= b)
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i)?.kind {
        TokenKind::Ident(ref s) => Some(s),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i), Some(Token { kind: TokenKind::Punct(p), .. }) if *p == c)
}

/// Line spans of `#[cfg(test)]`-gated items, `#[test]`/`#[bench]` functions
/// and everything else attribute-marked as test-only. An attribute counts
/// as test-gating when its tokens contain the ident `test` but not `not`
/// (`#[cfg(not(test))]` gates *production* code).
pub(crate) fn test_regions(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !(punct_at(toks, i, '#') && punct_at(toks, i + 1, '[')) {
            i += 1;
            continue;
        }
        let attr_start_line = toks[i].line;
        // Collect the attribute's tokens up to the matching `]`.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut has_test = false;
        let mut has_not = false;
        while j < toks.len() {
            match &toks[j].kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                TokenKind::Ident(s) => {
                    has_test |= s == "test" || s == "bench";
                    has_not |= s == "not";
                }
                _ => {}
            }
            j += 1;
        }
        if !has_test || has_not {
            i = j;
            continue;
        }
        // Skip any further attributes, then find the item's body: the first
        // `{` before a `;` ends the search (a `;` means `mod tests;` or a
        // declaration with no inline body — nothing to span).
        while punct_at(toks, j, '#') && punct_at(toks, j + 1, '[') {
            let mut d = 0usize;
            while j < toks.len() {
                match toks[j].kind {
                    TokenKind::Punct('[') => d += 1,
                    TokenKind::Punct(']') => {
                        d -= 1;
                        if d == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        let mut body_open = None;
        let mut k = j;
        while k < toks.len() {
            match toks[k].kind {
                TokenKind::Punct('{') => {
                    body_open = Some(k);
                    break;
                }
                TokenKind::Punct(';') => break,
                _ => k += 1,
            }
        }
        if let Some(open) = body_open {
            let mut d = 0usize;
            let mut end = open;
            while end < toks.len() {
                match toks[end].kind {
                    TokenKind::Punct('{') => d += 1,
                    TokenKind::Punct('}') => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                end += 1;
            }
            let end_line = toks.get(end).map_or(u32::MAX, |t| t.line);
            regions.push((attr_start_line, end_line));
            i = end + 1;
        } else {
            i = k + 1;
        }
    }
    regions
}

/// `hash-iteration`: any `HashMap`/`HashSet` mention in a deterministic
/// crate must be justified. Iteration order of the `std` hash containers is
/// seeded per process, so even a single stray `for (k, v) in &map` breaks
/// bit-identical replay; membership-only use is fine but must say so.
fn hash_iteration(toks: &[Token], out: &mut Vec<Finding>) {
    for t in toks {
        if let TokenKind::Ident(name) = &t.kind {
            if name == "HashMap" || name == "HashSet" {
                out.push(Finding {
                    rule: "hash-iteration",
                    line: t.line,
                    message: format!(
                        "`{name}` in a deterministic crate: its iteration order is \
                         seeded per process and would break bit-identical replay. \
                         Use a sorted `Vec`/index array/`BTreeMap`, or justify \
                         membership-only use with \
                         `// xtask:allow(hash-iteration): <why no iteration>`"
                    ),
                });
            }
        }
    }
}

/// `wall-clock`: `Instant::now` / `SystemTime` outside `crates/bench` and
/// the vendored criterion leak real time into code that must replay.
fn wall_clock(toks: &[Token], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        if ident_at(toks, i) == Some("SystemTime") {
            out.push(Finding {
                rule: "wall-clock",
                line: toks[i].line,
                message: "`SystemTime` is banned outside crates/bench and \
                          crates/compat/criterion: wall-clock reads make runs \
                          unreproducible. Thread a logical round/epoch counter \
                          instead"
                    .to_string(),
            });
        }
        if ident_at(toks, i) == Some("Instant")
            && punct_at(toks, i + 1, ':')
            && punct_at(toks, i + 2, ':')
            && ident_at(toks, i + 3) == Some("now")
        {
            out.push(Finding {
                rule: "wall-clock",
                line: toks[i].line,
                message: "`Instant::now()` is banned outside crates/bench and \
                          crates/compat/criterion: timing reads must not steer \
                          replayable state. If this only feeds human-facing \
                          output, say so with `// xtask:allow(wall-clock): <why>`"
                    .to_string(),
            });
        }
    }
}

/// `thread-observable`: `thread::current`, `available_parallelism` and
/// `"RAYON_NUM_THREADS"` reads outside the vendored rayon make results a
/// function of the pool shape, which the contract forbids.
fn thread_observable(toks: &[Token], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        match &toks[i].kind {
            TokenKind::Ident(s) if s == "available_parallelism" => out.push(Finding {
                rule: "thread-observable",
                line: toks[i].line,
                message: "`available_parallelism` is banned outside \
                          crates/compat/rayon: results must be independent of \
                          the machine's core count. Ask the rayon facade for a \
                          *logical* worker count if one is genuinely needed"
                    .to_string(),
            }),
            TokenKind::Ident(s)
                if s == "thread"
                    && punct_at(toks, i + 1, ':')
                    && punct_at(toks, i + 2, ':')
                    && ident_at(toks, i + 3) == Some("current") =>
            {
                out.push(Finding {
                    rule: "thread-observable",
                    line: toks[i].line,
                    message: "`thread::current` is banned outside \
                              crates/compat/rayon: thread identity must never \
                              reach replayable state"
                        .to_string(),
                });
            }
            TokenKind::Str(s) if s.contains("RAYON_NUM_THREADS") => out.push(Finding {
                rule: "thread-observable",
                line: toks[i].line,
                message: "reading `RAYON_NUM_THREADS` outside crates/compat/rayon \
                          duplicates the pool-size policy; go through the rayon \
                          facade so there is a single observable knob"
                    .to_string(),
            }),
            _ => {}
        }
    }
}

/// `unwrap-audit`: `.unwrap()` / `.expect(` in library code panics instead
/// of degrading; each site must be converted or carry a justification.
fn unwrap_audit(toks: &[Token], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let Some(name) = ident_at(toks, i) else {
            continue;
        };
        if (name == "unwrap" || name == "expect")
            && punct_at(toks, i.wrapping_sub(1), '.')
            && punct_at(toks, i + 1, '(')
        {
            out.push(Finding {
                rule: "unwrap-audit",
                line: toks[i].line,
                message: format!(
                    "`.{name}()` in library code: return/propagate an error, use \
                     a non-panicking fallback, or justify the invariant with \
                     `// xtask:allow(unwrap-audit): <why infallible>`"
                ),
            });
        }
    }
}

/// The opt-in `--include-harness` scope: ordering hazards that matter even
/// in test/bench/example code. The determinism-pinning tests are themselves
/// part of the replay contract — a pinned fingerprint computed by iterating
/// a `HashMap`, or an assertion ordered by wall-clock, flakes exactly the
/// way the contract forbids. Harness code keeps its exemption from the
/// library-hygiene rules (`unwrap-audit`, `shared-rng` heuristics).
pub fn check_harness(lexed: &Lexed) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let mut findings = Vec::new();
    hash_iteration(toks, &mut findings);
    wall_clock(toks, &mut findings);
    findings
}

/// Rayon adapter / entry-point names that start a parallel region.
pub(crate) const PAR_ADAPTERS: &[&str] = &[
    "par_iter",
    "par_iter_mut",
    "into_par_iter",
    "par_chunks",
    "par_chunks_mut",
    "par_windows",
    "par_bridge",
    "par_extend",
    "par_sort",
    "par_sort_by",
    "par_sort_by_key",
    "par_sort_unstable",
];

/// RNG methods whose receiver we treat as "an RNG being consumed".
pub(crate) const RNG_METHODS: &[&str] = &[
    "gen",
    "gen_range",
    "gen_bool",
    "gen_ratio",
    "sample",
    "next_u32",
    "next_u64",
    "fill",
    "fill_bytes",
];

/// `shared-rng`: inside a rayon parallel closure, using an RNG that was
/// *captured* from the enclosing scope (rather than constructed inside the
/// closure) splits one stream across a scheduling-dependent interleaving.
/// The sanctioned pattern is the per-identity hash of `netsim::faults`:
/// derive a fresh `SmallRng` from a pure hash of the item's identity,
/// inside the closure.
///
/// Heuristic, by design: an identifier counts as RNG-like when its
/// lowercased name contains `rng`; it counts as captured when neither the
/// closure's parameters nor a `let`/`for` binding inside the closure body
/// introduce it. The fixture suite pins both directions.
fn shared_rng(toks: &[Token], out: &mut Vec<Finding>) {
    for i in 0..toks.len() {
        let is_adapter = match ident_at(toks, i) {
            Some(name) => {
                PAR_ADAPTERS.contains(&name)
                    || ((name == "join" || name == "scope" || name == "spawn")
                        && ident_at(toks, i.wrapping_sub(3)) == Some("rayon")
                        && punct_at(toks, i.wrapping_sub(2), ':')
                        && punct_at(toks, i.wrapping_sub(1), ':'))
            }
            None => false,
        };
        if !is_adapter {
            continue;
        }
        // The parallel expression: from the adapter to the statement end at
        // the adapter's nesting level (`;`, or a net-negative closer).
        let mut depth = 0i32;
        let mut end = i;
        while end < toks.len() {
            match toks[end].kind {
                TokenKind::Punct('(' | '[' | '{') => depth += 1,
                TokenKind::Punct(')' | ']' | '}') => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                TokenKind::Punct(';') if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        scan_closures_for_captured_rng(&toks[i..end], out);
    }
}

/// Finds closures in a parallel-expression token span and flags RNG-like
/// identifiers they use but do not bind.
fn scan_closures_for_captured_rng(span: &[Token], out: &mut Vec<Finding>) {
    let mut i = 0usize;
    while i < span.len() {
        let opens_closure = punct_at(span, i, '|')
            && (i == 0
                || matches!(&span[i - 1].kind, TokenKind::Punct('(' | ',' | '{' | '='))
                || ident_at(span, i - 1) == Some("move"));
        if !opens_closure {
            i += 1;
            continue;
        }
        // Parameters: up to the closing `|` (or an immediately-adjacent `|`
        // for `||`).
        let mut j = i + 1;
        let mut params: Vec<String> = Vec::new();
        while j < span.len() && !punct_at(span, j, '|') {
            if let Some(name) = ident_at(span, j) {
                params.push(name.to_string());
            }
            j += 1;
        }
        // Body: a braced block, or the expression up to `,`/`)` at depth 0.
        let body_start = j + 1;
        let mut k = body_start;
        let mut depth = 0i32;
        let braced = punct_at(span, body_start, '{');
        while k < span.len() {
            match span[k].kind {
                TokenKind::Punct('(' | '[' | '{') => depth += 1,
                TokenKind::Punct(')' | ']' | '}') => {
                    depth -= 1;
                    if depth < 0 || (braced && depth == 0) {
                        break;
                    }
                }
                TokenKind::Punct(',') if depth == 0 && !braced => break,
                _ => {}
            }
            k += 1;
        }
        let body = &span[body_start..k.min(span.len())];
        check_closure_body(body, &params, out);
        i = k + 1;
    }
}

fn check_closure_body(body: &[Token], params: &[String], out: &mut Vec<Finding>) {
    // Locally-bound names: closure params plus `let <pat> =` and
    // `for <pat> in` bindings anywhere in the body (flat scan — an
    // over-approximation that only ever *suppresses* findings).
    let mut bound: Vec<String> = params.to_vec();
    let mut i = 0usize;
    while i < body.len() {
        match ident_at(body, i) {
            Some("let") => {
                let mut j = i + 1;
                while j < body.len() && !punct_at(body, j, '=') && !punct_at(body, j, ';') {
                    if let Some(name) = ident_at(body, j) {
                        bound.push(name.to_string());
                    }
                    j += 1;
                }
                i = j;
            }
            Some("for") => {
                let mut j = i + 1;
                while j < body.len() && ident_at(body, j) != Some("in") {
                    if let Some(name) = ident_at(body, j) {
                        bound.push(name.to_string());
                    }
                    j += 1;
                }
                i = j;
            }
            _ => i += 1,
        }
    }
    for i in 0..body.len() {
        let Some(name) = ident_at(body, i) else {
            continue;
        };
        if !name.to_lowercase().contains("rng") || bound.iter().any(|b| b == name) {
            continue;
        }
        let consumed_as_rng =
            // `rng.gen_range(…)` and friends.
            (punct_at(body, i + 1, '.')
                && ident_at(body, i + 2).is_some_and(|m| RNG_METHODS.contains(&m)))
            // `&mut rng` handed onward.
            || (punct_at(body, i.wrapping_sub(2), '&')
                && ident_at(body, i.wrapping_sub(1)) == Some("mut"));
        if consumed_as_rng {
            out.push(Finding {
                rule: "shared-rng",
                line: body[i].line,
                message: format!(
                    "`{name}` is captured by a rayon parallel closure: one RNG \
                     stream consumed from multiple tasks makes the draw order \
                     scheduling-dependent. Derive a per-item rng inside the \
                     closure from a pure identity hash \
                     (see netsim::faults), or justify with \
                     `// xtask:allow(shared-rng): <why single-threaded>`"
                ),
            });
        }
    }
}
