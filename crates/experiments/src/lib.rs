//! Experiment harness for the noisy-pooled-data reproduction.
//!
//! Each module under [`figures`] regenerates one figure of the paper:
//!
//! | module | paper figure | content |
//! |---|---|---|
//! | [`figures::fig2`] | Figure 2 | required queries vs `n`, Z-channel, `p ∈ {0.1, 0.3, 0.5}` |
//! | [`figures::fig3`] | Figure 3 | required queries vs `n`, noisy query model vs noiseless |
//! | [`figures::fig4`] | Figure 4 | required queries vs `n`, general channel `p = q = 10⁻¹…10⁻⁵` |
//! | [`figures::fig5`] | Figure 5 | box plots of the required queries at `n = 10³, 10⁴, 10⁵` |
//! | [`figures::fig6`] | Figure 6 | success rate vs `m`, greedy vs AMP, `n = 1000` |
//! | [`figures::fig7`] | Figure 7 | overlap vs `m`, `n = 1000` |
//! | [`figures::theorems`] | Theorems 1–2 | bound constants vs measured thresholds |
//! | [`figures::comm`] | Section VI | communication cost: greedy protocol vs distributed AMP |
//! | [`figures::designs`] | (extension) | required queries per pooling design, one row per design |
//! | [`figures::chaos`] | (extension) | overlap degradation vs agent crash / corruption rate |
//!
//! Beyond the figures, the [`scenarios`] registry names complete
//! `(design × noise × decoder × n-grid)` configurations — one per headline
//! number — runnable end-to-end (`repro scenarios run <name>`); the README's
//! scenario catalog is generated from it.
//!
//! All experiments run on the [`runner`]'s rayon worker pool, write CSV
//! artifacts, and render ASCII charts so results are inspectable without a
//! plotting stack. The `repro` binary drives everything:
//!
//! ```text
//! repro fig2 [--full] [--out results/] [--trials N] [--threads N]
//! repro scenarios list
//! repro scenarios run doubly-regular-z01
//! repro all  --full
//! ```
//!
//! `--full` switches from the quick grids (minutes, `n ≤ 10⁴`) to the
//! paper-scale grids (`n ≤ 10⁵`, more trials).
//!
//! # Threading and determinism contract
//!
//! Every figure is **bit-identical at any thread count** — `--threads 1`,
//! `--threads 64` and `RAYON_NUM_THREADS=1` all produce the same CSV bytes.
//! The contract has three rules, and every new experiment must follow them:
//!
//! 1. **One seeded RNG per trial.** A trial's randomness comes only from
//!    `StdRng::seed_from_u64(mix_seed(cell_salt, trial_index))`; nothing is
//!    shared between trials, so scheduling cannot leak into results.
//! 2. **Order-preserving fan-out.** [`runner::parallel_map`] and
//!    [`runner::parallel_trials`] return results in input order regardless
//!    of which worker ran what; aggregation then happens sequentially on
//!    the caller.
//! 3. **No cross-trial floating-point reordering.** Parallelism is only
//!    ever *across* trials (or across matrix rows inside `npd-numerics`,
//!    where each output element keeps its sequential accumulation order) —
//!    never inside a reduction whose order the output observes. Reductions
//!    over trial results (success counts, medians, means) run sequentially
//!    over the ordered result vector.
//!
//! The regression test `tests/determinism.rs` at the workspace root pins
//! this contract, and `tests/distributed_equivalence.rs` additionally pins
//! the netsim-vs-sequential bit-equality the paper's distributed claim
//! rests on.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod figures;
pub mod output;
pub mod runner;
pub mod scenarios;
pub mod sweep;
pub mod trace;

use serde::{Deserialize, Serialize};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mode {
    /// Reduced grids and trial counts; minutes of wall clock.
    Quick,
    /// Paper-scale grids (`n` up to `10⁵`, ≥ 25 trials per point).
    Full,
}

impl Mode {
    /// Parses `--full` style flags.
    pub fn from_full_flag(full: bool) -> Self {
        if full {
            Mode::Full
        } else {
            Mode::Quick
        }
    }
}

/// Deterministic seed mixing (SplitMix64 finalizer) so every (figure,
/// configuration, trial) triple gets a decorrelated RNG stream.
pub fn mix_seed(base: u64, salt: u64) -> u64 {
    let mut z = base
        .wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_is_deterministic_and_spreads() {
        assert_eq!(mix_seed(1, 2), mix_seed(1, 2));
        assert_ne!(mix_seed(1, 2), mix_seed(1, 3));
        assert_ne!(mix_seed(1, 2), mix_seed(2, 2));
    }

    #[test]
    fn mode_flag() {
        assert_eq!(Mode::from_full_flag(true), Mode::Full);
        assert_eq!(Mode::from_full_flag(false), Mode::Quick);
    }
}
