//! Shared required-queries sweep machinery for Figures 2–5.

use crate::{mix_seed, runner};
use npd_core::{DesignSpec, IncrementalSim, NoiseModel, Regime};
use npd_numerics::stats::BoxPlot;
use serde::{Deserialize, Serialize};

/// The standard half-decade grid of population sizes used by Figures 2–4.
///
/// `max_exp10` bounds the grid: `3` yields `10²…10³`, `5` the paper's full
/// `10²…10⁵`.
pub fn n_grid(max_exp10: u32) -> Vec<usize> {
    let mut grid = Vec::new();
    let mut exp = 2.0f64;
    while exp <= max_exp10 as f64 + 1e-9 {
        grid.push(10f64.powf(exp).round() as usize);
        exp += 0.5;
    }
    grid
}

/// One point of a required-queries sweep: the sample of per-trial required
/// query counts for a fixed `(n, noise)` configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequiredSample {
    /// Population size.
    pub n: usize,
    /// Number of one-agents.
    pub k: usize,
    /// Per-trial required query counts (successful trials only).
    pub samples: Vec<f64>,
    /// Trials that hit the query budget without separating.
    pub failures: usize,
    /// The budget used.
    pub max_queries: usize,
}

impl RequiredSample {
    /// Median of the successful trials, `None` if all failed.
    pub fn median(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(npd_numerics::stats::median(&self.samples))
        }
    }

    /// Box-plot summary of the successful trials, `None` if all failed.
    pub fn boxplot(&self) -> Option<BoxPlot> {
        if self.samples.is_empty() {
            None
        } else {
            Some(BoxPlot::from_slice(&self.samples))
        }
    }
}

/// One cell of a required-queries grid: a `(n, regime, noise)`
/// configuration with its query budget and seed salt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepCell {
    /// Population size.
    pub n: usize,
    /// Sparsity regime determining `k`.
    pub regime: Regime,
    /// Noise model.
    pub noise: NoiseModel,
    /// Per-trial query budget.
    pub max_queries: usize,
    /// Seed salt decorrelating this cell; trial `i` uses
    /// `mix_seed(seed_salt, i)`.
    pub seed_salt: u64,
    /// Pooling design sampled incrementally
    /// (see [`IncrementalSim::with_design`]).
    pub design: DesignSpec,
    /// Query size `Γ`; `None` uses the paper's `n/2`.
    pub gamma: Option<usize>,
}

impl SweepCell {
    /// A cell with the paper's defaults (i.i.d. design, `Γ = n/2`).
    pub fn paper(
        n: usize,
        regime: Regime,
        noise: NoiseModel,
        max_queries: usize,
        seed_salt: u64,
    ) -> Self {
        Self {
            n,
            regime,
            noise,
            max_queries,
            seed_salt,
            design: DesignSpec::Iid,
            gamma: None,
        }
    }

    /// The cell's effective query size.
    pub fn gamma_or_default(&self) -> usize {
        self.gamma.unwrap_or(self.n / 2)
    }
}

/// Measures every grid cell, parallelizing over the *flattened*
/// `(cell, trial)` pairs rather than per cell.
///
/// Flattening matters for utilization: grids mix `n = 100` cells that
/// finish in microseconds with `n = 10⁵` cells that dominate the wall
/// clock, and a per-cell barrier would idle every worker while the big
/// cell's last trials drain. Each pair simulates with its own
/// independently seeded `StdRng` (`mix_seed(cell.seed_salt, trial)`), so
/// the outcome — and therefore each [`RequiredSample`] — is bit-identical
/// to the sequential loop at any thread count.
pub fn required_queries_grid(
    cells: &[SweepCell],
    trials: usize,
    threads: usize,
) -> Vec<RequiredSample> {
    let jobs: Vec<(usize, u64)> = cells
        .iter()
        .enumerate()
        .flat_map(|(ci, cell)| (0..trials as u64).map(move |t| (ci, mix_seed(cell.seed_salt, t))))
        .collect();
    let outcomes = runner::parallel_map(&jobs, threads, |&(ci, seed)| {
        let cell = &cells[ci];
        let k = cell.regime.k_for(cell.n);
        let mut sim = IncrementalSim::with_design(
            cell.n,
            k,
            cell.gamma_or_default(),
            cell.noise,
            cell.design,
            seed,
        );
        sim.required_queries(cell.max_queries)
    });
    let mut results: Vec<RequiredSample> = cells
        .iter()
        .map(|cell| RequiredSample {
            n: cell.n,
            k: cell.regime.k_for(cell.n),
            samples: Vec::new(),
            failures: 0,
            max_queries: cell.max_queries,
        })
        .collect();
    for (&(ci, _), outcome) in jobs.iter().zip(outcomes) {
        match outcome {
            Ok(r) => results[ci].samples.push(r.queries as f64),
            Err(_) => results[ci].failures += 1,
        }
    }
    results
}

/// Measures the required number of queries for one configuration across
/// `trials` independent runs (parallel over trials).
///
/// `seed_salt` decorrelates configurations; trial `i` uses
/// `mix_seed(seed_salt, i)`.
pub fn required_queries_sample(
    n: usize,
    regime: Regime,
    noise: NoiseModel,
    trials: usize,
    max_queries: usize,
    seed_salt: u64,
    threads: usize,
) -> RequiredSample {
    let cells = [SweepCell::paper(n, regime, noise, max_queries, seed_salt)];
    required_queries_grid(&cells, trials, threads)
        .pop()
        .expect("one cell in, one sample out")
}

/// A generous per-configuration query budget for required-queries sweeps.
///
/// # Derivation
///
/// Theorem 1 of the paper gives, for each noise model, a query count
/// `m*(n, θ, noise, ε)` at which Algorithm 1 reconstructs exactly with
/// probability `1 − ε` — the dashed reference lines of Figures 2–4
/// (`npd_theory::bounds::{z_channel,noisy_channel,noisy_query}_sublinear_queries`,
/// evaluated here at the figures' `ε = 0.05`). The budget is derived from
/// that bound in three steps:
///
/// 1. **Match the noise model**: the noiseless budget uses the Z-channel
///    bound at `p = 0` (Theorem 1's noiseless statement is its `p → 0`
///    limit), channel noise the general-channel bound, query noise the
///    `λ√m`-Gaussian bound.
/// 2. **Multiply by 4**: Theorem 1 upper-bounds the *median* behaviour the
///    figures plot, but individual trials fluctuate and the sweep needs
///    (nearly) every trial to terminate rather than be censored at the
///    budget — empirically the per-trial maximum over 25 trials stays
///    under `2×` the bound across the paper's grid, so `4×` leaves a
///    further factor-two margin without making hopeless configurations
///    (Theorem 2's failure regime, reported as `failures`) run forever.
/// 3. **Floor at 200**: below `n ≈ 100` the asymptotic bound dips under
///    the small-`n` constant cost (`k ln n` with all constants visible),
///    and a 200-query floor keeps tiny grid cells from being cut short.
///
/// The `budget_pins_paper_operating_points` test pins the resulting values
/// at the paper's figure operating points.
pub fn default_budget(n: usize, theta: f64, noise: &NoiseModel) -> usize {
    let nf = n as f64;
    let bound = match *noise {
        NoiseModel::Noiseless => {
            npd_theory::bounds::z_channel_sublinear_queries(nf, theta, 0.0, 0.05)
        }
        NoiseModel::Channel { p, q } => {
            npd_theory::bounds::noisy_channel_sublinear_queries(nf, theta, p, q, 0.05)
        }
        NoiseModel::Query { .. } => {
            npd_theory::bounds::noisy_query_sublinear_queries(nf, theta, 0.05)
        }
    };
    ((bound * 4.0) as usize).max(200)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_spans_half_decades() {
        let g = n_grid(3);
        assert_eq!(g, vec![100, 316, 1000]);
        let g5 = n_grid(5);
        assert_eq!(g5.len(), 7);
        assert_eq!(*g5.last().unwrap(), 100_000);
    }

    #[test]
    fn sample_collects_trials() {
        let s = required_queries_sample(
            200,
            Regime::sublinear(0.25),
            NoiseModel::Noiseless,
            4,
            5_000,
            1,
            2,
        );
        assert_eq!(s.samples.len() + s.failures, 4);
        assert!(s.failures == 0, "unexpected failures: {}", s.failures);
        let median = s.median().unwrap();
        assert!(median > 5.0 && median < 2_000.0, "median={median}");
        assert!(s.boxplot().is_some());
    }

    #[test]
    fn sample_is_deterministic() {
        let call = || {
            required_queries_sample(
                150,
                Regime::sublinear(0.25),
                NoiseModel::z_channel(0.1),
                3,
                5_000,
                9,
                2,
            )
        };
        assert_eq!(call(), call());
    }

    #[test]
    fn failures_counted_under_hopeless_noise() {
        // λ = 100 with a tight budget: Theorem 2's failure regime.
        let s = required_queries_sample(
            100,
            Regime::sublinear(0.25),
            NoiseModel::gaussian(100.0),
            3,
            150,
            4,
            2,
        );
        assert!(s.failures > 0);
        assert!(s.median().is_none() || s.samples.len() < 3);
    }

    #[test]
    fn grid_matches_per_cell_samples_at_any_thread_count() {
        let cells: Vec<SweepCell> = [(150usize, 3u64), (200, 4), (250, 5)]
            .into_iter()
            .map(|(n, salt)| {
                SweepCell::paper(
                    n,
                    Regime::sublinear(0.25),
                    NoiseModel::z_channel(0.1),
                    5_000,
                    salt,
                )
            })
            .collect();
        let sequential = required_queries_grid(&cells, 3, 1);
        for threads in [2usize, 4, 8] {
            assert_eq!(
                required_queries_grid(&cells, 3, threads),
                sequential,
                "threads={threads}"
            );
        }
        // And the single-cell wrapper agrees with the grid.
        for (cell, want) in cells.iter().zip(&sequential) {
            let got = required_queries_sample(
                cell.n,
                cell.regime,
                cell.noise,
                3,
                cell.max_queries,
                cell.seed_salt,
                4,
            );
            assert_eq!(&got, want);
        }
    }

    #[test]
    fn budget_pins_paper_operating_points() {
        // The budget formula is a contract with Figures 2–5 (changing it
        // silently shifts every sweep's censoring point); pin its values at
        // the paper's operating points: θ = 0.25, n ∈ {10³, 10⁴, 10⁵}.
        let cases: [(usize, NoiseModel, usize); 7] = [
            // Noiseless (Z-channel bound at p = 0): ~k ln n growth.
            (1_000, NoiseModel::Noiseless, 567),
            (10_000, NoiseModel::Noiseless, 1_346),
            (100_000, NoiseModel::Noiseless, 2_992),
            // Z-channel: the 1/(1−p)-style inflation of Theorem 1.
            (10_000, NoiseModel::z_channel(0.1), 1_495),
            (10_000, NoiseModel::z_channel(0.5), 2_692),
            // General channel with q > 0: the q·n·ln n regime dominates
            // (Figure 4 caps this at 400k in its sweep).
            (10_000, NoiseModel::channel(0.1, 0.1), 212_007),
            // λ√m query noise: Theorem 1's bound is λ-independent (the
            // noise grows with m exactly as the signal margin does).
            (10_000, NoiseModel::gaussian(1.0), 1_346),
        ];
        for (n, noise, want) in cases {
            assert_eq!(
                default_budget(n, 0.25, &noise),
                want,
                "n={n}, noise={noise:?}"
            );
        }
        // The floor: tiny populations are never cut below 200 queries.
        assert_eq!(default_budget(10, 0.25, &NoiseModel::Noiseless), 200);
    }

    #[test]
    fn grid_accepts_non_default_designs() {
        let mut cell = SweepCell::paper(
            200,
            Regime::sublinear(0.25),
            NoiseModel::z_channel(0.1),
            10_000,
            7,
        );
        cell.design = DesignSpec::DoublyRegular;
        cell.gamma = Some(50);
        assert_eq!(cell.gamma_or_default(), 50);
        let samples = required_queries_grid(&[cell], 3, 2);
        assert_eq!(samples[0].samples.len() + samples[0].failures, 3);
        // The deck-based doubly regular design separates on this easy
        // configuration.
        assert!(samples[0].median().is_some());
    }

    #[test]
    fn budget_scales_with_noise() {
        let clean = default_budget(1000, 0.25, &NoiseModel::Noiseless);
        let noisy = default_budget(1000, 0.25, &NoiseModel::z_channel(0.5));
        assert!(noisy > clean);
        assert!(clean >= 200);
    }
}
