//! Shared required-queries sweep machinery for Figures 2–5.

use crate::{mix_seed, runner};
use npd_core::{IncrementalSim, NoiseModel, Regime};
use npd_numerics::stats::BoxPlot;
use serde::{Deserialize, Serialize};

/// The standard half-decade grid of population sizes used by Figures 2–4.
///
/// `max_exp10` bounds the grid: `3` yields `10²…10³`, `5` the paper's full
/// `10²…10⁵`.
pub fn n_grid(max_exp10: u32) -> Vec<usize> {
    let mut grid = Vec::new();
    let mut exp = 2.0f64;
    while exp <= max_exp10 as f64 + 1e-9 {
        grid.push(10f64.powf(exp).round() as usize);
        exp += 0.5;
    }
    grid
}

/// One point of a required-queries sweep: the sample of per-trial required
/// query counts for a fixed `(n, noise)` configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequiredSample {
    /// Population size.
    pub n: usize,
    /// Number of one-agents.
    pub k: usize,
    /// Per-trial required query counts (successful trials only).
    pub samples: Vec<f64>,
    /// Trials that hit the query budget without separating.
    pub failures: usize,
    /// The budget used.
    pub max_queries: usize,
}

impl RequiredSample {
    /// Median of the successful trials, `None` if all failed.
    pub fn median(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(npd_numerics::stats::median(&self.samples))
        }
    }

    /// Box-plot summary of the successful trials, `None` if all failed.
    pub fn boxplot(&self) -> Option<BoxPlot> {
        if self.samples.is_empty() {
            None
        } else {
            Some(BoxPlot::from_slice(&self.samples))
        }
    }
}

/// One cell of a required-queries grid: a `(n, regime, noise)`
/// configuration with its query budget and seed salt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepCell {
    /// Population size.
    pub n: usize,
    /// Sparsity regime determining `k`.
    pub regime: Regime,
    /// Noise model.
    pub noise: NoiseModel,
    /// Per-trial query budget.
    pub max_queries: usize,
    /// Seed salt decorrelating this cell; trial `i` uses
    /// `mix_seed(seed_salt, i)`.
    pub seed_salt: u64,
}

/// Measures every grid cell, parallelizing over the *flattened*
/// `(cell, trial)` pairs rather than per cell.
///
/// Flattening matters for utilization: grids mix `n = 100` cells that
/// finish in microseconds with `n = 10⁵` cells that dominate the wall
/// clock, and a per-cell barrier would idle every worker while the big
/// cell's last trials drain. Each pair simulates with its own
/// independently seeded `StdRng` (`mix_seed(cell.seed_salt, trial)`), so
/// the outcome — and therefore each [`RequiredSample`] — is bit-identical
/// to the sequential loop at any thread count.
pub fn required_queries_grid(
    cells: &[SweepCell],
    trials: usize,
    threads: usize,
) -> Vec<RequiredSample> {
    let jobs: Vec<(usize, u64)> = cells
        .iter()
        .enumerate()
        .flat_map(|(ci, cell)| (0..trials as u64).map(move |t| (ci, mix_seed(cell.seed_salt, t))))
        .collect();
    let outcomes = runner::parallel_map(&jobs, threads, |&(ci, seed)| {
        let cell = &cells[ci];
        let k = cell.regime.k_for(cell.n);
        let mut sim = IncrementalSim::new(cell.n, k, cell.noise, seed);
        sim.required_queries(cell.max_queries)
    });
    let mut results: Vec<RequiredSample> = cells
        .iter()
        .map(|cell| RequiredSample {
            n: cell.n,
            k: cell.regime.k_for(cell.n),
            samples: Vec::new(),
            failures: 0,
            max_queries: cell.max_queries,
        })
        .collect();
    for (&(ci, _), outcome) in jobs.iter().zip(outcomes) {
        match outcome {
            Ok(r) => results[ci].samples.push(r.queries as f64),
            Err(_) => results[ci].failures += 1,
        }
    }
    results
}

/// Measures the required number of queries for one configuration across
/// `trials` independent runs (parallel over trials).
///
/// `seed_salt` decorrelates configurations; trial `i` uses
/// `mix_seed(seed_salt, i)`.
pub fn required_queries_sample(
    n: usize,
    regime: Regime,
    noise: NoiseModel,
    trials: usize,
    max_queries: usize,
    seed_salt: u64,
    threads: usize,
) -> RequiredSample {
    let cells = [SweepCell {
        n,
        regime,
        noise,
        max_queries,
        seed_salt,
    }];
    required_queries_grid(&cells, trials, threads)
        .pop()
        .expect("one cell in, one sample out")
}

/// A generous per-configuration query budget: a multiple of the relevant
/// Theorem-1 bound, floored at 200 so tiny instances are not cut short.
pub fn default_budget(n: usize, theta: f64, noise: &NoiseModel) -> usize {
    let nf = n as f64;
    let bound = match *noise {
        NoiseModel::Noiseless => {
            npd_theory::bounds::z_channel_sublinear_queries(nf, theta, 0.0, 0.05)
        }
        NoiseModel::Channel { p, q } => {
            npd_theory::bounds::noisy_channel_sublinear_queries(nf, theta, p, q, 0.05)
        }
        NoiseModel::Query { .. } => {
            npd_theory::bounds::noisy_query_sublinear_queries(nf, theta, 0.05)
        }
    };
    ((bound * 4.0) as usize).max(200)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_spans_half_decades() {
        let g = n_grid(3);
        assert_eq!(g, vec![100, 316, 1000]);
        let g5 = n_grid(5);
        assert_eq!(g5.len(), 7);
        assert_eq!(*g5.last().unwrap(), 100_000);
    }

    #[test]
    fn sample_collects_trials() {
        let s = required_queries_sample(
            200,
            Regime::sublinear(0.25),
            NoiseModel::Noiseless,
            4,
            5_000,
            1,
            2,
        );
        assert_eq!(s.samples.len() + s.failures, 4);
        assert!(s.failures == 0, "unexpected failures: {}", s.failures);
        let median = s.median().unwrap();
        assert!(median > 5.0 && median < 2_000.0, "median={median}");
        assert!(s.boxplot().is_some());
    }

    #[test]
    fn sample_is_deterministic() {
        let call = || {
            required_queries_sample(
                150,
                Regime::sublinear(0.25),
                NoiseModel::z_channel(0.1),
                3,
                5_000,
                9,
                2,
            )
        };
        assert_eq!(call(), call());
    }

    #[test]
    fn failures_counted_under_hopeless_noise() {
        // λ = 100 with a tight budget: Theorem 2's failure regime.
        let s = required_queries_sample(
            100,
            Regime::sublinear(0.25),
            NoiseModel::gaussian(100.0),
            3,
            150,
            4,
            2,
        );
        assert!(s.failures > 0);
        assert!(s.median().is_none() || s.samples.len() < 3);
    }

    #[test]
    fn grid_matches_per_cell_samples_at_any_thread_count() {
        let cells: Vec<SweepCell> = [(150usize, 3u64), (200, 4), (250, 5)]
            .into_iter()
            .map(|(n, salt)| SweepCell {
                n,
                regime: Regime::sublinear(0.25),
                noise: NoiseModel::z_channel(0.1),
                max_queries: 5_000,
                seed_salt: salt,
            })
            .collect();
        let sequential = required_queries_grid(&cells, 3, 1);
        for threads in [2usize, 4, 8] {
            assert_eq!(
                required_queries_grid(&cells, 3, threads),
                sequential,
                "threads={threads}"
            );
        }
        // And the single-cell wrapper agrees with the grid.
        for (cell, want) in cells.iter().zip(&sequential) {
            let got = required_queries_sample(
                cell.n,
                cell.regime,
                cell.noise,
                3,
                cell.max_queries,
                cell.seed_salt,
                4,
            );
            assert_eq!(&got, want);
        }
    }

    #[test]
    fn budget_scales_with_noise() {
        let clean = default_budget(1000, 0.25, &NoiseModel::Noiseless);
        let noisy = default_budget(1000, 0.25, &NoiseModel::z_channel(0.5));
        assert!(noisy > clean);
        assert!(clean >= 200);
    }
}
