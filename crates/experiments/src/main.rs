//! `repro` — regenerate the paper's figures and run registered scenarios
//! from the command line.
//!
//! ```text
//! repro <target> [--full] [--json] [--out DIR] [--trials N] [--threads N]
//! repro scenarios list
//! repro scenarios run <name>|--all [--full] [--json] [--out DIR] [--trials N] [--threads N]
//!
//! targets: fig1 fig2 fig3 fig4 fig5 fig6 fig7 theorems comm ablations
//!          decoders adaptive designs linear workloads chaos all
//!
//! `--json` prints each report as a machine-readable JSON document (and
//! writes `<name>.json` next to the CSV) for the bench/CI pipeline.
//! ```

use npd_experiments::figures::{self, FigureReport, RunOptions};
use npd_experiments::{runner, scenarios, trace, Mode};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(cli) => execute(cli),
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage: repro <fig1|fig2|fig3|fig4|fig5|fig6|fig7|theorems|comm|ablations\
                     |decoders|adaptive|designs|linear|workloads|chaos|categorical|all> \
                     [--full] [--json] [--out DIR] [--trials N] [--threads N]\n\
       repro scenarios list\n\
       repro scenarios run <name>|--all [--full] [--json] [--out DIR] [--trials N] \
[--threads N] [--trace FILE] [--metrics]\n\
\n\
`--trace FILE` additionally runs one representative traced execution of the \
scenario and writes its event stream: `.jsonl` selects the deterministic \
JSON-lines plane, any other extension the Chrome trace-event format. \
`--metrics` prints the recorded counter/gauge/histogram registry and, for \
protocol scenarios, the per-phase message profile.";

#[derive(Debug, Clone, PartialEq, Eq)]
struct Cli {
    target: String,
    /// Positional arguments after the target (the `scenarios` subcommand).
    extra: Vec<String>,
    opts_mode: Mode,
    out_dir: PathBuf,
    trials: Option<usize>,
    threads: usize,
    /// Emit machine-readable JSON (stdout + `<name>.json`) instead of the
    /// ASCII rendering.
    json: bool,
    /// `scenarios run --all`: run every registered scenario.
    all_scenarios: bool,
    /// `--trace FILE`: write the representative traced execution's event
    /// stream here (`.jsonl` = deterministic plane, else Chrome trace).
    trace: Option<PathBuf>,
    /// `--metrics`: print the recorded metrics registry and phase profile.
    metrics: bool,
}

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut target: Option<String> = None;
    let mut extra: Vec<String> = Vec::new();
    let mut full = false;
    let mut out_dir = PathBuf::from("results");
    let mut trials = None;
    let mut threads = runner::default_threads();
    let mut json = false;
    let mut all_scenarios = false;
    let mut trace: Option<PathBuf> = None;
    let mut metrics = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--json" => json = true,
            "--all" => all_scenarios = true,
            "--metrics" => metrics = true,
            "--trace" => {
                trace = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--trace requires a file path".to_string())?,
                ));
            }
            "--out" => {
                out_dir = PathBuf::from(
                    it.next()
                        .ok_or_else(|| "--out requires a directory".to_string())?,
                );
            }
            "--trials" => {
                trials = Some(
                    it.next()
                        .ok_or_else(|| "--trials requires a number".to_string())?
                        .parse::<usize>()
                        .map_err(|e| format!("--trials: {e}"))?,
                );
            }
            "--threads" => {
                threads = it
                    .next()
                    .ok_or_else(|| "--threads requires a number".to_string())?
                    .parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))?
                    .max(1);
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            name => match &target {
                None => target = Some(name.to_string()),
                Some(t) if t == "scenarios" => extra.push(name.to_string()),
                Some(_) => return Err(format!("unexpected extra argument {name}")),
            },
        }
    }
    let target = target.ok_or_else(|| "a target is required".to_string())?;
    if all_scenarios && target != "scenarios" {
        return Err("--all is only valid with `scenarios run`".into());
    }
    if (trace.is_some() || metrics)
        && (target != "scenarios" || extra.first().map(String::as_str) != Some("run"))
    {
        return Err("--trace/--metrics are only valid with `scenarios run`".into());
    }
    if trace.is_some() && all_scenarios {
        return Err("--trace takes a single scenario, not --all".into());
    }
    if target == "scenarios" {
        match extra.first().map(String::as_str) {
            Some("list") => {
                if extra.len() > 1 {
                    return Err("scenarios list takes no further arguments".into());
                }
                if all_scenarios {
                    return Err("--all is only valid with `scenarios run`".into());
                }
            }
            Some("run") if all_scenarios => {
                if extra.len() > 1 {
                    return Err("scenarios run --all takes no scenario name".into());
                }
            }
            Some("run") => {
                let name = extra.get(1).ok_or_else(|| {
                    "scenarios run requires a scenario name (or --all)".to_string()
                })?;
                if scenarios::find(name).is_none() {
                    return Err(format!(
                        "unknown scenario {name} (see `repro scenarios list`)"
                    ));
                }
                if extra.len() > 2 {
                    return Err("scenarios run takes exactly one scenario name".into());
                }
            }
            _ => return Err("scenarios requires a subcommand: list or run <name>|--all".into()),
        }
        return Ok(Cli {
            target,
            extra,
            opts_mode: Mode::from_full_flag(full),
            out_dir,
            trials,
            threads,
            json,
            all_scenarios,
            trace,
            metrics,
        });
    }
    const KNOWN: [&str; 18] = [
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "theorems",
        "comm",
        "ablations",
        "decoders",
        "adaptive",
        "designs",
        "linear",
        "workloads",
        "chaos",
        "categorical",
        "all",
    ];
    if !KNOWN.contains(&target.as_str()) {
        return Err(format!("unknown target {target}"));
    }
    Ok(Cli {
        target,
        extra,
        opts_mode: Mode::from_full_flag(full),
        out_dir,
        trials,
        threads,
        json,
        all_scenarios,
        trace,
        metrics,
    })
}

fn execute(cli: Cli) -> ExitCode {
    let opts = RunOptions {
        mode: cli.opts_mode,
        trials: cli.trials,
        threads: cli.threads,
    };
    if cli.target == "scenarios" {
        return execute_scenarios(&cli, &opts);
    }
    let targets: Vec<&str> = if cli.target == "all" {
        vec![
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "theorems",
            "comm",
            "ablations",
            "decoders",
            "adaptive",
            "designs",
            "linear",
            "workloads",
            "chaos",
            "categorical",
        ]
    } else {
        vec![cli.target.as_str()]
    };

    for target in targets {
        // xtask:allow(wall-clock): elapsed time is printed for the human, never written into a report/CSV
        let start = Instant::now();
        let report = run_target(target, &opts);
        let elapsed = start.elapsed();
        if let Err(e) = emit_report(&report, &cli, elapsed) {
            eprintln!("error: writing artifacts for {target}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Prints a report (ASCII or JSON per `--json`) and writes its artifacts.
fn emit_report(
    report: &FigureReport,
    cli: &Cli,
    elapsed: std::time::Duration,
) -> std::io::Result<()> {
    if cli.json {
        println!("{}", report.to_json());
        report.write_json(&cli.out_dir)?;
    } else {
        println!("{}", report.rendered);
        for note in &report.notes {
            println!("  note: {note}");
        }
    }
    let path = report.write_csv(&cli.out_dir)?;
    if !cli.json {
        println!("  csv: {} ({elapsed:.1?})\n", path.display());
    }
    Ok(())
}

fn execute_scenarios(cli: &Cli, opts: &RunOptions) -> ExitCode {
    match cli.extra.first().map(String::as_str) {
        Some("list") => {
            println!("{}", scenarios::list_rendered());
            ExitCode::SUCCESS
        }
        Some("run") => {
            let targets: Vec<scenarios::Scenario> = if cli.all_scenarios {
                scenarios::registry()
            } else {
                let name = cli.extra.get(1).expect("validated in parse()");
                vec![scenarios::find(name).expect("validated in parse()")]
            };
            for scenario in targets {
                // xtask:allow(wall-clock): elapsed time is printed for the human, never written into a report/CSV
                let start = Instant::now();
                let report = scenarios::run(&scenario, opts);
                let elapsed = start.elapsed();
                if let Err(e) = emit_report(&report, cli, elapsed) {
                    eprintln!(
                        "error: writing artifacts for scenario {}: {e}",
                        scenario.name
                    );
                    return ExitCode::FAILURE;
                }
                if cli.trace.is_some() || cli.metrics {
                    if let Err(e) = emit_trace(&scenario, cli, opts) {
                        eprintln!("error: tracing scenario {}: {e}", scenario.name);
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        _ => unreachable!("subcommand validated in parse()"),
    }
}

/// `--trace`/`--metrics`: one representative traced execution of the
/// scenario, on top of the (untraced) normal run. The trace file format
/// follows the extension — `.jsonl` is the deterministic event plane
/// (byte-identical across shard/thread counts), anything else the
/// Chrome trace-event JSON with wall-clock timestamps.
fn emit_trace(scenario: &scenarios::Scenario, cli: &Cli, opts: &RunOptions) -> std::io::Result<()> {
    let sink = trace::build_sink(cli.trace.as_deref());
    let label = scenarios::run_traced(scenario, opts, &sink);
    println!("traced: {label}");
    if let Some(path) = &cli.trace {
        trace::write_trace(&sink, path)?;
        println!("  trace: {}", path.display());
    }
    if cli.metrics {
        if let (Some(snapshot), Some(recorder)) = (sink.snapshot(), sink.recorder()) {
            print!("{}", trace::render_metrics(&snapshot, &recorder.events()));
        }
    }
    Ok(())
}

fn run_target(target: &str, opts: &RunOptions) -> FigureReport {
    match target {
        "fig1" => figures::fig1::run(),
        "fig2" => figures::fig2::run(opts),
        "fig3" => figures::fig3::run(opts),
        "fig4" => figures::fig4::run(opts),
        "fig5" => figures::fig5::run(opts),
        "fig6" => figures::fig6::run(opts),
        "fig7" => figures::fig7::run(opts),
        "theorems" => figures::theorems::run(opts),
        "comm" => figures::comm::run(opts),
        "ablations" => figures::ablations::run(opts),
        "decoders" => figures::decoders::run(opts),
        "adaptive" => figures::adaptive::run(opts),
        "designs" => figures::designs::run(opts),
        "linear" => figures::linear::run(opts),
        "workloads" => figures::workloads::run(opts),
        "chaos" => figures::chaos::run(opts),
        "categorical" => figures::categorical::run(opts),
        other => unreachable!("target {other} validated in parse()"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_minimal() {
        let cli = parse(&args(&["fig2"])).unwrap();
        assert_eq!(cli.target, "fig2");
        assert_eq!(cli.opts_mode, Mode::Quick);
        assert_eq!(cli.out_dir, PathBuf::from("results"));
        assert_eq!(cli.trials, None);
    }

    #[test]
    fn parse_all_flags() {
        let cli = parse(&args(&[
            "all",
            "--full",
            "--out",
            "/tmp/x",
            "--trials",
            "7",
            "--threads",
            "3",
        ]))
        .unwrap();
        assert_eq!(cli.target, "all");
        assert_eq!(cli.opts_mode, Mode::Full);
        assert_eq!(cli.out_dir, PathBuf::from("/tmp/x"));
        assert_eq!(cli.trials, Some(7));
        assert_eq!(cli.threads, 3);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse(&args(&[])).is_err());
        assert!(parse(&args(&["figX"])).is_err());
        assert!(parse(&args(&["fig2", "--bogus"])).is_err());
        assert!(parse(&args(&["fig2", "--trials", "abc"])).is_err());
        assert!(parse(&args(&["fig2", "fig3"])).is_err());
    }

    #[test]
    fn parse_json_and_all_flags() {
        let cli = parse(&args(&["fig2", "--json"])).unwrap();
        assert!(cli.json);
        assert!(!cli.all_scenarios);

        let cli = parse(&args(&[
            "scenarios",
            "run",
            "--all",
            "--json",
            "--trials",
            "1",
        ]))
        .unwrap();
        assert!(cli.all_scenarios && cli.json);
        assert_eq!(cli.trials, Some(1));

        assert!(parse(&args(&["fig2", "--all"])).is_err());
        assert!(parse(&args(&["scenarios", "list", "--all"])).is_err());
        assert!(parse(&args(&["scenarios", "run", "paper-z01", "--all"])).is_err());
        assert!(parse(&args(&["workloads"])).is_ok());
    }

    #[test]
    fn parse_scenarios_subcommands() {
        let cli = parse(&args(&["scenarios", "list"])).unwrap();
        assert_eq!(cli.target, "scenarios");
        assert_eq!(cli.extra, vec!["list".to_string()]);

        let cli = parse(&args(&["scenarios", "run", "paper-z01", "--trials", "2"])).unwrap();
        assert_eq!(cli.extra, vec!["run".to_string(), "paper-z01".to_string()]);
        assert_eq!(cli.trials, Some(2));

        assert!(parse(&args(&["scenarios"])).is_err());
        assert!(parse(&args(&["scenarios", "run"])).is_err());
        assert!(parse(&args(&["scenarios", "run", "nope"])).is_err());
        assert!(parse(&args(&["scenarios", "list", "extra"])).is_err());
        assert!(parse(&args(&["scenarios", "run", "paper-z01", "x"])).is_err());
    }

    #[test]
    fn parse_trace_and_metrics_flags() {
        let cli = parse(&args(&[
            "scenarios",
            "run",
            "paper-z01",
            "--trace",
            "/tmp/out.json",
            "--metrics",
        ]))
        .unwrap();
        assert_eq!(cli.trace, Some(PathBuf::from("/tmp/out.json")));
        assert!(cli.metrics);

        // --metrics alone is fine (registry print, no file).
        let cli = parse(&args(&["scenarios", "run", "paper-z01", "--metrics"])).unwrap();
        assert_eq!(cli.trace, None);
        assert!(cli.metrics);

        // Tracing is scoped to a single scenario run.
        assert!(parse(&args(&["scenarios", "run", "paper-z01", "--trace"])).is_err());
        assert!(parse(&args(&["fig2", "--trace", "/tmp/t.json"])).is_err());
        assert!(parse(&args(&["fig2", "--metrics"])).is_err());
        assert!(parse(&args(&["scenarios", "list", "--metrics"])).is_err());
        assert!(parse(&args(&[
            "scenarios",
            "run",
            "--all",
            "--trace",
            "/tmp/t.json"
        ]))
        .is_err());
    }
}
