//! CSV artifacts and ASCII rendering.
//!
//! The paper's figures are log-log line charts and box plots; this module
//! renders both as plain text so `repro` output is inspectable in a
//! terminal, and writes the underlying data as CSV for external plotting.

use npd_numerics::stats::BoxPlot;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A named data series for charts.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
    /// Marker character used in the ASCII chart.
    pub marker: char,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, marker: char) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
            marker,
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }
}

/// Renders series on a log-log ASCII grid (the shape of Figures 2–4).
///
/// Points with non-positive coordinates are skipped (cannot be drawn in log
/// space). Returns a self-contained multi-line string including a legend.
pub fn loglog_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    chart_impl(title, series, width, height, true, true)
}

/// Renders series on a lin-lin ASCII grid (the shape of Figures 6–7).
pub fn linear_chart(title: &str, series: &[Series], width: usize, height: usize) -> String {
    chart_impl(title, series, width, height, false, false)
}

fn chart_impl(
    title: &str,
    series: &[Series],
    width: usize,
    height: usize,
    log_x: bool,
    log_y: bool,
) -> String {
    let width = width.max(16);
    let height = height.max(8);
    let tx = |x: f64| if log_x { x.log10() } else { x };
    let ty = |y: f64| if log_y { y.log10() } else { y };

    let mut pts: Vec<(usize, f64, f64)> = Vec::new();
    for (si, s) in series.iter().enumerate() {
        for &(x, y) in &s.points {
            if (log_x && x <= 0.0) || (log_y && y <= 0.0) {
                continue;
            }
            pts.push((si, tx(x), ty(y)));
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    if pts.is_empty() {
        let _ = writeln!(out, "  (no drawable points)");
        return out;
    }
    let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(_, x, y) in &pts {
        x_lo = x_lo.min(x);
        x_hi = x_hi.max(x);
        y_lo = y_lo.min(y);
        y_hi = y_hi.max(y);
    }
    if (x_hi - x_lo).abs() < 1e-12 {
        x_hi = x_lo + 1.0;
    }
    if (y_hi - y_lo).abs() < 1e-12 {
        y_hi = y_lo + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for &(si, x, y) in &pts {
        let col = ((x - x_lo) / (x_hi - x_lo) * (width - 1) as f64).round() as usize;
        let row = ((y - y_lo) / (y_hi - y_lo) * (height - 1) as f64).round() as usize;
        let row = height - 1 - row;
        grid[row][col.min(width - 1)] = series[si].marker;
    }

    let fmt_axis = |v: f64, log: bool| -> String {
        if log {
            format!("{:.3e}", 10f64.powf(v))
        } else {
            format!("{v:.1}")
        }
    };
    let _ = writeln!(
        out,
        "  y: {} .. {}",
        fmt_axis(y_lo, log_y),
        fmt_axis(y_hi, log_y)
    );
    for row in &grid {
        let line: String = row.iter().collect();
        let _ = writeln!(out, "  |{line}|");
    }
    let _ = writeln!(
        out,
        "  x: {} .. {}",
        fmt_axis(x_lo, log_x),
        fmt_axis(x_hi, log_x)
    );
    for s in series {
        let _ = writeln!(out, "  {} {}", s.marker, s.name);
    }
    out
}

/// Renders one box plot line: `min ├──[q1│median│q3]──┤ max` scaled into
/// `width` columns over `[lo, hi]` (log10 if `log` is set).
pub fn boxplot_line(bp: &BoxPlot, lo: f64, hi: f64, width: usize, log: bool) -> String {
    let width = width.max(20);
    let t = |v: f64| -> usize {
        let v = if log { v.max(1e-300).log10() } else { v };
        let lo_t = if log { lo.max(1e-300).log10() } else { lo };
        let hi_t = if log { hi.max(1e-300).log10() } else { hi };
        let span = (hi_t - lo_t).max(1e-12);
        (((v - lo_t) / span) * (width - 1) as f64)
            .round()
            .clamp(0.0, (width - 1) as f64) as usize
    };
    let mut line = vec![' '; width];
    let (wl, q1, med, q3, wh) = (
        t(bp.whisker_low),
        t(bp.q1),
        t(bp.median),
        t(bp.q3),
        t(bp.whisker_high),
    );
    for cell in line.iter_mut().take(q1).skip(wl) {
        *cell = '-';
    }
    for cell in line.iter_mut().take(wh + 1).skip(q3) {
        *cell = '-';
    }
    for cell in line.iter_mut().take(q3).skip(q1) {
        *cell = '=';
    }
    line[wl] = '|';
    line[wh.min(width - 1)] = '|';
    line[q1] = '[';
    line[q3.min(width - 1)] = ']';
    line[med.min(width - 1)] = '#';
    line.into_iter().collect()
}

/// Renders a fixed-width text table: headers plus rows.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("  ");
        for (i, cell) in cells.iter().enumerate() {
            let _ = write!(line, "{:<w$}  ", cell, w = widths[i]);
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    let _ = writeln!(out, "{}", render_row(&header_cells, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * cols + 2;
    let _ = writeln!(out, "  {}", "-".repeat(total.saturating_sub(2)));
    for row in rows {
        let _ = writeln!(out, "{}", render_row(row, &widths));
    }
    out
}

/// Writes a CSV file (header plus rows) under `dir`, creating the directory
/// if needed. Returns the full path written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(
    dir: &Path,
    file: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) -> io::Result<std::path::PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(file);
    let mut body = String::new();
    let _ = writeln!(body, "{}", headers.join(","));
    for row in rows {
        let escaped: Vec<String> = row
            .iter()
            .map(|cell| {
                if cell.contains(',') || cell.contains('"') {
                    format!("\"{}\"", cell.replace('"', "\"\""))
                } else {
                    cell.clone()
                }
            })
            .collect();
        let _ = writeln!(body, "{}", escaped.join(","));
    }
    fs::write(&path, body)?;
    Ok(path)
}

/// JSON string escaping per RFC 8259 (the vendored `serde` is a no-op
/// marker stand-in, so machine-readable output is emitted by hand).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a JSON array of strings.
pub fn json_string_array(items: &[String]) -> String {
    let quoted: Vec<String> = items
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!("[{}]", quoted.join(","))
}

/// Writes a ready-rendered JSON document under `dir` as `file`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_json(dir: &Path, file: &str, json: &str) -> io::Result<std::path::PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(file);
    fs::write(&path, format!("{json}\n"))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_builds() {
        let mut s = Series::new("p=0.1", '*');
        s.push(100.0, 50.0);
        assert_eq!(s.points, vec![(100.0, 50.0)]);
    }

    #[test]
    fn loglog_chart_renders_points_and_legend() {
        let mut s = Series::new("demo", '*');
        s.push(100.0, 10.0);
        s.push(1000.0, 100.0);
        s.push(10000.0, 1000.0);
        let chart = loglog_chart("title", &[s], 40, 10);
        assert!(chart.contains("title"));
        assert!(chart.contains('*'));
        assert!(chart.contains("demo"));
        assert!(chart.contains("1.000e2"));
    }

    #[test]
    fn chart_skips_nonpositive_in_log_space() {
        let mut s = Series::new("bad", 'x');
        s.push(-5.0, 3.0);
        let chart = loglog_chart("t", &[s], 30, 8);
        assert!(chart.contains("no drawable points"));
    }

    #[test]
    fn linear_chart_handles_flat_series() {
        let mut s = Series::new("flat", 'o');
        s.push(0.0, 1.0);
        s.push(1.0, 1.0);
        let chart = linear_chart("flat", &[s], 30, 8);
        assert!(chart.contains('o'));
    }

    #[test]
    fn boxplot_line_marks_quartiles() {
        let bp = BoxPlot::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        let line = boxplot_line(&bp, 0.0, 10.0, 40, false);
        assert!(line.contains('['));
        assert!(line.contains(']'));
        assert!(line.contains('#'));
        assert_eq!(line.len(), 40);
    }

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["n", "median"],
            &[
                vec!["100".into(), "42".into()],
                vec!["100000".into(), "1234".into()],
            ],
        );
        assert!(t.contains("n"));
        assert!(t.contains("median"));
        assert!(t.contains("100000"));
    }

    #[test]
    fn json_escaping_and_arrays() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(
            json_string_array(&["x".into(), "y\"z".into()]),
            "[\"x\",\"y\\\"z\"]"
        );
    }

    #[test]
    fn write_json_writes_document() {
        let dir = std::env::temp_dir().join("npd-output-json-test");
        let path = write_json(&dir, "doc.json", "{\"a\":1}").unwrap();
        assert_eq!(fs::read_to_string(path).unwrap(), "{\"a\":1}\n");
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("npd-output-test");
        let path = write_csv(
            &dir,
            "t.csv",
            &["a", "b"],
            &[vec!["1".into(), "x,y".into()]],
        )
        .unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "a,b\n1,\"x,y\"\n");
    }
}
