//! Figure 4: required queries under the general noisy channel, `p = q`.
//!
//! The paper sweeps symmetric error rates `p = q = 10⁻¹ … 10⁻⁵` at
//! `θ = 0.25` and highlights the regime crossover predicted by the remark
//! after Theorem 1: while `q ≪ k/n` the curve follows the Z-channel
//! `k·ln n` shape, and once `q ≫ k/n` it bends up to `n·ln n` growth — for
//! `q = 10⁻³` the bend sits near `n ≈ 3000`.

use super::{FigureReport, RunOptions, THETA};
use crate::output::{loglog_chart, Series};
use crate::sweep::{default_budget, n_grid, required_queries_grid, SweepCell};
use crate::{mix_seed, Mode};
use npd_core::{NoiseModel, Regime};

/// Symmetric error rates of the figure.
pub const Q_VALUES: [f64; 5] = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5];

/// Runs the Figure-4 sweep (one flattened grid call across all `(q, n)`
/// cells; see [`required_queries_grid`]).
pub fn run(opts: &RunOptions) -> FigureReport {
    let trials = opts.resolve_trials(3, 10);
    let max_exp = match opts.mode {
        Mode::Quick => 4,
        Mode::Full => 5,
    };
    let grid = n_grid(max_exp);
    let markers = ['1', '2', '3', '4', '5'];

    let cells: Vec<SweepCell> = Q_VALUES
        .iter()
        .enumerate()
        .flat_map(|(qi, &q)| {
            let noise = NoiseModel::channel(q, q);
            grid.iter().map(move |&n| {
                // The q·n·ln n regime can demand very large budgets at
                // n = 10⁵; cap to keep worst-case runtime bounded and
                // report failures.
                SweepCell::paper(
                    n,
                    Regime::sublinear(THETA),
                    noise,
                    default_budget(n, THETA, &noise).min(400_000),
                    mix_seed(0xF460_0000, (qi * 1_000_000 + n) as u64),
                )
            })
        })
        .collect();
    let samples = required_queries_grid(&cells, trials, opts.threads);
    let mut samples = samples.iter();

    let mut series = Vec::new();
    let mut csv_rows = Vec::new();
    let mut notes = Vec::new();

    for (qi, &q) in Q_VALUES.iter().enumerate() {
        let mut s = Series::new(format!("q=1e-{}", qi + 1), markers[qi]);
        for &n in &grid {
            let sample = samples.next().expect("one sample per cell");
            let theory =
                npd_theory::bounds::noisy_channel_sublinear_queries(n as f64, THETA, q, q, 0.05);
            match sample.median() {
                Some(median) => {
                    s.push(n as f64, median);
                    csv_rows.push(vec![
                        format!("{q:e}"),
                        n.to_string(),
                        sample.k.to_string(),
                        format!("{median:.1}"),
                        sample.samples.len().to_string(),
                        sample.failures.to_string(),
                        format!("{theory:.1}"),
                    ]);
                }
                None => csv_rows.push(vec![
                    format!("{q:e}"),
                    n.to_string(),
                    sample.k.to_string(),
                    "NA".into(),
                    "0".into(),
                    sample.failures.to_string(),
                    format!("{theory:.1}"),
                ]),
            }
        }
        series.push(s);
    }

    // Crossover diagnostic for the q = 10⁻³ curve (the paper's example):
    // compare growth before and after the predicted bend.
    if let Some(s) = series.get(2) {
        if s.points.len() >= 3 {
            let (n0, m0) = s.points[0];
            let (n1, m1) = *s.points.last().unwrap();
            let slope = ((m1 / m0).ln()) / ((n1 / n0).ln());
            notes.push(format!(
                "q=1e-3 curve: average log-log slope {slope:.2} over n={n0}..{n1} \
                 (k ln n regime ≈ θ = 0.25, n ln n regime ≈ 1)"
            ));
        }
    }
    notes.push(
        "Regime crossover: larger q bends from the k·ln n shape to n·ln n growth \
         once q·n exceeds k (remark after Theorem 1)."
            .into(),
    );

    let rendered = loglog_chart(
        "Figure 4 — required queries m vs n (noisy channel p=q, θ=0.25)",
        &series,
        64,
        20,
    );

    FigureReport {
        name: "fig4".into(),
        rendered,
        csv_headers: vec![
            "q".into(),
            "n".into(),
            "k".into(),
            "median_m".into(),
            "successes".into(),
            "failures".into(),
            "theory_m".into(),
        ],
        csv_rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::required_queries_sample;

    #[test]
    fn larger_q_needs_more_queries_at_moderate_n() {
        // At n = 1000 (k ≈ 6) the q = 0.1 channel is deep in the q·n
        // regime and must require far more queries than q = 10⁻⁵.
        let n = 1000;
        let medians: Vec<f64> = [1e-1, 1e-5]
            .iter()
            .map(|&q| {
                let noise = NoiseModel::channel(q, q);
                required_queries_sample(
                    n,
                    Regime::sublinear(THETA),
                    noise,
                    3,
                    default_budget(n, THETA, &noise),
                    mix_seed(3, q.to_bits()),
                    2,
                )
                .median()
                .expect("separates")
            })
            .collect();
        assert!(
            medians[0] > 2.0 * medians[1],
            "q=0.1 median {} vs q=1e-5 median {}",
            medians[0],
            medians[1]
        );
    }
}
