//! Figure 3: required queries under the noisy query model vs noiseless.
//!
//! The paper compares the noiseless baseline against Gaussian query noise
//! (the plot labels `λ = 1`; the prose mentions `λ = 2` — we sweep both, so
//! either reading is covered), at `θ = 0.25`.

use super::{FigureReport, RunOptions, THETA};
use crate::output::{loglog_chart, Series};
use crate::sweep::{default_budget, n_grid, required_queries_grid, SweepCell};
use crate::{mix_seed, Mode};
use npd_core::{NoiseModel, Regime};

/// Gaussian noise levels shown (0 = the noiseless reference curve).
pub const LAMBDA_VALUES: [f64; 3] = [0.0, 1.0, 2.0];

fn noise_for(lambda: f64) -> NoiseModel {
    if lambda == 0.0 {
        NoiseModel::Noiseless
    } else {
        NoiseModel::gaussian(lambda)
    }
}

/// Runs the Figure-3 sweep (one flattened grid call across all `(λ, n)`
/// cells; see [`required_queries_grid`]).
pub fn run(opts: &RunOptions) -> FigureReport {
    let trials = opts.resolve_trials(5, 25);
    let max_exp = match opts.mode {
        Mode::Quick => 4,
        Mode::Full => 5,
    };
    let grid = n_grid(max_exp);
    let markers = ['*', 'o', 'x'];

    let cells: Vec<SweepCell> = LAMBDA_VALUES
        .iter()
        .enumerate()
        .flat_map(|(li, &lambda)| {
            let noise = noise_for(lambda);
            grid.iter().map(move |&n| {
                SweepCell::paper(
                    n,
                    Regime::sublinear(THETA),
                    noise,
                    default_budget(n, THETA, &noise),
                    mix_seed(0xF360_0000, (li * 1_000_000 + n) as u64),
                )
            })
        })
        .collect();
    let samples = required_queries_grid(&cells, trials, opts.threads);
    let mut samples = samples.iter();

    let mut series = Vec::new();
    let mut csv_rows = Vec::new();
    let mut notes = Vec::new();

    for (li, &lambda) in LAMBDA_VALUES.iter().enumerate() {
        let label = if lambda == 0.0 {
            "without noise".to_string()
        } else {
            format!("with noise (λ={lambda})")
        };
        let mut s = Series::new(label.clone(), markers[li]);
        for &n in &grid {
            let sample = samples.next().expect("one sample per cell");
            let theory = npd_theory::bounds::noisy_query_sublinear_queries(n as f64, THETA, 0.05);
            match sample.median() {
                Some(median) => {
                    s.push(n as f64, median);
                    csv_rows.push(vec![
                        lambda.to_string(),
                        n.to_string(),
                        sample.k.to_string(),
                        format!("{median:.1}"),
                        sample.samples.len().to_string(),
                        sample.failures.to_string(),
                        format!("{theory:.1}"),
                    ]);
                }
                None => csv_rows.push(vec![
                    lambda.to_string(),
                    n.to_string(),
                    sample.k.to_string(),
                    "NA".into(),
                    "0".into(),
                    sample.failures.to_string(),
                    format!("{theory:.1}"),
                ]),
            }
        }
        if let (Some(first), Some(last)) = (s.points.first(), s.points.last()) {
            notes.push(format!(
                "{label}: median m {:.0} -> {:.0} over n={}..{}",
                first.1,
                last.1,
                grid.first().unwrap(),
                grid.last().unwrap()
            ));
        }
        series.push(s);
    }

    let rendered = loglog_chart(
        "Figure 3 — required queries m vs n (noisy query model, θ=0.25)",
        &series,
        64,
        20,
    );

    FigureReport {
        name: "fig3".into(),
        rendered,
        csv_headers: vec![
            "lambda".into(),
            "n".into(),
            "k".into(),
            "median_m".into(),
            "successes".into(),
            "failures".into(),
            "theory_m".into(),
        ],
        csv_rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::required_queries_sample;

    #[test]
    fn gaussian_noise_costs_queries_at_fixed_n() {
        let n = 200;
        let medians: Vec<f64> = [0.0, 2.0]
            .iter()
            .map(|&lambda| {
                let noise = if lambda == 0.0 {
                    NoiseModel::Noiseless
                } else {
                    NoiseModel::gaussian(lambda)
                };
                required_queries_sample(
                    n,
                    Regime::sublinear(THETA),
                    noise,
                    5,
                    default_budget(n, THETA, &noise),
                    mix_seed(2, lambda.to_bits()),
                    2,
                )
                .median()
                .expect("separates")
            })
            .collect();
        assert!(
            medians[1] > medians[0],
            "λ=2 median {} not above noiseless {}",
            medians[1],
            medians[0]
        );
    }
}
