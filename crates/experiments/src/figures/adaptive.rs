//! Adaptive vs non-adaptive: what the paper's one-round restriction costs.
//!
//! The paper fixes the non-adaptive setting because query latency dominates
//! (GPU batches, pipetting robots). This experiment puts numbers on the
//! trade: classic adaptive strategies (recursive splitting, two-stage
//! Dorfman, individual testing) are run through a noisy sum-query oracle
//! with repetition coding sized for the noise, against the non-adaptive
//! design + Algorithm 1 measured by the required-queries simulation.
//!
//! The headline shape: with exact counts, splitting wins by orders of
//! magnitude (`k log n` vs `k ln n · constants` — but with tiny constants);
//! under per-slot channel noise the repetition factor explodes with the
//! query size and the one-round pooled design takes the lead — precisely
//! the regime the paper targets.

use super::{FigureReport, RunOptions, THETA};
use crate::output::table;
use crate::sweep::default_budget;
use crate::{mix_seed, runner, Mode};
use npd_adaptive::{
    optimal_pool_size, recommended_repetitions, Dorfman, IndividualTesting, Oracle,
    RecursiveSplitting, Strategy, Transcript,
};
use npd_core::{GroundTruth, IncrementalSim, NoiseModel, Regime};
use npd_numerics::stats::median;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Noise settings of the comparison.
pub fn noise_cases() -> Vec<(NoiseModel, &'static str)> {
    vec![
        (NoiseModel::Noiseless, "noiseless"),
        (NoiseModel::gaussian(1.0), "gaussian λ=1"),
        (NoiseModel::z_channel(0.1), "Z-channel p=0.1"),
    ]
}

/// Builds the strategy field for a given noise model and population size,
/// with repetition counts sized so each count estimate errs with
/// probability at most `0.01/n` (union bound over the estimates of one
/// reconstruction).
///
/// Returns `(strategy, label, repetitions)` triples.
pub fn strategies(
    noise: &NoiseModel,
    n: usize,
    k: usize,
) -> Vec<(Box<dyn Strategy>, &'static str, usize)> {
    let delta = 0.01 / n as f64;
    // Splitting queries sets as large as n/2; Dorfman pools of s; individual
    // testing singletons.
    let r_split = recommended_repetitions(noise, n / 2, delta);
    let pool = optimal_pool_size(n, k);
    let r_pool = recommended_repetitions(noise, pool, delta);
    let r_single = recommended_repetitions(noise, 1, delta);
    vec![
        (
            Box::new(RecursiveSplitting::new(r_split)),
            "recursive-splitting",
            r_split,
        ),
        (Box::new(Dorfman::new(pool, r_pool)), "dorfman", r_pool),
        (
            Box::new(IndividualTesting::new(r_single)),
            "individual",
            r_single,
        ),
    ]
}

/// Outcome of one strategy under one noise model across trials.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyOutcome {
    /// Median queries used.
    pub median_queries: f64,
    /// Maximum adaptivity rounds observed.
    pub rounds: usize,
    /// Exact reconstructions.
    pub successes: usize,
    /// Trials executed.
    pub trials: usize,
}

/// Runs one strategy for `trials` independent hidden assignments.
pub fn measure_strategy(
    strategy: &dyn Strategy,
    noise: NoiseModel,
    n: usize,
    k: usize,
    trials: usize,
    seed_salt: u64,
    threads: usize,
) -> StrategyOutcome {
    let seeds: Vec<u64> = (0..trials as u64).map(|i| mix_seed(seed_salt, i)).collect();
    let outcomes: Vec<(Transcript, bool)> = runner::parallel_map(&seeds, threads, |&seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let truth = GroundTruth::sample(n, k, &mut rng);
        let mut oracle = Oracle::new(&truth, noise, &mut rng);
        let transcript = strategy.reconstruct(k, &mut oracle);
        let exact = transcript.is_exact(&truth);
        (transcript, exact)
    });
    let queries: Vec<f64> = outcomes.iter().map(|(t, _)| t.queries as f64).collect();
    StrategyOutcome {
        median_queries: median(&queries),
        rounds: outcomes.iter().map(|(t, _)| t.rounds).max().unwrap_or(0),
        successes: outcomes.iter().filter(|(_, e)| *e).count(),
        trials,
    }
}

/// Runs the adaptive-vs-non-adaptive comparison.
pub fn run(opts: &RunOptions) -> FigureReport {
    let trials = opts.resolve_trials(5, 20);
    let n = match opts.mode {
        Mode::Quick => 256,
        Mode::Full => 1024,
    };
    let k = Regime::sublinear(THETA).k_for(n);

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut notes = Vec::new();

    for (ni, (noise, noise_label)) in noise_cases().iter().enumerate() {
        // Non-adaptive baseline: required queries of the paper's design.
        let budget = default_budget(n, THETA, noise) * 2;
        let seeds: Vec<u64> = (0..trials as u64)
            .map(|i| mix_seed(0xADA0_0000 + ni as u64, i))
            .collect();
        let required: Vec<f64> = runner::parallel_map(&seeds, opts.threads, |&seed| {
            let mut sim = IncrementalSim::new(n, k, *noise, seed);
            sim.required_queries(budget)
                .map(|r| r.queries as f64)
                .unwrap_or(budget as f64)
        });
        let nonadaptive_median = median(&required);
        rows.push(vec![
            noise_label.to_string(),
            "non-adaptive + greedy (paper)".into(),
            "1".into(),
            format!("{nonadaptive_median:.0}"),
            "1".into(),
            format!("{trials}/{trials}"),
        ]);
        csv_rows.push(vec![
            noise_label.to_string(),
            "non-adaptive-greedy".into(),
            "1".into(),
            format!("{nonadaptive_median:.0}"),
            "1".into(),
            trials.to_string(),
            trials.to_string(),
        ]);

        for (si, (strategy, label, reps)) in strategies(noise, n, k).iter().enumerate() {
            let outcome = measure_strategy(
                strategy.as_ref(),
                *noise,
                n,
                k,
                trials,
                mix_seed(0xADA1_0000, (ni * 10 + si) as u64),
                opts.threads,
            );
            rows.push(vec![
                noise_label.to_string(),
                label.to_string(),
                reps.to_string(),
                format!("{:.0}", outcome.median_queries),
                outcome.rounds.to_string(),
                format!("{}/{}", outcome.successes, outcome.trials),
            ]);
            csv_rows.push(vec![
                noise_label.to_string(),
                label.to_string(),
                reps.to_string(),
                format!("{:.0}", outcome.median_queries),
                outcome.rounds.to_string(),
                outcome.successes.to_string(),
                outcome.trials.to_string(),
            ]);
            if si == 0 {
                notes.push(format!(
                    "{noise_label}: splitting uses {:.1}× the queries of the non-adaptive design \
                     (and {} adaptive rounds instead of 1)",
                    outcome.median_queries / nonadaptive_median,
                    outcome.rounds,
                ));
            }
        }
    }

    let rendered = format!(
        "Adaptive vs non-adaptive (n={n}, k={k}, {trials} trials)\n{}",
        table(
            &["noise", "strategy", "reps", "median m", "rounds", "exact"],
            &rows
        )
    );

    FigureReport {
        name: "adaptive".into(),
        rendered,
        csv_headers: vec![
            "noise".into(),
            "strategy".into(),
            "repetitions".into(),
            "median_queries".into(),
            "rounds".into(),
            "successes".into(),
            "trials".into(),
        ],
        csv_rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_field_covers_three_families() {
        let field = strategies(&NoiseModel::Noiseless, 64, 3);
        assert_eq!(field.len(), 3);
        // Noiseless strategies need exactly one repetition.
        assert!(field.iter().all(|(_, _, r)| *r == 1));
    }

    #[test]
    fn repetitions_grow_with_channel_noise() {
        let noiseless = strategies(&NoiseModel::Noiseless, 256, 4);
        let noisy = strategies(&NoiseModel::z_channel(0.1), 256, 4);
        // Splitting queries the largest sets, so its repetition factor must
        // dominate the others.
        assert!(noisy[0].2 > noiseless[0].2);
        assert!(noisy[0].2 > noisy[1].2);
        assert!(noisy[1].2 >= noisy[2].2);
    }

    #[test]
    fn splitting_beats_nonadaptive_when_noiseless() {
        let strategy = RecursiveSplitting::new(1);
        let outcome = measure_strategy(&strategy, NoiseModel::Noiseless, 256, 4, 4, 11, 2);
        assert_eq!(outcome.successes, 4);
        // k·log₂(n) ≈ 32 ≪ the ≥100 queries the non-adaptive design needs.
        assert!(outcome.median_queries < 60.0);
    }
}
