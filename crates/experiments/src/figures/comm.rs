//! Section VI: communication cost of the greedy protocol vs distributed
//! AMP.
//!
//! The paper's conclusion argues that the greedy protocol needs “only one
//! information exchange per network node” while AMP requires an information
//! flow through the whole network over many rounds. This experiment makes
//! that concrete: it runs the real message-passing protocol on the network
//! simulator, counts messages and rounds, then prices a distributed AMP
//! execution of the measured iteration count with the per-iteration edge
//! traffic model of [`npd_amp::cost`].

use super::{FigureReport, RunOptions};
use crate::mix_seed;
use crate::output::table;
use npd_amp::cost::DistributedAmpCost;
use npd_amp::AmpDecoder;
use npd_core::{distributed, GreedyDecoder, Instance, NoiseModel, Regime};
use npd_netsim::gossip::{select_top_k, DEFAULT_BISECTION_ITERS};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs the communication comparison.
pub fn run(opts: &RunOptions) -> FigureReport {
    let n = match opts.mode {
        crate::Mode::Quick => 256,
        crate::Mode::Full => 1024,
    };
    let instance = Instance::builder(n)
        .regime(Regime::sublinear(0.25))
        .queries(3 * n / 2)
        .noise(NoiseModel::z_channel(0.1))
        .build()
        .expect("comm configuration is valid");
    let mut rng = StdRng::seed_from_u64(mix_seed(0xC033, n as u64));
    let run = instance.sample(&mut rng);

    let outcome = distributed::run_protocol(&run).expect("protocol quiesces");
    let (_, amp_trace) = AmpDecoder::default().decode_with_trace(&run);

    let edges: u64 = run
        .graph()
        .queries()
        .iter()
        .map(|q| q.distinct_len() as u64)
        .sum();
    let amp_cost = DistributedAmpCost::new(edges, amp_trace.iterations as u64);

    // The gossip alternative to step II: same measurement phase, then the
    // decentralized top-k selection instead of the sorting network.
    let gossip = select_top_k(
        &GreedyDecoder::new().scores(&run),
        instance.k(),
        DEFAULT_BISECTION_ITERS,
    );
    let gossip_messages = edges + gossip.messages;
    let gossip_rounds = 2 + gossip.rounds;

    let greedy_messages = outcome.metrics.messages_sent;
    let rows = vec![
        vec![
            "greedy protocol (measured)".into(),
            greedy_messages.to_string(),
            outcome.rounds.to_string(),
            format!("{:.1}", greedy_messages as f64 / edges as f64),
        ],
        vec![
            "greedy + gossip selection (measured)".into(),
            gossip_messages.to_string(),
            gossip_rounds.to_string(),
            format!("{:.1}", gossip_messages as f64 / edges as f64),
        ],
        vec![
            format!("distributed AMP ({} iterations)", amp_trace.iterations),
            amp_cost.messages().to_string(),
            amp_cost.rounds().to_string(),
            format!("{:.1}", amp_cost.overhead_vs_single_pass()),
        ],
    ];

    let ratio = amp_cost.messages() as f64 / greedy_messages as f64;
    let notes = vec![
        format!(
            "n={n}, m={}, {} measurement edges; greedy: {} messages in {} rounds \
             (sort depth {})",
            instance.m(),
            edges,
            greedy_messages,
            outcome.rounds,
            outcome.sort_depth
        ),
        format!(
            "gossip step II trades rounds for locality: {} messages over {} rounds, \
             with agents learning only their own bit",
            gossip_messages, gossip_rounds
        ),
        format!(
            "distributed AMP would need {} messages over {} rounds — {ratio:.1}x the \
             greedy protocol's traffic",
            amp_cost.messages(),
            amp_cost.rounds()
        ),
    ];

    let rendered = format!(
        "Section VI — communication: greedy protocol vs distributed AMP (n = {n})\n{}",
        table(&["protocol", "messages", "rounds", "messages/edge"], &rows)
    );

    let csv_rows = rows
        .into_iter()
        .map(|r| {
            let mut row = vec![n.to_string()];
            row.extend(r);
            row
        })
        .collect();

    FigureReport {
        name: "comm".into(),
        rendered,
        csv_headers: vec![
            "n".into(),
            "protocol".into(),
            "messages".into(),
            "rounds".into(),
            "messages_per_edge".into(),
        ],
        csv_rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amp_costs_more_communication() {
        let opts = RunOptions::quick();
        let report = run(&opts);
        assert_eq!(report.csv_rows.len(), 3);
        let greedy: u64 = report.csv_rows[0][2].parse().unwrap();
        let gossip: u64 = report.csv_rows[1][2].parse().unwrap();
        let amp: u64 = report.csv_rows[2][2].parse().unwrap();
        assert!(amp > greedy, "AMP messages {amp} not above greedy {greedy}");
        // The gossip variant pays extra messages for locality but stays
        // below the AMP traffic.
        assert!(gossip > greedy);
        let gossip_rounds: u64 = report.csv_rows[1][3].parse().unwrap();
        let greedy_rounds: u64 = report.csv_rows[0][3].parse().unwrap();
        assert!(gossip_rounds > greedy_rounds);
    }
}
