//! Section VI: communication cost of the greedy protocol vs distributed
//! AMP.
//!
//! The paper's conclusion argues that the greedy protocol needs “only one
//! information exchange per network node” while AMP requires an information
//! flow through the whole network over many rounds. This experiment makes
//! that concrete: it runs the real message-passing protocol on the network
//! simulator, counts messages and rounds, then prices a distributed AMP
//! execution of the measured iteration count with the per-iteration edge
//! traffic model of [`npd_amp::cost`].

use super::{FigureReport, RunOptions};
use crate::mix_seed;
use crate::output::table;
use npd_amp::cost::DistributedAmpCost;
use npd_amp::AmpDecoder;
use npd_core::distributed::SelectionStrategy;
use npd_core::{distributed, Instance, NoiseModel, Regime};
use npd_netsim::gossip::push_sum_report_on;
use npd_netsim::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs push-sum prevalence estimation (averaging the reconstructed bits)
/// on `topology` and returns `(messages, rounds, max estimation error)`.
/// This is the decentralized answer to "what is k?" when no coordinator
/// exists, priced on a concrete overlay.
fn push_sum_cost(topology: Topology, bits: &[bool], rounds: usize, seed: u64) -> (u64, u64, f64) {
    let n = bits.len();
    let truth = bits.iter().filter(|&&b| b).count() as f64 / n as f64;
    let values: Vec<f64> = bits.iter().map(|&b| f64::from(u8::from(b))).collect();
    let report = push_sum_report_on(topology, &values, rounds, seed);
    let err = report
        .estimates
        .iter()
        .map(|e| (e - truth).abs())
        .fold(0.0f64, f64::max);
    (report.metrics.messages_sent, report.metrics.rounds, err)
}

/// Runs the communication comparison.
pub fn run(opts: &RunOptions) -> FigureReport {
    let n = match opts.mode {
        crate::Mode::Quick => 256,
        crate::Mode::Full => 1024,
    };
    let instance = Instance::builder(n)
        .regime(Regime::sublinear(0.25))
        .queries(3 * n / 2)
        .noise(NoiseModel::z_channel(0.1))
        .build()
        .expect("comm configuration is valid");
    let mut rng = StdRng::seed_from_u64(mix_seed(0xC033, n as u64));
    let run = instance.sample(&mut rng);

    let outcome = distributed::run_protocol(&run).expect("protocol quiesces");
    let (_, amp_trace) = AmpDecoder::default().decode_with_trace(&run);

    let edges: u64 = run
        .graph()
        .queries()
        .iter()
        .map(|q| q.distinct_len() as u64)
        .sum();
    let amp_cost = DistributedAmpCost::new(edges, amp_trace.iterations as u64);

    // The gossip alternative to step II, measured *in the protocol*: the
    // same network runs the adaptive threshold bisection instead of the
    // sorting network (strategy `GossipThreshold`), and every agent
    // decides its own bit — no assignment traffic, no sorting-network
    // schedule. The estimate is bit-identical to the Batcher path.
    let gossip = distributed::run_protocol_with(&run, SelectionStrategy::gossip())
        .expect("gossip protocol quiesces");
    assert_eq!(gossip.estimate, outcome.estimate);
    let gossip_messages = gossip.metrics.messages_sent;
    let gossip_rounds = gossip.rounds;

    // Topology scenario: the same prevalence estimate on a sparse
    // small-world overlay (mean degree 6; rewiring preserves the total,
    // not the per-node degree), at the price of more rounds for the same
    // accuracy. The distributed outcome's estimate is bit-identical to
    // the sequential decoder's (pinned by the equivalence tests), so its
    // bits feed the gossip directly.
    let overlay = Topology::small_world(n, 6, 0.1, mix_seed(0xC034, n as u64));
    let sw_max_degree = (0..n)
        .map(|v| overlay.degree(npd_netsim::NodeId(v)))
        .max()
        .expect("overlay is non-empty");
    let gossip_rounds_budget = 3 * (n.ilog2() as usize + 1);
    let (sw_messages, sw_rounds, sw_err) = push_sum_cost(
        overlay,
        outcome.estimate.bits(),
        gossip_rounds_budget,
        mix_seed(0xC035, n as u64),
    );

    let greedy_messages = outcome.metrics.messages_sent;
    let rows = vec![
        vec![
            "greedy protocol (measured)".into(),
            greedy_messages.to_string(),
            outcome.rounds.to_string(),
            format!("{:.1}", greedy_messages as f64 / edges as f64),
        ],
        vec![
            "greedy + gossip selection (measured)".into(),
            gossip_messages.to_string(),
            gossip_rounds.to_string(),
            format!("{:.1}", gossip_messages as f64 / edges as f64),
        ],
        vec![
            format!("distributed AMP ({} iterations)", amp_trace.iterations),
            amp_cost.messages().to_string(),
            amp_cost.rounds().to_string(),
            format!("{:.1}", amp_cost.overhead_vs_single_pass()),
        ],
        vec![
            "push-sum k-estimate, small-world overlay (measured)".into(),
            sw_messages.to_string(),
            sw_rounds.to_string(),
            format!("{:.1}", sw_messages as f64 / edges as f64),
        ],
    ];

    let ratio = amp_cost.messages() as f64 / greedy_messages as f64;
    let notes = vec![
        format!(
            "n={n}, m={}, {} measurement edges; greedy: {} messages in {} rounds \
             (sort depth {})",
            instance.m(),
            edges,
            greedy_messages,
            outcome.rounds,
            outcome.sort_depth
        ),
        format!(
            "gossip step II replaces the sorting network with the adaptive threshold \
             bisection: {} messages over {} rounds ({} probes), agents learn only \
             their own bit, and no O(n log² n) comparator schedule is ever built",
            gossip_messages, gossip_rounds, gossip.probes
        ),
        format!(
            "distributed AMP would need {} messages over {} rounds — {ratio:.1}x the \
             greedy protocol's traffic",
            amp_cost.messages(),
            amp_cost.rounds()
        ),
        format!(
            "sparse overlay scenario: push-sum on a small-world graph (mean degree 6, \
             β = 0.1) estimates the prevalence k/n to max error {sw_err:.1e} in \
             {sw_rounds} rounds with every node talking to at most {} peers",
            sw_max_degree + 1
        ),
    ];

    let rendered = format!(
        "Section VI — communication: greedy protocol vs distributed AMP (n = {n})\n{}",
        table(&["protocol", "messages", "rounds", "messages/edge"], &rows)
    );

    let csv_rows = rows
        .into_iter()
        .map(|r| {
            let mut row = vec![n.to_string()];
            row.extend(r);
            row
        })
        .collect();

    FigureReport {
        name: "comm".into(),
        rendered,
        csv_headers: vec![
            "n".into(),
            "protocol".into(),
            "messages".into(),
            "rounds".into(),
            "messages_per_edge".into(),
        ],
        csv_rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amp_costs_more_communication() {
        let opts = RunOptions::quick();
        let report = run(&opts);
        assert_eq!(report.csv_rows.len(), 4);
        let greedy: u64 = report.csv_rows[0][2].parse().unwrap();
        let gossip: u64 = report.csv_rows[1][2].parse().unwrap();
        let amp: u64 = report.csv_rows[2][2].parse().unwrap();
        assert!(amp > greedy, "AMP messages {amp} not above greedy {greedy}");
        // The adaptive gossip selection needs only a handful of probes on
        // this instance, undercutting both the sorting network's token
        // traffic and (by far) the AMP flow.
        assert!(
            gossip < greedy,
            "gossip {gossip} not below batcher {greedy}"
        );
        assert!(gossip < amp);
        let gossip_rounds: u64 = report.csv_rows[1][3].parse().unwrap();
        let greedy_rounds: u64 = report.csv_rows[0][3].parse().unwrap();
        assert!(gossip_rounds > 0 && greedy_rounds > 0);
        // The sparse-overlay scenario sends at most one message per node
        // per round.
        let sw_n: u64 = report.csv_rows[3][0].parse().unwrap();
        let sw_messages: u64 = report.csv_rows[3][2].parse().unwrap();
        let sw_rounds: u64 = report.csv_rows[3][3].parse().unwrap();
        assert!(sw_messages <= sw_rounds * sw_n);
        assert!(sw_messages > 0);
    }
}
