//! Figure 1: the illustrative pooling multigraph.
//!
//! The paper opens with a seven-agent example (`σ = (1,0,1,0,1,0,0)`, five
//! queries, one deliberate multi-edge). This module renders the concrete
//! instance shipped in [`npd_core::PoolingGraph::figure1_example`] as text —
//! no measurement is involved, so the report is mode-independent.

use super::FigureReport;
use npd_core::{NoiseModel, PoolingGraph};
use rand::SeedableRng;
use std::fmt::Write as _;

/// Renders the Figure-1 example instance.
pub fn run() -> FigureReport {
    let (graph, truth) = PoolingGraph::figure1_example();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let results = graph.measure(&truth, &NoiseModel::Noiseless, &mut rng);

    let mut rendered = String::new();
    let _ = writeln!(rendered, "Figure 1 — example pooling multigraph (n = 7)");
    let bits: Vec<String> = truth
        .bits()
        .iter()
        .map(|&b| if b { "1".into() } else { "0".into() })
        .collect();
    let _ = writeln!(rendered, "  σ = ({})", bits.join(", "));
    let mut csv_rows = Vec::new();
    for (j, q) in graph.queries().iter().enumerate() {
        let members: Vec<String> = q
            .iter()
            .flat_map(|(agent, count)| std::iter::repeat_n(format!("x{agent}"), count as usize))
            .collect();
        let _ = writeln!(
            rendered,
            "  a{j}: {{{}}} -> {}",
            members.join(", "),
            results[j]
        );
        csv_rows.push(vec![
            j.to_string(),
            members.join(" "),
            results[j].to_string(),
        ]);
    }
    let _ = writeln!(
        rendered,
        "  (query a1 contains agent x2 twice: the multigraph's multi-edge)"
    );

    FigureReport {
        name: "fig1".into(),
        rendered,
        csv_headers: vec!["query".into(), "members".into(), "result".into()],
        csv_rows,
        notes: vec![
            "Figure 1 is illustrative: five 3-slot queries over 7 agents with results (2,3,1,1,1)."
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_expected_shape() {
        let report = super::run();
        assert!(report.rendered.contains("σ = (1, 0, 1, 0, 1, 0, 0)"));
        assert!(report.rendered.contains("a0"));
        assert_eq!(report.csv_rows.len(), 5);
        assert!(report.rendered.contains("x2, x2"));
    }
}
