//! Decoder zoo: success rate vs query count for six reconstruction
//! algorithms (extends the paper's Figure 6 beyond greedy-vs-AMP).
//!
//! All decoders see the *same* sampled runs (paired trials), so curve
//! differences are algorithmic, not sampling noise. The field:
//!
//! * greedy — Algorithm 1 (the paper's contribution);
//! * AMP — the paper's comparison algorithm;
//! * BP — Gaussian-relaxed belief propagation (the family AMP simplifies);
//! * FISTA — the generic convex/compressed-sensing baseline;
//! * LMMSE — the best linear decoder;
//! * MCMC — annealed Metropolis refinement seeded by the greedy output
//!   (the "two-step local error correction" of the paper's conclusion).

use super::{FigureReport, RunOptions, THETA};
use crate::output::{linear_chart, Series};
use crate::{mix_seed, runner, Mode};
use npd_amp::AmpDecoder;
use npd_core::{exact_recovery, Decoder, GreedyDecoder, Instance, NoiseModel, Regime};
use npd_decoders::{BpDecoder, FistaDecoder, LmmseDecoder, McmcDecoder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Population size (matches Figure 6).
pub const N: usize = 1000;
/// Z-channel flip probabilities compared.
pub const P_VALUES: [f64; 2] = [0.1, 0.3];

/// The competing decoders, in report order.
fn field() -> Vec<Box<dyn Decoder>> {
    vec![
        Box::new(GreedyDecoder::new()),
        Box::new(AmpDecoder::default()),
        Box::new(BpDecoder::default()),
        Box::new(FistaDecoder::default()),
        Box::new(LmmseDecoder::default()),
        Box::new(McmcDecoder::default()),
    ]
}

/// Query grid for the sweep.
pub fn m_grid(mode: Mode) -> Vec<usize> {
    match mode {
        Mode::Quick => vec![100, 200, 300, 400, 500],
        Mode::Full => (1..=24).map(|i| i * 25).collect(),
    }
}

/// Per-decoder success counts at one `(p, m)` grid point, paired across
/// decoders.
pub fn measure_point(
    p: f64,
    m: usize,
    trials: usize,
    seed_salt: u64,
    threads: usize,
) -> Vec<usize> {
    let instance = Instance::builder(N)
        .regime(Regime::sublinear(THETA))
        .queries(m)
        .noise(NoiseModel::z_channel(p))
        .build()
        .expect("decoder-zoo configuration is valid");
    let seeds: Vec<u64> = (0..trials as u64).map(|i| mix_seed(seed_salt, i)).collect();
    let per_trial = runner::parallel_map(&seeds, threads, |&seed| {
        let run = instance.sample(&mut StdRng::seed_from_u64(seed));
        let decoders = field();
        decoders
            .iter()
            .map(|d| exact_recovery(&d.decode(&run), run.ground_truth()))
            .collect::<Vec<bool>>()
    });
    let count = field().len();
    (0..count)
        .map(|d| per_trial.iter().filter(|trial| trial[d]).count())
        .collect()
}

/// Runs the decoder-zoo comparison.
pub fn run(opts: &RunOptions) -> FigureReport {
    let trials = opts.resolve_trials(8, 50);
    let grid = m_grid(opts.mode);
    let names: Vec<&'static str> = field().iter().map(|d| d.name()).collect();
    let markers = ['g', 'A', 'B', 'F', 'L', 'M'];

    let mut series = Vec::new();
    let mut csv_rows = Vec::new();
    let mut notes = Vec::new();

    for (pi, &p) in P_VALUES.iter().enumerate() {
        let mut per_decoder: Vec<Series> = names
            .iter()
            .zip(markers)
            .map(|(name, marker)| Series::new(format!("{name} p={p}"), marker))
            .collect();
        let mut crossings: Vec<Option<usize>> = vec![None; names.len()];
        for &m in &grid {
            let successes = measure_point(
                p,
                m,
                trials,
                mix_seed(0xDEC0_0000, (pi * 1_000_000 + m) as u64),
                opts.threads,
            );
            let mut row = vec![p.to_string(), m.to_string()];
            for (d, &s) in successes.iter().enumerate() {
                let rate = s as f64 / trials as f64;
                per_decoder[d].push(m as f64, rate);
                if rate >= 0.5 && crossings[d].is_none() {
                    crossings[d] = Some(m);
                }
                row.push(format!("{rate:.3}"));
            }
            row.push(trials.to_string());
            csv_rows.push(row);
        }
        let summary: Vec<String> = names
            .iter()
            .zip(&crossings)
            .map(|(name, c)| {
                format!(
                    "{name}: {}",
                    c.map_or("not reached".into(), |m| format!("m≈{m}"))
                )
            })
            .collect();
        notes.push(format!("p={p}, 50% success: {}", summary.join(", ")));
        series.extend(per_decoder);
    }

    let mut csv_headers = vec!["p".to_string(), "m".to_string()];
    csv_headers.extend(names.iter().map(|n| format!("{n}_success_rate")));
    csv_headers.push("trials".into());

    let rendered = linear_chart(
        "Decoder zoo — success rate vs m (n=1000, Z-channel)",
        &series,
        64,
        22,
    );

    FigureReport {
        name: "decoders".into(),
        rendered,
        csv_headers,
        csv_rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_has_six_distinct_decoders() {
        let names: Vec<&str> = field().iter().map(|d| d.name()).collect();
        assert_eq!(names.len(), 6);
        let mut unique = names.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 6);
    }

    #[test]
    fn grids_are_monotone() {
        for mode in [Mode::Quick, Mode::Full] {
            let g = m_grid(mode);
            assert!(g.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn all_decoders_succeed_given_generous_queries() {
        // At m = 500 and p = 0.1 every algorithm in the field should be at
        // or near perfect recovery (3 paired trials for speed).
        let successes = measure_point(0.1, 500, 3, 99, 2);
        for (d, &s) in successes.iter().enumerate() {
            assert!(
                s >= 2,
                "decoder #{d} recovered only {s}/3 at a generous budget"
            );
        }
    }
}
