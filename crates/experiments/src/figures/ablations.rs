//! Ablation studies for the design decisions documented in DESIGN.md.
//!
//! 1. **Score centering** — noise-aware (`Centering::NoiseAware`, the
//!    analysis' score) vs the literally-printed `Ψ − Δ*k/2` under symmetric
//!    channel noise. This justifies the reproduction's reading of
//!    Algorithm 1 (see DESIGN.md §“Score centering”).
//! 2. **Sampling scheme** — the paper's with-replacement multigraph design
//!    vs uniform Γ-subsets.
//! 3. **Query size Γ** — the paper fixes `Γ = n/2`; sweep Γ/n to show the
//!    choice is near-optimal for the greedy score.
//! 4. **Two-step refinement** — the conclusion's open-question extension vs
//!    plain greedy, near the threshold.
//! 5. **BP damping** — the dense pooling graph oscillates under weak
//!    damping (see [`npd_decoders::BpConfig::damping`]); measure both.
//! 6. **MCMC initialization** — greedy warm start vs cold start at a fixed
//!    step budget.
//! 7. **Known vs estimated `k`** — the model assumes `k` known; the
//!    blind decoder estimates it from the first moment.

use super::{FigureReport, RunOptions, THETA};
use crate::output::table;
use crate::{mix_seed, runner};
use npd_core::{
    estimation, exact_recovery, overlap, Centering, Decoder, GreedyDecoder, IncrementalSim,
    Instance, NoiseModel, Regime, Sampling, TwoStepDecoder,
};
use npd_decoders::{BpConfig, BpDecoder, InitKind, McmcConfig, McmcDecoder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs all four ablations.
pub fn run(opts: &RunOptions) -> FigureReport {
    let trials = opts.resolve_trials(10, 40);
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut notes = Vec::new();

    // --- 1. Centering under false positives -------------------------------
    let centering_cfg = Instance::builder(1_000)
        .regime(Regime::sublinear(THETA))
        .queries(2_000)
        .noise(NoiseModel::channel(0.05, 0.05))
        .build()
        .expect("valid");
    let seeds: Vec<u64> = (0..trials as u64).map(|i| mix_seed(0xAB1A, i)).collect();
    let outcomes = runner::parallel_map(&seeds, opts.threads, |&seed| {
        let run = centering_cfg.sample(&mut StdRng::seed_from_u64(seed));
        let aware = exact_recovery(
            &GreedyDecoder::with_centering(Centering::NoiseAware).decode(&run),
            run.ground_truth(),
        );
        let plain = exact_recovery(
            &GreedyDecoder::with_centering(Centering::Plain).decode(&run),
            run.ground_truth(),
        );
        (aware, plain)
    });
    let aware_rate = outcomes.iter().filter(|&&(a, _)| a).count() as f64 / trials as f64;
    let plain_rate = outcomes.iter().filter(|&&(_, p)| p).count() as f64 / trials as f64;
    rows.push(vec![
        "centering @ p=q=0.05, n=1000, m=2000".into(),
        format!("noise-aware: {aware_rate:.2}"),
        format!("plain (printed): {plain_rate:.2}"),
    ]);
    csv_rows.push(vec![
        "centering_success_rate".into(),
        format!("{aware_rate:.3}"),
        format!("{plain_rate:.3}"),
    ]);
    notes.push(format!(
        "Centering: noise-aware success {aware_rate:.2} vs printed score {plain_rate:.2} \
         at p=q=0.05 — the analysis' centering is the working algorithm"
    ));

    // --- 2. Sampling scheme ------------------------------------------------
    let median_required = |sampling: Sampling, salt: u64| -> f64 {
        let seeds: Vec<u64> = (0..trials as u64).map(|i| mix_seed(salt, i)).collect();
        let mut xs: Vec<f64> = runner::parallel_map(&seeds, opts.threads, |&seed| {
            let mut sim = IncrementalSim::with_options(
                1_000,
                6,
                500,
                NoiseModel::z_channel(0.1),
                sampling,
                seed,
            );
            sim.required_queries(20_000).expect("separates").queries as f64
        });
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        xs[xs.len() / 2]
    };
    let with_repl = median_required(Sampling::WithReplacement, 0xAB2A);
    let without_repl = median_required(Sampling::WithoutReplacement, 0xAB2B);
    rows.push(vec![
        "sampling @ p=0.1, n=1000 (median m)".into(),
        format!("with replacement: {with_repl:.0}"),
        format!("without replacement: {without_repl:.0}"),
    ]);
    csv_rows.push(vec![
        "sampling_median_queries".into(),
        format!("{with_repl:.0}"),
        format!("{without_repl:.0}"),
    ]);
    notes.push(format!(
        "Sampling: Γ-subset queries need {:.0}% fewer queries than the paper's \
         with-replacement design (each query covers Γ distinct agents vs ≈ γn)",
        100.0 * (1.0 - without_repl / with_repl)
    ));

    // --- 3. Query size Γ ----------------------------------------------------
    let mut gamma_cells = Vec::new();
    let mut gamma_csv = vec!["gamma_median_queries".to_string()];
    for (fi, &(gamma, label)) in [(125usize, "n/8"), (250, "n/4"), (500, "n/2"), (750, "3n/4")]
        .iter()
        .enumerate()
    {
        let seeds: Vec<u64> = (0..trials as u64)
            .map(|i| mix_seed(0xAB30 + fi as u64, i))
            .collect();
        let mut xs: Vec<f64> = runner::parallel_map(&seeds, opts.threads, |&seed| {
            let mut sim =
                IncrementalSim::with_query_size(1_000, 6, gamma, NoiseModel::Noiseless, seed);
            sim.required_queries(50_000).expect("separates").queries as f64
        });
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median = xs[xs.len() / 2];
        gamma_cells.push(format!("Γ={label}: {median:.0}"));
        gamma_csv.push(format!("{median:.0}"));
    }
    rows.push(vec![
        "query size (noiseless, n=1000, median m)".into(),
        gamma_cells[..2].join("  "),
        gamma_cells[2..].join("  "),
    ]);
    csv_rows.push(gamma_csv);
    notes.push(format!("Query size sweep: {}", gamma_cells.join(", ")));

    // --- 4. Two-step refinement --------------------------------------------
    let twostep_cfg = Instance::builder(1_000)
        .regime(Regime::sublinear(THETA))
        .queries(200)
        .noise(NoiseModel::z_channel(0.3))
        .build()
        .expect("valid");
    let seeds: Vec<u64> = (0..trials as u64).map(|i| mix_seed(0xAB4A, i)).collect();
    let overlaps = runner::parallel_map(&seeds, opts.threads, |&seed| {
        let run = twostep_cfg.sample(&mut StdRng::seed_from_u64(seed));
        let g = overlap(&GreedyDecoder::new().decode(&run), run.ground_truth());
        let t = overlap(&TwoStepDecoder::new().decode(&run), run.ground_truth());
        (g, t)
    });
    let g_mean = overlaps.iter().map(|&(g, _)| g).sum::<f64>() / trials as f64;
    let t_mean = overlaps.iter().map(|&(_, t)| t).sum::<f64>() / trials as f64;
    rows.push(vec![
        "two-step @ p=0.3, n=1000, m=200 (mean overlap)".into(),
        format!("greedy: {g_mean:.3}"),
        format!("two-step: {t_mean:.3}"),
    ]);
    csv_rows.push(vec![
        "twostep_mean_overlap".into(),
        format!("{g_mean:.3}"),
        format!("{t_mean:.3}"),
    ]);
    notes.push(format!(
        "Two-step refinement: overlap {t_mean:.3} vs greedy {g_mean:.3} near threshold"
    ));

    // --- 5. BP damping -------------------------------------------------------
    let bp_cfg = Instance::builder(1_000)
        .regime(Regime::sublinear(THETA))
        .queries(320)
        .noise(NoiseModel::z_channel(0.3))
        .build()
        .expect("valid");
    let seeds: Vec<u64> = (0..trials as u64).map(|i| mix_seed(0xAB5A, i)).collect();
    let bp_outcomes = runner::parallel_map(&seeds, opts.threads, |&seed| {
        let run = bp_cfg.sample(&mut StdRng::seed_from_u64(seed));
        let weak = BpDecoder::with_config(BpConfig {
            damping: 0.25,
            ..BpConfig::default()
        });
        let strong = BpDecoder::with_config(BpConfig {
            damping: 0.5,
            ..BpConfig::default()
        });
        (
            exact_recovery(&weak.decode(&run), run.ground_truth()),
            exact_recovery(&strong.decode(&run), run.ground_truth()),
        )
    });
    let weak_rate = bp_outcomes.iter().filter(|&&(w, _)| w).count() as f64 / trials as f64;
    let strong_rate = bp_outcomes.iter().filter(|&&(_, s)| s).count() as f64 / trials as f64;
    rows.push(vec![
        "BP damping @ p=0.3, n=1000, m=320 (success)".into(),
        format!("d=0.25: {weak_rate:.2}"),
        format!("d=0.50: {strong_rate:.2}"),
    ]);
    csv_rows.push(vec![
        "bp_damping_success_rate".into(),
        format!("{weak_rate:.3}"),
        format!("{strong_rate:.3}"),
    ]);
    notes.push(format!(
        "BP damping: d=0.5 succeeds at {strong_rate:.2} vs {weak_rate:.2} for d=0.25 — the \
         dense graph oscillates under weak damping"
    ));

    // --- 6. MCMC initialization ---------------------------------------------
    let mcmc_cfg = Instance::builder(500)
        .regime(Regime::sublinear(THETA))
        .queries(220)
        .noise(NoiseModel::z_channel(0.2))
        .build()
        .expect("valid");
    let seeds: Vec<u64> = (0..trials as u64).map(|i| mix_seed(0xAB6A, i)).collect();
    let mcmc_outcomes = runner::parallel_map(&seeds, opts.threads, |&seed| {
        let run = mcmc_cfg.sample(&mut StdRng::seed_from_u64(seed));
        let warm = McmcDecoder::with_config(McmcConfig {
            init: InitKind::Greedy,
            ..McmcConfig::default()
        });
        let cold = McmcDecoder::with_config(McmcConfig {
            init: InitKind::Cold,
            ..McmcConfig::default()
        });
        (
            exact_recovery(&warm.decode(&run), run.ground_truth()),
            exact_recovery(&cold.decode(&run), run.ground_truth()),
        )
    });
    let warm_rate = mcmc_outcomes.iter().filter(|&&(w, _)| w).count() as f64 / trials as f64;
    let cold_rate = mcmc_outcomes.iter().filter(|&&(_, c)| c).count() as f64 / trials as f64;
    rows.push(vec![
        "MCMC init @ p=0.2, n=500, m=220 (success)".into(),
        format!("greedy warm start: {warm_rate:.2}"),
        format!("cold start: {cold_rate:.2}"),
    ]);
    csv_rows.push(vec![
        "mcmc_init_success_rate".into(),
        format!("{warm_rate:.3}"),
        format!("{cold_rate:.3}"),
    ]);
    notes.push(format!(
        "MCMC init: warm start {warm_rate:.2} vs cold start {cold_rate:.2} at 20k steps — \
         the greedy estimate is most of the work"
    ));

    // --- 7. Known vs estimated k ---------------------------------------------
    let k_cfg = Instance::builder(1_000)
        .regime(Regime::sublinear(THETA))
        .queries(400)
        .noise(NoiseModel::z_channel(0.1))
        .build()
        .expect("valid");
    let seeds: Vec<u64> = (0..trials as u64).map(|i| mix_seed(0xAB7A, i)).collect();
    let k_outcomes = runner::parallel_map(&seeds, opts.threads, |&seed| {
        let run = k_cfg.sample(&mut StdRng::seed_from_u64(seed));
        let known = exact_recovery(&GreedyDecoder::new().decode(&run), run.ground_truth());
        let blind = estimation::decode_with_estimated_k(&run)
            .map(|est| exact_recovery(&est, run.ground_truth()))
            .unwrap_or(false);
        (known, blind)
    });
    let known_rate = k_outcomes.iter().filter(|&&(k, _)| k).count() as f64 / trials as f64;
    let blind_rate = k_outcomes.iter().filter(|&&(_, b)| b).count() as f64 / trials as f64;
    rows.push(vec![
        "known vs estimated k @ p=0.1, n=1000, m=400".into(),
        format!("k known: {known_rate:.2}"),
        format!("k estimated: {blind_rate:.2}"),
    ]);
    csv_rows.push(vec![
        "estimated_k_success_rate".into(),
        format!("{known_rate:.3}"),
        format!("{blind_rate:.3}"),
    ]);
    notes.push(format!(
        "Estimated k: blind success {blind_rate:.2} vs oracle {known_rate:.2} — the first \
         moment pins k well before the decoder itself succeeds"
    ));

    let rendered = format!(
        "Ablations ({trials} trials each)\n{}",
        table(&["study", "variant A", "variant B"], &rows)
    );

    // Pad ragged rows (the Γ sweep has four values) to a fixed width.
    let width = 5;
    for row in &mut csv_rows {
        row.resize(width, String::new());
    }

    FigureReport {
        name: "ablations".into(),
        rendered,
        csv_headers: vec![
            "study".into(),
            "value_a".into(),
            "value_b".into(),
            "value_c".into(),
            "value_d".into(),
        ],
        csv_rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;

    #[test]
    fn tiny_ablation_run_completes() {
        let opts = RunOptions {
            mode: Mode::Quick,
            trials: Some(2),
            threads: 2,
        };
        let report = run(&opts);
        assert_eq!(report.name, "ablations");
        assert_eq!(report.csv_rows.len(), 7);
        assert!(report.rendered.contains("centering"));
        assert!(report.rendered.contains("BP damping"));
        assert!(report.rendered.contains("estimated k"));
        assert!(report.notes.len() >= 7);
    }
}
