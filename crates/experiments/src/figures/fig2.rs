//! Figure 2: required queries vs `n` for the Z-channel.
//!
//! Configuration from the paper: `θ = 0.25`, flip probabilities
//! `p ∈ {0.1, 0.3, 0.5}`, population sizes `10² … 10⁵`, with the Theorem-1
//! bound for `p = 0.1`, `ε = 0.05` as the dashed reference line.

use super::{FigureReport, RunOptions, THETA};
use crate::output::{loglog_chart, Series};
use crate::sweep::{default_budget, n_grid, required_queries_grid, SweepCell};
use crate::{mix_seed, Mode};
use npd_core::{NoiseModel, Regime};

/// Flip probabilities shown in the figure.
pub const P_VALUES: [f64; 3] = [0.1, 0.3, 0.5];

/// Runs the Figure-2 sweep.
///
/// All `(p, n)` grid cells are measured through one flattened
/// [`required_queries_grid`] call, so trials of every cell fill the worker
/// pool together.
pub fn run(opts: &RunOptions) -> FigureReport {
    let trials = opts.resolve_trials(5, 25);
    let max_exp = match opts.mode {
        Mode::Quick => 4,
        Mode::Full => 5,
    };
    let grid = n_grid(max_exp);
    let markers = ['*', 'o', 'x'];

    let cells: Vec<SweepCell> = P_VALUES
        .iter()
        .enumerate()
        .flat_map(|(pi, &p)| {
            let noise = NoiseModel::z_channel(p);
            grid.iter().map(move |&n| {
                SweepCell::paper(
                    n,
                    Regime::sublinear(THETA),
                    noise,
                    default_budget(n, THETA, &noise),
                    mix_seed(0xF260_0000, (pi * 1000 + n) as u64),
                )
            })
        })
        .collect();
    let samples = required_queries_grid(&cells, trials, opts.threads);
    let mut samples = samples.iter();

    let mut series = Vec::new();
    let mut csv_rows = Vec::new();
    let mut notes = Vec::new();

    for (pi, &p) in P_VALUES.iter().enumerate() {
        let mut s = Series::new(format!("p={p}"), markers[pi]);
        for &n in &grid {
            let sample = samples.next().expect("one sample per cell");
            let theory = npd_theory::bounds::z_channel_sublinear_queries(n as f64, THETA, p, 0.05);
            if let Some(median) = sample.median() {
                s.push(n as f64, median);
                csv_rows.push(vec![
                    p.to_string(),
                    n.to_string(),
                    sample.k.to_string(),
                    format!("{median:.1}"),
                    sample.samples.len().to_string(),
                    sample.failures.to_string(),
                    format!("{theory:.1}"),
                ]);
            } else {
                csv_rows.push(vec![
                    p.to_string(),
                    n.to_string(),
                    sample.k.to_string(),
                    String::from("NA"),
                    "0".to_string(),
                    sample.failures.to_string(),
                    format!("{theory:.1}"),
                ]);
            }
        }
        if let (Some(first), Some(last)) = (s.points.first(), s.points.last()) {
            notes.push(format!(
                "Z-channel p={p}: median required queries grows {:.0} -> {:.0} over n={}..{}",
                first.1,
                last.1,
                grid.first().unwrap(),
                grid.last().unwrap()
            ));
        }
        series.push(s);
    }

    // Dashed theory line for p = 0.1, ε = 0.05 (as in the paper's plot).
    let mut theory_series = Series::new("theory p=0.1 (Thm 1, ε=0.05)", '.');
    for &n in &grid {
        theory_series.push(
            n as f64,
            npd_theory::bounds::z_channel_sublinear_queries(n as f64, THETA, 0.1, 0.05),
        );
    }
    series.push(theory_series);

    let rendered = loglog_chart(
        "Figure 2 — required queries m vs n (Z-channel, θ=0.25)",
        &series,
        64,
        20,
    );

    FigureReport {
        name: "fig2".into(),
        rendered,
        csv_headers: vec![
            "p".into(),
            "n".into(),
            "k".into(),
            "median_m".into(),
            "successes".into(),
            "failures".into(),
            "theory_m".into(),
        ],
        csv_rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::required_queries_sample;

    #[test]
    fn quick_tiny_run_produces_ordered_medians() {
        // Miniature grid: n = 100..316 only, 3 trials — seconds, not minutes.
        let opts = RunOptions {
            mode: Mode::Quick,
            trials: Some(3),
            threads: 2,
        };
        // Use the module entry point but intercept the smallest grid by
        // running a direct sweep: the full fig2 quick run is exercised by
        // the repro binary; here we check ordering on one n.
        let n = 200;
        let mut medians = Vec::new();
        for &p in &P_VALUES {
            let noise = NoiseModel::z_channel(p);
            let s = required_queries_sample(
                n,
                Regime::sublinear(THETA),
                noise,
                5,
                default_budget(n, THETA, &noise),
                mix_seed(1, p.to_bits()),
                opts.threads,
            );
            medians.push(s.median().expect("separates"));
        }
        // Required queries increase with the flip probability (the
        // vertical ordering of Figure 2's three curves).
        assert!(
            medians[0] < medians[2],
            "p=0.1 median {} ≥ p=0.5 median {}",
            medians[0],
            medians[2]
        );
    }

    #[test]
    fn report_has_theory_column() {
        let opts = RunOptions {
            mode: Mode::Quick,
            trials: Some(1),
            threads: 2,
        };
        // Shrink wall time by running on the quick grid's smallest setting:
        // a 1-trial run on the standard grid is still seconds.
        let report = run(&opts);
        assert_eq!(report.csv_headers.len(), 7);
        assert!(report.csv_rows.iter().all(|r| r.len() == 7));
        assert!(report.rendered.contains("Figure 2"));
        assert!(!report.notes.is_empty());
    }
}
