//! Agent-level chaos degradation: overlap vs crash / corruption rate.
//!
//! The robustness headline of the chaos fault layer: both phase-II
//! selection strategies *complete* under fail-stop crashes and payload
//! corruption — no hang to the round budget, no panic — and reconstruction
//! quality degrades smoothly with the fault rate instead of collapsing.
//! Two sweeps per strategy:
//!
//! * **crash axis** — a growing fraction of network nodes fail-stop at a
//!   round drawn from the protocol's opening window and never return;
//!   surviving agents finish and the outcome reports the achieved quorum.
//! * **corrupt axis** — a growing fraction of nodes garble every payload
//!   they send; the protocol folds measurements winsorized into their
//!   feasible `[0, slots]` range, bounding each corruptor's leverage.
//!
//! The expected shape (pinned by the `overlap_degrades_monotonically`
//! test): overlap ≈ 1 at rate 0, then a roughly linear decline on the
//! crash axis — a dead agent cannot report its bit, so overlap tracks the
//! one-agent survival rate — and a gentler decline on the corrupt axis.

use super::{FigureReport, RunOptions};
use crate::output::table;
use crate::sweep;
use crate::{mix_seed, runner};
use npd_core::distributed::{self, SelectionStrategy};
use npd_core::{overlap, Instance, NoiseModel, Regime};
use npd_netsim::NodeFaultPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Crash-fraction grid of the crash axis.
const CRASH_RATES: [f64; 5] = [0.0, 0.05, 0.10, 0.20, 0.30];
/// Corruptor-fraction grid of the corrupt axis (per-message prob 1).
const CORRUPT_RATES: [f64; 4] = [0.0, 0.05, 0.10, 0.20];
/// Crash window: the protocol's opening rounds, so crashes land while the
/// measurement broadcast and score formation are still in flight.
const CRASH_WINDOW: (u64, u64) = (1, 8);

/// Per-trial observation: `(overlap, quorum, crashes, corrupted)`.
type TrialStats = (f64, f64, f64, f64);

/// The two fault axes a sweep point can sit on.
#[derive(Clone, Copy, PartialEq)]
enum Axis {
    Crash,
    Corrupt,
}

impl Axis {
    fn label(self) -> &'static str {
        match self {
            Axis::Crash => "crash",
            Axis::Corrupt => "corrupt",
        }
    }

    fn plan(self, rate: f64, seed: u64) -> NodeFaultPlan {
        let plan = NodeFaultPlan::new(seed);
        match self {
            Axis::Crash => plan
                .with_crashes(rate, CRASH_WINDOW)
                .expect("sweep rates are valid probabilities"),
            Axis::Corrupt => plan
                .with_corruption(rate, 1.0)
                .expect("sweep rates are valid probabilities"),
        }
    }
}

/// Runs the chaos degradation sweep.
pub fn run(opts: &RunOptions) -> FigureReport {
    // θ = 0.5 (k = √n) rather than the figure-wide 0.25: overlap is
    // quantized in steps of 1/k, and a larger k resolves the degradation
    // curve instead of snapping it to quarters.
    let theta = 0.5;
    let n = match opts.mode {
        crate::Mode::Quick => 128,
        crate::Mode::Full => 1024,
    };
    let noise = NoiseModel::z_channel(0.1);
    // Half the default (4× Theorem-1) budget: generous enough that the
    // fault-free baseline recovers exactly, so every drop below 1.0 is
    // attributable to the injected faults.
    let m = (sweep::default_budget(n, theta, &noise) / 2).max(400);
    let trials = opts.resolve_trials(3, 10);
    let instance = Instance::builder(n)
        .regime(Regime::sublinear(theta))
        .queries(m)
        .query_size(n / 2)
        .noise(noise)
        .build()
        .expect("chaos sweep configuration is valid");

    let strategies = [
        ("batcher", SelectionStrategy::BatcherSort),
        ("gossip", SelectionStrategy::gossip()),
    ];
    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (strategy_name, strategy) in strategies {
        for (axis, rates) in [
            (Axis::Crash, &CRASH_RATES[..]),
            (Axis::Corrupt, &CORRUPT_RATES[..]),
        ] {
            for (ri, &rate) in rates.iter().enumerate() {
                let salt = (u64::from(axis == Axis::Corrupt) << 32)
                    | (u64::from(strategy_name == "gossip") << 16)
                    | ri as u64;
                let seeds: Vec<u64> = (0..trials as u64)
                    .map(|t| mix_seed(0xC4A0_5000 ^ salt, (n as u64) << 8 | t))
                    .collect();
                let per_trial = runner::parallel_map(&seeds, opts.threads, |&seed| {
                    let run = instance.sample(&mut StdRng::seed_from_u64(seed));
                    let options = distributed::ProtocolOptions {
                        strategy,
                        node_faults: Some(axis.plan(rate, seed ^ 0x5EED)),
                        winsorize: axis == Axis::Corrupt,
                        ..distributed::ProtocolOptions::default()
                    };
                    let outcome = distributed::run_protocol_chaos(&run, options)
                        .expect("chaos protocol completes within its budget");
                    (
                        overlap(&outcome.estimate, run.ground_truth()),
                        outcome.achieved_quorum as f64,
                        outcome.metrics.node_crashes as f64,
                        outcome.metrics.messages_corrupted as f64,
                    )
                });
                let mean = |f: &dyn Fn(&TrialStats) -> f64| -> f64 {
                    per_trial.iter().map(f).sum::<f64>() / trials as f64
                };
                let ov = mean(&|t| t.0);
                let quorum = mean(&|t| t.1);
                let crashes = mean(&|t| t.2);
                let corrupted = mean(&|t| t.3);
                rows.push(vec![
                    strategy_name.to_string(),
                    axis.label().to_string(),
                    format!("{rate:.2}"),
                    format!("{quorum:.0}"),
                    format!("{ov:.3}"),
                ]);
                csv_rows.push(vec![
                    n.to_string(),
                    instance.k().to_string(),
                    m.to_string(),
                    strategy_name.to_string(),
                    axis.label().to_string(),
                    format!("{rate:.2}"),
                    format!("{quorum:.1}"),
                    format!("{crashes:.1}"),
                    format!("{corrupted:.1}"),
                    format!("{ov:.4}"),
                    trials.to_string(),
                ]);
            }
        }
    }

    let rendered = format!(
        "Agent-level chaos — overlap degradation vs fault rate \
         (n = {n}, k = {}, m = {m}, {trials} trials)\n{}",
        instance.k(),
        table(&["strategy", "axis", "rate", "quorum", "overlap"], &rows)
    );
    let notes = vec![
        format!(
            "both strategies complete at every sweep point — crashes shrink the \
             quorum ({}-node network) instead of hanging the run",
            n + m
        ),
        "crash-axis overlap tracks the one-agent survival rate (a dead agent \
         cannot report its bit); the corrupt axis degrades more gently because \
         winsorized folds cap each garbled measurement at its feasible range"
            .to_string(),
    ];
    FigureReport {
        name: "chaos".into(),
        rendered,
        csv_headers: vec![
            "n".into(),
            "k".into(),
            "m".into(),
            "strategy".into(),
            "axis".into(),
            "fault_rate".into(),
            "achieved_quorum".into(),
            "node_crashes".into(),
            "messages_corrupted".into(),
            "mean_overlap".into(),
            "trials".into(),
        ],
        csv_rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pins the machine-readable shape behind `repro chaos --json`: the
    /// bench/CI pipeline greps these columns by name, so renames or
    /// reorderings must show up here, not downstream.
    #[test]
    fn json_export_pins_the_figure_schema() {
        let opts = RunOptions {
            mode: crate::Mode::Quick,
            trials: Some(1),
            threads: 2,
        };
        let report = run(&opts);
        assert_eq!(report.name, "chaos");
        let json = report.to_json();
        assert!(
            json.starts_with(
                "{\"name\":\"chaos\",\"headers\":[\"n\",\"k\",\"m\",\"strategy\",\
                 \"axis\",\"fault_rate\",\"achieved_quorum\",\"node_crashes\",\
                 \"messages_corrupted\",\"mean_overlap\",\"trials\"],\"rows\":["
            ),
            "schema drifted:\n{}",
            &json[..json.len().min(300)]
        );
        // One row per (strategy × axis × rate) sweep point, every cell a
        // string, every row as wide as the header.
        assert_eq!(
            report.csv_rows.len(),
            2 * (CRASH_RATES.len() + CORRUPT_RATES.len())
        );
        for row in &report.csv_rows {
            assert_eq!(row.len(), report.csv_headers.len());
        }
        // Both axes and strategies appear in the JSON body.
        for needle in ["\"batcher\"", "\"gossip\"", "\"crash\"", "\"corrupt\""] {
            assert!(json.contains(needle), "{needle} missing from {json}");
        }
        assert!(json.ends_with("}"));
    }

    /// The acceptance pin for the chaos layer: degradation is smooth and
    /// monotone-ish — overlap starts at (near) perfect recovery, never
    /// *jumps up* along a fault axis, and ends strictly degraded on the
    /// crash axis.
    #[test]
    fn overlap_degrades_monotonically() {
        let opts = RunOptions {
            mode: crate::Mode::Quick,
            trials: Some(2),
            threads: 2,
        };
        let report = run(&opts);
        let col = |name: &str| -> usize {
            report
                .csv_headers
                .iter()
                .position(|h| h == name)
                .unwrap_or_else(|| panic!("missing column {name}"))
        };
        let (strat, axis, rate, quorum, ov) = (
            col("strategy"),
            col("axis"),
            col("fault_rate"),
            col("achieved_quorum"),
            col("mean_overlap"),
        );
        assert_eq!(
            report.csv_rows.len(),
            2 * (CRASH_RATES.len() + CORRUPT_RATES.len())
        );
        for strategy in ["batcher", "gossip"] {
            for axis_name in ["crash", "corrupt"] {
                let curve: Vec<(f64, f64, f64)> = report
                    .csv_rows
                    .iter()
                    .filter(|r| r[strat] == strategy && r[axis] == axis_name)
                    .map(|r| {
                        (
                            r[rate].parse().unwrap(),
                            r[quorum].parse().unwrap(),
                            r[ov].parse().unwrap(),
                        )
                    })
                    .collect();
                // Rate 0 is the working baseline: full quorum, exact
                // recovery.
                let (r0, q0, ov0) = curve[0];
                assert_eq!(r0, 0.0);
                assert_eq!(q0, 128.0, "{strategy}/{axis_name}: baseline quorum");
                assert!(
                    ov0 >= 0.99,
                    "{strategy}/{axis_name}: baseline overlap {ov0}"
                );
                // Monotone-ish: no step along the axis may *improve*
                // overlap beyond trial noise.
                for w in curve.windows(2) {
                    assert!(
                        w[1].2 <= w[0].2 + 0.12,
                        "{strategy}/{axis_name}: overlap jumped {} -> {} at rate {}",
                        w[0].2,
                        w[1].2,
                        w[1].0
                    );
                }
                if axis_name == "crash" {
                    let last = curve.last().unwrap();
                    assert!(
                        last.2 < ov0 - 0.1,
                        "{strategy}: 30% crashes should visibly degrade overlap \
                         (got {} vs baseline {ov0})",
                        last.2
                    );
                    assert!(last.1 < q0, "{strategy}: crashes must shrink the quorum");
                }
            }
        }
    }
}
