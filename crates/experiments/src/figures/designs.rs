//! Pooling-design comparison: required queries under the paper's
//! with-replacement multigraph, uniform Γ-subsets, and the doubly-balanced
//! (constant-column-weight) allocation.
//!
//! The paper samples every query independently with replacement because it
//! "adapts techniques used in a variety of other statistical inference
//! problems"; the group-testing literature prefers (near-)constant
//! tests-per-item designs. This experiment measures what the choice costs
//! at both a dense (`Γ = n/2`, the paper's) and a sparse (`Γ = n/8`) query
//! size. The measured picture is regime-dependent: the Γ-subset design
//! always helps (no slots wasted on duplicates), while degree-balancing
//! helps only in the sparse regime — at `Γ = n/2` the balanced deck deals
//! exactly complementary query pairs whose anti-correlated results inflate
//! the greedy score fluctuations (see [`npd_core::Sampling::Balanced`]).

use super::{FigureReport, RunOptions, THETA};
use crate::output::table;
use crate::{mix_seed, runner, Mode};
use npd_core::{IncrementalSim, NoiseModel, Regime, Sampling};
use npd_numerics::stats::median;

/// The designs compared, with report labels.
pub const DESIGNS: [(Sampling, &str); 3] = [
    (Sampling::WithReplacement, "with-replacement (paper)"),
    (Sampling::WithoutReplacement, "Γ-subset"),
    (Sampling::Balanced, "doubly-balanced"),
];

/// Noise settings of the comparison.
pub fn noise_cases() -> Vec<(NoiseModel, &'static str)> {
    vec![
        (NoiseModel::Noiseless, "noiseless"),
        (NoiseModel::z_channel(0.1), "Z-channel p=0.1"),
        (NoiseModel::gaussian(1.0), "gaussian λ=1"),
    ]
}

/// Median required queries for one `(design, noise, Γ)` cell.
#[allow(clippy::too_many_arguments)]
pub fn measure_cell(
    n: usize,
    gamma: usize,
    sampling: Sampling,
    noise: NoiseModel,
    trials: usize,
    budget: usize,
    seed_salt: u64,
    threads: usize,
) -> (Option<f64>, usize) {
    let k = Regime::sublinear(THETA).k_for(n);
    let seeds: Vec<u64> = (0..trials as u64).map(|i| mix_seed(seed_salt, i)).collect();
    let outcomes = runner::parallel_map(&seeds, threads, |&seed| {
        let mut sim = IncrementalSim::with_options(n, k, gamma, noise, sampling, seed);
        sim.required_queries(budget)
    });
    let mut samples = Vec::new();
    let mut failures = 0;
    for o in outcomes {
        match o {
            Ok(r) => samples.push(r.queries as f64),
            Err(_) => failures += 1,
        }
    }
    let med = if samples.is_empty() {
        None
    } else {
        Some(median(&samples))
    };
    (med, failures)
}

/// Runs the design comparison.
pub fn run(opts: &RunOptions) -> FigureReport {
    let trials = opts.resolve_trials(10, 30);
    let n = match opts.mode {
        Mode::Quick => 1000,
        Mode::Full => 10_000,
    };
    let budget = crate::sweep::default_budget(n, THETA, &NoiseModel::z_channel(0.1)) * 2;

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut notes = Vec::new();

    // Dense (the paper's Γ = n/2) and sparse (Γ = n/8) query sizes: the
    // constant-column-weight literature works with sparse designs, and the
    // comparison comes out very differently in the two regimes.
    for (gi, gamma) in [n / 2, n / 8].into_iter().enumerate() {
        for (ni, (noise, noise_label)) in noise_cases().iter().enumerate() {
            let mut medians = Vec::new();
            for (di, (sampling, design_label)) in DESIGNS.iter().enumerate() {
                let (med, failures) = measure_cell(
                    n,
                    gamma,
                    *sampling,
                    *noise,
                    trials,
                    budget,
                    mix_seed(0xDE51_0000, (gi * 100 + ni * 10 + di) as u64),
                    opts.threads,
                );
                let med_str = med.map_or("NA".into(), |m| format!("{m:.0}"));
                rows.push(vec![
                    format!("n/{}", n / gamma),
                    noise_label.to_string(),
                    design_label.to_string(),
                    med_str.clone(),
                    failures.to_string(),
                ]);
                csv_rows.push(vec![
                    gamma.to_string(),
                    noise_label.to_string(),
                    design_label.to_string(),
                    med_str,
                    failures.to_string(),
                    trials.to_string(),
                ]);
                medians.push(med);
            }
            if let (Some(with), Some(subset), Some(balanced)) = (medians[0], medians[1], medians[2])
            {
                notes.push(format!(
                    "Γ=n/{}, {noise_label}: Γ-subset {:.0}%, doubly-balanced {:.0}% of the \
                     paper design's queries",
                    n / gamma,
                    100.0 * subset / with,
                    100.0 * balanced / with
                ));
            }
        }
    }

    let rendered = format!(
        "Design comparison — median required queries (n={n}, θ={THETA}, {trials} trials)\n{}",
        table(&["Γ", "noise", "design", "median m", "failures"], &rows)
    );

    FigureReport {
        name: "designs".into(),
        rendered,
        csv_headers: vec![
            "gamma".into(),
            "noise".into(),
            "design".into(),
            "median_required_queries".into(),
            "failures".into(),
            "trials".into(),
        ],
        csv_rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_labels_are_distinct() {
        let mut labels: Vec<&str> = DESIGNS.iter().map(|(_, l)| *l).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 3);
    }

    #[test]
    fn subset_design_beats_paper_design_at_dense_gamma() {
        // At Γ = n/2 the Γ-subset design wastes no slots on duplicates and
        // needs clearly fewer queries (the ablation of EXPERIMENTS.md).
        let budget = 4_000;
        let (with, _) = measure_cell(
            400,
            200,
            Sampling::WithReplacement,
            NoiseModel::Noiseless,
            6,
            budget,
            7,
            2,
        );
        let (subset, _) = measure_cell(
            400,
            200,
            Sampling::WithoutReplacement,
            NoiseModel::Noiseless,
            6,
            budget,
            8,
            2,
        );
        let (w, s) = (with.unwrap(), subset.unwrap());
        assert!(
            s < w,
            "Γ-subset median {s} should undercut with-replacement median {w}"
        );
    }

    #[test]
    fn balanced_design_pairing_pathology_at_dense_gamma() {
        // With Γ = n/2 the rotating deck deals *complementary pairs* of
        // queries (every deck pass is exactly two queries partitioning the
        // population). The pair's results are perfectly anti-correlated,
        // which inflates the score fluctuations the maximum-neighborhood
        // rule must overcome — a measured counterexample to "degree
        // regularity always helps".
        let budget = 6_000;
        let (subset, _) = measure_cell(
            400,
            200,
            Sampling::WithoutReplacement,
            NoiseModel::Noiseless,
            6,
            budget,
            9,
            2,
        );
        let (balanced, _) = measure_cell(
            400,
            200,
            Sampling::Balanced,
            NoiseModel::Noiseless,
            6,
            budget,
            10,
            2,
        );
        let (s, b) = (subset.unwrap(), balanced.unwrap());
        assert!(
            b > s,
            "dense balanced dealing ({b}) should trail the independent Γ-subset design ({s})"
        );
    }
}
