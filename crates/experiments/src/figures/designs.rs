//! Pooling-design comparison: required queries under every design in the
//! [`npd_core::PoolingDesign`] catalog, at fixed noise settings.
//!
//! The paper samples every query independently with replacement because it
//! "adapts techniques used in a variety of other statistical inference
//! problems"; the follow-up literature prefers structured designs — doubly
//! regular schemes (arXiv:2303.00043), sparse constant-column constructions
//! (arXiv:2312.14588) and spatially-coupled/banded matrices. This
//! experiment measures what the choice costs at both a dense (`Γ = n/2`,
//! the paper's) and a sparse (`Γ = n/8`) query size, emitting one row per
//! design per `(Γ, noise)` cell.
//!
//! The measured picture is regime-dependent: the Γ-subset design always
//! helps (no slots wasted on duplicates), degree balancing helps only in
//! the sparse regime — at `Γ = n/2` the balanced dealing produces exactly
//! complementary query pairs whose anti-correlated results inflate the
//! greedy score fluctuations (see [`npd_core::Sampling::Balanced`]) — and
//! the spatially-coupled design *censors*: banding breaks the
//! exchangeability the global maximum-neighborhood rule rests on, so its
//! rows report budget-exhausted trials in the `failures` column rather
//! than a median (the measured negative result documented on
//! [`npd_core::SpatiallyCoupledDesign`]; the `coupled-z01` scenario
//! reports the overlap that survives).
//!
//! Designs whose batch construction fixes `m` up front are grown through
//! their *anytime* analogues here (see [`IncrementalSim::with_design`]):
//! doubly regular via deck dealing, the constant-column design via
//! Bernoulli pools (size `Bin(n, Γ/n)`, then a uniform subset — its
//! query-major marginal). The batch constructions themselves are
//! exercised by the batch scenarios, the cross-layer tests and the
//! `design_throughput` bench.

use super::{FigureReport, RunOptions, THETA};
use crate::output::table;
use crate::{mix_seed, runner, Mode};
use npd_core::{DesignSpec, IncrementalSim, NoiseModel, PoolingDesign, Regime};
use npd_numerics::stats::median;

/// The design catalog compared, with report labels: the paper's design
/// plus every structured design behind [`npd_core::PoolingDesign`].
pub fn catalog() -> Vec<(DesignSpec, &'static str)> {
    vec![
        (DesignSpec::Iid, "iid Γ-regular (paper)"),
        (DesignSpec::GammaSubset, "Γ-subset"),
        (DesignSpec::DoublyRegular, "doubly-regular"),
        (DesignSpec::SparseColumn, "sparse constant-column"),
        (DesignSpec::spatially_coupled(), "spatially-coupled"),
    ]
}

/// Noise settings of the comparison.
pub fn noise_cases() -> Vec<(NoiseModel, &'static str)> {
    vec![
        (NoiseModel::Noiseless, "noiseless"),
        (NoiseModel::z_channel(0.1), "Z-channel p=0.1"),
        (NoiseModel::gaussian(1.0), "gaussian λ=1"),
    ]
}

/// Median required queries for one `(design, noise, Γ)` cell.
#[allow(clippy::too_many_arguments)]
pub fn measure_cell(
    n: usize,
    gamma: usize,
    design: DesignSpec,
    noise: NoiseModel,
    trials: usize,
    budget: usize,
    seed_salt: u64,
    threads: usize,
) -> (Option<f64>, usize) {
    let k = Regime::sublinear(THETA).k_for(n);
    let seeds: Vec<u64> = (0..trials as u64).map(|i| mix_seed(seed_salt, i)).collect();
    let outcomes = runner::parallel_map(&seeds, threads, |&seed| {
        let mut sim = IncrementalSim::with_design(n, k, gamma, noise, design, seed);
        sim.required_queries(budget)
    });
    let mut samples = Vec::new();
    let mut failures = 0;
    for o in outcomes {
        match o {
            Ok(r) => samples.push(r.queries as f64),
            Err(_) => failures += 1,
        }
    }
    let med = if samples.is_empty() {
        None
    } else {
        Some(median(&samples))
    };
    (med, failures)
}

/// Runs the design comparison.
pub fn run(opts: &RunOptions) -> FigureReport {
    let trials = opts.resolve_trials(10, 30);
    let n = match opts.mode {
        Mode::Quick => 1000,
        Mode::Full => 10_000,
    };
    let budget = crate::sweep::default_budget(n, THETA, &NoiseModel::z_channel(0.1)) * 2;
    let designs = catalog();

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut notes = Vec::new();

    // Dense (the paper's Γ = n/2) and sparse (Γ = n/8) query sizes: the
    // constant-column-weight literature works with sparse designs, and the
    // comparison comes out very differently in the two regimes.
    for (gi, gamma) in [n / 2, n / 8].into_iter().enumerate() {
        for (ni, (noise, noise_label)) in noise_cases().iter().enumerate() {
            let mut medians = Vec::new();
            for (di, (design, design_label)) in designs.iter().enumerate() {
                let (med, failures) = measure_cell(
                    n,
                    gamma,
                    *design,
                    *noise,
                    trials,
                    budget,
                    mix_seed(0xDE51_0000, (gi * 100 + ni * 10 + di) as u64),
                    opts.threads,
                );
                let med_str = med.map_or("NA".into(), |m| format!("{m:.0}"));
                rows.push(vec![
                    format!("n/{}", n / gamma),
                    noise_label.to_string(),
                    design_label.to_string(),
                    med_str.clone(),
                    failures.to_string(),
                ]);
                csv_rows.push(vec![
                    gamma.to_string(),
                    noise_label.to_string(),
                    design.name().to_string(),
                    med_str,
                    failures.to_string(),
                    trials.to_string(),
                ]);
                medians.push(med);
            }
            if let Some(paper) = medians[0] {
                let relative: Vec<String> = designs
                    .iter()
                    .zip(&medians)
                    .skip(1)
                    .map(|((design, _), med)| {
                        med.map_or(format!("{}: NA", design.name()), |m| {
                            format!("{}: {:.0}%", design.name(), 100.0 * m / paper)
                        })
                    })
                    .collect();
                notes.push(format!(
                    "Γ=n/{}, {noise_label}: queries relative to the paper design — {}",
                    n / gamma,
                    relative.join(", ")
                ));
            }
        }
    }

    let rendered = format!(
        "Design comparison — median required queries (n={n}, θ={THETA}, {trials} trials)\n{}",
        table(&["Γ", "noise", "design", "median m", "failures"], &rows)
    );

    FigureReport {
        name: "designs".into(),
        rendered,
        csv_headers: vec![
            "gamma".into(),
            "noise".into(),
            "design".into(),
            "median_required_queries".into(),
            "failures".into(),
            "trials".into(),
        ],
        csv_rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_all_structured_designs_with_distinct_labels() {
        let cat = catalog();
        assert!(cat.len() >= 5, "one row per design requires >= 5 entries");
        let mut labels: Vec<&str> = cat.iter().map(|(_, l)| *l).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), cat.len());
        let specs: Vec<DesignSpec> = cat.iter().map(|(d, _)| *d).collect();
        for required in [
            DesignSpec::Iid,
            DesignSpec::DoublyRegular,
            DesignSpec::SparseColumn,
            DesignSpec::spatially_coupled(),
        ] {
            assert!(specs.contains(&required), "{} missing", required.name());
        }
    }

    #[test]
    fn subset_design_beats_paper_design_at_dense_gamma() {
        // At Γ = n/2 the Γ-subset design wastes no slots on duplicates and
        // needs clearly fewer queries (the ablation of EXPERIMENTS.md).
        let budget = 4_000;
        let (with, _) = measure_cell(
            400,
            200,
            DesignSpec::Iid,
            NoiseModel::Noiseless,
            6,
            budget,
            7,
            2,
        );
        let (subset, _) = measure_cell(
            400,
            200,
            DesignSpec::GammaSubset,
            NoiseModel::Noiseless,
            6,
            budget,
            8,
            2,
        );
        let (w, s) = (with.unwrap(), subset.unwrap());
        assert!(
            s < w,
            "Γ-subset median {s} should undercut with-replacement median {w}"
        );
    }

    #[test]
    fn balanced_design_pairing_pathology_at_dense_gamma() {
        // With Γ = n/2 the anytime (deck-dealing) doubly regular design
        // deals *complementary pairs* of queries (every deck pass is
        // exactly two queries partitioning the population). The pair's
        // results are perfectly anti-correlated, which inflates the score
        // fluctuations the maximum-neighborhood rule must overcome — a
        // measured counterexample to "degree regularity always helps".
        let budget = 6_000;
        let (subset, _) = measure_cell(
            400,
            200,
            DesignSpec::GammaSubset,
            NoiseModel::Noiseless,
            6,
            budget,
            9,
            2,
        );
        let (balanced, _) = measure_cell(
            400,
            200,
            DesignSpec::DoublyRegular,
            NoiseModel::Noiseless,
            6,
            budget,
            10,
            2,
        );
        let (s, b) = (subset.unwrap(), balanced.unwrap());
        assert!(
            b > s,
            "dense balanced dealing ({b}) should trail the independent Γ-subset design ({s})"
        );
    }

    #[test]
    fn spatially_coupled_breaks_global_greedy_exchangeability() {
        // The pinned negative result: at 8 bands a zero-agent in a window
        // that is locally rich in one-agents out-scores an isolated
        // one-agent in expectation, so the incremental search exhausts its
        // budget on some truths instead of separating.
        let (_, failures) = measure_cell(
            400,
            100,
            DesignSpec::SpatiallyCoupled { bands: 8 },
            NoiseModel::z_channel(0.1),
            4,
            20_000,
            11,
            2,
        );
        assert!(failures > 0, "expected censored trials at strong coupling");
        // With a single band the window is the whole population, the
        // design is exchangeable again, and every trial separates.
        let (med, failures) = measure_cell(
            400,
            100,
            DesignSpec::SpatiallyCoupled { bands: 1 },
            NoiseModel::z_channel(0.1),
            4,
            20_000,
            12,
            2,
        );
        assert_eq!(failures, 0);
        assert!(med.unwrap() > 0.0);
    }
}
