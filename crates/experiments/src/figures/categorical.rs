//! Categorical SE-agreement figure: matrix-AMP's empirical per-iteration
//! MSE against the matrix state-evolution prediction, for `d = 2` and
//! `d = 4`.
//!
//! This is the artifact form of `tests/se_agreement.rs`: the same decoder
//! ([`npd_amp::matrix_amp::run_matrix_amp_tracking`]) and the same
//! Monte-Carlo recursion ([`npd_amp::state_evolution::matrix_evolve`],
//! with the ridge pinned to the decoder's), rendered as a per-iteration
//! table instead of an assertion. The relative deviation column is the
//! headline: with a correct Onsager term it stays within a few percent;
//! a broken one drifts by 2–10× in the late iterations.

use crate::figures::{FigureReport, RunOptions};
use crate::output::table;
use crate::{mix_seed, runner, Mode};
use npd_amp::matrix_amp::run_matrix_amp_tracking;
use npd_amp::state_evolution::{matrix_evolve, MatrixSeConfig};
use npd_amp::{prepare_categorical, MatrixAmpConfig};
use npd_core::{CategoricalInstance, NoiseModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Decoder iterations tracked (and SE iterations predicted).
const ITERATIONS: usize = 6;
/// Shared ridge — must match on both sides or the noiseless leg diverges.
const RIDGE: f64 = 1e-6;

/// One (strain-count, noise) case of the figure.
struct Case {
    label: &'static str,
    strains: Vec<usize>,
    noise: NoiseModel,
}

/// Runs the categorical SE-agreement figure.
pub fn run(opts: &RunOptions) -> FigureReport {
    let (n, samples) = match opts.mode {
        Mode::Quick => (2_000, 30_000),
        Mode::Full => (8_000, 100_000),
    };
    let m = n / 2;
    let trials = opts.resolve_trials(4, 12);
    let cases = [
        Case {
            label: "d=2 gaussian",
            strains: vec![3 * n / 10],
            noise: NoiseModel::gaussian(10.0),
        },
        Case {
            label: "d=4 gaussian",
            strains: vec![3 * n / 20; 3],
            noise: NoiseModel::gaussian(10.0),
        },
        Case {
            label: "d=4 noiseless",
            strains: vec![3 * n / 20; 3],
            noise: NoiseModel::Noiseless,
        },
    ];

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut worst_rel: f64 = 0.0;
    for (ci, case) in cases.iter().enumerate() {
        let instance = CategoricalInstance::new(n, case.strains.clone(), m)
            .expect("catalog case is valid")
            .with_noise(case.noise);
        let config = MatrixAmpConfig {
            max_iterations: ITERATIONS,
            tolerance: 0.0, // run every iteration so trajectories align
            ridge: RIDGE,
            onsager: true,
        };
        let seeds: Vec<u64> = (0..trials as u64)
            .map(|t| mix_seed(0x5E0A_6EE0, (ci as u64) << 32 | t))
            .collect();
        let per_trial = runner::parallel_map(&seeds, opts.threads, |&seed| {
            let run = instance.sample(&mut StdRng::seed_from_u64(seed));
            let prep = prepare_categorical(&run);
            let out = run_matrix_amp_tracking(&prep, &config, Some(run.ground_truth().labels()));
            (out.mse_trajectory, prep.noise_cov)
        });

        // The scaled noise covariance depends only on the model, not the
        // seed — any trial's copy feeds the SE recursion.
        let noise_cov = per_trial[0].1.clone();
        let counts = instance.category_counts();
        let d = counts.len();
        let se = matrix_evolve(&MatrixSeConfig {
            prior: counts.iter().map(|&k| k as f64 / n as f64).collect(),
            n_over_m: n as f64 / m as f64,
            noise_cov,
            ridge: RIDGE,
            samples,
            iterations: ITERATIONS,
            seed: 9,
        });

        for t in 0..ITERATIONS {
            let emp = per_trial.iter().map(|(traj, _)| traj[t]).sum::<f64>() / trials as f64;
            let pred = se.mse[t];
            // Floor the denominator: once both sides hit ~0 (the noiseless
            // case converges exactly) the ratio is pure round-off noise.
            let rel = (emp - pred).abs() / pred.max(1e-3);
            worst_rel = worst_rel.max(rel);
            rows.push(vec![
                case.label.to_string(),
                t.to_string(),
                format!("{emp:.4}"),
                format!("{pred:.4}"),
                format!("{:.1}%", 100.0 * rel),
            ]);
            csv_rows.push(vec![
                case.label.to_string(),
                d.to_string(),
                n.to_string(),
                m.to_string(),
                t.to_string(),
                format!("{emp:.6}"),
                format!("{pred:.6}"),
                format!("{rel:.4}"),
                trials.to_string(),
            ]);
        }
    }

    let rendered = format!(
        "Categorical matrix-AMP vs state evolution — n = {n}, m = {m}, {trials} trials\n{}",
        table(
            &[
                "case",
                "iter",
                "empirical MSE",
                "SE prediction",
                "|rel. dev.|"
            ],
            &rows
        )
    );
    FigureReport {
        name: "categorical".into(),
        rendered,
        csv_headers: vec![
            "case".into(),
            "d".into(),
            "n".into(),
            "m".into(),
            "iteration".into(),
            "empirical_mse".into(),
            "se_mse".into(),
            "rel_deviation".into(),
            "trials".into(),
        ],
        csv_rows,
        notes: vec![format!(
            "matrix-AMP tracks matrix SE for d ∈ {{2, 4}}: worst per-iteration \
             relative deviation {:.1}% across {} cases × {ITERATIONS} iterations",
            100.0 * worst_rel,
            cases.len()
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_figure_runs_and_agrees_in_quick_mode() {
        let mut opts = RunOptions::quick();
        opts.trials = Some(2);
        opts.threads = 2;
        let report = run(&opts);
        assert_eq!(report.name, "categorical");
        assert_eq!(report.csv_rows.len(), 3 * ITERATIONS);
        assert_eq!(report.csv_headers.len(), report.csv_rows[0].len());
        // Every row's relative deviation stays loose-but-bounded — the
        // tight assertion lives in tests/se_agreement.rs; here we guard
        // the figure wiring itself.
        for row in &report.csv_rows {
            let rel: f64 = row[7].parse().expect("rel_deviation is numeric");
            assert!(rel < 0.5, "figure disagrees with SE: {row:?}");
        }
        assert!(report.rendered.contains("d=4 noiseless"));
    }

    #[test]
    fn categorical_figure_is_deterministic() {
        let mut opts = RunOptions::quick();
        opts.trials = Some(1);
        opts.threads = 2;
        let a = run(&opts);
        let b = run(&opts);
        assert_eq!(a.csv_rows, b.csv_rows);
    }
}
