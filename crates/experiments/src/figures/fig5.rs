//! Figure 5: box plots of the required number of queries.
//!
//! For `n ∈ {10³, 10⁴, 10⁵}` the paper shows the distribution of the
//! required query count for the Z-channel (`p ∈ {0.1, 0.3, 0.5}`) and the
//! noisy query model (`λ ∈ {0, 1, 2, 3}`), `θ = 0.25`.

use super::{FigureReport, RunOptions, THETA};
use crate::output::boxplot_line;
use crate::sweep::{default_budget, required_queries_grid, SweepCell};
use crate::{mix_seed, Mode};
use npd_core::{NoiseModel, Regime};
use std::fmt::Write as _;

/// The configurations of the figure, in display order.
pub fn configurations() -> Vec<(String, NoiseModel)> {
    let mut configs = Vec::new();
    for p in [0.1, 0.3, 0.5] {
        configs.push((format!("p={p}"), NoiseModel::z_channel(p)));
    }
    for lambda in [0.0, 1.0, 2.0, 3.0] {
        let noise = if lambda == 0.0 {
            NoiseModel::Noiseless
        } else {
            NoiseModel::gaussian(lambda)
        };
        configs.push((format!("λ={lambda}"), noise));
    }
    configs
}

/// Runs the Figure-5 box-plot study.
pub fn run(opts: &RunOptions) -> FigureReport {
    let trials = opts.resolve_trials(10, 20);
    let n_values: Vec<usize> = match opts.mode {
        Mode::Quick => vec![1_000, 10_000],
        Mode::Full => vec![1_000, 10_000, 100_000],
    };
    let configs = configurations();

    let mut rendered = String::new();
    let _ = writeln!(
        rendered,
        "Figure 5 — box plots of required queries (θ=0.25, {} trials/config)",
        trials
    );
    let mut csv_rows = Vec::new();
    let mut notes = Vec::new();

    // One flattened grid call across all (n, config) cells: the n = 10⁵
    // cells dominate the wall clock, and flattening lets the small cells'
    // trials fill worker idle time instead of waiting behind a per-cell
    // barrier.
    let cells: Vec<SweepCell> = n_values
        .iter()
        .flat_map(|&n| {
            configs.iter().enumerate().map(move |(ci, (_, noise))| {
                SweepCell::paper(
                    n,
                    Regime::sublinear(THETA),
                    *noise,
                    default_budget(n, THETA, noise).min(400_000),
                    mix_seed(0xF560_0000, (ci * 1_000_000 + n) as u64),
                )
            })
        })
        .collect();
    let samples = required_queries_grid(&cells, trials, opts.threads);
    let mut samples = samples.into_iter();

    for &n in &n_values {
        let _ = writeln!(rendered, "\n  n = {n}:");
        // Collect all samples for this n to fix a common axis.
        let mut results = Vec::new();
        for (label, _) in configs.iter() {
            let sample = samples.next().expect("one sample per cell");
            results.push((label.clone(), sample));
        }
        let lo = results
            .iter()
            .filter_map(|(_, s)| s.samples.iter().copied().fold(None, min_fold))
            .fold(f64::INFINITY, f64::min);
        let hi = results
            .iter()
            .filter_map(|(_, s)| s.samples.iter().copied().fold(None, max_fold))
            .fold(0.0f64, f64::max)
            .max(lo + 1.0);

        for (label, sample) in &results {
            match sample.boxplot() {
                Some(bp) => {
                    let line = boxplot_line(&bp, lo, hi, 48, true);
                    let _ = writeln!(rendered, "    {label:>7} |{line}| med={:.0}", bp.median);
                    csv_rows.push(vec![
                        n.to_string(),
                        label.clone(),
                        format!("{:.1}", bp.min),
                        format!("{:.1}", bp.q1),
                        format!("{:.1}", bp.median),
                        format!("{:.1}", bp.q3),
                        format!("{:.1}", bp.max),
                        sample.failures.to_string(),
                    ]);
                }
                None => {
                    let _ = writeln!(rendered, "    {label:>7} (all {trials} trials failed)");
                    csv_rows.push(vec![
                        n.to_string(),
                        label.clone(),
                        "NA".into(),
                        "NA".into(),
                        "NA".into(),
                        "NA".into(),
                        "NA".into(),
                        sample.failures.to_string(),
                    ]);
                }
            }
        }
        if let (Some((_, first)), Some((_, worst))) = (results.first(), results.get(2)) {
            if let (Some(a), Some(b)) = (first.median(), worst.median()) {
                notes.push(format!(
                    "n={n}: median m rises from {a:.0} (p=0.1) to {b:.0} (p=0.5)"
                ));
            }
        }
    }
    let _ = writeln!(
        rendered,
        "\n  scale: log10(m); [=#=] box = quartiles/median"
    );

    FigureReport {
        name: "fig5".into(),
        rendered,
        csv_headers: vec![
            "n".into(),
            "config".into(),
            "min".into(),
            "q1".into(),
            "median".into(),
            "q3".into(),
            "max".into(),
            "failures".into(),
        ],
        csv_rows,
        notes,
    }
}

fn min_fold(acc: Option<f64>, x: f64) -> Option<f64> {
    Some(acc.map_or(x, |a| a.min(x)))
}

fn max_fold(acc: Option<f64>, x: f64) -> Option<f64> {
    Some(acc.map_or(x, |a| a.max(x)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configurations_cover_paper_grid() {
        let configs = configurations();
        assert_eq!(configs.len(), 7);
        assert_eq!(configs[0].0, "p=0.1");
        assert_eq!(configs[3].0, "λ=0");
        assert_eq!(configs[6].0, "λ=3");
    }

    #[test]
    fn fold_helpers() {
        assert_eq!(min_fold(None, 3.0), Some(3.0));
        assert_eq!(min_fold(Some(1.0), 3.0), Some(1.0));
        assert_eq!(max_fold(Some(1.0), 3.0), Some(3.0));
    }
}
