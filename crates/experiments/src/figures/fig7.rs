//! Figure 7: overlap (fraction of one-agents identified) vs query count.
//!
//! Same setting as Figure 6 (`n = 1000`, Z-channel, `p ∈ {0.1, 0.3, 0.5}`)
//! but the metric is the average overlap of the greedy reconstruction. The
//! paper's headline: at the theoretical threshold the success rate is only
//! ≈ 40% while the overlap is already ≈ 90%, which is what makes the
//! algorithm practical when a small misclassification rate is acceptable.

use super::{FigureReport, RunOptions, THETA};
use crate::output::{linear_chart, Series};
use crate::{mix_seed, runner};
use npd_core::{overlap, Decoder, GreedyDecoder, Instance, NoiseModel, Regime};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Population size of the figure.
pub const N: usize = 1000;
/// Flip probabilities of the figure.
pub const P_VALUES: [f64; 3] = [0.1, 0.3, 0.5];

/// One overlap trial at `(p, m)` with a fixed seed.
fn overlap_trial(p: f64, m: usize, seed: u64) -> f64 {
    let instance = Instance::builder(N)
        .regime(Regime::sublinear(THETA))
        .queries(m)
        .noise(NoiseModel::z_channel(p))
        .build()
        .expect("figure-7 configuration is valid");
    let run = instance.sample(&mut StdRng::seed_from_u64(seed));
    overlap(&GreedyDecoder::new().decode(&run), run.ground_truth())
}

/// Mean overlap of the greedy decoder at `(p, m)` over `trials` runs
/// (parallel over trials).
pub fn mean_overlap(p: f64, m: usize, trials: usize, seed_salt: u64, threads: usize) -> f64 {
    let seeds: Vec<u64> = (0..trials as u64).map(|i| mix_seed(seed_salt, i)).collect();
    let overlaps = runner::parallel_map(&seeds, threads, |&seed| overlap_trial(p, m, seed));
    overlaps.iter().sum::<f64>() / trials.max(1) as f64
}

/// Runs the Figure-7 overlap sweep (one flattened
/// [`runner::parallel_trials`] call across all `(p, m)` cells).
pub fn run(opts: &RunOptions) -> FigureReport {
    let trials = opts.resolve_trials(20, 100);
    let grid: Vec<usize> = (1..=24).map(|i| i * 25).collect();
    let markers = ['*', 'o', 'x'];

    let cells: Vec<(usize, f64, usize)> = P_VALUES
        .iter()
        .enumerate()
        .flat_map(|(pi, &p)| grid.iter().map(move |&m| (pi, p, m)))
        .collect();
    let grouped = runner::parallel_trials(
        &cells,
        trials,
        opts.threads,
        |&(pi, _, m)| mix_seed(0xF760_0000, (pi * 1_000_000 + m) as u64),
        |&(_, p, m), seed| overlap_trial(p, m, seed),
    );
    let mut grouped = grouped.into_iter();

    let mut series = Vec::new();
    let mut csv_rows = Vec::new();
    let mut notes = Vec::new();

    let theory = npd_theory::bounds::z_channel_sublinear_queries(N as f64, THETA, 0.1, 0.1);

    for (pi, &p) in P_VALUES.iter().enumerate() {
        let mut s = Series::new(format!("p={p}"), markers[pi]);
        let mut overlap_at_theory = None;
        for &m in &grid {
            let overlaps = grouped.next().expect("one group per cell");
            let mean = overlaps.iter().sum::<f64>() / trials.max(1) as f64;
            s.push(m as f64, mean);
            if overlap_at_theory.is_none() && (m as f64) >= theory {
                overlap_at_theory = Some(mean);
            }
            csv_rows.push(vec![
                p.to_string(),
                m.to_string(),
                format!("{mean:.4}"),
                trials.to_string(),
            ]);
        }
        if let Some(o) = overlap_at_theory {
            notes.push(format!(
                "p={p}: mean overlap at the Theorem-1 bound (m≈{theory:.0}) is {o:.2}"
            ));
        }
        series.push(s);
    }

    let rendered = linear_chart(
        "Figure 7 — mean overlap vs m (n=1000, Z-channel, greedy)",
        &series,
        64,
        20,
    );

    FigureReport {
        name: "fig7".into(),
        rendered,
        csv_headers: vec![
            "p".into(),
            "m".into(),
            "mean_overlap".into(),
            "trials".into(),
        ],
        csv_rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_is_high_before_exact_recovery() {
        // The paper's observation: substantial overlap well below the
        // exact-recovery threshold.
        let at_threshold = mean_overlap(0.1, 200, 10, 7, 2);
        assert!(
            at_threshold > 0.7,
            "overlap at m=200 unexpectedly low: {at_threshold}"
        );
    }

    #[test]
    fn overlap_increases_with_m() {
        let low = mean_overlap(0.3, 50, 10, 8, 2);
        let high = mean_overlap(0.3, 500, 10, 9, 2);
        assert!(high > low, "overlap {high} at m=500 vs {low} at m=50");
    }
}
