//! Linear-regime validation: required queries for `k = ζ·n`.
//!
//! The paper's simulations (Figures 2–5) all fix the sublinear regime
//! `θ = 0.25`; the linear clause of Theorem 1 —
//! `m ≥ (16γ + ε)·(q + (1−p−q)ζ)/(1−p−q)²·n·ln n` — is stated but never
//! plotted. This experiment closes that gap: it sweeps `n` at `ζ = 0.1`
//! for the noiseless, Z-channel and symmetric-channel models and reports
//! the measured thresholds against the bound, the same methodology as
//! Figure 2.

use super::{FigureReport, RunOptions};
use crate::output::{loglog_chart, Series};
use crate::sweep::required_queries_sample;
use crate::{mix_seed, Mode};
use npd_core::{NoiseModel, Regime};

/// Density of the linear regime.
pub const ZETA: f64 = 0.1;

/// Noise settings of the sweep.
pub fn noise_cases() -> Vec<(NoiseModel, &'static str)> {
    vec![
        (NoiseModel::Noiseless, "noiseless"),
        (NoiseModel::z_channel(0.1), "Z-channel p=0.1"),
        (NoiseModel::channel(0.01, 0.01), "channel p=q=0.01"),
    ]
}

/// Population grid by mode.
pub fn n_values(mode: Mode) -> Vec<usize> {
    match mode {
        Mode::Quick => vec![100, 316, 1000],
        Mode::Full => vec![100, 316, 1000, 3162, 10_000],
    }
}

/// The Theorem-1 linear-regime bound for a noise case at `ε = 0.05`.
pub fn linear_bound(n: usize, noise: &NoiseModel) -> f64 {
    let nf = n as f64;
    let (p, q) = match *noise {
        NoiseModel::Channel { p, q } => (p, q),
        NoiseModel::Noiseless | NoiseModel::Query { .. } => (0.0, 0.0),
    };
    npd_theory::bounds::noisy_channel_linear_queries(nf, ZETA, p, q, 0.05)
}

/// Runs the linear-regime sweep.
pub fn run(opts: &RunOptions) -> FigureReport {
    let trials = opts.resolve_trials(5, 15);
    let grid = n_values(opts.mode);
    let markers = ['*', 'o', 'x'];

    let mut series = Vec::new();
    let mut csv_rows = Vec::new();
    let mut notes = Vec::new();

    for (ci, (noise, label)) in noise_cases().iter().enumerate() {
        let mut s = Series::new(label.to_string(), markers[ci]);
        let mut last_ratio = None;
        for &n in &grid {
            let bound = linear_bound(n, noise);
            let budget = (bound * 4.0) as usize;
            let sample = required_queries_sample(
                n,
                Regime::linear(ZETA),
                *noise,
                trials,
                budget,
                mix_seed(0x11EA_0000, (ci * 100_000 + n) as u64),
                opts.threads,
            );
            let median = sample.median();
            if let Some(m) = median {
                s.push(n as f64, m);
                last_ratio = Some(m / bound);
            }
            csv_rows.push(vec![
                label.to_string(),
                n.to_string(),
                sample.k.to_string(),
                median.map_or("NA".into(), |m| format!("{m:.0}")),
                format!("{bound:.0}"),
                sample.failures.to_string(),
                trials.to_string(),
            ]);
        }
        if let Some(r) = last_ratio {
            notes.push(format!(
                "{label}: measured/bound = {r:.2} at n = {} (Theorem 1 linear clause, ε = 0.05)",
                grid.last().expect("grid is non-empty"),
            ));
        }
        series.push(s);
    }

    let rendered = loglog_chart(
        &format!("Linear regime — required queries vs n (ζ = {ZETA})"),
        &series,
        64,
        20,
    );

    FigureReport {
        name: "linear".into(),
        rendered,
        csv_headers: vec![
            "noise".into(),
            "n".into(),
            "k".into(),
            "median_required_queries".into(),
            "theorem1_bound".into(),
            "failures".into(),
            "trials".into(),
        ],
        csv_rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_scales_superlinearly_in_n() {
        let b1 = linear_bound(1000, &NoiseModel::Noiseless);
        let b2 = linear_bound(2000, &NoiseModel::Noiseless);
        assert!(b2 > 2.0 * b1, "n·ln n growth: {b1} vs {b2}");
    }

    #[test]
    fn noise_raises_the_bound() {
        let clean = linear_bound(1000, &NoiseModel::Noiseless);
        let z = linear_bound(1000, &NoiseModel::z_channel(0.1));
        let sym = linear_bound(1000, &NoiseModel::channel(0.01, 0.01));
        assert!(z > clean);
        assert!(sym > clean);
    }

    #[test]
    fn grids_match_modes() {
        assert_eq!(n_values(Mode::Quick).len(), 3);
        assert_eq!(n_values(Mode::Full).len(), 5);
    }

    #[test]
    fn small_linear_instance_separates_within_bound_multiple() {
        // Smoke test of the whole pipeline at n = 100, ζ = 0.1 (k = 10).
        let sample = required_queries_sample(
            100,
            Regime::linear(ZETA),
            NoiseModel::Noiseless,
            3,
            (linear_bound(100, &NoiseModel::Noiseless) * 4.0) as usize,
            5,
            2,
        );
        assert_eq!(sample.k, 10);
        assert!(
            sample.failures == 0,
            "noiseless linear instance must separate"
        );
    }
}
