//! The workloads row set: one row per structured population model,
//! prior-blind vs prior-aware, plus the temporal SIR tracking profile.
//!
//! The static rows fix one population size and a scarce query budget (an
//! eighth of the Theorem-1-derived default — the regime where the prior is
//! worth queries) and compare the plain greedy rule against the posterior
//! ranking ([`npd_core::GreedyDecoder::posterior_scores`]) on every static
//! workload in the catalog. The temporal rows walk the SIR workload
//! through its epochs with the streaming tracker
//! ([`npd_workloads::track_greedy`]) and report the per-epoch overlap.

use crate::figures::{FigureReport, RunOptions};
use crate::output::table;
use crate::{mix_seed, runner, scenarios, sweep, Mode};
use npd_core::{DesignSpec, NoiseModel};
use npd_workloads::{track_greedy, TrackingConfig, WorkloadSpec};

/// The sparsity exponent of the workload catalog (θ = 0.5: enough ones at
/// quick-grid sizes for block/cluster structure to exist).
const THETA: f64 = 0.5;

/// Runs the workloads figure.
pub fn run(opts: &RunOptions) -> FigureReport {
    let n = match opts.mode {
        Mode::Quick => 1_000,
        Mode::Full => 10_000,
    };
    let trials = opts.resolve_trials(5, 25);
    let noise = NoiseModel::z_channel(0.1);
    let specs = [
        WorkloadSpec::Uniform { theta: THETA },
        WorkloadSpec::Community { theta: THETA },
        WorkloadSpec::Households { theta: THETA },
        WorkloadSpec::Hubs { theta: THETA },
    ];
    let m = scenarios::scarce_budget(n, THETA, &noise);
    let gamma = n / 2;

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    for (si, spec) in specs.into_iter().enumerate() {
        let model = spec.model();
        let prior = model.prior(n);
        let seeds: Vec<u64> = (0..trials as u64)
            .map(|t| mix_seed(0xF1C7_0001, (si as u64) << 32 | t))
            .collect();
        let per_trial = runner::parallel_map(&seeds, opts.threads, |&seed| {
            scenarios::workload_trial(
                model.as_ref(),
                &prior,
                n,
                m,
                gamma,
                noise,
                DesignSpec::Iid,
                seed,
            )
        });
        let mean_k = per_trial.iter().map(|(k, _, _)| *k as f64).sum::<f64>() / trials as f64;
        let blind = per_trial.iter().map(|(_, b, _)| b).sum::<f64>() / trials as f64;
        let aware = per_trial.iter().map(|(_, _, a)| a).sum::<f64>() / trials as f64;
        rows.push(vec![
            spec.to_string(),
            format!("{mean_k:.1}"),
            m.to_string(),
            format!("{blind:.2}"),
            format!("{aware:.2}"),
        ]);
        csv_rows.push(vec![
            model.name().to_string(),
            n.to_string(),
            "".into(),
            format!("{mean_k:.2}"),
            m.to_string(),
            format!("{blind:.3}"),
            format!("{aware:.3}"),
            "".into(),
            trials.to_string(),
        ]);
    }

    // Temporal rows: the SIR workload under the streaming tracker.
    let model = WorkloadSpec::Sir.sir().expect("Sir spec is temporal");
    let cfg = TrackingConfig {
        gamma,
        queries_per_epoch: (sweep::default_budget(n, THETA, &noise) / 4).max(200),
        epochs: 5,
        noise,
        design: DesignSpec::Iid,
    };
    let tracking_trials = opts.resolve_trials(3, 10);
    let seeds: Vec<u64> = (0..tracking_trials as u64)
        .map(|t| mix_seed(0xF1C7_0002, t))
        .collect();
    let per_trial = runner::parallel_map(&seeds, opts.threads, |&seed| {
        track_greedy(&model, n, &cfg, seed)
    });
    let mut sir_rows = Vec::new();
    for epoch in 0..cfg.epochs {
        let k = per_trial.iter().map(|r| r[epoch].k as f64).sum::<f64>() / tracking_trials as f64;
        let ov = per_trial.iter().map(|r| r[epoch].overlap).sum::<f64>() / tracking_trials as f64;
        sir_rows.push(vec![
            epoch.to_string(),
            format!("{k:.1}"),
            cfg.queries_per_epoch.to_string(),
            format!("{ov:.2}"),
        ]);
        csv_rows.push(vec![
            "sir".into(),
            n.to_string(),
            epoch.to_string(),
            format!("{k:.2}"),
            cfg.queries_per_epoch.to_string(),
            "".into(),
            "".into(),
            format!("{ov:.3}"),
            tracking_trials.to_string(),
        ]);
    }

    let rendered = format!(
        "Workloads — structured populations at n = {n} (scarce budget, {trials} trials)\n{}\n\
         Temporal SIR tracking (streaming greedy, {tracking_trials} trials)\n{}",
        table(&["population", "k̄", "m", "blind", "prior-aware"], &rows),
        table(&["epoch", "k̄", "m/epoch", "overlap"], &sir_rows)
    );
    FigureReport {
        name: "workloads".into(),
        rendered,
        // Static rows fill the blind/prior-aware pair (epoch and
        // tracking empty); sir rows fill epoch + tracking_overlap.
        csv_headers: vec![
            "population".into(),
            "n".into(),
            "epoch".into(),
            "mean_k".into(),
            "m".into(),
            "overlap_blind".into(),
            "overlap_prior_aware".into(),
            "tracking_overlap".into(),
            "trials".into(),
        ],
        csv_rows,
        notes: vec![
            "prior-aware posterior ranking dominates the prior-blind rule on the \
             structured populations at scarce budgets; on the uniform workload the \
             two coincide up to degree normalization"
                .into(),
            "SIR tracking overlap decays as stale evidence accumulates across epochs".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_figure_runs_quick() {
        let opts = RunOptions {
            mode: Mode::Quick,
            trials: Some(2),
            threads: 2,
        };
        let report = run(&opts);
        assert_eq!(report.name, "workloads");
        // Four static rows plus five SIR epochs.
        assert_eq!(report.csv_rows.len(), 4 + 5);
        for row in &report.csv_rows {
            assert_eq!(row.len(), report.csv_headers.len());
        }
        assert!(report.rendered.contains("community"));
        assert!(report.rendered.contains("Temporal SIR"));
    }
}
