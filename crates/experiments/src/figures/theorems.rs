//! Theorem verification table (the paper has no numeric tables; its two
//! theorems are the table-equivalents).
//!
//! For a set of representative configurations the harness measures the
//! empirical median required-query count and divides it by the Theorem-1/2
//! bound. Ratios below 1 confirm the bounds are *achievability* results
//! (sufficient, not tight); the paper's own Figure 2 shows the same
//! relationship between its data points and the dashed line. The second
//! part checks the Theorem-2 phase transition: hopeless Gaussian noise
//! (`λ² = Ω(m)`) must produce reconstruction failures.

use super::{FigureReport, RunOptions, THETA};
use crate::output::table;
use crate::sweep::{default_budget, required_queries_sample};
use crate::{mix_seed, Mode};
use npd_core::{NoiseModel, Regime};

/// Runs the theorem verification study.
pub fn run(opts: &RunOptions) -> FigureReport {
    let trials = opts.resolve_trials(5, 15);
    let n = match opts.mode {
        Mode::Quick => 3162,
        Mode::Full => 10_000,
    };
    let nf = n as f64;
    let eps = 0.05;

    // (label, noise, bound) triples covering every clause of Theorems 1–2.
    let cases: Vec<(String, NoiseModel, f64)> = vec![
        (
            "noiseless (Thm 1, p=q=0)".into(),
            NoiseModel::Noiseless,
            npd_theory::bounds::z_channel_sublinear_queries(nf, THETA, 0.0, eps),
        ),
        (
            "Z-channel p=0.1".into(),
            NoiseModel::z_channel(0.1),
            npd_theory::bounds::z_channel_sublinear_queries(nf, THETA, 0.1, eps),
        ),
        (
            "Z-channel p=0.3".into(),
            NoiseModel::z_channel(0.3),
            npd_theory::bounds::z_channel_sublinear_queries(nf, THETA, 0.3, eps),
        ),
        (
            "channel p=q=0.01".into(),
            NoiseModel::channel(0.01, 0.01),
            npd_theory::bounds::noisy_channel_sublinear_queries(nf, THETA, 0.01, 0.01, eps),
        ),
        (
            "gaussian λ=1 (Thm 2 safe)".into(),
            NoiseModel::gaussian(1.0),
            npd_theory::bounds::noisy_query_sublinear_queries(nf, THETA, eps),
        ),
    ];

    let mut rows = Vec::new();
    let mut csv_rows = Vec::new();
    let mut notes = Vec::new();

    let k = Regime::sublinear(THETA).k_for(n) as u64;
    for (ci, (label, noise, bound)) in cases.iter().enumerate() {
        // The matching converse: what *any* decoder needs (see
        // npd_theory::converse) — the measured median must land between
        // the converse and the achievability bound.
        let converse = match *noise {
            NoiseModel::Noiseless => {
                npd_theory::converse::counting_bound_queries(n as u64, k, n as u64 / 2)
            }
            NoiseModel::Channel { p, q } => {
                npd_theory::converse::channel_converse_queries(n as u64, k, n as u64 / 2, p, q)
            }
            NoiseModel::Query { lambda } => {
                npd_theory::converse::gaussian_converse_queries(n as u64, k, n as u64 / 2, lambda)
            }
        };
        let budget = default_budget(n, THETA, noise).min(400_000);
        let sample = required_queries_sample(
            n,
            Regime::sublinear(THETA),
            *noise,
            trials,
            budget,
            mix_seed(0xBEEF_0000, ci as u64),
            opts.threads,
        );
        let median = sample.median();
        let (median_str, ratio_str) = match median {
            Some(m) => (format!("{m:.0}"), format!("{:.2}", m / bound)),
            None => ("NA".into(), "NA".into()),
        };
        rows.push(vec![
            label.clone(),
            format!("{converse:.0}"),
            format!("{bound:.0}"),
            median_str.clone(),
            ratio_str.clone(),
            sample.failures.to_string(),
        ]);
        csv_rows.push(vec![
            label.clone(),
            n.to_string(),
            format!("{converse:.1}"),
            format!("{bound:.1}"),
            median_str,
            ratio_str,
            sample.failures.to_string(),
        ]);
        if let Some(m) = median {
            if m < converse {
                notes.push(format!(
                    "{label}: median {m:.0} sits BELOW the converse {converse:.0} — impossible; \
                     investigate"
                ));
            }
        }
        if let Some(m) = median {
            if m <= *bound {
                notes.push(format!(
                    "{label}: measured median {m:.0} ≤ bound {bound:.0} ✓"
                ));
            } else {
                notes.push(format!(
                    "{label}: measured median {m:.0} EXCEEDS bound {bound:.0} \
                     (finite-size effect; cf. the paper's p=0.3/0.5 caveat)"
                ));
            }
        }
    }

    // Theorem 2 failure clause: λ² = Ω(m).
    let hopeless = required_queries_sample(
        500,
        Regime::sublinear(THETA),
        NoiseModel::gaussian(60.0),
        trials,
        1_000,
        mix_seed(0xBEEF_FFFF, 1),
        opts.threads,
    );
    rows.push(vec![
        "gaussian λ=60 (Thm 2 failing)".into(),
        "-".into(),
        "∞ (fails whp)".into(),
        "-".into(),
        "-".into(),
        hopeless.failures.to_string(),
    ]);
    csv_rows.push(vec![
        "gaussian λ=60 (Thm 2 failing)".into(),
        "500".into(),
        "NA".into(),
        "inf".into(),
        "NA".into(),
        "NA".into(),
        hopeless.failures.to_string(),
    ]);
    notes.push(format!(
        "Theorem 2 failure regime (λ=60, m ≤ 1000, λ² ≥ m): {}/{} trials failed to separate",
        hopeless.failures, trials
    ));

    let rendered = format!(
        "Theorem 1/2 verification at n = {n} (θ = 0.25, ε = {eps}, {trials} trials)\n{}",
        table(
            &[
                "configuration",
                "converse m",
                "bound m",
                "median m",
                "ratio",
                "failures",
            ],
            &rows
        )
    );

    FigureReport {
        name: "theorems".into(),
        rendered,
        csv_headers: vec![
            "configuration".into(),
            "n".into(),
            "converse_m".into(),
            "bound_m".into(),
            "median_m".into(),
            "ratio".into(),
            "failures".into(),
        ],
        csv_rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_all_cases() {
        let opts = RunOptions {
            mode: Mode::Quick,
            trials: Some(2),
            threads: 2,
        };
        let report = run(&opts);
        assert_eq!(report.csv_rows.len(), 6);
        assert!(report.rendered.contains("Z-channel p=0.1"));
        assert!(report.notes.iter().any(|n| n.contains("Theorem 2")));
    }
}
