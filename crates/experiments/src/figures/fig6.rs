//! Figure 6: success rate vs query count, greedy vs AMP.
//!
//! The paper fixes `n = 1000` agents (θ = 0.25 ⇒ `k = 6`), the Z-channel
//! with `p ∈ {0.1, 0.3, 0.5}`, sweeps `m` up to 600 and reports the
//! fraction of 100 runs whose reconstruction is exact, for both Algorithm 1
//! and AMP. The dashed reference is the Theorem-1 bound for `p = 0.1`,
//! `ε = 0.1`.

use super::{FigureReport, RunOptions, THETA};
use crate::output::{linear_chart, Series};
use crate::{mix_seed, runner};
use npd_amp::AmpDecoder;
use npd_core::{exact_recovery, Decoder, GreedyDecoder, Instance, NoiseModel, Regime};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Population size of the figure.
pub const N: usize = 1000;
/// Flip probabilities of the figure.
pub const P_VALUES: [f64; 3] = [0.1, 0.3, 0.5];

/// Query grid: 25, 50, …, 600.
pub fn m_grid() -> Vec<usize> {
    (1..=24).map(|i| i * 25).collect()
}

/// Success counts at one grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointOutcome {
    /// Exact recoveries by the greedy decoder.
    pub greedy_successes: usize,
    /// Exact recoveries by AMP on the same runs.
    pub amp_successes: usize,
    /// Trials executed.
    pub trials: usize,
}

/// One decode trial at `(p, m)` with a fixed seed: both decoders see the
/// same sampled run, matching the paper's methodology.
fn paired_trial(p: f64, m: usize, seed: u64) -> (bool, bool) {
    let instance = Instance::builder(N)
        .regime(Regime::sublinear(THETA))
        .queries(m)
        .noise(NoiseModel::z_channel(p))
        .build()
        .expect("figure-6 configuration is valid");
    let run = instance.sample(&mut StdRng::seed_from_u64(seed));
    let greedy = exact_recovery(&GreedyDecoder::new().decode(&run), run.ground_truth());
    let amp = exact_recovery(&AmpDecoder::default().decode(&run), run.ground_truth());
    (greedy, amp)
}

fn count_successes(outcomes: &[(bool, bool)]) -> PointOutcome {
    PointOutcome {
        greedy_successes: outcomes.iter().filter(|&&(g, _)| g).count(),
        amp_successes: outcomes.iter().filter(|&&(_, a)| a).count(),
        trials: outcomes.len(),
    }
}

/// Paired success-rate measurement at `(p, m)` (parallel over trials).
pub fn measure_point(
    p: f64,
    m: usize,
    trials: usize,
    seed_salt: u64,
    threads: usize,
) -> PointOutcome {
    let seeds: Vec<u64> = (0..trials as u64).map(|i| mix_seed(seed_salt, i)).collect();
    let outcomes = runner::parallel_map(&seeds, threads, |&seed| paired_trial(p, m, seed));
    count_successes(&outcomes)
}

/// Runs the Figure-6 comparison.
///
/// All `(p, m)` grid cells are measured through one flattened
/// [`runner::parallel_trials`] call — 72 cells × `trials` decode pairs
/// share the worker pool instead of synchronizing at every grid point.
pub fn run(opts: &RunOptions) -> FigureReport {
    let trials = opts.resolve_trials(20, 100);
    let grid = m_grid();
    let greedy_markers = ['*', 'o', 'x'];
    let amp_markers = ['a', 'b', 'c'];

    let cells: Vec<(usize, f64, usize)> = P_VALUES
        .iter()
        .enumerate()
        .flat_map(|(pi, &p)| grid.iter().map(move |&m| (pi, p, m)))
        .collect();
    let grouped = runner::parallel_trials(
        &cells,
        trials,
        opts.threads,
        |&(pi, _, m)| mix_seed(0xF660_0000, (pi * 1_000_000 + m) as u64),
        |&(_, p, m), seed| paired_trial(p, m, seed),
    );
    let mut grouped = grouped.iter();

    let mut series = Vec::new();
    let mut csv_rows = Vec::new();
    let mut notes = Vec::new();

    for (pi, &p) in P_VALUES.iter().enumerate() {
        let mut greedy_series = Series::new(format!("greedy p={p}"), greedy_markers[pi]);
        let mut amp_series = Series::new(format!("AMP p={p}"), amp_markers[pi]);
        let mut greedy_cross = None;
        let mut amp_cross = None;
        for &m in &grid {
            let outcome = count_successes(grouped.next().expect("one group per cell"));
            let g_rate = outcome.greedy_successes as f64 / trials as f64;
            let a_rate = outcome.amp_successes as f64 / trials as f64;
            greedy_series.push(m as f64, g_rate);
            amp_series.push(m as f64, a_rate);
            if g_rate >= 0.5 && greedy_cross.is_none() {
                greedy_cross = Some(m);
            }
            if a_rate >= 0.5 && amp_cross.is_none() {
                amp_cross = Some(m);
            }
            csv_rows.push(vec![
                p.to_string(),
                m.to_string(),
                format!("{g_rate:.3}"),
                format!("{a_rate:.3}"),
                trials.to_string(),
            ]);
        }
        notes.push(format!(
            "p={p}: 50% success at m≈{} (greedy) vs m≈{} (AMP)",
            greedy_cross.map_or("not reached".into(), |m| m.to_string()),
            amp_cross.map_or("not reached".into(), |m| m.to_string()),
        ));
        series.push(greedy_series);
        series.push(amp_series);
    }

    let theory = npd_theory::bounds::z_channel_sublinear_queries(N as f64, THETA, 0.1, 0.1);
    notes.push(format!(
        "Theorem 1 bound for p=0.1, ε=0.1: m ≥ {theory:.0} (dashed line of the paper's plot)"
    ));

    let rendered = linear_chart(
        "Figure 6 — success rate vs m (n=1000, Z-channel; greedy vs AMP)",
        &series,
        64,
        20,
    );

    FigureReport {
        name: "fig6".into(),
        rendered,
        csv_headers: vec![
            "p".into(),
            "m".into(),
            "greedy_success_rate".into(),
            "amp_success_rate".into(),
            "trials".into(),
        ],
        csv_rows,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m_grid_matches_paper_range() {
        let grid = m_grid();
        assert_eq!(*grid.first().unwrap(), 25);
        assert_eq!(*grid.last().unwrap(), 600);
    }

    #[test]
    fn success_rises_with_m_for_low_noise() {
        // Success at a starved budget must be below success at a generous
        // one — the monotone S-curve of Figure 6 (paired seeds, small
        // trial count for speed).
        let starved = measure_point(0.1, 50, 8, 42, 2);
        let generous = measure_point(0.1, 500, 8, 43, 2);
        assert!(generous.greedy_successes > starved.greedy_successes);
        assert!(generous.amp_successes >= starved.amp_successes);
        assert!(
            generous.greedy_successes >= 6,
            "greedy should be near-perfect at m=500"
        );
    }
}
