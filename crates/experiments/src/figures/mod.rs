//! One module per reproduced figure; see the crate docs for the index.

pub mod ablations;
pub mod adaptive;
pub mod categorical;
pub mod chaos;
pub mod comm;
pub mod decoders;
pub mod designs;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod linear;
pub mod theorems;
pub mod workloads;

use serde::{Deserialize, Serialize};

/// The paper's figure-wide sparsity exponent: Figures 2–5 fix `θ = 0.25`.
pub const THETA: f64 = 0.25;

/// Rendered result of one experiment, ready for the terminal and for CSV
/// export.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureReport {
    /// Short identifier (`fig2`, `theorems`, …) used for file names.
    pub name: String,
    /// Human-readable rendering (chart/table) for the terminal.
    pub rendered: String,
    /// CSV header row.
    pub csv_headers: Vec<String>,
    /// CSV data rows.
    pub csv_rows: Vec<Vec<String>>,
    /// Headline observations (used to fill EXPERIMENTS.md).
    pub notes: Vec<String>,
}

impl FigureReport {
    /// Writes the CSV artifact under `dir` as `<name>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        let headers: Vec<&str> = self.csv_headers.iter().map(String::as_str).collect();
        crate::output::write_csv(dir, &format!("{}.csv", self.name), &headers, &self.csv_rows)
    }

    /// Machine-readable JSON rendering for the bench/CI pipeline:
    /// `{"name", "headers", "rows", "notes"}` with every cell a string,
    /// exactly as in the CSV.
    pub fn to_json(&self) -> String {
        use crate::output::{json_escape, json_string_array};
        let rows: Vec<String> = self.csv_rows.iter().map(|r| json_string_array(r)).collect();
        format!(
            "{{\"name\":\"{}\",\"headers\":{},\"rows\":[{}],\"notes\":{}}}",
            json_escape(&self.name),
            json_string_array(&self.csv_headers),
            rows.join(","),
            json_string_array(&self.notes)
        )
    }

    /// Writes the JSON artifact under `dir` as `<name>.json`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        crate::output::write_json(dir, &format!("{}.json", self.name), &self.to_json())
    }
}

/// Shared knobs for all figure runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Quick or paper-scale grids.
    pub mode: crate::Mode,
    /// Overrides the per-figure default trial count when set.
    pub trials: Option<usize>,
    /// Worker threads.
    pub threads: usize,
}

impl RunOptions {
    /// Quick-mode options with the machine's parallelism.
    pub fn quick() -> Self {
        Self {
            mode: crate::Mode::Quick,
            trials: None,
            threads: crate::runner::default_threads(),
        }
    }

    /// Resolves the trial count: explicit override, else mode default.
    pub fn resolve_trials(&self, quick_default: usize, full_default: usize) -> usize {
        self.trials.unwrap_or(match self.mode {
            crate::Mode::Quick => quick_default,
            crate::Mode::Full => full_default,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_trials_prefers_override() {
        let mut opts = RunOptions::quick();
        assert_eq!(opts.resolve_trials(5, 25), 5);
        opts.trials = Some(9);
        assert_eq!(opts.resolve_trials(5, 25), 9);
        opts.mode = crate::Mode::Full;
        opts.trials = None;
        assert_eq!(opts.resolve_trials(5, 25), 25);
    }

    #[test]
    fn report_json_shape() {
        let report = FigureReport {
            name: "unit".into(),
            rendered: "chart".into(),
            csv_headers: vec!["a".into(), "b".into()],
            csv_rows: vec![vec!["1".into(), "x,\"y".into()]],
            notes: vec!["note".into()],
        };
        assert_eq!(
            report.to_json(),
            "{\"name\":\"unit\",\"headers\":[\"a\",\"b\"],\
             \"rows\":[[\"1\",\"x,\\\"y\"]],\"notes\":[\"note\"]}"
        );
        let dir = std::env::temp_dir().join("npd-figures-json-test");
        let path = report.write_json(&dir).unwrap();
        assert!(path.ends_with("unit.json"));
    }

    #[test]
    fn report_csv_written() {
        let report = FigureReport {
            name: "unit-test-report".into(),
            rendered: "chart".into(),
            csv_headers: vec!["a".into()],
            csv_rows: vec![vec!["1".into()]],
            notes: vec![],
        };
        let dir = std::env::temp_dir().join("npd-figures-test");
        let path = report.write_csv(&dir).unwrap();
        assert!(path.ends_with("unit-test-report.csv"));
        assert!(std::fs::read_to_string(path).unwrap().contains("a\n1"));
    }
}
