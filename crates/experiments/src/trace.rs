//! The harness side of the two-plane observability contract: the
//! wall-clock [`Clock`] implementation, trace-file export, and the
//! human-readable metrics/phase-profile rendering behind
//! `repro scenarios run <name> --trace out.json --metrics`.
//!
//! Library crates record only into the *deterministic* event plane (see
//! `docs/ARCHITECTURE.md`, contract rule 11): their sinks default to the
//! [`npd_telemetry::NullClock`] and never read real time. This module is
//! the one place a real clock is constructed — `repro` is a harness
//! binary, where wall time is presentation, never data.
//!
//! Export format is chosen by file extension: `.jsonl` writes the
//! deterministic JSON-lines stream (byte-identical across shard and
//! thread counts — the CI determinism matrix compares these files with
//! `cmp`), anything else writes the Chrome trace-event JSON loadable in
//! `chrome://tracing` / Perfetto, timestamped by this module's
//! [`WallClock`].

use npd_telemetry::{Clock, FieldValue, MetricsSnapshot, RecordedEvent, TelemetrySink};
use std::path::Path;
use std::time::Instant;

/// Monotonic wall clock for the optional timing plane.
///
/// Lives in the experiments harness *on purpose*: the `clock-boundary`
/// analyzer flags any real-time `Clock` impl inside a library crate, so
/// instrumented engines can only ever see a clock the harness hands
/// them.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A clock whose epoch is the moment of construction.
    pub fn new() -> Self {
        Self {
            // xtask:allow(wall-clock): the harness-side timing plane; timestamps go to Chrome traces, never into reports/CSVs
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_micros(&self) -> u64 {
        let micros = self.origin.elapsed().as_micros();
        // 1-based: `TelemetrySink::with_clock` classifies a clock that
        // reads 0 twice as the NullClock, and a fresh monotonic origin
        // legitimately reads 0µs twice on a fast machine.
        u64::try_from(micros)
            .unwrap_or(u64::MAX - 1)
            .saturating_add(1)
    }
}

/// Builds the sink for a traced run: deterministic (null-clock) when the
/// target is a `.jsonl` stream or there is no file at all (metrics-only),
/// wall-clocked when the target is a Chrome trace.
pub fn build_sink(trace_path: Option<&Path>) -> TelemetrySink {
    match trace_path {
        Some(path) if !is_jsonl(path) => TelemetrySink::with_clock(Box::new(WallClock::new())),
        _ => TelemetrySink::recording(),
    }
}

/// Writes the recorded trace to `path` in the extension-selected format.
///
/// # Errors
///
/// Propagates the underlying file-write error.
pub fn write_trace(sink: &TelemetrySink, path: &Path) -> std::io::Result<()> {
    let body = if is_jsonl(path) {
        sink.export_jsonl()
    } else {
        sink.export_chrome_trace()
    };
    let body = body.unwrap_or_default();
    std::fs::write(path, body)
}

fn is_jsonl(path: &Path) -> bool {
    path.extension().is_some_and(|e| e == "jsonl")
}

/// Renders the metrics registry (counters, gauges, histograms) and —
/// when the run emitted protocol `phase` events — the per-phase
/// round/message profile, as an ASCII table block for `--metrics`.
pub fn render_metrics(snapshot: &MetricsSnapshot, events: &[RecordedEvent]) -> String {
    let mut out = String::new();
    if !snapshot.counters.is_empty() {
        let rows: Vec<Vec<String>> = snapshot
            .counters
            .iter()
            .map(|&(name, value)| vec![name.to_string(), value.to_string()])
            .collect();
        out.push_str(&crate::output::table(&["counter", "value"], &rows));
        out.push('\n');
    }
    if !snapshot.gauges.is_empty() {
        let rows: Vec<Vec<String>> = snapshot
            .gauges
            .iter()
            .map(|&(name, value)| vec![name.to_string(), format!("{value}")])
            .collect();
        out.push_str(&crate::output::table(&["gauge", "value"], &rows));
        out.push('\n');
    }
    if !snapshot.histograms.is_empty() {
        let rows: Vec<Vec<String>> = snapshot
            .histograms
            .iter()
            .map(|(name, h)| {
                vec![
                    name.to_string(),
                    h.count().to_string(),
                    h.min().to_string(),
                    h.max().to_string(),
                    h.sum().to_string(),
                ]
            })
            .collect();
        out.push_str(&crate::output::table(
            &["histogram", "count", "min", "max", "sum"],
            &rows,
        ));
        out.push('\n');
    }
    if let Some(profile) = render_phase_profile(events) {
        out.push_str(&profile);
        out.push('\n');
    }
    out.push_str(&format!("events recorded: {}\n", snapshot.events));
    out
}

/// The phase-split profile (ROADMAP item 2's protocol-communication
/// question): one row per protocol phase with its round span, message
/// count, and share of total protocol messages. `None` when the trace
/// has no `phase` events (non-protocol scenarios).
pub fn render_phase_profile(events: &[RecordedEvent]) -> Option<String> {
    let phases: Vec<&RecordedEvent> = events.iter().filter(|e| e.event.name == "phase").collect();
    if phases.is_empty() {
        return None;
    }
    let field = |e: &RecordedEvent, name: &str| -> u64 {
        e.event
            .fields
            .iter()
            .find_map(|&(f, ref v)| match (f == name, v) {
                (true, &FieldValue::U64(u)) => Some(u),
                _ => None,
            })
            .unwrap_or(0)
    };
    let total: u64 = phases.iter().map(|e| field(e, "messages")).sum();
    let rows: Vec<Vec<String>> = phases
        .iter()
        .map(|e| {
            let messages = field(e, "messages");
            let share = if total == 0 {
                0.0
            } else {
                100.0 * messages as f64 / total as f64
            };
            vec![
                e.event.phase.to_string(),
                field(e, "first_round").to_string(),
                field(e, "last_round").to_string(),
                field(e, "rounds").to_string(),
                messages.to_string(),
                format!("{share:.1}%"),
            ]
        })
        .collect();
    Some(crate::output::table(
        &["phase", "first", "last", "rounds", "messages", "share"],
        &rows,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use npd_telemetry::Event;

    #[test]
    fn wall_clock_is_monotone_and_classified_as_wall() {
        let clock = WallClock::new();
        let a = clock.now_micros();
        let b = clock.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn sink_format_follows_extension() {
        // .jsonl → deterministic plane (null clock): export carries no
        // wall timestamps, so two runs are byte-identical.
        let jsonl = build_sink(Some(Path::new("/tmp/t.jsonl")));
        jsonl.add("x", 1);
        let a = jsonl.export_jsonl().unwrap();
        let again = build_sink(Some(Path::new("/tmp/t.jsonl")));
        again.add("x", 1);
        assert_eq!(a, again.export_jsonl().unwrap());
        // .json → Chrome trace with the wall clock attached.
        let chrome = build_sink(Some(Path::new("/tmp/t.json")));
        chrome.emit(|| Event::instant("e"));
        assert!(chrome
            .export_chrome_trace()
            .unwrap()
            .contains("\"traceEvents\""));
    }

    #[test]
    fn write_trace_round_trips_both_formats() {
        let dir = std::env::temp_dir().join("npd-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["t.jsonl", "t.json"] {
            let path = dir.join(name);
            let sink = build_sink(Some(&path));
            sink.emit(|| Event::instant("e").phase("p").u64("v", 7));
            write_trace(&sink, &path).unwrap();
            let body = std::fs::read_to_string(&path).unwrap();
            assert!(!body.is_empty(), "{name} wrote an empty trace");
        }
    }

    #[test]
    fn phase_profile_computes_message_shares() {
        let sink = TelemetrySink::recording();
        sink.emit(|| {
            Event::instant("phase")
                .phase("measure")
                .u64("first_round", 0)
                .u64("last_round", 0)
                .u64("rounds", 1)
                .u64("messages", 75)
        });
        sink.emit(|| {
            Event::instant("phase")
                .phase("select")
                .u64("first_round", 2)
                .u64("last_round", 5)
                .u64("rounds", 4)
                .u64("messages", 25)
        });
        let events = sink.recorder().unwrap().events();
        let profile = render_phase_profile(&events).unwrap();
        assert!(profile.contains("measure"));
        assert!(profile.contains("75.0%"));
        assert!(profile.contains("25.0%"));
        // And the full metrics rendering embeds it.
        let rendered = render_metrics(&sink.snapshot().unwrap(), &events);
        assert!(rendered.contains("events recorded: 2"));
        assert!(rendered.contains("select"));
    }
}
