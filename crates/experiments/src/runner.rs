//! Parallel trial runner.
//!
//! Experiments are embarrassingly parallel across trials; this module maps a
//! closure over a seed list on a crossbeam scoped thread pool, preserving
//! input order. Determinism: each trial's result depends only on its seed,
//! never on scheduling.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `inputs` on `threads` worker threads, preserving order.
///
/// With `threads <= 1` the map runs inline (useful for debugging and for
/// nesting inside an already-parallel caller).
///
/// # Panics
///
/// Propagates panics from `f` (the scope joins all workers first).
pub fn parallel_map<I, T, F>(inputs: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    if threads <= 1 || inputs.len() <= 1 {
        return inputs.iter().map(&f).collect();
    }
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..inputs.len()).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let workers = threads.min(inputs.len());
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= inputs.len() {
                    break;
                }
                let value = f(&inputs[i]);
                results.lock()[i] = Some(value);
            });
        }
    })
    .expect("parallel_map: worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("parallel_map: missing result"))
        .collect()
}

/// Default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_map(&inputs, 8, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let inputs: Vec<u64> = (0..50).collect();
        let seq = parallel_map(&inputs, 1, |&x| x * x);
        let par = parallel_map(&inputs, 4, |&x| x * x);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(&[] as &[u64], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_work() {
        let out = parallel_map(&[1u64, 2], 64, |&x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn work_distributes_across_threads() {
        // Wall-clock assertions are flaky under parallel test load; instead
        // verify that more than one worker thread actually participated.
        let inputs: Vec<u64> = (0..64).collect();
        let ids = parallel_map(&inputs, 4, |_| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            std::thread::current().id()
        });
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "all work ran on a single thread");
    }
}
