//! Parallel trial runner.
//!
//! Experiments are embarrassingly parallel across trials; this module maps a
//! closure over a seed list on a rayon thread pool, preserving input order.
//!
//! # Determinism contract
//!
//! Every trial's result depends only on its own seed (one independently
//! seeded `StdRng` per trial), never on scheduling, and results are
//! reassembled in input order — so `parallel_map` returns *bit-identical*
//! output for any `threads` value, including 1. The determinism regression
//! test in the workspace root (`tests/determinism.rs`) pins this property.

use rayon::prelude::*;

/// Maps `f` over `inputs` on `threads` rayon worker threads, preserving
/// order.
///
/// With `threads <= 1` the map runs inline (useful for debugging and for
/// nesting inside an already-parallel caller).
///
/// # Panics
///
/// Propagates panics from `f` (all workers are joined first).
pub fn parallel_map<I, T, F>(inputs: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    if threads <= 1 || inputs.len() <= 1 {
        return inputs.iter().map(&f).collect();
    }
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("parallel_map: thread pool construction cannot fail");
    pool.install(|| inputs.par_iter().map(&f).collect())
}

/// Default worker count: rayon's ambient parallelism (`RAYON_NUM_THREADS`
/// or the machine's available parallelism).
pub fn default_threads() -> usize {
    rayon::current_num_threads()
}

/// Runs `trials` seeded trials for every cell of a parameter grid,
/// *flattened* into one parallel domain, returning per-cell trial results
/// in `(cell, trial)` order.
///
/// Trial `t` of cell `c` runs `f(&cells[c], mix_seed(salt(&cells[c]), t))`.
/// Flattening (rather than a parallel loop per cell) keeps the pool full
/// when cells have wildly different costs — the standard shape of the
/// figure grids, where the largest `n` dominates. Each trial depends only
/// on its own seed, so the grouped results are bit-identical to the
/// sequential double loop at any thread count.
pub fn parallel_trials<C, T, F, S>(
    cells: &[C],
    trials: usize,
    threads: usize,
    salt: S,
    f: F,
) -> Vec<Vec<T>>
where
    C: Sync,
    T: Send,
    S: Fn(&C) -> u64,
    F: Fn(&C, u64) -> T + Sync,
{
    let jobs: Vec<(usize, u64)> = cells
        .iter()
        .enumerate()
        .flat_map(|(ci, cell)| {
            let cell_salt = salt(cell);
            (0..trials as u64).map(move |t| (ci, crate::mix_seed(cell_salt, t)))
        })
        .collect();
    let outcomes = parallel_map(&jobs, threads, |&(ci, seed)| f(&cells[ci], seed));
    let mut grouped: Vec<Vec<T>> = cells.iter().map(|_| Vec::with_capacity(trials)).collect();
    for (&(ci, _), outcome) in jobs.iter().zip(outcomes) {
        grouped[ci].push(outcome);
    }
    grouped
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_map(&inputs, 8, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_matches_parallel() {
        let inputs: Vec<u64> = (0..50).collect();
        let seq = parallel_map(&inputs, 1, |&x| x * x);
        let par = parallel_map(&inputs, 4, |&x| x * x);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = parallel_map(&[] as &[u64], 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_work() {
        let out = parallel_map(&[1u64, 2], 64, |&x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn parallel_trials_groups_in_cell_order() {
        let cells = [10u64, 20, 30];
        let grouped = parallel_trials(&cells, 4, 4, |&c| c, |&c, seed| (c, seed));
        assert_eq!(grouped.len(), 3);
        for (ci, group) in grouped.iter().enumerate() {
            assert_eq!(group.len(), 4);
            let expected: Vec<(u64, u64)> = (0..4u64)
                .map(|t| (cells[ci], crate::mix_seed(cells[ci], t)))
                .collect();
            assert_eq!(group, &expected);
        }
        // Thread-count independence.
        let seq = parallel_trials(&cells, 4, 1, |&c| c, |&c, seed| (c, seed));
        assert_eq!(grouped, seq);
    }

    #[test]
    fn work_distributes_across_threads() {
        // Wall-clock assertions are flaky under parallel test load; instead
        // verify that more than one worker thread actually participated.
        let inputs: Vec<u64> = (0..64).collect();
        let ids = parallel_map(&inputs, 4, |_| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            std::thread::current().id()
        });
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "all work ran on a single thread");
    }
}
